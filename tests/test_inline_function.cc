/** @file Unit tests for the small-buffer callable wrapper. */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/inline_function.hh"

namespace specfaas {
namespace {

TEST(InlineFunction, EmptyByDefault)
{
    InlineFunction<int()> f;
    EXPECT_FALSE(static_cast<bool>(f));
    InlineFunction<int()> g(nullptr);
    EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesInlineCallable)
{
    int x = 41;
    InlineFunction<int(int)> f([&x](int d) { return x + d; });
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(1), 42);
}

TEST(InlineFunction, HoldsMoveOnlyCapture)
{
    auto p = std::make_unique<int>(7);
    InlineFunction<int()> f([p = std::move(p)]() { return *p; });
    EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource)
{
    InlineFunction<int()> f([]() { return 5; });
    InlineFunction<int()> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    ASSERT_TRUE(static_cast<bool>(g));
    EXPECT_EQ(g(), 5);

    InlineFunction<int()> h;
    h = std::move(g);
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_EQ(h(), 5);
}

TEST(InlineFunction, ResetAndNullAssignDestroyCapture)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    InlineFunction<void()> f([token = std::move(token)]() {});
    EXPECT_FALSE(watch.expired());
    f.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(static_cast<bool>(f));

    auto token2 = std::make_shared<int>(2);
    std::weak_ptr<int> watch2 = token2;
    InlineFunction<void()> g([token2 = std::move(token2)]() {});
    g = nullptr;
    EXPECT_TRUE(watch2.expired());
}

TEST(InlineFunction, OversizedCaptureIsBoxedAndStillWorks)
{
    // A capture bigger than the inline buffer takes the boxed path:
    // behaviour must be identical, including move and destruction.
    struct Big
    {
        char pad[256];
        std::shared_ptr<int> token;
    };
    Big big{};
    big.token = std::make_shared<int>(9);
    std::weak_ptr<int> watch = big.token;

    InlineFunction<int(), 72> f([big]() { return *big.token; });
    EXPECT_EQ(f(), 9);

    InlineFunction<int(), 72> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_EQ(g(), 9);

    big.token.reset();
    EXPECT_FALSE(watch.expired()) << "boxed copy keeps capture alive";
    g.reset();
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveAssignReplacesExistingCapture)
{
    auto a = std::make_shared<int>(1);
    std::weak_ptr<int> watchA = a;
    InlineFunction<void()> f([a = std::move(a)]() {});

    InlineFunction<void()> g([]() {});
    f = std::move(g);
    EXPECT_TRUE(watchA.expired()) << "old capture destroyed on assign";
    ASSERT_TRUE(static_cast<bool>(f));
}

TEST(InlineFunction, SelfMoveAssignIsANoOp)
{
    InlineFunction<int()> f([]() { return 3; });
    InlineFunction<int()>& alias = f;
    f = std::move(alias);
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(), 3);
}

} // namespace
} // namespace specfaas
