/**
 * @file
 * Unit tests for the fixed-size thread pool (common/parallel.hh):
 * ordered results, serial-equivalent error propagation, and the
 * degenerate batch shapes (empty, jobs=0, more jobs than tasks).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"

namespace specfaas {
namespace {

TEST(Parallel, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Parallel, EmptyBatchIsANoOp)
{
    runParallel(4, {});
    EXPECT_TRUE(mapParallel<int>(4, {}).empty());
}

TEST(Parallel, RunsEveryTaskExactlyOnce)
{
    for (std::size_t jobs : {std::size_t{0}, std::size_t{1},
                             std::size_t{3}, std::size_t{64}}) {
        constexpr std::size_t kTasks = 57;
        std::vector<std::atomic<int>> ran(kTasks);
        std::vector<std::function<void()>> tasks;
        for (std::size_t i = 0; i < kTasks; ++i)
            tasks.push_back([&ran, i]() { ++ran[i]; });
        runParallel(jobs, std::move(tasks));
        for (std::size_t i = 0; i < kTasks; ++i)
            EXPECT_EQ(ran[i].load(), 1) << "jobs=" << jobs << " task "
                                        << i;
    }
}

TEST(Parallel, MapResultsComeBackInSubmissionOrder)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        std::vector<std::function<int()>> fns;
        for (int i = 0; i < 40; ++i)
            fns.push_back([i]() { return i * i; });
        const std::vector<int> results =
            mapParallel<int>(jobs, std::move(fns));
        ASSERT_EQ(results.size(), 40u);
        for (int i = 0; i < 40; ++i)
            EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(Parallel, BoolResultsAreSafe)
{
    // R = bool exercises the per-slot buffering (a packed
    // vector<bool> written from many threads would be a data race).
    std::vector<std::function<bool()>> fns;
    for (int i = 0; i < 100; ++i)
        fns.push_back([i]() { return i % 3 == 0; });
    const std::vector<bool> results =
        mapParallel<bool>(8, std::move(fns));
    ASSERT_EQ(results.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i % 3 == 0);
}

TEST(Parallel, LowestIndexedExceptionPropagates)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 30; ++i) {
            tasks.push_back([i]() {
                if (i == 7 || i == 21)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
        }
        try {
            runParallel(jobs, std::move(tasks));
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error& e) {
            // With jobs=1 task 21 is never reached; with more jobs it
            // may run, but the rethrown error is still task 7's.
            EXPECT_STREQ(e.what(), "task 7") << "jobs=" << jobs;
        }
    }
}

TEST(Parallel, TasksAfterAFailureAreSkipped)
{
    // Once a task throws no *new* tasks are claimed. With jobs=1 the
    // cutoff is exact: nothing after the failing index runs.
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
        tasks.push_back([&ran, i]() {
            ++ran;
            if (i == 3)
                throw std::runtime_error("boom");
        });
    }
    EXPECT_THROW(runParallel(1, std::move(tasks)), std::runtime_error);
    EXPECT_EQ(ran.load(), 4);
}

TEST(Parallel, MoreJobsThanTasks)
{
    std::vector<std::function<int()>> fns;
    for (int i = 0; i < 3; ++i)
        fns.push_back([i]() { return i + 1; });
    const std::vector<int> results =
        mapParallel<int>(32, std::move(fns));
    EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

} // namespace
} // namespace specfaas
