/** @file CounterRegistry unit tests (src/obs/counter_registry). */

#include <gtest/gtest.h>

#include "obs/counter_registry.hh"
#include "platform/platform.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

using obs::CounterRegistry;

TEST(CounterRegistry, MergeIntoAccumulatesAcrossRegistries)
{
    CounterRegistry a;
    a.add("events", 5);
    a.set("load", 0.25);
    CounterRegistry b;
    b.add("events", 10);
    b.add("only_in_b", 1);
    b.set("load", 0.5);

    a.mergeInto(b);
    EXPECT_EQ(b.value("events"), 15u);
    EXPECT_EQ(b.value("only_in_b"), 1u);
    // Gauges are point-in-time: the merged value overwrites.
    EXPECT_DOUBLE_EQ(b.gauge("load"), 0.25);

    // Merging twice keeps accumulating; the source is unchanged.
    a.mergeInto(b);
    EXPECT_EQ(b.value("events"), 20u);
    EXPECT_EQ(a.value("events"), 5u);
}

TEST(CounterRegistry, ValueOnAbsentNameDoesNotCreateAnEntry)
{
    CounterRegistry reg;
    reg.add("present", 1);
    ASSERT_EQ(reg.entryCount(), 1u);
    EXPECT_EQ(reg.value("absent"), 0u);
    EXPECT_EQ(reg.entryCount(), 1u);
    // But counter() does create, at zero.
    (void)reg.counter("absent");
    EXPECT_EQ(reg.entryCount(), 2u);
    EXPECT_EQ(reg.value("absent"), 0u);
}

TEST(CounterRegistry, SnapshotOrdersCountersBeforeGaugesEachSorted)
{
    CounterRegistry reg;
    reg.set("z.gauge", 1.0);
    reg.add("b.counter", 2);
    reg.set("a.gauge", 3.0);
    reg.add("a.counter", 4);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].first, "a.counter");
    EXPECT_EQ(snap[1].first, "b.counter");
    EXPECT_EQ(snap[2].first, "a.gauge");
    EXPECT_EQ(snap[3].first, "z.gauge");
    EXPECT_DOUBLE_EQ(snap[0].second, 4.0);
    EXPECT_DOUBLE_EQ(snap[3].second, 1.0);
}

TEST(CounterRegistry, StableReferencesSurviveGrowth)
{
    CounterRegistry reg;
    std::uint64_t& c = reg.counter("hot");
    for (int i = 0; i < 100; ++i)
        (void)reg.counter("filler" + std::to_string(i));
    c += 7;
    EXPECT_EQ(reg.value("hot"), 7u);
}

TEST(CounterRegistry, EngineTeardownMergesIntoGlobalRegistry)
{
    Application app;
    app.name = "merge-app";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(worker("MgF", 5.0, [](const Env&) {
        return Value("ok");
    }));
    app.workflow = task("MgF");
    app.inputGen = [](Rng&) { return Value::object({}); };

    obs::counters().clear();
    {
        PlatformOptions options;
        options.speculative = false;
        options.seed = 3;
        FaasPlatform platform(options);
        platform.deploy(app);
        (void)platform.invokeSync(app, Value::object({}));
        // Engine still alive: its tallies are private to the run.
        EXPECT_EQ(obs::counters().value("baseline.invocations"), 0u);
    }
    // Engine destroyed: its registry landed in the global one.
    EXPECT_EQ(obs::counters().value("baseline.invocations"), 1u);
    EXPECT_EQ(obs::counters().value("baseline.completions"), 1u);
    obs::counters().clear();
}

} // namespace
} // namespace specfaas
