/** @file Unit tests for statistics helpers and the table printer. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats_util.hh"
#include "common/table.hh"

namespace specfaas {
namespace {

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 100.0), 30.0);
}

TEST(Stats, PercentileSingleSample)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Stats, PercentileSortedBoundaries)
{
    const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileSorted(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(sorted, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(sorted, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(percentileSorted({9.0}, 0.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileSorted({9.0}, 100.0), 9.0);
}

TEST(Stats, StddevKnownValue)
{
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.138, 0.001);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    // Undefined for an empty sample: NaN, not a fabricated 0.0.
    EXPECT_TRUE(std::isnan(geomean({})));
}

TEST(Stats, EmpiricalCdfMonotone)
{
    std::vector<double> xs;
    for (int i = 100; i > 0; --i)
        xs.push_back(static_cast<double>(i));
    auto cdf = empiricalCdf(xs, 10);
    ASSERT_EQ(cdf.size(), 10u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].x, cdf[i - 1].x);
        EXPECT_GT(cdf[i].cum, cdf[i - 1].cum);
    }
    EXPECT_DOUBLE_EQ(cdf.back().cum, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().x, 100.0);
}

TEST(Stats, EmpiricalCdfSmallSample)
{
    // maxPoints larger than the sample: one point per observation.
    auto cdf = empiricalCdf({3.0, 1.0, 2.0}, 50);
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
    EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
    EXPECT_DOUBLE_EQ(cdf.back().cum, 1.0);
    EXPECT_TRUE(empiricalCdf({}, 10).empty());
}

TEST(Stats, AccumulatorPercentileSingleSample)
{
    Accumulator acc;
    acc.add(6.5);
    EXPECT_DOUBLE_EQ(acc.percentile(0.0), 6.5);
    EXPECT_DOUBLE_EQ(acc.percentile(50.0), 6.5);
    EXPECT_DOUBLE_EQ(acc.percentile(100.0), 6.5);
}

TEST(Stats, AccumulatorTracksMoments)
{
    Accumulator acc;
    for (double x : {5.0, 1.0, 3.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.percentile(50.0), 3.0);
}

TEST(Stats, AccumulatorWithoutSamples)
{
    Accumulator acc(false);
    acc.add(2.0);
    EXPECT_TRUE(acc.samples().empty());
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(Stats, AccumulatorEmptyPercentileIsNaN)
{
    // An empty keep-samples accumulator has no percentiles; this must
    // surface as NaN at the Accumulator level, not die on the generic
    // "percentile of empty sample" assert inside stats_util.
    Accumulator acc;
    EXPECT_TRUE(std::isnan(acc.percentile(50.0)));
    acc.add(1.5);
    EXPECT_DOUBLE_EQ(acc.percentile(50.0), 1.5);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtRatio(4.64), "4.6x");
    EXPECT_EQ(fmtPercent(0.587), "58.7%");
    EXPECT_EQ(fmtMs(12.34), "12.3 ms");
    // Undefined rates (0 predictions) render as a dash, not "100%".
    EXPECT_EQ(fmtPercentOrDash(0.587), "58.7%");
    EXPECT_EQ(fmtPercentOrDash(std::nan("")), "–");
    EXPECT_EQ(fmtRatioOrDash(4.64), "4.6x");
    EXPECT_EQ(fmtRatioOrDash(geomean({})), "–");
}

} // namespace
} // namespace specfaas
