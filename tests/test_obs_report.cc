/**
 * @file
 * Tests for the trace-analysis half of src/obs: latency histograms,
 * the gauge sampler, the critical-path analyzer, the JSON report
 * renderer/parser, report comparison, and run-report determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "obs/critical_path.hh"
#include "obs/histogram.hh"
#include "obs/json_report.hh"
#include "obs/trace_export.hh"
#include "obs/trace_recorder.hh"
#include "platform/platform.hh"
#include "runtime/ids.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

using obs::LatencyHistogram;
using obs::TimeSeriesSampler;

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(LatencyHistogram, EmptyIsNaN)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.min()));
    EXPECT_TRUE(std::isnan(h.max()));
    EXPECT_TRUE(std::isnan(h.percentile(50)));
    EXPECT_TRUE(h.buckets().empty());
}

TEST(LatencyHistogram, ExactStatsAndApproximatePercentiles)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    // Log-bucketed: percentiles are within one sub-bucket (~6%).
    EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.07);
    EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.07);
    // Extremes clamp to the exact min / max.
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(LatencyHistogram, SubUnitAndNegativeShareTheZeroBucket)
{
    LatencyHistogram h;
    h.add(0.0);
    h.add(0.5);
    h.add(-3.0); // clamps
    h.add(std::nan("")); // clamps
    EXPECT_EQ(h.count(), 4u);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].count, 4u);
    EXPECT_DOUBLE_EQ(buckets[0].lower, 0.0);
}

TEST(LatencyHistogram, MergeMatchesCombinedAdds)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram both;
    for (int i = 1; i <= 50; ++i) {
        a.add(i);
        both.add(i);
    }
    for (int i = 51; i <= 100; ++i) {
        b.add(i * 10.0);
        both.add(i * 10.0);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.sum(), both.sum());
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.percentile(90), both.percentile(90));
}

TEST(LatencyHistogram, BoundedBucketsOverHugeRange)
{
    LatencyHistogram h;
    for (int i = 0; i < 10000; ++i)
        h.add(std::pow(1.001, i)); // spans ~14 octaves
    // Memory stays O(log range), not O(n).
    EXPECT_LT(h.buckets().size(),
              20 * LatencyHistogram::kSubBuckets);
}

// ---------------------------------------------------------------------
// TimeSeriesSampler
// ---------------------------------------------------------------------

TEST(TimeSeriesSampler, SamplesOnCadenceViaDaemonEvents)
{
    EventQueue q;
    TimeSeriesSampler sampler(q, /*interval=*/10);
    double gauge = 0.0;
    sampler.addGauge("g", [&] { return gauge; });
    sampler.start();
    // Real work carries the clock to t=25; daemons ride along.
    q.schedule(25, [&] { gauge = 7.0; });
    q.run();
    EXPECT_EQ(q.now(), 25);
    ASSERT_EQ(sampler.times(),
              (std::vector<Tick>{0, 10, 20})); // start + 2 ticks
    EXPECT_EQ(sampler.gaugeSeries(0),
              (std::vector<double>{0.0, 0.0, 0.0}));
    EXPECT_EQ(sampler.observations(), 3u);
    sampler.stop();
}

TEST(TimeSeriesSampler, CompactionBoundsMemoryAndKeepsStats)
{
    EventQueue q;
    TimeSeriesSampler sampler(q, /*interval=*/1, /*maxSamples=*/8);
    double v = 0.0;
    sampler.addGauge("v", [&] { return v; });
    sampler.start();
    q.schedule(100, [&] { v = 1.0; });
    q.run();
    // Compaction coarsens the cadence instead of growing the buffer:
    // far fewer than 101 samples taken, at most 8 retained.
    EXPECT_GT(sampler.observations(), 8u);
    EXPECT_LT(sampler.observations(), 101u);
    EXPECT_LE(sampler.times().size(), 8u);
    EXPECT_GT(sampler.interval(), 1); // doubled at least once
    // Whole-run stats see every observation, not just retained ones.
    const auto stats = sampler.gaugeStats(0);
    EXPECT_EQ(stats.count, sampler.observations());
    EXPECT_DOUBLE_EQ(stats.min, 0.0);
    EXPECT_DOUBLE_EQ(stats.mean, 0.0);
    // Retained samples always span the run (first stays at t=0).
    EXPECT_EQ(sampler.times().front(), 0);
    EXPECT_GE(sampler.times().back(), 64);
}

// ---------------------------------------------------------------------
// Shared traced workload
// ---------------------------------------------------------------------

/** Two-branch chain whose rare direction forces a squash. */
Application
reportBranchChain()
{
    Application app;
    app.name = "rpt-chain";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(condFunction("Ra", "b0", 5.0));
    app.functions.push_back(worker("Rmid", 6.0, fns::passInput()));
    app.functions.push_back(worker("Rend", 5.0, [](const Env&) {
        return Value("done");
    }));
    app.functions.push_back(worker("Rfail", 2.0, [](const Env&) {
        return Value("failed");
    }));
    app.workflow =
        when("Ra", sequence({task("Rmid"), task("Rend")}),
             task("Rfail"));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.95));
        return v;
    };
    return app;
}

/** Reset every process-global obs/id sink determinism cares about. */
void
resetGlobalObsState()
{
    resetIdsForTest();
    obs::trace().disable();
    obs::trace().clear();
    obs::counters().clear();
    obs::samplerArchive().clear();
    obs::setSampleInterval(0);
}

/**
 * One traced SpecFaaS mini-run: train untraced, then invoke the
 * common direction and the forced-misprediction direction under
 * tracing. Returns the recorded events.
 */
std::vector<obs::TraceEvent>
tracedSpecRun(std::uint64_t seed)
{
    Application app = reportBranchChain();
    PlatformOptions options;
    options.speculative = true;
    options.seed = seed;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 20);

    obs::trace().enable(1u << 16);
    for (int i = 0; i < 3; ++i) {
        auto ok = platform.invokeSync(
            app, Value::object({{"b0", Value(true)}}));
        EXPECT_EQ(ok.response.asString(), "done");
    }
    auto rare = platform.invokeSync(
        app, Value::object({{"b0", Value(false)}}));
    EXPECT_EQ(rare.response.asString(), "failed");
    obs::trace().disable();
    return obs::trace().snapshot();
}

// ---------------------------------------------------------------------
// Critical-path analyzer
// ---------------------------------------------------------------------

TEST(CriticalPath, SegmentsTileEndToEndLatencyExactly)
{
    resetGlobalObsState();
    const auto evs = tracedSpecRun(11);
    const auto report = obs::analyzeTrace(evs);

    ASSERT_EQ(report.invocations.size(), 4u);
    EXPECT_EQ(report.incompleteInvocations, 0u);
    for (const auto& inv : report.invocations) {
        EXPECT_GT(inv.latency(), 0);
        // Acceptance criterion: the exclusive segments sum to the
        // measured end-to-end latency within one tick.
        EXPECT_LE(std::llabs(static_cast<long long>(
                      inv.segments.total() - inv.latency())),
                  1)
            << "invocation " << inv.id;
        EXPECT_GT(inv.segments.execution, 0);
        EXPECT_EQ(inv.app, "rpt-chain");
    }
    EXPECT_EQ(report.perApp.at("rpt-chain").invocations, 4u);
    EXPECT_EQ(report.totals.execution,
              report.perApp.at("rpt-chain").totals.execution);
    resetGlobalObsState();
}

TEST(CriticalPath, ForcedMispredictionAttributesWastedTicks)
{
    resetGlobalObsState();
    const auto evs = tracedSpecRun(12);
    const auto report = obs::analyzeTrace(evs);
    const auto& w = report.speculation;

    EXPECT_GT(w.usefulTicks, 0);
    EXPECT_GT(w.committedInstances, 0u);
    // The rare direction squashed speculative work...
    EXPECT_GT(w.squashedInstances, 0u);
    // ...and the burn is attributed to the squash reason.
    ASSERT_TRUE(w.squashesByReason.count("control-mispredict"))
        << report.table();
    EXPECT_GT(w.squashesByReason.at("control-mispredict"), 0u);
    EXPECT_TRUE(w.wastedByReason.count("control-mispredict"));
    // Per-depth attribution covers all wasted ticks.
    Tick by_depth = 0;
    for (const auto& [depth, ticks] : w.wastedByDepth) {
        EXPECT_GE(depth, 1);
        by_depth += ticks;
    }
    EXPECT_EQ(by_depth, w.wastedTicks);
    const double f = w.wastedFraction();
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);

    // The printable report renders without dying.
    EXPECT_NE(report.table().find("rpt-chain"), std::string::npos);
    resetGlobalObsState();
}

// ---------------------------------------------------------------------
// JSON rendering, parsing, comparison
// ---------------------------------------------------------------------

TEST(JsonReport, RenderParseRoundTrip)
{
    Value v = Value::object(
        {{"s", Value("quote\"new\nline")},
         {"i", Value(static_cast<std::int64_t>(-42))},
         {"d", Value(3.25)},
         {"b", Value(true)},
         {"arr", Value(ValueArray{Value(1), Value("two")})},
         {"nested", Value::object({{"k", Value(false)}})}});
    const std::string text = obs::toJson(v);

    Value back;
    std::string error;
    ASSERT_TRUE(obs::parseJson(text, back, &error)) << error;
    EXPECT_EQ(obs::toJson(back), text); // stable fixpoint
    EXPECT_EQ(back["s"].asString(), "quote\"new\nline");
    EXPECT_EQ(back["i"].asInt(), -42);
    EXPECT_DOUBLE_EQ(back["d"].asDouble(), 3.25);
}

TEST(JsonReport, ParseRejectsMalformedInput)
{
    Value out;
    std::string error;
    EXPECT_FALSE(obs::parseJson("{\"a\": ", out, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::parseJson("{\"a\": 1} trailing", out));
    EXPECT_FALSE(obs::parseJson("", out));
}

TEST(JsonReport, BuildCarriesSchemaConfigAndMetrics)
{
    obs::JsonReport report("unit");
    report.setConfig("seed", Value(static_cast<std::int64_t>(42)));
    report.addMetric("speedup", 4.6, /*higherIsBetter=*/true, "x");
    LatencyHistogram h;
    h.add(5.0);
    report.addHistogram("lat_ms", h);

    Value doc = report.build();
    EXPECT_EQ(doc["schema"].asString(), obs::kReportSchema);
    EXPECT_EQ(doc["bench"].asString(), "unit");
    EXPECT_EQ(doc["config"]["seed"].asInt(), 42);
    EXPECT_DOUBLE_EQ(doc["metrics"]["speedup"]["value"].asDouble(),
                     4.6);
    EXPECT_TRUE(
        doc["metrics"]["speedup"]["higher_is_better"].asBool());
    EXPECT_EQ(doc["histograms"]["lat_ms"]["count"].asInt(), 1);
}

TEST(CompareReports, IdenticalReportsPass)
{
    obs::JsonReport report("cmp");
    report.addMetric("speedup", 4.0, true, "x");
    report.addMetric("latency_ms", 120.0, false, "ms");
    const auto result =
        obs::compareReports(report.build(), report.build());
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.regressions.empty());
    EXPECT_TRUE(result.errors.empty());
}

TEST(CompareReports, FlagsBadDirectionBeyondTolerance)
{
    obs::JsonReport base("cmp");
    base.addMetric("speedup", 4.0, true);
    base.addMetric("latency_ms", 100.0, false);
    obs::JsonReport cand("cmp");
    cand.addMetric("speedup", 3.0, true);     // -25%: regression
    cand.addMetric("latency_ms", 103.0, false); // +3%: within 5%
    const auto result = obs::compareReports(base.build(),
                                            cand.build());
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_NE(result.regressions[0].find("speedup"),
              std::string::npos);
}

TEST(CompareReports, GoodDirectionNeverFails)
{
    obs::JsonReport base("cmp");
    base.addMetric("speedup", 4.0, true);
    base.addMetric("latency_ms", 100.0, false);
    obs::JsonReport cand("cmp");
    cand.addMetric("speedup", 8.0, true);      // better
    cand.addMetric("latency_ms", 50.0, false); // better
    EXPECT_TRUE(
        obs::compareReports(base.build(), cand.build()).ok());
}

TEST(CompareReports, MismatchAndMissingMetricsAreErrors)
{
    obs::JsonReport base("bench-a");
    base.addMetric("m", 1.0, true);
    obs::JsonReport other("bench-b");
    other.addMetric("m", 1.0, true);
    EXPECT_FALSE(
        obs::compareReports(base.build(), other.build()).ok());

    obs::JsonReport missing("bench-a");
    const auto result =
        obs::compareReports(base.build(), missing.build());
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.errors.empty());
}

// ---------------------------------------------------------------------
// Determinism: same seed => byte-identical artifacts
// ---------------------------------------------------------------------

/** One full mini-run producing both artifacts, like ObsSession does. */
std::pair<std::string, std::string>
artifactsForSeed(std::uint64_t seed)
{
    resetGlobalObsState();
    obs::setSampleInterval(500);
    const auto evs = tracedSpecRun(seed);

    const std::string chrome = obs::toChromeTraceJson(evs);

    obs::JsonReport report("determinism");
    report.setConfig("seed",
                     Value(static_cast<std::int64_t>(seed)));
    report.addSection("counters",
                      obs::counterSnapshotValue(obs::counters()));
    report.addSection("critical_path",
                      obs::toValue(obs::analyzeTrace(evs)));
    ValueArray series;
    for (const auto& s : obs::samplerArchive().series())
        series.push_back(obs::toValue(s));
    report.addSection("samplers", Value(std::move(series)));
    const std::string json = obs::toJson(report.build());
    resetGlobalObsState();
    return {chrome, json};
}

TEST(Determinism, SameSeedYieldsByteIdenticalTraceAndReport)
{
    const auto first = artifactsForSeed(42);
    const auto second = artifactsForSeed(42);
    EXPECT_EQ(first.first, second.first);   // Chrome trace JSON
    EXPECT_EQ(first.second, second.second); // run report JSON
    EXPECT_NE(first.first.find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(first.second.find("critical_path"),
              std::string::npos);
}

TEST(Determinism, DifferentSeedsYieldDifferentReports)
{
    const auto a = artifactsForSeed(42);
    const auto b = artifactsForSeed(43);
    EXPECT_NE(a.second, b.second);
}

} // namespace
} // namespace specfaas
