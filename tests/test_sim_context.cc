/**
 * @file
 * SimContext unit + regression tests.
 *
 * The headline regression: running the same application twice in one
 * process used to need resetIdsForTest() (and manual trace/counter
 * clears), because ids and observability sinks were process globals
 * that bled across simulations. With per-simulation contexts, two
 * runs against fresh contexts are byte-identical with no resets.
 *
 * The rest pins the contracts the parallel harness builds on: fresh
 * contexts start empty, forTask() mirrors observability config and
 * hands out disjoint id blocks, and mergeInto() in submission order
 * reproduces the serial artifacts (which runSimTasks() then relies on
 * for job-count-independent output).
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "fuzz_apps.hh"
#include "obs/trace_export.hh"
#include "sim/sim_context.hh"

namespace specfaas {
namespace {

SpecConfig
aggressiveConfig()
{
    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;
    return aggressive;
}

Application
fuzzApp(std::uint64_t seed)
{
    fuzz::AppFuzzer fuzzer(seed * 2654435761ull + 101);
    return fuzzer.explicitApp();
}

/** One traced run of @p app against a fresh private context. */
std::string
tracedRunJson(const Application& app)
{
    SimContext context;
    context.trace().enable(1u << 16);
    fuzz::runApp(app, true, aggressiveConfig(), 17, 6, &context);
    return obs::toChromeTraceJson(context.trace().snapshot());
}

// ---------------------------------------------------------------------
// The id-bleed regression.
// ---------------------------------------------------------------------

TEST(SimContext, RepeatedRunsAreByteIdenticalWithoutResets)
{
    // Two runs of the same app in one process, no resetIdsForTest(),
    // no global clears between them: with per-run contexts the traces
    // (which embed invocation/instance ids as pids/tids) match
    // byte-for-byte. Before SimContext the second run continued the
    // global id sequences and the traces diverged.
    const Application app = fuzzApp(3);
    const std::string first = tracedRunJson(app);
    const std::string second = tracedRunJson(app);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(SimContext, ConcurrentSimulationsDoNotShareIds)
{
    // Two interleaved platforms on separate contexts draw independent
    // id sequences; on the old globals the second platform's first
    // invocation id depended on how many the first had already drawn.
    SimContext a;
    SimContext b;
    EXPECT_EQ(a.nextInvocationId(), 1u);
    EXPECT_EQ(b.nextInvocationId(), 1u);
    EXPECT_EQ(a.nextInvocationId(), 2u);
    EXPECT_EQ(b.nextInstanceId(), 1u);
    EXPECT_EQ(a.nextInstanceId(), 1u);
}

// ---------------------------------------------------------------------
// Fresh-context and reset() contracts (counter/series bleed audit).
// ---------------------------------------------------------------------

TEST(SimContext, FreshContextStartsEmpty)
{
    // Run a full simulation against one context, then check a fresh
    // context sees none of it: zero counters, no sampler series, no
    // trace, ids from the start.
    SimContext used;
    fuzz::runApp(fuzzApp(5), true, aggressiveConfig(), 17, 4, &used);
    EXPECT_GT(used.counters().entryCount(), 0u);

    SimContext fresh;
    EXPECT_EQ(fresh.counters().entryCount(), 0u);
    EXPECT_TRUE(fresh.counters().snapshot().empty());
    EXPECT_TRUE(fresh.samplerArchive().series().empty());
    EXPECT_EQ(fresh.samplerArchive().dropped(), 0u);
    EXPECT_FALSE(fresh.trace().enabled());
    EXPECT_EQ(fresh.trace().size(), 0u);
    EXPECT_EQ(fresh.sampleInterval(), 0u);
    EXPECT_EQ(fresh.nextInvocationId(), 1u);
}

TEST(SimContext, ResetRestoresTheEmptyState)
{
    SimContext context;
    context.trace().enable(64);
    context.setSampleInterval(123);
    fuzz::runApp(fuzzApp(5), true, aggressiveConfig(), 17, 4,
                 &context);
    EXPECT_GT(context.counters().entryCount(), 0u);
    EXPECT_GT(context.trace().size(), 0u);

    context.reset();
    EXPECT_EQ(context.counters().entryCount(), 0u);
    EXPECT_FALSE(context.trace().enabled());
    EXPECT_EQ(context.trace().size(), 0u);
    EXPECT_TRUE(context.samplerArchive().series().empty());
    EXPECT_EQ(context.sampleInterval(), 0u);
    EXPECT_EQ(context.nextInvocationId(), 1u);
}

// ---------------------------------------------------------------------
// forTask() and mergeInto().
// ---------------------------------------------------------------------

TEST(SimContext, ForTaskMirrorsObservabilityConfig)
{
    SimContext session;
    session.trace().enable(512);
    session.setSampleInterval(777);

    auto task = SimContext::forTask(session, 0);
    EXPECT_TRUE(task->trace().enabled());
    EXPECT_EQ(task->trace().capacity(), 512u);
    EXPECT_EQ(task->sampleInterval(), 777u);

    SimContext quiet;
    auto dark = SimContext::forTask(quiet, 0);
    EXPECT_FALSE(dark->trace().enabled());
    EXPECT_EQ(dark->sampleInterval(), 0u);
}

TEST(SimContext, ForTaskIdBlocksAreDisjoint)
{
    SimContext session;
    auto t0 = SimContext::forTask(session, 0);
    auto t1 = SimContext::forTask(session, 1);
    const std::uint64_t block = 1ull << SimContext::kTaskIdBits;
    EXPECT_EQ(t0->nextInvocationId(), block + 1);
    EXPECT_EQ(t1->nextInvocationId(), 2 * block + 1);
    EXPECT_EQ(t0->nextInstanceId(), block + 1);
    // The session's own ids stay below every task block.
    EXPECT_EQ(session.nextInvocationId(), 1u);
}

TEST(SimContext, MergeInSubmissionOrderReproducesSerialState)
{
    // Serial reference: both "tasks" record into one context.
    SimContext serial;
    serial.trace().enable(64);
    serial.trace().instant("t", "a0", 1, 1, 1);
    serial.trace().instant("t", "a1", 2, 1, 1);
    serial.counters().add("x", 2);
    serial.trace().instant("t", "b0", 3, 2, 2);
    serial.counters().add("x", 3);
    serial.counters().add("y", 1);

    // Parallel shape: two task contexts merged in submission order.
    SimContext session;
    session.trace().enable(64);
    auto t0 = SimContext::forTask(session, 0);
    t0->trace().instant("t", "a0", 1, 1, 1);
    t0->trace().instant("t", "a1", 2, 1, 1);
    t0->counters().add("x", 2);
    auto t1 = SimContext::forTask(session, 1);
    t1->trace().instant("t", "b0", 3, 2, 2);
    t1->counters().add("x", 3);
    t1->counters().add("y", 1);
    t0->mergeInto(session);
    t1->mergeInto(session);

    EXPECT_EQ(obs::toChromeTraceJson(session.trace().snapshot()),
              obs::toChromeTraceJson(serial.trace().snapshot()));
    EXPECT_EQ(session.counters().snapshot(),
              serial.counters().snapshot());
}

TEST(SimContext, MergeCarriesTraceDrops)
{
    // A 4-slot session ring absorbing 3+3 events keeps the newest 4
    // and counts 2 dropped — exactly what serial recording of the
    // same 6 events into a 4-slot ring reports.
    SimContext session;
    session.trace().enable(4);
    auto t0 = SimContext::forTask(session, 0);
    auto t1 = SimContext::forTask(session, 1);
    for (int i = 0; i < 3; ++i) {
        t0->trace().instant("t", "e", static_cast<Tick>(i), 1, 1);
        t1->trace().instant("t", "e", static_cast<Tick>(10 + i), 1, 1);
    }
    t0->mergeInto(session);
    t1->mergeInto(session);
    EXPECT_EQ(session.trace().size(), 4u);
    EXPECT_EQ(session.trace().dropped(), 2u);
    const auto events = session.trace().snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().ts, 2u);
    EXPECT_EQ(events.back().ts, 12u);
}

// ---------------------------------------------------------------------
// runSimTasks(): job-count independence, end to end.
// ---------------------------------------------------------------------

/** Summary of a batch run: per-task outcomes + merged artifacts. */
struct BatchArtifacts
{
    std::vector<std::uint64_t> fingerprints;
    std::string traceJson;
    std::string counterTable;
};

BatchArtifacts
runBatch(std::size_t jobs)
{
    SimContext session;
    session.trace().enable(1u << 14);
    std::vector<std::function<std::uint64_t(SimContext&)>> tasks;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        tasks.push_back([seed](SimContext& context) {
            const fuzz::Outcome out =
                fuzz::runApp(fuzzApp(seed), true, aggressiveConfig(),
                             17, 5, &context);
            return out.fingerprint;
        });
    }
    BatchArtifacts artifacts;
    artifacts.fingerprints =
        runSimTasks<std::uint64_t>(jobs, std::move(tasks), &session);
    artifacts.traceJson =
        obs::toChromeTraceJson(session.trace().snapshot());
    artifacts.counterTable = session.counters().table();
    return artifacts;
}

TEST(SimContext, RunSimTasksIsJobCountIndependent)
{
    const BatchArtifacts serial = runBatch(1);
    const BatchArtifacts parallel = runBatch(4);
    EXPECT_EQ(serial.fingerprints, parallel.fingerprints);
    ASSERT_FALSE(serial.traceJson.empty());
    EXPECT_EQ(serial.traceJson, parallel.traceJson);
    EXPECT_EQ(serial.counterTable, parallel.counterTable);
}

TEST(SimContext, RunSimTasksPropagatesTaskFailure)
{
    SimContext session;
    std::vector<std::function<int(SimContext&)>> tasks;
    tasks.push_back([](SimContext&) { return 1; });
    tasks.push_back([](SimContext&) -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(runSimTasks<int>(2, std::move(tasks), &session),
                 std::runtime_error);
}

} // namespace
} // namespace specfaas
