/** @file Unit tests for nodes, core scheduling, and containers. */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "sim/simulation.hh"

namespace specfaas {
namespace {

TEST(Node, RunsTaskForDuration)
{
    Simulation sim;
    Node node(sim, 0, 2);
    bool done = false;
    node.submit(100, [&]() { done = true; });
    EXPECT_EQ(node.busyCores(), 1u);
    sim.events().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(node.busyCores(), 0u);
}

TEST(Node, QueuesBeyondCoreCount)
{
    Simulation sim;
    Node node(sim, 0, 1);
    std::vector<int> order;
    node.submit(100, [&]() { order.push_back(1); });
    node.submit(100, [&]() { order.push_back(2); });
    EXPECT_EQ(node.queueLength(), 1u);
    sim.events().run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.now(), 200); // serialized on the single core
}

TEST(Node, ParallelismUsesAllCores)
{
    Simulation sim;
    Node node(sim, 0, 4);
    int done = 0;
    for (int i = 0; i < 4; ++i)
        node.submit(100, [&]() { ++done; });
    sim.events().run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(sim.now(), 100); // all in parallel
}

TEST(Node, AbortQueuedTaskNeverRuns)
{
    Simulation sim;
    Node node(sim, 0, 1);
    node.submit(100, []() {});
    bool ran = false;
    const ComputeTaskId second = node.submit(100, [&]() { ran = true; });
    EXPECT_TRUE(node.abort(second, 0));
    sim.events().run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Node, AbortRunningTaskFreesCoreAfterOverhead)
{
    Simulation sim;
    Node node(sim, 0, 1);
    bool first_ran = false;
    const ComputeTaskId id = node.submit(1000, [&]() { first_ran = true; });
    bool second_ran = false;
    node.submit(10, [&]() { second_ran = true; });
    EXPECT_TRUE(node.abort(id, 5)); // kill overhead 5 ticks
    sim.events().run();
    EXPECT_FALSE(first_ran);
    EXPECT_TRUE(second_ran);
    EXPECT_EQ(sim.now(), 15); // 5 kill + 10 run
}

TEST(Node, AbortUnknownTaskIsFalse)
{
    Simulation sim;
    Node node(sim, 0, 1);
    EXPECT_FALSE(node.abort(42, 0));
}

TEST(Node, UtilizationIntegral)
{
    Simulation sim;
    Node node(sim, 0, 2);
    node.resetUtilization();
    node.submit(100, []() {});
    sim.events().run();
    sim.events().runUntil(200);
    // One of two cores busy for 100 of 200 ticks = 25%.
    EXPECT_NEAR(node.utilization(), 0.25, 1e-9);
}

TEST(ContainerPool, WarmAcquireIsFast)
{
    Simulation sim;
    Cluster cluster(sim, ClusterConfig{});
    cluster.containers().prewarm("f", 1);
    Tick ready_at = -1;
    cluster.containers().acquire("f", [&](Container& c,
                                          const AcquireTiming& t) {
        ready_at = sim.now();
        EXPECT_EQ(t.containerCreation, 0);
        EXPECT_EQ(c.function(), "f");
    });
    sim.events().run();
    EXPECT_EQ(ready_at, cluster.config().handlerForkOverhead);
    EXPECT_EQ(cluster.containers().warmStarts(), 1u);
    EXPECT_EQ(cluster.containers().coldStarts(), 0u);
}

TEST(ContainerPool, ColdAcquirePaysCreation)
{
    Simulation sim;
    Cluster cluster(sim, ClusterConfig{});
    Tick ready_at = -1;
    AcquireTiming timing;
    cluster.containers().acquire("g", [&](Container&,
                                          const AcquireTiming& t) {
        ready_at = sim.now();
        timing = t;
    });
    sim.events().run();
    EXPECT_EQ(timing.containerCreation,
              cluster.config().containerCreation);
    EXPECT_EQ(timing.runtimeSetup, cluster.config().runtimeSetup);
    EXPECT_EQ(ready_at, timing.total());
    EXPECT_EQ(cluster.containers().coldStarts(), 1u);
}

TEST(ContainerPool, ReleaseEnablesWarmReuse)
{
    Simulation sim;
    Cluster cluster(sim, ClusterConfig{});
    Container* first = nullptr;
    cluster.containers().acquire("f", [&](Container& c,
                                          const AcquireTiming&) {
        first = &c;
    });
    sim.events().run();
    cluster.containers().release(*first);
    Container* second = nullptr;
    cluster.containers().acquire("f", [&](Container& c,
                                          const AcquireTiming&) {
        second = &c;
    });
    sim.events().run();
    EXPECT_EQ(first, second);
    EXPECT_EQ(cluster.containers().coldStarts(), 1u);
    EXPECT_EQ(cluster.containers().warmStarts(), 1u);
}

TEST(ContainerPool, DestroyForcesColdStartNextTime)
{
    Simulation sim;
    Cluster cluster(sim, ClusterConfig{});
    cluster.containers().prewarm("f", 1);
    Container* c = nullptr;
    cluster.containers().acquire("f", [&](Container& got,
                                          const AcquireTiming&) {
        c = &got;
    });
    sim.events().run();
    cluster.containers().destroy(*c);
    EXPECT_EQ(cluster.containers().containerCount("f"), 0u);
    cluster.containers().acquire("f",
                                 [](Container&, const AcquireTiming&) {});
    sim.events().run();
    EXPECT_EQ(cluster.containers().coldStarts(), 1u);
}

TEST(Cluster, GeometryAndUtilization)
{
    Simulation sim;
    ClusterConfig config;
    config.numNodes = 3;
    config.coresPerNode = 4;
    Cluster cluster(sim, config);
    EXPECT_EQ(cluster.totalCores(), 12u);
    EXPECT_EQ(cluster.nodes().size(), 3u);
    cluster.resetUtilization();
    cluster.node(0).submit(100, []() {});
    sim.events().run();
    sim.events().runUntil(100);
    // 1 of 12 cores busy the whole window.
    EXPECT_NEAR(cluster.utilization(), 1.0 / 12.0, 1e-9);
}

TEST(Cluster, ControllerStationIsSeparate)
{
    Simulation sim;
    Cluster cluster(sim, ClusterConfig{});
    EXPECT_EQ(cluster.controller().cores(),
              cluster.config().controllerThreads);
    cluster.controller().submit(10, []() {});
    EXPECT_EQ(cluster.controller().busyCores(), 1u);
    // Worker utilization unaffected by controller work.
    EXPECT_EQ(cluster.node(0).busyCores(), 0u);
}

} // namespace
} // namespace specfaas
