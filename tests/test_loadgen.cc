/**
 * @file
 * Tests for the trace-driven load layer: arrival processes (rate
 * statistics, shapes, determinism, validation), the multi-tenant
 * traffic mix (per-tenant input-stream independence), and the
 * LoadDriver end-to-end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "loadgen/load_driver.hh"
#include "sim/sim_context.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

/** Mean achieved rate over @p n draws, in rps. */
double
measuredRps(ArrivalProcess& process, std::size_t n)
{
    Tick now = 0;
    for (std::size_t i = 0; i < n; ++i)
        now += process.nextGap(now);
    return static_cast<double>(n) /
           (static_cast<double>(now) / static_cast<double>(kSecond));
}

TEST(Arrival, PoissonMatchesConfiguredRate)
{
    ArrivalSpec spec;
    spec.rps = 200.0;
    ArrivalProcess process(spec, Rng(7));
    const double rps = measuredRps(process, 20000);
    EXPECT_NEAR(rps, 200.0, 200.0 * 0.05);
}

TEST(Arrival, DiurnalOscillatesAroundMeanRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Diurnal;
    spec.rps = 100.0;
    spec.diurnalAmplitude = 0.5;
    spec.diurnalPeriod = 4 * kSecond;
    ArrivalProcess process(spec, Rng(7));
    process.nextGap(0); // anchor the origin
    // Quarter period = sinusoid peak; three quarters = trough.
    EXPECT_NEAR(process.rateAt(kSecond), 150.0, 1.0);
    EXPECT_NEAR(process.rateAt(3 * kSecond), 50.0, 1.0);
    // Long-run average still approximates the configured rate.
    const double rps = measuredRps(process, 20000);
    EXPECT_NEAR(rps, 100.0, 100.0 * 0.10);
}

TEST(Arrival, BurstyAveragesToConfiguredRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Bursty;
    spec.rps = 100.0;
    spec.burstMultiplier = 4.0;
    spec.burstDuty = 0.2;
    spec.meanBurstLen = 100 * kMillisecond;
    ArrivalProcess process(spec, Rng(7));
    process.nextGap(0);
    // Calm rate is depressed so that bursts average out: with duty
    // 0.2 and multiplier 4, calm = rps / 1.6.
    const double calm = process.rateAt(0) / (process.inBurst() ? 4 : 1);
    EXPECT_NEAR(calm, 100.0 / 1.6, 1.0);
    const double rps = measuredRps(process, 40000);
    EXPECT_NEAR(rps, 100.0, 100.0 * 0.15);
}

TEST(Arrival, RampShapeScalesRateOverHorizon)
{
    ArrivalSpec spec;
    spec.rps = 100.0;
    spec.shape = ArrivalSpec::Shape::Ramp;
    spec.shapeFactor = 3.0;
    spec.shapeHorizon = 10 * kSecond;
    ArrivalProcess process(spec, Rng(7));
    process.nextGap(0);
    EXPECT_NEAR(process.rateAt(0), 100.0, 1.0);
    EXPECT_NEAR(process.rateAt(5 * kSecond), 200.0, 1.0);
    EXPECT_NEAR(process.rateAt(10 * kSecond), 300.0, 1.0);
    EXPECT_NEAR(process.rateAt(20 * kSecond), 300.0, 1.0); // capped
}

TEST(Arrival, StepShapeSwitchesAtHorizon)
{
    ArrivalSpec spec;
    spec.rps = 100.0;
    spec.shape = ArrivalSpec::Shape::Step;
    spec.shapeFactor = 2.0;
    spec.shapeHorizon = 5 * kSecond;
    ArrivalProcess process(spec, Rng(7));
    process.nextGap(0);
    EXPECT_NEAR(process.rateAt(4 * kSecond), 100.0, 1.0);
    EXPECT_NEAR(process.rateAt(6 * kSecond), 200.0, 1.0);
}

TEST(Arrival, SameSeedSameGapSequence)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Bursty;
    spec.rps = 300.0;
    auto draw = [&spec](std::uint64_t seed) {
        ArrivalProcess process(spec, Rng(seed));
        std::vector<Tick> gaps;
        Tick now = 0;
        for (int i = 0; i < 500; ++i) {
            const Tick gap = process.nextGap(now);
            gaps.push_back(gap);
            now += gap;
        }
        return gaps;
    };
    EXPECT_EQ(draw(11), draw(11));
    EXPECT_NE(draw(11), draw(12));
}

TEST(Arrival, GapsAreAlwaysPositive)
{
    ArrivalSpec spec;
    spec.rps = 1e6; // pathologically fast
    ArrivalProcess process(spec, Rng(7));
    Tick now = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick gap = process.nextGap(now);
        EXPECT_GE(gap, 1);
        now += gap;
    }
}

using ArrivalDeath = ::testing::Test;

TEST(ArrivalDeath, NonPositiveRateDies)
{
    ArrivalSpec spec;
    spec.rps = 0.0;
    EXPECT_DEATH(ArrivalProcess(spec, Rng(1)), "rps");
}

TEST(ArrivalDeath, AmplitudeAtOneDies)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Diurnal;
    spec.diurnalAmplitude = 1.0;
    EXPECT_DEATH(ArrivalProcess(spec, Rng(1)), "mplitude");
}

TEST(ArrivalDeath, DutyOutsideUnitIntervalDies)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Bursty;
    spec.burstDuty = 1.0;
    EXPECT_DEATH(ArrivalProcess(spec, Rng(1)), "uty");
}

TEST(TrafficMix, PickFollowsWeights)
{
    auto registry = makeAllSuites();
    const Application& login = registry->get("Login");
    const Application& banking = registry->get("Banking");
    Rng base(5);
    TrafficMix mix({{&login, 9.0}, {&banking, 1.0}}, base);
    Rng pickRng(17);
    std::size_t heavy = 0;
    constexpr std::size_t kDraws = 5000;
    for (std::size_t i = 0; i < kDraws; ++i)
        heavy += mix.pick(pickRng) == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heavy) / kDraws, 0.9, 0.03);
}

TEST(TrafficMix, TenantStreamsAreInterleavingIndependent)
{
    auto registry = makeAllSuites();
    const Application& login = registry->get("Login");
    const Application& banking = registry->get("Banking");
    // Mix A draws tenant 0 back to back; mix B interleaves tenant 1
    // draws. Tenant 0's inputs must be identical either way.
    Rng baseA(5);
    TrafficMix mixA({{&login, 1.0}, {&banking, 1.0}}, baseA);
    Rng baseB(5);
    TrafficMix mixB({{&login, 1.0}, {&banking, 1.0}}, baseB);
    for (int k = 0; k < 20; ++k) {
        const Value a = mixA.drawInput(0);
        mixB.drawInput(1); // extra traffic on the other tenant
        const Value b = mixB.drawInput(0);
        EXPECT_EQ(a.toString(), b.toString()) << "draw " << k;
    }
}

using TrafficMixDeath = ::testing::Test;

TEST(TrafficMixDeath, EmptyMixDies)
{
    EXPECT_DEATH(
        {
            Rng base(1);
            TrafficMix mix({}, base);
        },
        "tenant");
}

TEST(TrafficMixDeath, NonPositiveWeightDies)
{
    auto registry = makeAllSuites();
    const Application& login = registry->get("Login");
    EXPECT_DEATH(
        {
            Rng base(1);
            TrafficMix mix({{&login, 0.0}}, base);
        },
        "weight");
}

/** Small two-tenant platform driven to completion. */
FleetLoadResult
driveSmallRun(std::uint64_t seed, SimContext* context = nullptr)
{
    auto registry = makeAllSuites();
    const Application& login = registry->get("Login");
    const Application& banking = registry->get("Banking");
    PlatformOptions options;
    options.seed = seed;
    options.context = context;
    FaasPlatform platform(options);
    platform.deploy(login);
    platform.deploy(banking);
    Rng base = platform.sim().forkRng();
    TrafficMix mix({{&login, 3.0}, {&banking, 1.0}}, base);
    ArrivalSpec arrivals;
    arrivals.kind = ArrivalSpec::Kind::Bursty;
    arrivals.rps = 200.0;
    return LoadDriver::run(platform, mix, arrivals, 60);
}

TEST(LoadDriver, AccountsEveryRequest)
{
    const FleetLoadResult result = driveSmallRun(3);
    EXPECT_EQ(result.submitted, 60u);
    EXPECT_EQ(result.completedCount() + result.rejected, 60u);
    EXPECT_GT(result.wallTime, 0);
    ASSERT_EQ(result.tenants.size(), 2u);
    std::size_t submitted = 0;
    std::size_t completed = 0;
    for (const TenantLoadStats& t : result.tenants) {
        EXPECT_EQ(t.completed, t.latenciesMs.size());
        submitted += t.submitted;
        completed += t.completed;
    }
    EXPECT_EQ(submitted, 60u);
    EXPECT_EQ(completed, result.completedCount());
    // The weighted mix leans 3:1 towards the first tenant.
    EXPECT_GT(result.tenants[0].submitted,
              result.tenants[1].submitted);
    // Percentiles are ordered on a non-empty run.
    EXPECT_LE(result.latencyPercentileMs(50.0),
              result.latencyPercentileMs(99.0));
}

TEST(LoadDriver, SameSeedIsByteEqual)
{
    const FleetLoadResult a = driveSmallRun(3);
    const FleetLoadResult b = driveSmallRun(3);
    EXPECT_EQ(a.latenciesMs, b.latenciesMs);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.wallTime, b.wallTime);
    const FleetLoadResult c = driveSmallRun(4);
    EXPECT_NE(a.latenciesMs, c.latenciesMs);
}

TEST(LoadDriver, ParallelTasksMatchSerial)
{
    // Two independent driven runs under runSimTasks must produce the
    // same results and the same merged zone profile at any job count.
    auto runBatch = [](std::size_t jobs) {
        SimContext session;
        std::vector<std::function<std::vector<double>(SimContext&)>>
            tasks;
        for (std::uint64_t seed : {7u, 8u}) {
            tasks.push_back([seed](SimContext& context) {
                return driveSmallRun(seed, &context).latenciesMs;
            });
        }
        return runSimTasks<std::vector<double>>(jobs,
                                                std::move(tasks),
                                                &session);
    };
    const auto serial = runBatch(1);
    const auto parallel = runBatch(8);
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace specfaas
