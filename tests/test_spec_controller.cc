/** @file Feature-level tests of the SpecFaaS speculative engine. */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "platform/platform.hh"
#include "specfaas/spec_controller.hh"
#include "workloads/app_helpers.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

/** Branch chain with a dominant direction set by the input field. */
Application
branchChain()
{
    Application app;
    app.name = "chain";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(condFunction("Ca", "b0", 5.0));
    app.functions.push_back(condFunction("Cb", "b0", 5.0));
    app.functions.push_back(worker("Cend", 5.0, [](const Env&) {
        return Value("done");
    }));
    app.functions.push_back(worker("Cfail", 2.0, [](const Env&) {
        return Value("failed");
    }));
    app.workflow = when(
        "Ca", when("Cb", task("Cend"), task("Cfail")), task("Cfail"));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.95));
        return v;
    };
    return app;
}

/** Sequence with memoizable intermediate values. */
Application
memoChain()
{
    Application app;
    app.name = "memo";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(worker("Ma", 10.0, [](const Env& e) {
        return Value(e.input.at("k").asInt() % 4);
    }));
    app.functions.push_back(worker("Mb", 10.0, [](const Env& e) {
        return Value(e.input.asInt() * 10);
    }));
    app.functions.push_back(worker("Mc", 10.0, [](const Env& e) {
        return Value(e.input.asInt() + 1);
    }));
    app.workflow = sequence({task("Ma"), task("Mb"), task("Mc")});
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["k"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{31}));
        return v;
    };
    return app;
}

std::unique_ptr<FaasPlatform>
specPlatform(const Application& app, SpecConfig config = {},
             std::size_t train = 20)
{
    PlatformOptions options;
    options.speculative = true;
    options.spec = config;
    options.seed = 7;
    auto platform = std::make_unique<FaasPlatform>(options);
    platform->deploy(app);
    platform->train(app, train);
    return platform;
}

double
meanResponseMs(FaasPlatform& platform, const Application& app, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        auto r = platform.invokeSync(
            app, app.inputGen(platform.inputRng()));
        total += ticksToMs(r.responseTime());
    }
    return total / n;
}

TEST(SpecController, BranchPredictionOverlapsChain)
{
    Application app = branchChain();
    auto spec = specPlatform(app);
    const double spec_ms = meanResponseMs(*spec, app, 30);

    PlatformOptions base_options;
    base_options.seed = 7;
    FaasPlatform base(base_options);
    base.deploy(app);
    base.train(app, 20);
    const double base_ms = meanResponseMs(base, app, 30);

    EXPECT_LT(spec_ms, base_ms / 2.0);
}

TEST(SpecController, MispredictionsAreSquashedNotWrong)
{
    Application app = branchChain();
    auto spec = specPlatform(app);
    // Force the rare direction: the prediction will be wrong, the
    // wrong path squashed, and the correct response produced.
    Value input = Value::object({{"b0", Value(false)}});
    auto r = spec->invokeSync(app, input);
    EXPECT_EQ(r.response.asString(), "failed");
    EXPECT_GT(spec->specController()->stats().controlMispredicts, 0u);
}

TEST(SpecController, MemoizationFeedsSuccessorsEarly)
{
    Application app = memoChain();
    auto spec = specPlatform(app, {}, 40);
    auto r = spec->invokeSync(
        app, app.inputGen(spec->inputRng()));
    EXPECT_GT(r.memoHits, 0u);
    // Response is correct regardless of speculation.
    const std::int64_t k = 0; // recompute expected from the app logic
    (void)k;
    EXPECT_TRUE(r.response.isInt());
}

TEST(SpecController, DataMispredictSquashesAndRecovers)
{
    // A function whose output depends on mutable global state: the
    // memoized output goes stale when the state changes.
    Application app;
    app.name = "stale";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    FunctionDef reader = worker("Sread", 5.0, [](const Env& e) {
        return Value(e.var("g").at("v").asInt());
    });
    reader.body.insert(reader.body.begin(),
                       Op::storageRead(
                           [](const Env&) { return std::string("gk"); },
                           "g"));
    app.functions.push_back(std::move(reader));
    app.functions.push_back(worker("Suse", 5.0, [](const Env& e) {
        return Value(e.input.asInt() * 2);
    }));
    app.workflow = sequence({task("Sread"), task("Suse")});
    app.inputGen = [](Rng&) { return Value::object({}); };
    app.seedStore = [](KvStore& store, Rng&) {
        store.put("gk", Value::object({{"v", Value(1)}}));
    };

    auto spec = specPlatform(app, {}, 10);
    auto r1 = spec->invokeSync(app, Value::object({}));
    EXPECT_EQ(r1.response.asInt(), 2);
    // Mutate the global state behind the memo table's back.
    spec->store().put("gk", Value::object({{"v", Value(5)}}));
    auto r2 = spec->invokeSync(app, Value::object({}));
    EXPECT_EQ(r2.response.asInt(), 10); // correct despite stale memo
    EXPECT_GT(spec->specController()->stats().dataMispredicts, 0u);
}

TEST(SpecController, SpeculationDisabledStillCorrect)
{
    SpecConfig config;
    config.speculation = false;
    Application app = memoChain();
    auto spec = specPlatform(app, config);
    auto r = spec->invokeSync(app, Value::object({{"k", Value(6)}}));
    EXPECT_EQ(r.response.asInt(), 21); // (6%4)*10+1
    EXPECT_EQ(r.speculativeLaunches, 0u);
}

TEST(SpecController, NonSpeculativeModeIsStillFasterThanBaseline)
{
    // The Sequence-Table fast dispatch alone removes the conductor
    // round trips (§IV).
    SpecConfig config;
    config.speculation = false;
    Application app = memoChain();
    auto spec = specPlatform(app, config);
    const double spec_ms = meanResponseMs(*spec, app, 20);
    PlatformOptions base_options;
    base_options.seed = 7;
    FaasPlatform base(base_options);
    base.deploy(app);
    base.train(app, 20);
    const double base_ms = meanResponseMs(base, app, 20);
    EXPECT_LT(spec_ms, base_ms);
}

TEST(SpecController, NonSpeculativeAnnotationBlocksEarlyLaunch)
{
    Application app = memoChain();
    app.functions[2].nonSpeculativeAnnotation = true; // Mc
    auto spec = specPlatform(app, {}, 40);
    auto before = spec->specController()->stats().speculativeLaunches;
    auto r = spec->invokeSync(app, Value::object({{"k", Value(1)}}));
    EXPECT_EQ(r.response.asInt(), 11);
    // Mb may speculate; Mc never does. At most one spec launch.
    auto after = spec->specController()->stats().speculativeLaunches;
    EXPECT_LE(after - before, 1u);
}

TEST(SpecController, PureFunctionSkipAvoidsExecution)
{
    Application app = memoChain();
    for (auto& f : app.functions)
        f.pureAnnotation = true;
    SpecConfig config;
    config.pureFunctionSkip = true;
    auto spec = specPlatform(app, config, 40);
    const auto before = spec->specController()->stats().pureSkips;
    auto r = spec->invokeSync(app, Value::object({{"k", Value(2)}}));
    EXPECT_EQ(r.response.asInt(), 21);
    EXPECT_GT(spec->specController()->stats().pureSkips, before);
}

TEST(SpecController, HttpDeferredUntilNonSpeculative)
{
    // The HTTP request sits in a speculatively-launched function; it
    // must not fire before the function turns non-speculative — and
    // must never fire on a squashed wrong path.
    Application app = branchChain();
    FunctionDef& cend = app.functions[2];
    cend.body.push_back(Op::http());
    auto spec = specPlatform(app);
    const auto deferred_before =
        spec->specController()->stats().deferredSideEffects;
    auto r = spec->invokeSync(app, Value::object({{"b0", Value(true)}}));
    EXPECT_EQ(r.response.asString(), "done");
    EXPECT_GT(spec->specController()->stats().deferredSideEffects,
              deferred_before);
}

TEST(SpecController, SquashMinimizerLearnsToStall)
{
    // Producer writes a per-request record; the consumer reads it.
    Application app;
    app.name = "raw";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    FunctionDef producer = worker("Rp", 8.0, fns::passInput());
    producer.body.push_back(Op::storageWrite(
        fns::keyOf("rec", "k"),
        [](const Env& e) { return e.input.at("k"); }));
    app.functions.push_back(std::move(producer));
    FunctionDef consumer = worker("Rc", 8.0, [](const Env& e) {
        return e.var("r");
    });
    consumer.body.insert(consumer.body.begin(),
                         Op::storageRead(fns::keyOf("rec", "k"), "r"));
    app.functions.push_back(std::move(consumer));
    app.workflow = sequence({task("Rp"), task("Rc")});
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["k"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{3}));
        return v;
    };

    auto spec = specPlatform(app, {}, 40);
    auto* controller = spec->specController();
    // The pattern was learned during training...
    EXPECT_GT(controller->squashMinimizer().patternCount(), 0u);
    // ...and now reads stall instead of squashing.
    const auto squashes_before = controller->stats().squashes;
    const auto stalls_before = controller->stats().stalledReads;
    for (int i = 0; i < 10; ++i) {
        (void)spec->invokeSync(app, app.inputGen(spec->inputRng()));
    }
    EXPECT_GT(controller->stats().stalledReads, stalls_before);
    EXPECT_EQ(controller->stats().squashes, squashes_before);
}

TEST(SpecController, SpecDepthLimitBoundsInFlightSpeculation)
{
    SpecConfig config;
    config.maxSpecDepth = 1;
    Application app = memoChain();
    auto one = specPlatform(app, config, 40);
    SpecConfig wide;
    wide.maxSpecDepth = 12;
    auto many = specPlatform(app, wide, 40);
    // Both are correct; the narrow window is slower or equal.
    const double ms_one = meanResponseMs(*one, app, 20);
    const double ms_many = meanResponseMs(*many, app, 20);
    EXPECT_GE(ms_one, ms_many * 0.99);
}

TEST(SpecController, ImplicitCalleePredictedAndAdopted)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("TcktApp");
    PlatformOptions options;
    options.speculative = true;
    options.seed = 3;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 30);
    auto r = platform.invokeSync(app, app.inputGen(platform.inputRng()));
    EXPECT_GT(r.speculativeLaunches, 0u);
    EXPECT_GT(r.memoHits, 0u);
    EXPECT_EQ(r.functionsExecuted, r.executedSequence.size());
}

TEST(SpecController, TablesSurviveAcrossInvocations)
{
    Application app = memoChain();
    auto spec = specPlatform(app, {}, 0);
    (void)spec->invokeSync(app, Value::object({{"k", Value(1)}}));
    const auto rows = spec->specController()->memoStore().totalRows();
    EXPECT_GT(rows, 0u);
    (void)spec->invokeSync(app, Value::object({{"k", Value(1)}}));
    // Second identical request hits the tables built by the first.
    EXPECT_GT(spec->specController()->memoStore().overallHitRate(), 0.0);
}

TEST(SpecController, RejectsWhenControllerBackedUp)
{
    PlatformOptions options;
    options.speculative = true;
    options.cluster.admissionQueueLimit = 0;
    FaasPlatform platform(options);
    Application app = memoChain();
    platform.deploy(app);
    for (std::uint32_t i = 0;
         i < platform.cluster().config().controllerThreads + 2; ++i) {
        platform.cluster().controller().submit(msToTicks(50.0), []() {});
    }
    bool rejected = false;
    platform.invoke(app, Value::object({{"k", Value(1)}}),
                    [&](InvocationResult r) { rejected = r.rejected; });
    platform.sim().events().run();
    EXPECT_TRUE(rejected);
}

/**
 * Branch app whose every handler snapshots the controller's live
 * generation-tagged slot handles into @p captured. The condition
 * function itself snapshots too, so captures happen on every path —
 * including runs where the speculated branch is squashed before its
 * handler body ever evaluates.
 */
Application
handleCaptureApp(std::shared_ptr<std::vector<SlotHandle>> captured,
                 std::shared_ptr<SpecController*> ctrl)
{
    const auto snap = [captured, ctrl]() {
        if (*ctrl != nullptr) {
            const auto hs = (*ctrl)->liveSlotHandles();
            captured->insert(captured->end(), hs.begin(), hs.end());
        }
    };
    Application app;
    app.name = "aba-spec";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(worker("Xc", 5.0, [snap](const Env& e) {
        snap();
        return e.input.at("b0");
    }));
    app.functions.push_back(worker("Xt", 5.0, [snap](const Env&) {
        snap();
        return Value("then");
    }));
    app.functions.push_back(worker("Xe", 5.0, [snap](const Env&) {
        snap();
        return Value("else");
    }));
    app.workflow = when("Xc", task("Xt"), task("Xe"));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.95));
        return v;
    };
    return app;
}

TEST(SpecController, StaleSlotHandlesMissAfterSquashRewalkAndCommit)
{
    // Handles captured mid-run — while speculation is in flight —
    // must miss once their slots are squashed (mispredicted branch),
    // re-walked, or committed, and must keep missing after later
    // invocations recycle the same indexes: the generation tag is
    // the ABA guard.
    auto captured = std::make_shared<std::vector<SlotHandle>>();
    auto ctrl = std::make_shared<SpecController*>(nullptr);
    Application app = handleCaptureApp(captured, ctrl);
    auto platform = specPlatform(app, {}, 30);
    *ctrl = &dynamic_cast<SpecController&>(platform->engine());

    // Training biased b0 heavily true; b0=false mispredicts the
    // then-branch, squashing the speculated Xt and re-walking to Xe.
    Value wrong = Value::object({});
    wrong["b0"] = Value(false);
    InvocationResult r = platform->invokeSync(app, std::move(wrong));
    EXPECT_EQ(r.response.asString(), "else");
    EXPECT_GT(r.squashes, 0u) << "misprediction should have squashed";
    ASSERT_FALSE(captured->empty());
    EXPECT_EQ((*ctrl)->liveInvocations(), 0u);
    for (SlotHandle h : *captured) {
        EXPECT_TRUE(static_cast<bool>(h));
        EXPECT_FALSE((*ctrl)->slotHandleResolves(h))
            << "slot " << h.index << "@" << h.gen
            << " should be stale after the run";
    }

    // Drive more invocations through the recycled indexes. The old
    // handles must still miss even while a *new* occupant of the
    // same index is live — and that occupant's generation is
    // strictly newer.
    const std::vector<SlotHandle> old = *captured;
    captured->clear();
    for (int i = 0; i < 10; ++i)
        platform->invokeSync(app, app.inputGen(platform->inputRng()));
    ASSERT_FALSE(captured->empty());
    bool reused = false;
    for (SlotHandle h : old) {
        EXPECT_FALSE((*ctrl)->slotHandleResolves(h));
        for (SlotHandle fresh : *captured) {
            if (fresh.index != h.index)
                continue;
            reused = true;
            EXPECT_GT(fresh.gen, h.gen)
                << "recycled index must carry a newer generation";
        }
    }
    EXPECT_TRUE(reused)
        << "expected later invocations to recycle slot indexes";
}

TEST(SpecController, StaleSlotHandlesMissAfterGiveUpTeardown)
{
    // Retries exhausted: failInvocation tears the whole pipeline
    // down. Handles captured before the give-up must miss afterwards
    // exactly like squash/commit ones do.
    auto captured = std::make_shared<std::vector<SlotHandle>>();
    auto ctrl = std::make_shared<SpecController*>(nullptr);
    Application app = handleCaptureApp(captured, ctrl);

    PlatformOptions options;
    options.speculative = true;
    options.seed = 7;
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.function = "Xe";
    rule.phase = CrashPhase::MidExecution;
    rule.budget = kUnlimitedBudget;
    rule.probability = 1.0;
    options.faultPlan.rules.push_back(rule);
    options.faultPlan.maxAttempts = 2;
    auto platform = std::make_unique<FaasPlatform>(options);
    platform->deploy(app);
    *ctrl = &dynamic_cast<SpecController&>(platform->engine());

    // b0=false routes onto Xe, which crashes on every attempt until
    // the controller gives up.
    Value input = Value::object({});
    input["b0"] = Value(false);
    platform->invokeSync(app, std::move(input));
    ASSERT_FALSE(captured->empty());
    EXPECT_EQ((*ctrl)->liveInvocations(), 0u)
        << "give-up must fully tear the invocation down";
    for (SlotHandle h : *captured)
        EXPECT_FALSE((*ctrl)->slotHandleResolves(h))
            << "slot " << h.index << "@" << h.gen
            << " survived the give-up teardown";
}

/**
 * Sixteen-deep pass-through chain behind one heavily biased branch:
 * with a wide speculation window the whole chain launches behind the
 * unresolved branch, so a wrong prediction squashes the entire
 * speculated suffix in one cascade.
 */
Application
deepCascadeApp()
{
    Application app;
    app.name = "cascade";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    // Slow condition, fast chain: the chain runs deep behind the
    // still-unresolved branch before the verdict arrives.
    app.functions.push_back(condFunction("Dc", "b0", 60.0));
    std::vector<WorkflowNode> chain;
    for (int i = 0; i < 16; ++i) {
        const std::string name = strFormat("D%02d", i);
        app.functions.push_back(worker(name, 2.0, fns::passInput()));
        chain.push_back(task(name));
    }
    app.functions.push_back(worker("Dalt", 3.0, [](const Env&) {
        return Value("alt");
    }));
    app.workflow = when("Dc", sequence(std::move(chain)), task("Dalt"));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.97));
        return v;
    };
    return app;
}

TEST(SpecController, DeepCascadeSquashDrainsCleanly)
{
    // Regression for the squash path's cost and bookkeeping on deep
    // victim sets: a single mispredicted branch kills a 16-deep
    // speculated suffix. The squash loop's internal invariants — the
    // tail-identity suffix pop and the incremental live-speculation
    // counter — assert on every victim, so a bookkeeping break dies
    // here rather than producing a silently wrong pipeline.
    Application app = deepCascadeApp();
    SpecConfig config;
    config.maxSpecDepth = 32;
    auto spec = specPlatform(app, config, 30);
    auto* controller = spec->specController();

    Value wrong = Value::object({});
    wrong["b0"] = Value(false);
    InvocationResult r = spec->invokeSync(app, std::move(wrong));
    EXPECT_EQ(r.response.asString(), "alt");
    EXPECT_GT(r.squashes, 0u) << "misprediction must squash";
    EXPECT_GE(r.speculativeLaunches, 8u)
        << "the chain should have speculated deep behind the branch";
    EXPECT_EQ(controller->liveInvocations(), 0u);
    EXPECT_TRUE(controller->liveSlotHandles().empty())
        << "a deep cascade must not leak pipeline slots";

    // The structures stay coherent for later traffic through the
    // same (recycled) pipeline state.
    for (int i = 0; i < 5; ++i) {
        auto ok = spec->invokeSync(app, app.inputGen(spec->inputRng()));
        EXPECT_FALSE(ok.response.isNull());
    }
    EXPECT_EQ(controller->liveInvocations(), 0u);
}

/**
 * Implicit two-level call tree — root calls a middle service which
 * calls a leaf — whose middle tier crashes mid-execution at random.
 * Crash recovery squashes the adopted callee (and any adopted
 * descendants) and relaunches it under the surviving caller; with
 * trained callee speculation the relaunch interleaves with squashed
 * pending-callee predictions, the path the pipeline suffix-pop
 * invariant must absorb.
 */
Application
adoptedRelaunchApp()
{
    Application app;
    app.name = "adopt";
    app.suite = "test";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "ARoot";

    FunctionDef root;
    root.name = "ARoot";
    root.body.push_back(Op::compute(msToTicks(3.0)));
    root.body.push_back(Op::call("AMid", fns::inputField("k"), "m"));
    root.body.push_back(Op::call("ATail", fns::inputField("k"), "t"));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["m"] = e.var("m");
        out["t"] = e.var("t");
        return out;
    };
    app.functions.push_back(std::move(root));

    // Speculative launches may run on predicted (possibly null)
    // inputs before validation, so every handler tolerates them —
    // as the real workload suites do.
    const auto intOr = [](const Value& v, std::int64_t fb) {
        return v.isInt() ? v.asInt() : fb;
    };
    FunctionDef mid;
    mid.name = "AMid";
    mid.body.push_back(Op::compute(msToTicks(4.0)));
    mid.body.push_back(Op::call("ALeaf", fns::passInput(), "l"));
    mid.body.push_back(Op::compute(msToTicks(4.0)));
    mid.output = [intOr](const Env& e) {
        return Value(intOr(e.var("l"), 0) + 1);
    };
    app.functions.push_back(std::move(mid));

    app.functions.push_back(worker("ALeaf", 5.0, [intOr](const Env& e) {
        return Value(intOr(e.input, 0) * 2);
    }));
    app.functions.push_back(worker("ATail", 4.0, [intOr](const Env& e) {
        return Value(intOr(e.input, 0) + 100);
    }));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["k"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{3}));
        return v;
    };
    return app;
}

TEST(SpecController, AdoptedCalleeRelaunchAfterMidExecutionCrash)
{
    Application app = adoptedRelaunchApp();
    PlatformOptions options;
    options.speculative = true;
    options.seed = 11;
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.function = "AMid";
    rule.phase = CrashPhase::MidExecution;
    rule.budget = kUnlimitedBudget;
    rule.probability = 0.1;
    options.faultPlan.rules.push_back(rule);
    options.faultPlan.maxAttempts = 8;
    auto platform = std::make_unique<FaasPlatform>(options);
    platform->deploy(app);
    platform->train(app, 30);
    auto* controller = platform->specController();

    // Trained call graph: AMid / ATail / ALeaf launch speculatively
    // and are adopted when the real call arrives; the random crashes
    // then tear adopted slots out mid-flight and relaunch them.
    ASSERT_GT(controller->stats().speculativeLaunches, 0u)
        << "callee speculation never engaged; the test is vacuous";
    for (int i = 0; i < 25; ++i) {
        Value input = Value::object({});
        const std::int64_t k = i % 4;
        input["k"] = Value(k);
        InvocationResult r = platform->invokeSync(app, std::move(input));
        ASSERT_TRUE(r.response.isObject()) << r.response.toString();
        ASSERT_TRUE(r.response.at("m").isInt()) << r.response.toString();
        ASSERT_EQ(r.response.at("m").asInt(), k * 2 + 1)
            << "crash recovery produced a wrong callee result";
        ASSERT_EQ(r.response.at("t").asInt(), k + 100);
        EXPECT_EQ(controller->liveInvocations(), 0u);
    }
    EXPECT_GT(platform->faultInjector()->injected(
                  FaultKind::ContainerCrash), 0u)
        << "no crash ever fired; the test is vacuous";
    EXPECT_GT(controller->stats().squashes, 0u)
        << "crash recovery should squash the adopted subtree";
    EXPECT_TRUE(controller->liveSlotHandles().empty());
}

} // namespace
} // namespace specfaas
