/** @file Tests of the trace generators and analyzers. */

#include <gtest/gtest.h>

#include "traces/azure_blob.hh"
#include "traces/cpu_utilization.hh"
#include "traces/determinism.hh"

namespace specfaas {
namespace {

TEST(AzureBlob, GeneratorHitsConfiguredMarginals)
{
    BlobTraceConfig config;
    // Scaled down with the blob universe in proportion, so the
    // marginals remain jointly satisfiable.
    config.accesses = 120000;
    config.blobs = 18000;
    auto trace = generateBlobTrace(config);
    auto stats = analyzeBlobTrace(trace);
    EXPECT_NEAR(stats.writeFraction, 0.23, 0.03);
    EXPECT_NEAR(stats.readOnlyBlobFraction, 2.0 / 3.0, 0.06);
    EXPECT_GT(stats.writableUnder10Writes, 0.99);
    EXPECT_NEAR(stats.writeReadGapOver1s, 0.96, 0.04);
    // The >10 s tail truncates a little at reduced horizon length.
    EXPECT_NEAR(stats.writeReadGapOver10s, 0.27, 0.09);
}

TEST(AzureBlob, TraceIsTimeSorted)
{
    BlobTraceConfig config;
    config.accesses = 20000;
    auto trace = generateBlobTrace(config);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_LE(trace[i - 1].time, trace[i].time);
}

TEST(AzureBlob, AnalyzerOnEmptyTrace)
{
    auto stats = analyzeBlobTrace({});
    EXPECT_EQ(stats.accesses, 0u);
}

TEST(AzureBlob, AnalyzerCountsKnownPattern)
{
    std::vector<BlobAccess> trace = {
        {0, 1, true},                 // write blob 1
        {2 * kSecond, 1, false},      // read 2 s later (> 1 s)
        {3 * kSecond, 2, false},      // read-only blob 2
        {4 * kSecond, 1, true},       // second write
        {4 * kSecond + 100, 1, false} // read 0.1 ms later (< 1 s)
    };
    auto stats = analyzeBlobTrace(trace);
    EXPECT_DOUBLE_EQ(stats.writeFraction, 0.4);
    EXPECT_DOUBLE_EQ(stats.readOnlyBlobFraction, 0.5);
    EXPECT_DOUBLE_EQ(stats.writeReadGapOver1s, 0.5);
    EXPECT_DOUBLE_EQ(stats.writableUnder10Writes, 1.0);
}

TEST(CpuTrace, SamplesWithinBounds)
{
    CpuTraceConfig config;
    config.nodes = 50;
    auto nodes = generateCpuTrace(config);
    ASSERT_EQ(nodes.size(), 50u);
    for (const auto& series : nodes) {
        EXPECT_EQ(series.size(), config.samplesPerNode);
        for (double u : series) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    }
}

TEST(CpuTrace, PercentileCurvesAreOrdered)
{
    CpuTraceConfig config;
    config.nodes = 200;
    auto nodes = generateCpuTrace(config);
    auto cdfs = utilizationCdfs(nodes, {50, 90}, 10);
    ASSERT_EQ(cdfs.size(), 2u);
    // At every cumulative point, P90 utilization >= P50 utilization.
    for (std::size_t i = 0; i < cdfs[0].size(); ++i)
        EXPECT_GE(cdfs[1][i].x, cdfs[0][i].x);
}

TEST(CpuTrace, MedianP90InPaperBand)
{
    auto nodes = generateCpuTrace(CpuTraceConfig{});
    std::vector<double> p90s;
    for (const auto& series : nodes)
        p90s.push_back(percentile(series, 90));
    const double median = percentile(p90s, 50);
    EXPECT_GT(median, 0.55);
    EXPECT_LT(median, 0.85);
}

TEST(Determinism, DominantSequenceShare)
{
    InvocationResult a;
    a.executedSequence = {"f", "g"};
    InvocationResult b;
    b.executedSequence = {"f", "h"};
    auto stats = analyzeSequences({a, a, a, b});
    EXPECT_EQ(stats.invocations, 4u);
    EXPECT_EQ(stats.distinctSequences, 2u);
    EXPECT_DOUBLE_EQ(stats.dominantShare, 0.75);
    EXPECT_EQ(stats.dominantSequence,
              (std::vector<std::string>{"f", "g"}));
}

TEST(Determinism, EmptyInput)
{
    auto stats = analyzeSequences({});
    EXPECT_EQ(stats.invocations, 0u);
    EXPECT_DOUBLE_EQ(stats.dominantShare, 0.0);
}

} // namespace
} // namespace specfaas
