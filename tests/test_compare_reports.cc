/**
 * @file
 * Tests for the compare_reports regression gate: the exit codes and
 * messages of compareReportFiles (the CLI's testable body) and the
 * compareReports edge cases — metrics missing on either side, NaN
 * metric values (which render as JSON null), and empty or malformed
 * reports.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/json_report.hh"

namespace specfaas {
namespace {

using obs::CompareOptions;
using obs::CompareResult;
using obs::JsonReport;

/** Write a report file into the test temp dir; returns its path. */
std::string
writeReport(const JsonReport& report, const std::string& name)
{
    const std::string path = ::testing::TempDir() + name;
    EXPECT_TRUE(report.writeFile(path));
    return path;
}

std::string
writeText(const std::string& text, const std::string& name)
{
    const std::string path = ::testing::TempDir() + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return path;
}

JsonReport
simpleReport(double latency, double throughput)
{
    JsonReport report("bench_x");
    report.addMetric("latency_ms", latency,
                     /*higherIsBetter=*/false, "ms");
    report.addMetric("throughput_rps", throughput,
                     /*higherIsBetter=*/true, "rps");
    return report;
}

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(CompareReportFiles, IdenticalReportsExitZero)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_ident_a.json");
    const std::string cand =
        writeReport(simpleReport(10.0, 500.0), "crf_ident_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, {}, &out), 0);
    EXPECT_TRUE(contains(out, "OK:")) << out;
}

TEST(CompareReportFiles, RegressionExitsOne)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_reg_a.json");
    const std::string cand =
        writeReport(simpleReport(14.0, 500.0), "crf_reg_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, {}, &out), 1);
    EXPECT_TRUE(contains(out, "REGRESSION latency_ms")) << out;
    EXPECT_TRUE(contains(out, "FAIL: 0 error(s), 1 regression(s)"))
        << out;
}

TEST(CompareReportFiles, ImprovementWithinToleranceExitsZero)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_imp_a.json");
    const std::string cand =
        writeReport(simpleReport(8.0, 600.0), "crf_imp_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, {}, &out), 0);
    EXPECT_TRUE(contains(out, "note       latency_ms")) << out;
}

TEST(CompareReportFiles, TwoSidedFailsOnGoodDirectionDrift)
{
    // Identity gates compare deterministic fingerprints: a metric
    // drifting in its "good" direction is still a behaviour change.
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_two_a.json");
    const std::string cand =
        writeReport(simpleReport(10.0, 600.0), "crf_two_b.json");
    CompareOptions opts;
    opts.relTolerance = 0.0;
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, opts, &out), 0)
        << "one-sided: improvement passes\n"
        << out;
    opts.twoSided = true;
    EXPECT_EQ(obs::compareReportFiles(base, cand, opts, &out), 1)
        << "two-sided: any drift fails\n"
        << out;
    EXPECT_TRUE(contains(out, "REGRESSION throughput_rps")) << out;

    // Unchanged reports still pass in two-sided mode.
    EXPECT_EQ(obs::compareReportFiles(base, base, opts, &out), 0);
}

TEST(CompareReportFiles, MetricMissingFromCandidateExitsOne)
{
    JsonReport cand("bench_x");
    cand.addMetric("latency_ms", 10.0, false, "ms");
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_miss_a.json");
    const std::string cand_path =
        writeReport(cand, "crf_miss_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand_path, {}, &out), 1);
    EXPECT_TRUE(contains(
        out, "ERROR      metric 'throughput_rps' missing from "
             "candidate"))
        << out;
}

TEST(CompareReportFiles, CandidateOnlyMetricIsNoteNotError)
{
    JsonReport cand = simpleReport(10.0, 500.0);
    cand.addMetric("new_metric", 1.0, true);
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_extra_a.json");
    const std::string cand_path =
        writeReport(cand, "crf_extra_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand_path, {}, &out), 0);
    EXPECT_TRUE(
        contains(out, "note       metric 'new_metric' only in "
                      "candidate"))
        << out;
}

TEST(CompareReportFiles, NanInCandidateExitsOne)
{
    JsonReport cand = simpleReport(10.0, 500.0);
    cand.addMetric("latency_ms", std::nan(""), false, "ms");
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_nan_a.json");
    const std::string cand_path = writeReport(cand, "crf_nan_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand_path, {}, &out), 1);
    EXPECT_TRUE(contains(
        out, "ERROR      metric 'latency_ms' became undefined (NaN) "
             "in candidate"))
        << out;
}

TEST(CompareReportFiles, NanInBothSidesIsNote)
{
    JsonReport base = simpleReport(10.0, 500.0);
    base.addMetric("p99_ms", std::nan(""), false, "ms");
    JsonReport cand = simpleReport(10.0, 500.0);
    cand.addMetric("p99_ms", std::nan(""), false, "ms");
    const std::string base_path =
        writeReport(base, "crf_nan2_a.json");
    const std::string cand_path =
        writeReport(cand, "crf_nan2_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base_path, cand_path, {}, &out),
              0);
    EXPECT_TRUE(contains(
        out, "note       metric 'p99_ms' undefined in both reports"))
        << out;
}

TEST(CompareReportFiles, NanInBaselineOnlyIsNote)
{
    JsonReport base = simpleReport(10.0, 500.0);
    base.addMetric("p99_ms", std::nan(""), false, "ms");
    JsonReport cand = simpleReport(10.0, 500.0);
    cand.addMetric("p99_ms", 25.0, false, "ms");
    const std::string base_path =
        writeReport(base, "crf_nan3_a.json");
    const std::string cand_path =
        writeReport(cand, "crf_nan3_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base_path, cand_path, {}, &out),
              0);
    EXPECT_TRUE(contains(out,
                         "note       metric 'p99_ms' undefined in "
                         "baseline"))
        << out;
}

TEST(CompareReportFiles, EmptyJsonObjectExitsOne)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_empty_a.json");
    const std::string cand = writeText("{}", "crf_empty_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, {}, &out), 1);
    EXPECT_TRUE(contains(
        out,
        "ERROR      candidate report is empty or not a JSON object"))
        << out;
}

TEST(CompareReportFiles, EmptyFileExitsTwo)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_zero_a.json");
    const std::string cand = writeText("", "crf_zero_b.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(base, cand, {}, &out), 2);
    EXPECT_TRUE(contains(out, "ERROR")) << out;
}

TEST(CompareReportFiles, MissingFileExitsTwo)
{
    const std::string base =
        writeReport(simpleReport(10.0, 500.0), "crf_nof_a.json");
    std::string out;
    EXPECT_EQ(obs::compareReportFiles(
                  base, ::testing::TempDir() + "does_not_exist.json",
                  {}, &out),
              2);
    EXPECT_TRUE(contains(out, "ERROR      cannot read")) << out;
}

/** A report carrying a deterministic profile section. */
JsonReport
profiledReport(std::int64_t walkVisits, std::int64_t dispatchCount,
               bool withDispatch = true)
{
    JsonReport report = simpleReport(10.0, 500.0);
    ValueArray zones;
    if (withDispatch) {
        zones.push_back(
            Value::object({{"name", Value(std::string("sim/dispatch"))},
                           {"visits", Value(std::int64_t{1000})},
                           {"count", Value(dispatchCount)}}));
    }
    zones.push_back(
        Value::object({{"name", Value(std::string("spec/walk"))},
                       {"visits", Value(walkVisits)},
                       {"count", Value(std::int64_t{0})}}));
    report.addSection(
        "profile", Value::object({{"zones", Value(std::move(zones))}}));
    return report;
}

TEST(CompareReports, IdenticalProfileZonesPassTwoSidedIdentity)
{
    CompareOptions opts;
    opts.relTolerance = 0.0;
    opts.twoSided = true;
    CompareResult r = obs::compareReports(
        profiledReport(40, 7).build(), profiledReport(40, 7).build(),
        opts);
    EXPECT_TRUE(r.ok()) << (r.regressions.empty()
                                ? ""
                                : r.regressions[0]);
    EXPECT_TRUE(r.regressions.empty());
}

TEST(CompareReports, ProfileZoneDriftNoteOneSidedFailsTwoSided)
{
    CompareOptions opts;
    opts.relTolerance = 0.0;
    CompareResult r = obs::compareReports(
        profiledReport(40, 7).build(), profiledReport(41, 7).build(),
        opts);
    EXPECT_TRUE(r.ok()) << "one-sided: zone drift is a note";
    ASSERT_FALSE(r.notes.empty());
    EXPECT_TRUE(contains(r.notes.back(), "spec/walk"));

    opts.twoSided = true;
    r = obs::compareReports(profiledReport(40, 7).build(),
                            profiledReport(41, 7).build(), opts);
    EXPECT_FALSE(r.ok()) << "two-sided: zone drift is a regression";
    ASSERT_FALSE(r.regressions.empty());
    EXPECT_TRUE(
        contains(r.regressions[0], "profile zone 'spec/walk' visits"));
}

TEST(CompareReports, ProfileZoneCountDriftGatedLikeVisits)
{
    CompareOptions opts;
    opts.relTolerance = 0.0;
    opts.twoSided = true;
    CompareResult r = obs::compareReports(
        profiledReport(40, 7).build(), profiledReport(40, 8).build(),
        opts);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.regressions.empty());
    EXPECT_TRUE(contains(r.regressions[0],
                         "profile zone 'sim/dispatch' count"));
}

TEST(CompareReports, ProfileZoneMissingFromCandidateIsError)
{
    CompareResult r = obs::compareReports(
        profiledReport(40, 7).build(),
        profiledReport(40, 7, /*withDispatch=*/false).build());
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.errors.empty());
    EXPECT_EQ(r.errors[0],
              "profile zone 'sim/dispatch' missing from candidate");
}

TEST(CompareReports, CandidateOnlyProfileZoneIsNote)
{
    CompareResult r = obs::compareReports(
        profiledReport(40, 7, /*withDispatch=*/false).build(),
        profiledReport(40, 7).build());
    EXPECT_TRUE(r.ok());
    ASSERT_FALSE(r.notes.empty());
    EXPECT_TRUE(contains(r.notes.back(),
                         "profile zone 'sim/dispatch' only in "
                         "candidate"));
}

TEST(CompareReports, BaselineWithoutProfileGatesMetricsOnly)
{
    // Subset matching: an unprofiled baseline must not reject a
    // profiled candidate, so older snapshots keep working after a
    // bench gains --profile.
    CompareOptions opts;
    opts.relTolerance = 0.0;
    opts.twoSided = true;
    CompareResult r = obs::compareReports(
        simpleReport(10.0, 500.0).build(),
        profiledReport(40, 7).build(), opts);
    EXPECT_TRUE(r.ok());
}

TEST(CompareReports, NonObjectReportsAreErrors)
{
    CompareResult r =
        obs::compareReports(Value(std::int64_t{3}), Value());
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_EQ(r.errors[0],
              "baseline report is empty or not a JSON object");
}

TEST(CompareReports, InMemoryNanIsTreatedAsUndefined)
{
    // Built (never round-tripped) reports hold a real NaN double, not
    // the JSON null it would render to; both spellings must behave
    // the same.
    JsonReport base = simpleReport(10.0, 500.0);
    JsonReport cand = simpleReport(10.0, 500.0);
    cand.addMetric("latency_ms", std::nan(""), false, "ms");
    CompareResult r =
        obs::compareReports(base.build(), cand.build());
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_EQ(r.errors[0],
              "metric 'latency_ms' became undefined (NaN) in "
              "candidate");
}

} // namespace
} // namespace specfaas
