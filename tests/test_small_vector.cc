/** @file Unit tests for the small-buffer vector (OrderKey storage). */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/small_vector.hh"

namespace specfaas {
namespace {

using Key = SmallVector<std::int32_t, 4>;

std::vector<std::int32_t>
contents(const Key& k)
{
    return std::vector<std::int32_t>(k.begin(), k.end());
}

TEST(SmallVector, StartsEmptyInline)
{
    Key k;
    EXPECT_TRUE(k.empty());
    EXPECT_EQ(k.size(), 0u);
}

TEST(SmallVector, InitializerListAndElementAccess)
{
    Key k{1, 2, 3};
    EXPECT_EQ(k.size(), 3u);
    EXPECT_EQ(k.front(), 1);
    EXPECT_EQ(k.back(), 3);
    EXPECT_EQ(k[1], 2);
    k[1] = 9;
    EXPECT_EQ(contents(k), (std::vector<std::int32_t>{1, 9, 3}));
}

TEST(SmallVector, GrowsPastInlineCapacity)
{
    Key k;
    for (std::int32_t i = 0; i < 20; ++i)
        k.push_back(i);
    EXPECT_EQ(k.size(), 20u);
    for (std::int32_t i = 0; i < 20; ++i)
        EXPECT_EQ(k[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyIsIndependent)
{
    Key a{1, 2, 3, 4, 5, 6}; // heap-backed (inline cap is 4)
    Key b(a);
    b.push_back(7);
    b[0] = 100;
    EXPECT_EQ(contents(a), (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(b.size(), 7u);
    EXPECT_EQ(b[0], 100);

    Key c;
    c = a;
    EXPECT_EQ(c, a);
    a.pop_back();
    EXPECT_EQ(c.size(), 6u);
}

TEST(SmallVector, MoveStealsHeapBlock)
{
    Key a{1, 2, 3, 4, 5, 6};
    const std::int32_t* block = a.begin();
    Key b(std::move(a));
    EXPECT_EQ(b.begin(), block) << "move must steal the heap block";
    EXPECT_EQ(contents(b), (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}));
    EXPECT_TRUE(a.empty());
    a.push_back(42); // source stays usable
    EXPECT_EQ(a.size(), 1u);
}

TEST(SmallVector, MoveOfInlineDataCopies)
{
    Key a{1, 2};
    Key b(std::move(a));
    EXPECT_EQ(contents(b), (std::vector<std::int32_t>{1, 2}));
    EXPECT_TRUE(a.empty());
}

TEST(SmallVector, ComparisonMatchesStdVectorSemantics)
{
    EXPECT_EQ((Key{1, 2, 3}), (Key{1, 2, 3}));
    EXPECT_NE((Key{1, 2, 3}), (Key{1, 2}));
    EXPECT_NE((Key{1, 2, 3}), (Key{1, 2, 4}));
    // Lexicographic order, prefix is smaller.
    EXPECT_LT((Key{1, 2}), (Key{1, 2, 0}));
    EXPECT_LT((Key{1, 2, 3}), (Key{1, 3}));
    EXPECT_FALSE((Key{2}) < (Key{1, 9, 9}));
    EXPECT_FALSE((Key{}) < (Key{}));
}

TEST(SmallVector, ReverseIteration)
{
    Key k{1, 2, 3, 4, 5};
    std::vector<std::int32_t> rev(k.rbegin(), k.rend());
    EXPECT_EQ(rev, (std::vector<std::int32_t>{5, 4, 3, 2, 1}));
}

TEST(SmallVector, RangeConstructionFromVector)
{
    std::vector<std::int32_t> src{7, 8, 9, 10, 11};
    Key k(src.begin(), src.end());
    EXPECT_EQ(contents(k), src);
}

TEST(SmallVector, ClearKeepsCapacityUsable)
{
    Key k{1, 2, 3, 4, 5, 6};
    k.clear();
    EXPECT_TRUE(k.empty());
    k.push_back(5);
    EXPECT_EQ(contents(k), (std::vector<std::int32_t>{5}));
}

} // namespace
} // namespace specfaas
