/** @file Unit tests for the workflow IR, compiler, and registries. */

#include <gtest/gtest.h>

#include "workflow/flow_program.hh"
#include "workflow/registry.hh"
#include "workflow/workflow.hh"

namespace specfaas {
namespace {

FunctionDef
stub(const std::string& name)
{
    FunctionDef d;
    d.name = name;
    d.body.push_back(Op::compute(1000));
    return d;
}

TEST(FlowCompiler, LinearSequence)
{
    auto program = compileWorkflow(
        sequence({task("a"), task("b"), task("c")}));
    // Walk from entry and collect the chain.
    std::vector<std::string> names;
    FlowIndex idx = program.entry;
    while (idx != kFlowNone) {
        EXPECT_EQ(program.node(idx).kind, FlowNode::Kind::Func);
        names.push_back(program.node(idx).function.str());
        idx = program.node(idx).next;
    }
    EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FlowCompiler, WhenHasTwoTargetsConvergingOnContinuation)
{
    auto program = compileWorkflow(
        sequence({when("cond", task("t"), task("f")), task("after")}));
    const FlowNode& branch = program.node(program.entry);
    ASSERT_EQ(branch.kind, FlowNode::Kind::Branch);
    EXPECT_EQ(branch.function, "cond");
    ASSERT_EQ(branch.targets.size(), 2u);
    const FlowNode& t = program.node(branch.targets[0]);
    const FlowNode& f = program.node(branch.targets[1]);
    EXPECT_EQ(t.function, "t");
    EXPECT_EQ(f.function, "f");
    // Both arms converge on the same continuation.
    EXPECT_EQ(t.next, f.next);
    EXPECT_EQ(program.node(t.next).function, "after");
}

TEST(FlowCompiler, OneArmedWhenFallsThrough)
{
    auto program = compileWorkflow(
        sequence({when("cond", task("t")), task("after")}));
    const FlowNode& branch = program.node(program.entry);
    ASSERT_EQ(branch.targets.size(), 2u);
    // Falsy target goes straight to the continuation.
    EXPECT_EQ(program.node(branch.targets[1]).function, "after");
    EXPECT_EQ(program.node(branch.targets[0]).next, branch.targets[1]);
}

TEST(FlowCompiler, BranchResolution)
{
    auto program = compileWorkflow(when("cond", task("t"), task("f")));
    const FlowIndex b = program.entry;
    const auto& node = program.node(b);
    EXPECT_EQ(program.resolveBranch(b, Value(true)), node.targets[0]);
    EXPECT_EQ(program.resolveBranch(b, Value(false)), node.targets[1]);
    // Integer outputs index targets directly.
    EXPECT_EQ(program.resolveBranch(b, Value(1)), node.targets[1]);
    EXPECT_EQ(program.resolveBranch(b, Value(0)), node.targets[0]);
}

TEST(FlowCompiler, ParallelForkJoin)
{
    auto program = compileWorkflow(
        sequence({parallel({task("x"), task("y")}), task("after")}));
    const FlowNode& fork = program.node(program.entry);
    ASSERT_EQ(fork.kind, FlowNode::Kind::Fork);
    ASSERT_EQ(fork.targets.size(), 2u);
    const FlowNode& join = program.node(fork.join);
    ASSERT_EQ(join.kind, FlowNode::Kind::Join);
    EXPECT_EQ(join.fork, program.entry);
    EXPECT_EQ(program.node(join.next).function, "after");
    for (FlowIndex arm : fork.targets)
        EXPECT_EQ(program.node(arm).next, fork.join);
}

TEST(FlowCompiler, NestedStructuresCompile)
{
    auto program = compileWorkflow(sequence({
        task("a"),
        when("c1", sequence({task("b"), when("c2", task("d"))}),
             task("e")),
        parallel({task("p1"), sequence({task("p2"), task("p3")})}),
        task("z"),
    }));
    EXPECT_FALSE(program.dump().empty());
    // Entry is "a".
    EXPECT_EQ(program.node(program.entry).function, "a");
}

TEST(Workflow, BranchCountCountsWhensAndGuardedCalls)
{
    Application app;
    app.type = WorkflowType::Explicit;
    app.workflow = sequence(
        {task("a"), when("c", task("t"), task("f"))});
    FunctionDef f = stub("a");
    f.body.push_back(Op::callIf([](const Env&) { return true; }, "x",
                                [](const Env& e) { return e.input; },
                                "v"));
    app.functions.push_back(std::move(f));
    EXPECT_EQ(app.branchCount(), 2u);
}

TEST(Workflow, MaxDagDepthExplicit)
{
    Application app;
    app.type = WorkflowType::Explicit;
    app.workflow = sequence({task("a"), task("b"),
                             when("c", task("d"), task("e"))});
    // a, b, c + deepest arm (1) = 4.
    EXPECT_EQ(app.maxDagDepth(), 4u);
}

TEST(Workflow, MaxDagDepthImplicitFollowsCalls)
{
    Application app;
    app.type = WorkflowType::Implicit;
    app.rootFunction = "r";
    FunctionDef r = stub("r");
    r.body.push_back(Op::call("m", [](const Env& e) { return e.input; },
                              "v"));
    FunctionDef m = stub("m");
    m.body.push_back(Op::call("l", [](const Env& e) { return e.input; },
                              "v"));
    app.functions.push_back(std::move(r));
    app.functions.push_back(std::move(m));
    app.functions.push_back(stub("l"));
    EXPECT_EQ(app.maxDagDepth(), 3u);
}

TEST(Workflow, FunctionStructureQueries)
{
    FunctionDef f = stub("f");
    EXPECT_FALSE(f.readsGlobalState());
    EXPECT_FALSE(f.hasSideEffects());
    EXPECT_TRUE(f.isEffectivelyPure());
    f.body.push_back(Op::storageRead(
        [](const Env&) { return std::string("k"); }, "v"));
    EXPECT_TRUE(f.readsGlobalState());
    EXPECT_FALSE(f.writesGlobalState());
    f.body.push_back(Op::storageWrite(
        [](const Env&) { return std::string("k"); },
        [](const Env&) { return Value(1); }));
    EXPECT_TRUE(f.writesGlobalState());
    EXPECT_TRUE(f.hasSideEffects());
    EXPECT_FALSE(f.isEffectivelyPure());
    EXPECT_EQ(f.totalComputeTime(), 1000);
}

TEST(FunctionRegistry, AddAndLookup)
{
    FunctionRegistry registry;
    registry.add(stub("f"));
    EXPECT_EQ(registry.get("f").name, "f");
    EXPECT_EQ(registry.find("missing"), nullptr);
    EXPECT_EQ(registry.size(), 1u);
    // Overwrite is allowed (redeployment).
    FunctionDef f2 = stub("f");
    f2.pureAnnotation = true;
    registry.add(std::move(f2));
    EXPECT_TRUE(registry.get("f").pureAnnotation);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(ApplicationRegistry, SuitesAndLookup)
{
    ApplicationRegistry registry;
    Application a;
    a.name = "A";
    a.suite = "S1";
    Application b;
    b.name = "B";
    b.suite = "S2";
    registry.add(std::move(a));
    registry.add(std::move(b));
    EXPECT_EQ(registry.get("A").suite, "S1");
    EXPECT_EQ(registry.suite("S1").size(), 1u);
    EXPECT_EQ(registry.all().size(), 2u);
    EXPECT_EQ(registry.suiteNames(),
              (std::vector<std::string>{"S1", "S2"}));
}

} // namespace
} // namespace specfaas
