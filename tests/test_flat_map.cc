/**
 * @file
 * Unit tests for the sorted-vector FlatMap.
 *
 * The invocation records route their small keyed collections (slot
 * maps, branch hints, fault attempts) through FlatMap; these tests
 * pin the std::map surface it promises — ordered iteration, find /
 * lower_bound / count, operator[] insert-or-find, emplace
 * insert-or-ignore, erase by key and iterator — plus the custom
 * comparator shape the controllers use for OrderKey keys.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flat_map.hh"

namespace specfaas {
namespace {

TEST(FlatMap, InsertAndIterateInKeyOrder)
{
    FlatMap<int, std::string> m;
    m[30] = "c";
    m[10] = "a";
    m[20] = "b";
    ASSERT_EQ(m.size(), 3u);
    std::vector<int> keys;
    for (const auto& [k, v] : m)
        keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
}

TEST(FlatMap, SubscriptFindsOrInserts)
{
    FlatMap<int, std::string> m;
    m[5] = "five";
    EXPECT_EQ(m[5], "five") << "existing key must not be overwritten";
    EXPECT_EQ(m.size(), 1u);
    // Missing key: value-initialized entry appears.
    EXPECT_EQ(m[7], "");
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, FindCountAndAt)
{
    FlatMap<int, int> m;
    m[1] = 10;
    m[3] = 30;
    EXPECT_EQ(m.find(1)->second, 10);
    EXPECT_EQ(m.find(2), m.end());
    EXPECT_EQ(m.count(3), 1u);
    EXPECT_EQ(m.count(4), 0u);
    EXPECT_EQ(m.at(3), 30);
    const FlatMap<int, int>& cm = m;
    EXPECT_EQ(cm.find(3)->second, 30);
    EXPECT_EQ(cm.at(1), 10);
}

TEST(FlatMap, LowerBoundIsFirstNotLess)
{
    FlatMap<int, int> m;
    m[10] = 1;
    m[20] = 2;
    m[30] = 3;
    EXPECT_EQ(m.lower_bound(5)->first, 10);
    EXPECT_EQ(m.lower_bound(20)->first, 20);
    EXPECT_EQ(m.lower_bound(21)->first, 30);
    EXPECT_EQ(m.lower_bound(31), m.end());
}

TEST(FlatMap, EmplaceInsertsOrIgnores)
{
    FlatMap<int, std::string> m;
    auto [it1, fresh1] = m.emplace(4, "four");
    EXPECT_TRUE(fresh1);
    EXPECT_EQ(it1->second, "four");
    auto [it2, fresh2] = m.emplace(4, "FOUR");
    EXPECT_FALSE(fresh2) << "emplace on an existing key must ignore";
    EXPECT_EQ(it2->second, "four");
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseByKeyAndIterator)
{
    FlatMap<int, int> m;
    for (int k : {1, 2, 3, 4})
        m[k] = k * 10;
    EXPECT_EQ(m.erase(2), 1u);
    EXPECT_EQ(m.erase(2), 0u);
    auto it = m.erase(m.find(3));
    ASSERT_NE(it, m.end());
    EXPECT_EQ(it->first, 4) << "erase returns the next entry";
    std::vector<int> keys;
    for (const auto& [k, v] : m)
        keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<int>{1, 4}));
}

TEST(FlatMap, ClearAndEmpty)
{
    FlatMap<int, int> m;
    EXPECT_TRUE(m.empty());
    m[1] = 1;
    EXPECT_FALSE(m.empty());
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMap, CustomComparatorOrdersIteration)
{
    // The controllers key pipeline maps by OrderKey with a custom
    // less; the comparator must drive both ordering and equivalence
    // (two keys are equal when neither is less).
    struct ReverseLess
    {
        bool operator()(int a, int b) const { return a > b; }
    };
    FlatMap<int, std::string, ReverseLess> m;
    m[10] = "a";
    m[30] = "c";
    m[20] = "b";
    std::vector<int> keys;
    for (const auto& [k, v] : m)
        keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<int>{30, 20, 10}));
    EXPECT_EQ(m.find(20)->second, "b");
    EXPECT_EQ(m.count(15), 0u);
}

TEST(FlatMap, RangeScanViaLowerBound)
{
    // The squash path walks [from, end) with lower_bound — the
    // pattern must see exactly the keys at or after the pivot, in
    // order.
    FlatMap<int, int> m;
    for (int k : {2, 4, 6, 8, 10})
        m[k] = k;
    std::vector<int> tail;
    for (auto it = m.lower_bound(5); it != m.end(); ++it)
        tail.push_back(it->first);
    EXPECT_EQ(tail, (std::vector<int>{6, 8, 10}));
}

} // namespace
} // namespace specfaas
