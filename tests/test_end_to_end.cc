/**
 * @file
 * End-to-end correctness oracle: for every application and a range of
 * seeds, a SpecFaaS run must produce exactly the same client response
 * and leave the global store in exactly the same final state as a
 * baseline run fed the same request sequence — speculation must be
 * invisible except in timing.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

struct RunOutcome
{
    std::vector<Value> responses;
    std::vector<std::vector<std::string>> sequences;
    std::uint64_t storeFingerprint = 0;
    double totalResponseMs = 0.0;
};

RunOutcome
runSerial(const Application& app, bool speculative, std::uint64_t seed,
          std::size_t requests)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.seed = seed;
    FaasPlatform platform(options);
    platform.deploy(app);

    RunOutcome out;
    for (std::size_t i = 0; i < requests; ++i) {
        Value input = app.inputGen ? app.inputGen(platform.inputRng())
                                   : Value();
        InvocationResult r = platform.invokeSync(app, std::move(input));
        out.responses.push_back(r.response);
        out.sequences.push_back(r.executedSequence);
        out.totalResponseMs += ticksToMs(r.responseTime());
    }
    out.storeFingerprint = platform.store().fingerprint();
    return out;
}

class EquivalenceTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EquivalenceTest, SpecMatchesBaseline)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get(GetParam());

    for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
        RunOutcome base = runSerial(app, false, seed, 25);
        RunOutcome spec = runSerial(app, true, seed, 25);

        ASSERT_EQ(base.responses.size(), spec.responses.size());
        for (std::size_t i = 0; i < base.responses.size(); ++i) {
            EXPECT_EQ(base.responses[i], spec.responses[i])
                << app.name << " request " << i << " seed " << seed
                << "\n base: " << base.responses[i].toString()
                << "\n spec: " << spec.responses[i].toString();
        }
        EXPECT_EQ(base.storeFingerprint, spec.storeFingerprint)
            << app.name << " final store state diverged, seed " << seed;
        for (std::size_t i = 0; i < base.sequences.size(); ++i) {
            EXPECT_EQ(base.sequences[i], spec.sequences[i])
                << app.name << " executed sequence diverged at request "
                << i;
        }
    }
}

std::vector<std::string>
allAppNames()
{
    auto registry = makeAllSuites();
    std::vector<std::string> names;
    for (const Application* app : registry->all())
        names.push_back(app->name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, EquivalenceTest,
                         ::testing::ValuesIn(allAppNames()));

/**
 * Property: correctness must hold under EVERY speculation
 * configuration — squash policies, feature toggles, tiny windows —
 * not just the default one.
 */
struct ConfigCase
{
    const char* name;
    SpecConfig config;
};

std::vector<ConfigCase>
configMatrix()
{
    std::vector<ConfigCase> cases;
    {
        SpecConfig c;
        cases.push_back({"default", c});
    }
    {
        SpecConfig c;
        c.squashPolicy = SquashPolicy::Lazy;
        cases.push_back({"lazy-squash", c});
    }
    {
        SpecConfig c;
        c.squashPolicy = SquashPolicy::ContainerKill;
        cases.push_back({"container-kill", c});
    }
    {
        SpecConfig c;
        c.memoization = false;
        cases.push_back({"no-memo", c});
    }
    {
        SpecConfig c;
        c.branchPrediction = false;
        cases.push_back({"no-bp", c});
    }
    {
        SpecConfig c;
        c.speculation = false;
        cases.push_back({"no-spec", c});
    }
    {
        SpecConfig c;
        c.maxSpecDepth = 2;
        cases.push_back({"depth-2", c});
    }
    {
        SpecConfig c;
        c.memoCapacity = 2;
        cases.push_back({"memo-cap-2", c});
    }
    {
        SpecConfig c;
        c.bpDeadBand = 0.0;
        c.stallThreshold = 1;
        cases.push_back({"aggressive", c});
    }
    return cases;
}

RunOutcome
runSerialWithConfig(const Application& app, const SpecConfig& config,
                    std::uint64_t seed, std::size_t requests)
{
    PlatformOptions options;
    options.speculative = true;
    options.spec = config;
    options.seed = seed;
    FaasPlatform platform(options);
    platform.deploy(app);
    RunOutcome out;
    for (std::size_t i = 0; i < requests; ++i) {
        Value input = app.inputGen ? app.inputGen(platform.inputRng())
                                   : Value();
        InvocationResult r = platform.invokeSync(app, std::move(input));
        out.responses.push_back(r.response);
        out.sequences.push_back(r.executedSequence);
    }
    out.storeFingerprint = platform.store().fingerprint();
    return out;
}

class ConfigEquivalenceTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ConfigEquivalenceTest, EveryConfigMatchesBaseline)
{
    const ConfigCase cc = configMatrix()[GetParam()];
    auto registry = makeAllSuites();
    // One representative app per workflow type + a storage-heavy one.
    for (const char* name : {"SmartHome", "OnlPurch", "TcktApp"}) {
        const Application& app = registry->get(name);
        RunOutcome base = runSerial(app, false, 21, 20);
        RunOutcome spec = runSerialWithConfig(app, cc.config, 21, 20);
        ASSERT_EQ(base.responses.size(), spec.responses.size());
        for (std::size_t i = 0; i < base.responses.size(); ++i) {
            EXPECT_EQ(base.responses[i], spec.responses[i])
                << cc.name << " " << name << " request " << i;
        }
        EXPECT_EQ(base.storeFingerprint, spec.storeFingerprint)
            << cc.name << " " << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigEquivalenceTest,
                         ::testing::Range<std::size_t>(0, 9));

TEST(SpeedupSmoke, SpecIsFasterSerially)
{
    auto registry = makeAllSuites();
    double base_total = 0.0;
    double spec_total = 0.0;
    for (const Application* app : registry->all()) {
        RunOutcome base = runSerial(*app, false, 5, 30);
        RunOutcome spec = runSerial(*app, true, 5, 30);
        base_total += base.totalResponseMs;
        spec_total += spec.totalResponseMs;
    }
    // Across all sixteen warmed-up applications, speculation must be
    // a substantial net win (the paper reports ~4.6x; we only gate a
    // loose lower bound here — the bench reproduces the exact figure).
    EXPECT_GT(base_total / spec_total, 2.0)
        << "aggregate speedup too low: base " << base_total << "ms spec "
        << spec_total << "ms";
}

} // namespace
} // namespace specfaas
