/**
 * @file
 * Allocation-count regression tests for the engine hot path.
 *
 * The PR that introduced these tests moved event callbacks, order
 * keys, values and container slots off the general-purpose heap
 * (inline callables, slab pools, small-buffer vectors, CoW values).
 * These tests pin that work: a steady-state kernel loop must be
 * allocation-free, and a full engine run with tracing disabled must
 * stay under a per-event allocation budget with room to spare. A
 * reappearing std::function box or per-event container allocation
 * trips the bounds immediately.
 *
 * The counting operator new below is binary-wide but only increments
 * an atomic before delegating to malloc, so it cannot change the
 * behaviour of any other test in this binary (each ctest entry runs
 * in its own process anyway).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <cstdlib>
#include <new>

#include "common/arena.hh"
#include "common/flat_map.hh"
#include "obs/profiler.hh"
#include "platform/platform.hh"
#include "sim/event_queue.hh"
#include "sim/sim_context.hh"
#include "workloads/suites.hh"

namespace {

std::atomic<std::uint64_t> gAllocs{0};

} // namespace

void*
operator new(std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace specfaas {
namespace {

TEST(HotPathAllocs, KernelSteadyStateIsAllocationFree)
{
    // A self-rescheduling chain with cancellation noise: after warmup
    // (slab pools carved, heap and state vectors grown), scheduling
    // and firing events must not touch the allocator at all. The
    // small slack absorbs the amortized growth of the id-state window
    // between compactions.
    EventQueue q;
    std::uint64_t remaining = 1000;
    std::function<void()> fire = [&]() {
        if (remaining == 0)
            return;
        --remaining;
        q.schedule(1 + (remaining & 7), [&]() { fire(); });
        if ((remaining & 3) == 0)
            q.cancel(q.schedule(2, []() {}));
    };
    q.schedule(1, [&]() { fire(); });
    q.run(); // warmup

    remaining = 100000;
    q.schedule(1, [&]() { fire(); });
    const std::uint64_t before = gAllocs.load();
    q.run();
    const std::uint64_t during = gAllocs.load() - before;
    EXPECT_GT(q.executedCount(), 100000u);
    EXPECT_LT(during, 64u)
        << "kernel steady state should be allocation-free; "
        << during << " allocations over 100k+ events";
}

TEST(HotPathAllocs, KernelChurnIsExactlyAllocationFreeAtSteadyState)
{
    // Stricter companion to the test above: with no cancellation
    // noise (a plain self-rescheduling chain, the shape of the
    // kernel-churn loop in bench_engine_throughput), steady state
    // must be *exactly* allocation-free — callbacks recycle through
    // the slab pool, wheel nodes through theirs, and the id-state
    // window compacts in place.
    EventQueue q;
    std::uint64_t remaining = 2000;
    std::function<void()> fire = [&]() {
        if (remaining == 0)
            return;
        --remaining;
        q.schedule(1 + (remaining & 7), [&]() { fire(); });
    };
    q.schedule(1, [&]() { fire(); });
    q.run(); // warmup

    remaining = 50000;
    q.schedule(1, [&]() { fire(); });
    const std::uint64_t before = gAllocs.load();
    q.run();
    EXPECT_EQ(gAllocs.load() - before, 0u)
        << "cancel-free kernel churn must not touch the allocator";
    EXPECT_GT(q.executedCount(), 50000u);
}

TEST(BumpArenaLifetime, ResetRecyclesBlocksWithoutHeapTraffic)
{
    // After one pass has grown the chain to its high-water mark,
    // reset() must reclaim everything without releasing the blocks:
    // the next pass of identical allocations touches no allocator
    // and lands at the same addresses.
    BumpArena arena{256};
    std::vector<void*> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(arena.allocArray<std::uint64_t>(32));
    const std::size_t capacity = arena.capacityBytes();
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.capacityBytes(), capacity);

    const std::uint64_t before = gAllocs.load();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(arena.allocArray<std::uint64_t>(32), first[i]);
    EXPECT_EQ(gAllocs.load() - before, 0u)
        << "second pass over a reset arena must reuse owned blocks";
}

TEST(BumpArenaLifetime, AllocationsAreAligned)
{
    BumpArena arena{128};
    for (const std::size_t align : {1u, 8u, 16u, 64u}) {
        void* p = arena.alloc(3, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
}

#ifdef SPECFAAS_ASAN
TEST(BumpArenaLifetime, ResetPoisonsReclaimedStorage)
{
    // The controllers keep per-invocation scratch (squash victim
    // lists) in a BumpArena; a pointer that escapes its invocation
    // must fault loudly under ASan instead of silently reading
    // recycled bytes. reset() poisons the reclaimed range...
    BumpArena arena{256};
    auto* p = arena.allocArray<std::uint64_t>(8);
    p[0] = 42;
    EXPECT_FALSE(__asan_address_is_poisoned(p));
    arena.reset();
    EXPECT_TRUE(__asan_address_is_poisoned(p))
        << "reset must poison reclaimed storage";
    EXPECT_TRUE(
        __asan_address_is_poisoned(reinterpret_cast<char*>(p + 8) - 1))
        << "the whole reclaimed range must be poisoned";

    // ...and alloc() unpoisons exactly the range it hands out.
    auto* q = arena.allocArray<std::uint64_t>(2);
    EXPECT_EQ(static_cast<void*>(q), static_cast<void*>(p));
    EXPECT_FALSE(__asan_address_is_poisoned(q));
    EXPECT_FALSE(
        __asan_address_is_poisoned(reinterpret_cast<char*>(q + 2) - 1));
    EXPECT_TRUE(__asan_address_is_poisoned(q + 2))
        << "bytes beyond the handed-out range must stay poisoned";
}

TEST(BumpArenaLifetime, EscapedPointerDiesUnderAsan)
{
    // The actual escape: dereferencing across reset() is the bug the
    // poisoning exists to catch.
    BumpArena arena{256};
    auto* p = arena.allocArray<std::uint64_t>(4);
    p[1] = 7;
    arena.reset();
    EXPECT_DEATH({ volatile std::uint64_t v = p[1]; (void)v; },
                 "use-after-poison");
}
#endif // SPECFAAS_ASAN

TEST(HotPathAllocs, PipelineChurnSteadyStateIsAllocationFree)
{
    // The controllers' order-indexed pipelines (slot maps, blocked
    // frontiers, fault attempts) see an append + popFront stream
    // with bounded occupancy: new work enters past the tail, commit
    // consumes the front. Once warmup has grown the backing vector
    // to the high-water mark, the frontier + geometric-compaction
    // scheme must recycle storage in place — zero allocator traffic
    // over hundreds of thousands of pipeline transitions.
    PipelineMap<int, int> pm;
    int next = 0;
    for (int i = 0; i < 4096; ++i) { // warmup: reach the high-water mark
        pm.emplace(next++, i);
        if (pm.size() > 32)
            pm.popFront();
    }
    const std::uint64_t before = gAllocs.load();
    for (int i = 0; i < 200000; ++i) {
        pm.emplace(next++, i);
        if (pm.size() > 32)
            pm.popFront();
    }
    EXPECT_EQ(gAllocs.load() - before, 0u)
        << "pipeline append/commit churn must not touch the allocator";

    // The squash shape — suffix truncation and reverse tail pops —
    // must be just as quiet.
    const std::uint64_t before2 = gAllocs.load();
    for (int round = 0; round < 10000; ++round) {
        for (int i = 0; i < 16; ++i)
            pm.emplace(next++, i);
        for (int i = 0; i < 8; ++i)
            pm.popBackExpect(next - 1 - i);
        next -= 8;
        pm.eraseFrom(next - 8); // kill the rest of this round's work
        next -= 8;
    }
    EXPECT_EQ(gAllocs.load() - before2, 0u)
        << "squash-shape churn must not touch the allocator";
}

TEST(HotPathAllocs, OrderedKeySetChurnIsAllocationFree)
{
    // The open-branch index absorbs an insert / erase / suffix-
    // truncate stream with a small bounded population; after warmup
    // its vector must never reallocate.
    OrderedKeySet<int> s;
    for (int i = 0; i < 64; ++i)
        s.insert(i);
    s.eraseFrom(0);
    const std::uint64_t before = gAllocs.load();
    for (int round = 0; round < 100000; ++round) {
        for (int i = 0; i < 8; ++i)
            s.insert(round * 8 + i);
        s.erase(round * 8 + 3);
        s.eraseFrom(round * 8);
    }
    EXPECT_EQ(gAllocs.load() - before, 0u)
        << "open-branch index churn must not touch the allocator";
    EXPECT_TRUE(s.empty());
}

TEST(HotPathAllocs, DisabledProfilerZonesAreAllocationFree)
{
    // A zone scope over a disabled profiler must cost one predictable
    // branch and nothing else — in particular no heap traffic. The
    // warmup loop interns the site (a one-time registry allocation);
    // the measured loop must then be allocation-free.
    obs::Profiler prof;
    auto spin = [&prof](int n) {
        for (int i = 0; i < n; ++i) {
            OBS_ZONE(prof, "test/disabled-zone");
        }
    };
    spin(10); // warmup: intern the site
    const std::uint64_t before = gAllocs.load();
    spin(100000);
    EXPECT_EQ(gAllocs.load() - before, 0u)
        << "disabled zone scopes must not allocate";
    EXPECT_FALSE(prof.hasData());
}

TEST(HotPathAllocs, DisabledTracingRunStaysUnderBudget)
{
    // Tracing and profiling are off by default; every trace call site
    // is behind an enabled() check and every zone scope behind a
    // disabled-profiler branch, so a run must not pay for either.
    // Budget: the hot-path rework landed at under 3
    // allocations per executed event on the fig11 suites (7.5 before
    // it); 6 leaves slack for stdlib variation while still catching
    // any per-event box (std::function, per-event container or
    // callback heap traffic) that would push the rate back up.
    auto registry = makeAllSuites();
    double worst = 0.0;
    for (const bool speculative : {false, true}) {
        PlatformOptions options;
        options.speculative = speculative;
        options.seed = 7;
        FaasPlatform platform(options);
        const Application& app = registry->get("Banking");
        platform.deploy(app);

        const std::uint64_t allocs0 = gAllocs.load();
        for (std::size_t i = 0; i < 50; ++i) {
            Value input = app.inputGen
                              ? app.inputGen(platform.inputRng())
                              : Value();
            platform.invokeSync(app, std::move(input));
        }
        const std::uint64_t allocs =
            gAllocs.load() - allocs0;
        const std::uint64_t events =
            platform.sim().events().executedCount();
        ASSERT_GT(events, 1000u);
        const double perEvent = static_cast<double>(allocs) /
                                static_cast<double>(events);
        worst = std::max(worst, perEvent);
        RecordProperty(speculative ? "spec_allocs_per_event"
                                   : "baseline_allocs_per_event",
                       std::to_string(perEvent));
    }
    EXPECT_LT(worst, 6.0)
        << "allocations per event regressed on a tracing-off run";
    EXPECT_FALSE(defaultSimContext().profiler().hasData())
        << "profiler recorded zones on a profiling-off run";
}

} // namespace
} // namespace specfaas
