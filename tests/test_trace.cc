/** @file Tests for the observability layer (tracing + counters). */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "obs/counter_registry.hh"
#include "obs/trace_export.hh"
#include "obs/trace_recorder.hh"
#include "platform/platform.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

using obs::Phase;
using obs::TraceEvent;
using obs::TraceRecorder;

TEST(TraceRecorder, DisabledRecordsNothing)
{
    TraceRecorder tr;
    EXPECT_FALSE(tr.enabled());
    tr.instant(obs::cat::kSpec, "x", 1, 0, 0);
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_TRUE(tr.snapshot().empty());
}

TEST(TraceRecorder, RingKeepsNewestAndCountsDrops)
{
    TraceRecorder tr;
    tr.enable(/*capacity=*/4);
    for (int i = 0; i < 10; ++i)
        tr.instant(obs::cat::kSpec, strFormat("e%d", i), i, 0, 0);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    auto evs = tr.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest first, and it is the newest four that survive.
    EXPECT_EQ(evs.front().name, "e6");
    EXPECT_EQ(evs.back().name, "e9");
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_LE(evs[i - 1].ts, evs[i].ts);
}

TEST(TraceRecorder, SpanPhasesRoundTrip)
{
    TraceRecorder tr;
    tr.enable(16);
    tr.begin(obs::cat::kExec, "f", 10, 1, 42);
    tr.instant(obs::cat::kStorage, "read", 15, 1, 42,
               {{"key", "k1"}});
    tr.end(obs::cat::kExec, "f", 20, 1, 42);
    auto evs = tr.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].phase, Phase::Begin);
    EXPECT_EQ(evs[1].phase, Phase::Instant);
    EXPECT_EQ(evs[2].phase, Phase::End);
    EXPECT_EQ(evs[1].args.at(0).key, "key");
    EXPECT_EQ(evs[1].args.at(0).value, "k1");
}

TEST(TraceExport, ProducesWellFormedJson)
{
    std::vector<TraceEvent> evs;
    TraceEvent e;
    e.phase = Phase::Instant;
    e.category = obs::cat::kSpec;
    e.name = "quote\"back\\slash";
    e.ts = 123;
    e.pid = 2;
    e.tid = 7;
    e.args = {{"s", "v1", false}, {"n", "42", true}};
    evs.push_back(e);
    const std::string json = obs::toChromeTraceJson(evs);
    // Structure markers of the Chrome trace_event array format.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":123"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    // Escaping, and numeric args rendered bare.
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("\"n\":42"), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"v1\""), std::string::npos);
    // process_name metadata for the referenced pid.
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(TraceExport, JsonEscape)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(obs::jsonEscape("a\tb"), "a\\tb");
}

TEST(Counters, RegisterAddMerge)
{
    obs::CounterRegistry a;
    std::uint64_t& c = a.counter("x.events");
    ++c;
    ++c;
    a.add("x.events", 3);
    a.set("x.load", 0.5);
    EXPECT_EQ(a.value("x.events"), 5u);
    EXPECT_EQ(a.value("absent"), 0u);
    obs::CounterRegistry b;
    b.add("x.events", 10);
    a.mergeInto(b);
    EXPECT_EQ(b.value("x.events"), 15u);
    EXPECT_NE(b.table().find("x.events"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: trace a SpecFaaS run through the real platform.
// ---------------------------------------------------------------------

/** Branch chain app (same shape as the controller tests). */
Application
tracedBranchChain()
{
    Application app;
    app.name = "chain";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(condFunction("Ca", "b0", 5.0));
    app.functions.push_back(condFunction("Cb", "b0", 5.0));
    app.functions.push_back(worker("Cend", 5.0, [](const Env&) {
        return Value("done");
    }));
    app.functions.push_back(worker("Cfail", 2.0, [](const Env&) {
        return Value("failed");
    }));
    app.workflow = when(
        "Ca", when("Cb", task("Cend"), task("Cfail")), task("Cfail"));
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.95));
        return v;
    };
    return app;
}

std::vector<TraceEvent>
named(const std::vector<TraceEvent>& evs, const std::string& name)
{
    std::vector<TraceEvent> out;
    for (const auto& e : evs)
        if (e.name == name)
            out.push_back(e);
    return out;
}

const std::string*
argValue(const TraceEvent& e, const std::string& key)
{
    for (const auto& a : e.args)
        if (a.key == key)
            return &a.value;
    return nullptr;
}

TEST(TraceEndToEnd, SpeculationLifecycleIsRecorded)
{
    Application app = tracedBranchChain();
    PlatformOptions options;
    options.speculative = true;
    options.seed = 7;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 20); // untraced: predictor warm-up

    obs::trace().enable(1u << 16);
    // Common case: the predicted path is taken.
    Value taken = Value::object({{"b0", Value(true)}});
    auto ok = platform.invokeSync(app, taken);
    EXPECT_EQ(ok.response.asString(), "done");
    // Forced misprediction: the rare direction must squash.
    Value rare = Value::object({{"b0", Value(false)}});
    auto r = platform.invokeSync(app, rare);
    EXPECT_EQ(r.response.asString(), "failed");

    obs::trace().disable();
    auto evs = obs::trace().snapshot();
    obs::trace().clear();

    // The full predict → speculate → validate → commit chain.
    EXPECT_FALSE(named(evs, "branch-predict").empty());
    EXPECT_FALSE(named(evs, "speculative-launch").empty());
    EXPECT_FALSE(named(evs, "validate").empty());
    EXPECT_FALSE(named(evs, "commit").empty());

    // A validation that failed...
    const auto validations = named(evs, "validate");
    EXPECT_TRUE(std::any_of(
        validations.begin(), validations.end(), [](const TraceEvent& e) {
            const std::string* c = argValue(e, "correct");
            return c != nullptr && *c == "0";
        }));

    // ...and the squash it triggered, carrying its reason.
    const auto squashes = named(evs, "squash");
    ASSERT_FALSE(squashes.empty());
    const std::string* reason = argValue(squashes.front(), "reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_EQ(*reason, "control-mispredict");

    // Lifecycle spans stay balanced per (pid, tid) track.
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> depth;
    for (const auto& e : evs) {
        if (e.phase == Phase::Begin)
            ++depth[{e.pid, e.tid}];
        else if (e.phase == Phase::End)
            --depth[{e.pid, e.tid}];
    }
    for (const auto& [track, d] : depth) {
        (void)track;
        EXPECT_EQ(d, 0);
    }

    // The whole thing exports as a loadable JSON document.
    const std::string json = obs::toChromeTraceJson(evs);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("speculative-launch"), std::string::npos);
}

TEST(TraceEndToEnd, DisabledTracingStaysEmpty)
{
    Application app = tracedBranchChain();
    PlatformOptions options;
    options.speculative = true;
    options.seed = 7;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 5);
    EXPECT_FALSE(obs::trace().enabled());
    EXPECT_EQ(obs::trace().size(), 0u);
}

} // namespace
} // namespace specfaas
