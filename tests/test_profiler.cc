/**
 * @file
 * Zone profiler tests: the path-tree accounting (self vs inclusive,
 * recursion, deterministic counts), the RAII scope's disabled and
 * disable-mid-scope behaviour, folded output and its round-trip,
 * SimContext ownership with the submission-ordered merge (folded
 * Visits output byte-identical at any job count), and end-to-end zone
 * coverage of a real platform run — including the identity pin that
 * "sim/dispatch" visits equal the event queue's executed count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz_apps.hh"
#include "obs/profiler.hh"
#include "sim/sim_context.hh"

namespace specfaas {
namespace {

using obs::Profiler;

/** Manually advanced fake clock (ClockFn is a plain function ptr). */
std::uint64_t gFakeNow = 0;

std::uint64_t
fakeClock()
{
    return gFakeNow;
}

/** Find the aggregate row of @p name; asserts it exists. */
Profiler::ZoneRow
zoneNamed(const Profiler& prof, const std::string& name)
{
    for (const Profiler::ZoneRow& z : prof.zoneRows())
        if (z.name == name)
            return z;
    ADD_FAILURE() << "zone '" << name << "' not recorded";
    return {};
}

TEST(Profiler, NestedZonesSplitSelfAndInclusiveTime)
{
    Profiler prof;
    prof.setClockForTest(&fakeClock);
    gFakeNow = 0;
    prof.enable();
    {
        OBS_ZONE(prof, "outer");
        gFakeNow += 10;
        {
            OBS_ZONE(prof, "inner");
            gFakeNow += 30;
        }
        gFakeNow += 5;
    }
    const Profiler::ZoneRow outer = zoneNamed(prof, "outer");
    const Profiler::ZoneRow inner = zoneNamed(prof, "inner");
    EXPECT_EQ(outer.visits, 1u);
    EXPECT_EQ(outer.totalNs, 45u);
    EXPECT_EQ(outer.selfNs, 15u);
    EXPECT_EQ(inner.visits, 1u);
    EXPECT_EQ(inner.totalNs, 30u);
    EXPECT_EQ(inner.selfNs, 30u);
}

TEST(Profiler, RecursionCountsInclusiveTimeOnce)
{
    Profiler prof;
    prof.setClockForTest(&fakeClock);
    gFakeNow = 0;
    prof.enable();
    {
        OBS_ZONE(prof, "rec");
        gFakeNow += 10;
        {
            OBS_ZONE(prof, "rec");
            gFakeNow += 20;
        }
    }
    const Profiler::ZoneRow rec = zoneNamed(prof, "rec");
    // Two visits; the inner occurrence's 20ns is already inside the
    // outer's 30ns inclusive total, so totalNs must not reach 50.
    EXPECT_EQ(rec.visits, 2u);
    EXPECT_EQ(rec.totalNs, 30u);
    EXPECT_EQ(rec.selfNs, 30u);
}

TEST(Profiler, AddCountAccumulatesIntoCurrentZone)
{
    Profiler prof;
    prof.enable();
    for (int i = 0; i < 3; ++i) {
        OBS_ZONE_SCOPE(zone, prof, "counted");
        zone.addCount(7);
    }
    const Profiler::ZoneRow z = zoneNamed(prof, "counted");
    EXPECT_EQ(z.visits, 3u);
    EXPECT_EQ(z.count, 21u);
}

TEST(Profiler, DisabledProfilerRecordsNothing)
{
    Profiler prof;
    {
        OBS_ZONE_SCOPE(zone, prof, "ghost");
        zone.addCount(5);
    }
    EXPECT_FALSE(prof.hasData());
    EXPECT_TRUE(prof.zoneRows().empty());
    EXPECT_EQ(obs::foldedProfile(prof, Profiler::FoldedValue::Visits),
              "");
}

TEST(Profiler, DisableMidScopeIsSafe)
{
    // A scope captured while enabled calls exit() after disable();
    // the open frame was discarded, so exit() must be a harmless
    // no-op. The visit itself stays recorded (the zone genuinely was
    // entered) but no partial wall time is attributed, and the next
    // enable() starts from a clean slate.
    Profiler prof;
    prof.setClockForTest(&fakeClock);
    gFakeNow = 0;
    prof.enable();
    {
        OBS_ZONE(prof, "interrupted");
        gFakeNow += 50;
        prof.disable();
    }
    const Profiler::ZoneRow interrupted =
        zoneNamed(prof, "interrupted");
    EXPECT_EQ(interrupted.visits, 1u);
    EXPECT_EQ(interrupted.totalNs, 0u)
        << "partial wall time survived a mid-scope disable";
    prof.enable();
    EXPECT_FALSE(prof.hasData()) << "enable() must clear old data";
    {
        OBS_ZONE(prof, "after");
    }
    EXPECT_EQ(zoneNamed(prof, "after").visits, 1u);
}

TEST(Profiler, FoldedOutputRoundTrips)
{
    Profiler prof;
    prof.enable();
    for (int i = 0; i < 4; ++i) {
        OBS_ZONE(prof, "a");
        OBS_ZONE(prof, "b");
    }
    {
        OBS_ZONE(prof, "b");
    }
    const std::string folded =
        obs::foldedProfile(prof, Profiler::FoldedValue::Visits);
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    ASSERT_TRUE(obs::parseFolded(folded, rows));
    ASSERT_EQ(rows.size(), 3u);
    // Sorted lexicographically by path.
    EXPECT_EQ(rows[0].first, "a");
    EXPECT_EQ(rows[0].second, 4u);
    EXPECT_EQ(rows[1].first, "a;b");
    EXPECT_EQ(rows[1].second, 4u);
    EXPECT_EQ(rows[2].first, "b");
    EXPECT_EQ(rows[2].second, 1u);
}

TEST(Profiler, ParseFoldedRejectsMalformedLines)
{
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    EXPECT_FALSE(obs::parseFolded("no-value-here\n", rows));
    EXPECT_FALSE(obs::parseFolded(" 42\n", rows));
    EXPECT_FALSE(obs::parseFolded("path notanumber\n", rows));
    // Paths that needed escaping but weren't: raw whitespace means
    // the writer did not escape, so the line is corruption.
    EXPECT_FALSE(obs::parseFolded("two words 42\n", rows));
    EXPECT_FALSE(obs::parseFolded("tab\tpath 42\n", rows));
    EXPECT_FALSE(obs::parseFolded("cr\rpath 42\n", rows));
    // Broken escape sequences.
    EXPECT_FALSE(obs::parseFolded("bad\\escape 42\n", rows));
    EXPECT_FALSE(obs::parseFolded("dangling\\ 42\n", rows))
        << "the escaped space leaves no unescaped value separator";
    EXPECT_FALSE(obs::parseFolded("dangling 42\\\n", rows));
    // Escaped forms of the same shapes are fine.
    EXPECT_TRUE(obs::parseFolded("two\\ words 42\n", rows));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].first, "two\\ words");
    EXPECT_EQ(rows[0].second, 42u);
}

TEST(Profiler, FoldedOutputEscapesSeparatorCharacters)
{
    // A zone name carrying the frame separator, the value separator,
    // or the escape character itself must not corrupt the collapsed
    // line structure: one line per path, one unescaped space, value
    // intact — and the file still parses.
    Profiler prof;
    prof.enable();
    {
        OBS_ZONE(prof, "outer zone");
        OBS_ZONE(prof, "in;ner");
    }
    {
        OBS_ZONE(prof, "back\\slash");
    }
    const std::string folded =
        obs::foldedProfile(prof, Profiler::FoldedValue::Visits);
    EXPECT_NE(folded.find("outer\\ zone 1\n"), std::string::npos);
    EXPECT_NE(folded.find("outer\\ zone;in\\;ner 1\n"),
              std::string::npos);
    EXPECT_NE(folded.find("back\\\\slash 1\n"), std::string::npos);

    std::vector<std::pair<std::string, std::uint64_t>> rows;
    ASSERT_TRUE(obs::parseFolded(folded, rows));
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& [path, value] : rows)
        EXPECT_EQ(value, 1u) << path;
}

TEST(Profiler, FoldedEscapingIsIdentityForOrdinaryNames)
{
    // Every real zone name (letters, digits, '/', '-') renders
    // byte-identically to the unescaped form, so committed folded
    // snapshots are unaffected by the escaping layer.
    Profiler prof;
    prof.enable();
    {
        OBS_ZONE(prof, "sim/dispatch");
        OBS_ZONE(prof, "interp/step-2");
    }
    EXPECT_EQ(obs::foldedProfile(prof, Profiler::FoldedValue::Visits),
              "sim/dispatch 1\n"
              "sim/dispatch;interp/step-2 1\n");
}

TEST(Profiler, MergeIntoAccumulatesPathTotals)
{
    Profiler a;
    a.enable();
    {
        OBS_ZONE_SCOPE(zone, a, "shared");
        zone.addCount(10);
        OBS_ZONE(a, "only-a");
    }
    Profiler b;
    b.enable();
    for (int i = 0; i < 2; ++i) {
        OBS_ZONE_SCOPE(zone, b, "shared");
        zone.addCount(1);
        OBS_ZONE(b, "only-b");
    }

    Profiler dst;
    dst.enable();
    a.mergeInto(dst);
    b.mergeInto(dst);
    EXPECT_EQ(zoneNamed(dst, "shared").visits, 3u);
    EXPECT_EQ(zoneNamed(dst, "shared").count, 12u);
    EXPECT_EQ(zoneNamed(dst, "only-a").visits, 1u);
    EXPECT_EQ(zoneNamed(dst, "only-b").visits, 2u);
}

TEST(Profiler, ForTaskMirrorsProfilerEnable)
{
    SimContext session;
    EXPECT_FALSE(
        SimContext::forTask(session, 0)->profiler().enabled());
    session.profiler().enable();
    EXPECT_TRUE(
        SimContext::forTask(session, 0)->profiler().enabled());
}

/** Record a deterministic little profile into @p context. */
void
recordTaskZones(SimContext& context, std::size_t task)
{
    Profiler& prof = context.profiler();
    for (std::size_t i = 0; i <= task; ++i) {
        OBS_ZONE_SCOPE(zone, prof, "task/outer");
        zone.addCount(task);
        OBS_ZONE(prof, "task/inner");
    }
}

/** Session-level folded Visits output of an n-task parallel run. */
std::string
foldedOfParallelRun(std::size_t jobs, std::size_t tasks)
{
    SimContext session;
    session.profiler().enable();
    std::vector<std::function<int(SimContext&)>> fns;
    for (std::size_t t = 0; t < tasks; ++t) {
        fns.push_back([t](SimContext& context) {
            recordTaskZones(context, t);
            return 0;
        });
    }
    runSimTasks<int>(jobs, std::move(fns), &session);
    return obs::foldedProfile(session.profiler(),
                              Profiler::FoldedValue::Visits);
}

TEST(Profiler, FoldedVisitsAreByteIdenticalAcrossJobCounts)
{
    const std::string serial = foldedOfParallelRun(1, 8);
    const std::string parallel = foldedOfParallelRun(8, 8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // 8 tasks, task t visits outer t+1 times: 36 outer visits total.
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    ASSERT_TRUE(obs::parseFolded(serial, rows));
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].first, "task/outer");
    EXPECT_EQ(rows[0].second, 36u);
    EXPECT_EQ(rows[1].first, "task/outer;task/inner");
    EXPECT_EQ(rows[1].second, 36u);
}

TEST(Profiler, ZeroZoneRunProducesEmptyArtifacts)
{
    Profiler prof;
    prof.enable();
    EXPECT_FALSE(prof.hasData());
    EXPECT_TRUE(prof.zoneRows().empty());
    EXPECT_TRUE(prof.pathRows().empty());
    EXPECT_EQ(obs::foldedProfile(prof, Profiler::FoldedValue::Visits),
              "");
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    EXPECT_TRUE(obs::parseFolded("", rows));
    EXPECT_TRUE(rows.empty());
}

TEST(Profiler, SiteRegistryAggregatesByName)
{
    // Two distinct call sites with the same label intern to the same
    // site id and therefore the same zone aggregate.
    const std::uint32_t a = obs::internZoneSite("dup/zone");
    const std::uint32_t b = obs::internZoneSite("dup/zone");
    EXPECT_EQ(a, b);
    EXPECT_EQ(obs::zoneSiteName(a), "dup/zone");
}

// ---------------------------------------------------------------------
// End-to-end: a real platform run records the wired zones.
// ---------------------------------------------------------------------

TEST(Profiler, PlatformRunRecordsWiredZones)
{
    SimContext context;
    context.profiler().enable();
    fuzz::AppFuzzer fuzzer(0xbeef);
    const Application app = fuzzer.explicitApp();
    fuzz::runApp(app, /*speculative=*/true, SpecConfig{}, 17, 4,
                 &context);

    const Profiler& prof = context.profiler();
    ASSERT_TRUE(prof.hasData());
    // The layers wired in this PR all show up on a spec-engine run.
    for (const char* name :
         {"sim/dispatch", "interp/start", "interp/step",
          "runtime/launch", "cluster/acquire", "cluster/release",
          "spec/invoke", "spec/walk", "spec/commit", "storage/get"}) {
        EXPECT_GT(zoneNamed(prof, name).visits, 0u) << name;
    }
}

TEST(Profiler, DispatchVisitsEqualExecutedEvents)
{
    // The "sim/dispatch" zone wraps exactly the event-queue callback
    // dispatch, so its visit count must equal the queue's executed
    // count — the cheapest cross-check that no span is dropped or
    // double-counted on the hottest path.
    SimContext context;
    context.profiler().enable();
    PlatformOptions options;
    options.speculative = true;
    options.seed = 17;
    options.context = &context;
    FaasPlatform platform(options);
    fuzz::AppFuzzer fuzzer(0xf00d);
    const Application app = fuzzer.explicitApp();
    platform.deploy(app);
    for (std::size_t i = 0; i < 4; ++i) {
        Value input = app.inputGen(platform.inputRng());
        platform.invokeSync(app, std::move(input));
    }
    const Profiler::ZoneRow dispatch =
        zoneNamed(context.profiler(), "sim/dispatch");
    EXPECT_EQ(dispatch.visits,
              platform.sim().events().executedCount());
    // The zone's deterministic count accumulates the ticks each
    // dispatch advanced the clock by, which sums to now().
    EXPECT_EQ(dispatch.count,
              static_cast<std::uint64_t>(platform.sim().now()));
}

// ---------------------------------------------------------------------
// Trace sampling.
// ---------------------------------------------------------------------

TEST(TraceSampling, SampledIsDeterministicByTid)
{
    obs::TraceRecorder tr;
    tr.setSample(4);
    EXPECT_EQ(tr.sample(), 4u);
    // Control-plane events (tid 0) always recorded.
    EXPECT_TRUE(tr.sampled(0));
    EXPECT_TRUE(tr.sampled(4));
    EXPECT_TRUE(tr.sampled(8));
    EXPECT_FALSE(tr.sampled(1));
    EXPECT_FALSE(tr.sampled(7));
    // 0 clamps to 1 (= record everything).
    tr.setSample(0);
    EXPECT_EQ(tr.sample(), 1u);
    EXPECT_TRUE(tr.sampled(3));
}

TEST(TraceSampling, SampleRateDropsUnselectedSpans)
{
    obs::TraceRecorder tr;
    tr.enable(1024);
    tr.setSample(2);
    for (std::uint64_t tid = 1; tid <= 8; ++tid)
        tr.instant(obs::cat::kExec, "x", 0, 1, tid);
    EXPECT_EQ(tr.size(), 4u); // tids 2, 4, 6, 8
    for (const obs::TraceEvent& ev : tr.snapshot())
        EXPECT_EQ(ev.tid % 2, 0u);
}

TEST(TraceSampling, ForTaskMirrorsSampleRate)
{
    SimContext session;
    session.trace().enable(1024);
    session.trace().setSample(5);
    EXPECT_EQ(SimContext::forTask(session, 0)->trace().sample(), 5u);
}

} // namespace
} // namespace specfaas
