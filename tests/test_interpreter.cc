/** @file Unit tests for the op-program interpreter and squash policies. */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "runtime/hooks.hh"
#include "runtime/interpreter.hh"
#include "runtime/launcher.hh"
#include "sim/simulation.hh"
#include "workflow/registry.hh"

namespace specfaas {
namespace {

/** Records everything the interpreter intercepts. */
class RecordingHooks : public RuntimeHooks
{
  public:
    void
    storageGet(const InstancePtr&, const std::string& key,
               ValueCallback done) override
    {
        gets.push_back(key);
        done(Value(static_cast<std::int64_t>(gets.size())));
    }

    void
    storagePut(const InstancePtr&, const std::string& key, Value value,
               DoneCallback done) override
    {
        puts.emplace_back(key, std::move(value));
        done();
    }

    void
    functionCall(const InstancePtr&, std::size_t call_site,
                 Symbol callee, Value args,
                 ValueCallback done) override
    {
        calls.emplace_back(call_site, callee.str());
        Value result = Value::object({});
        result["echo"] = std::move(args);
        done(std::move(result));
    }

    void
    httpRequest(const InstancePtr&, DoneCallback done) override
    {
        ++https;
        done();
    }

    void
    completed(const InstancePtr& inst, Value output) override
    {
        completions.emplace_back(inst->def->name, std::move(output));
    }

    std::vector<std::string> gets;
    std::vector<std::pair<std::string, Value>> puts;
    std::vector<std::pair<std::size_t, std::string>> calls;
    int https = 0;
    std::vector<std::pair<std::string, Value>> completions;
};

struct Rig
{
    Rig() : cluster(sim, ClusterConfig{}),
            interp(sim, cluster, hooks),
            launcher(sim, cluster, registry, interp)
    {
        cluster.containers().prewarm("f", 4);
    }

    InstancePtr
    run(FunctionDef def, Value input = Value())
    {
        def.name = "f";
        registry.add(std::move(def));
        LaunchSpec spec;
        spec.function = Symbol("f");
        spec.input = std::move(input);
        InstancePtr inst = launcher.launch(std::move(spec));
        sim.events().run();
        return inst;
    }

    Simulation sim;
    Cluster cluster;
    RecordingHooks hooks;
    FunctionRegistry registry;
    Interpreter interp;
    Launcher launcher;
};

TEST(Interpreter, EmptyBodyEchoesInput)
{
    Rig rig;
    FunctionDef def;
    rig.run(std::move(def), Value(11));
    ASSERT_EQ(rig.hooks.completions.size(), 1u);
    EXPECT_EQ(rig.hooks.completions[0].second.asInt(), 11);
}

TEST(Interpreter, ComputeBurnsSimulatedTime)
{
    Rig rig;
    FunctionDef def;
    def.computeCv = 0.0; // deterministic duration
    def.body.push_back(Op::compute(msToTicks(5.0)));
    InstancePtr inst = rig.run(std::move(def));
    EXPECT_EQ(inst->execTime, msToTicks(5.0));
    EXPECT_EQ(inst->state, InstanceState::Completed);
}

TEST(Interpreter, StorageOpsRoutedThroughHooks)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::storageRead(
        [](const Env&) { return std::string("in-key"); }, "v"));
    def.body.push_back(Op::storageWrite(
        [](const Env&) { return std::string("out-key"); },
        [](const Env& e) { return e.var("v"); }));
    def.output = [](const Env& e) { return e.var("v"); };
    rig.run(std::move(def));
    EXPECT_EQ(rig.hooks.gets, (std::vector<std::string>{"in-key"}));
    ASSERT_EQ(rig.hooks.puts.size(), 1u);
    EXPECT_EQ(rig.hooks.puts[0].first, "out-key");
    EXPECT_EQ(rig.hooks.completions[0].second.asInt(), 1);
}

TEST(Interpreter, CallResultBoundToVariable)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::call(
        "callee", [](const Env&) { return Value(5); }, "r"));
    def.output = [](const Env& e) { return e.var("r").at("echo"); };
    rig.run(std::move(def));
    ASSERT_EQ(rig.hooks.calls.size(), 1u);
    EXPECT_EQ(rig.hooks.calls[0].second, "callee");
    EXPECT_EQ(rig.hooks.completions[0].second.asInt(), 5);
}

TEST(Interpreter, GuardedCallSkippedAndRecorded)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::callIf(
        [](const Env&) { return false; }, "never",
        [](const Env&) { return Value(); }, "r"));
    def.body.push_back(Op::callIf(
        [](const Env&) { return true; }, "always",
        [](const Env&) { return Value(); }, "r2"));
    InstancePtr inst = rig.run(std::move(def));
    ASSERT_EQ(rig.hooks.calls.size(), 1u);
    EXPECT_EQ(rig.hooks.calls[0].second, "always");
    ASSERT_EQ(inst->callSiteOutcomes.size(), 2u);
    EXPECT_FALSE(inst->callSiteOutcomes[0].second);
    EXPECT_TRUE(inst->callSiteOutcomes[1].second);
}

TEST(Interpreter, FileOpsAreLocalCopyOnWrite)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::fileWrite(
        [](const Env&) { return std::string("tmp.json"); }));
    def.body.push_back(Op::fileRead(
        [](const Env&) { return std::string("tmp.json"); }, "f"));
    InstancePtr inst = rig.run(std::move(def));
    // Temp files are discarded at completion (§VI).
    EXPECT_TRUE(inst->ownFiles.empty());
    EXPECT_EQ(inst->state, InstanceState::Completed);
    // No hook traffic: file I/O is purely node-local.
    EXPECT_TRUE(rig.hooks.gets.empty());
    EXPECT_TRUE(rig.hooks.puts.empty());
}

TEST(Interpreter, HttpRoutedThroughHooks)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::http());
    rig.run(std::move(def));
    EXPECT_EQ(rig.hooks.https, 1);
}

TEST(Interpreter, SetVarEvaluatesAgainstEnv)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::setVar("a", [](const Env&) {
        return Value(2);
    }));
    def.body.push_back(Op::setVar("b", [](const Env& e) {
        return Value(e.var("a").asInt() * 3);
    }));
    def.output = [](const Env& e) { return e.var("b"); };
    rig.run(std::move(def));
    EXPECT_EQ(rig.hooks.completions[0].second.asInt(), 6);
}

TEST(Interpreter, ProcessKillSquashStopsWork)
{
    Rig rig;
    FunctionDef def;
    def.computeCv = 0.0;
    def.body.push_back(Op::compute(msToTicks(100.0)));
    def.name = "f";
    rig.registry.add(def);
    LaunchSpec spec;
    spec.function = Symbol("f");
    InstancePtr inst = rig.launcher.launch(std::move(spec));
    // Let the container fork and the burst start.
    rig.sim.events().runUntil(msToTicks(2.0));
    ASSERT_EQ(inst->state, InstanceState::Running);
    rig.interp.squash(inst, SquashPolicy::ProcessKill);
    EXPECT_EQ(inst->state, InstanceState::Dead);
    rig.sim.events().run();
    EXPECT_TRUE(rig.hooks.completions.empty());
    // The core freed shortly after the kill, not after 100 ms.
    EXPECT_LT(rig.sim.now(), msToTicks(20.0));
}

TEST(Interpreter, LazySquashBurnsRemainingCompute)
{
    Rig rig;
    FunctionDef def;
    def.computeCv = 0.0;
    def.body.push_back(Op::compute(msToTicks(40.0)));
    def.body.push_back(Op::compute(msToTicks(60.0)));
    def.name = "f";
    rig.registry.add(def);
    LaunchSpec spec;
    spec.function = Symbol("f");
    InstancePtr inst = rig.launcher.launch(std::move(spec));
    rig.sim.events().runUntil(msToTicks(2.0));
    rig.interp.squash(inst, SquashPolicy::Lazy);
    rig.sim.events().run();
    EXPECT_TRUE(rig.hooks.completions.empty());
    // The node stayed busy for roughly the whole remaining body.
    EXPECT_GE(rig.sim.now(), msToTicks(95.0));
}

TEST(Interpreter, ContainerKillDestroysContainer)
{
    Rig rig;
    FunctionDef def;
    def.computeCv = 0.0;
    def.body.push_back(Op::compute(msToTicks(50.0)));
    def.name = "f";
    rig.registry.add(def);
    const std::size_t before =
        rig.cluster.containers().containerCount("f");
    LaunchSpec spec;
    spec.function = Symbol("f");
    InstancePtr inst = rig.launcher.launch(std::move(spec));
    rig.sim.events().runUntil(msToTicks(2.0));
    rig.interp.squash(inst, SquashPolicy::ContainerKill);
    rig.sim.events().run();
    EXPECT_EQ(rig.cluster.containers().containerCount("f"), before - 1);
}

TEST(Interpreter, SquashDuringLaunchReturnsContainer)
{
    Rig rig;
    FunctionDef def;
    def.body.push_back(Op::compute(msToTicks(10.0)));
    def.name = "f";
    rig.registry.add(def);
    LaunchSpec spec;
    spec.function = Symbol("f");
    spec.preOverhead = msToTicks(5.0);
    InstancePtr inst = rig.launcher.launch(std::move(spec));
    // Squash before the container is even acquired.
    rig.interp.squash(inst, SquashPolicy::ProcessKill);
    rig.sim.events().run();
    EXPECT_TRUE(rig.hooks.completions.empty());
    // All containers are back in the warm pool.
    EXPECT_EQ(rig.cluster.containers().containerCount("f"), 4u);
}

} // namespace
} // namespace specfaas
