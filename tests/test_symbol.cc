/**
 * @file
 * Property tests for the process-wide interned Symbol table.
 *
 * The model layer's determinism story rests on three properties: ids
 * are assigned densely in interning order (so a fixed program gets
 * identical ids on every run), nothing observable depends on raw id
 * values (rendering and name hashes are pure functions of the name),
 * and concurrently interning threads — the `--jobs` forked
 * SimContexts share this one table — always agree on every id they
 * can exchange. These tests pin each property directly.
 *
 * The table is process-global and append-only, so every test uses a
 * unique name prefix; nothing here assumes a fresh table.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/symbol.hh"

namespace specfaas {
namespace {

std::uint64_t
refFnv1a(std::string_view s)
{
    // Independent reimplementation of the documented hash, so a
    // silent change to the table's hash function fails here.
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

TEST(Symbol, EmptySymbolIsIdZero)
{
    Symbol none;
    EXPECT_EQ(none.id(), 0u);
    EXPECT_TRUE(none.empty());
    EXPECT_FALSE(static_cast<bool>(none));
    EXPECT_EQ(none.str(), "");
    // Interning and looking up "" both land on the reserved id 0.
    EXPECT_EQ(Symbol("").id(), 0u);
    EXPECT_EQ(Symbol::lookup("").id(), 0u);
    EXPECT_GE(Symbol::tableSize(), 1u);
}

TEST(Symbol, InternResolveRoundTrip)
{
    const std::vector<std::string> names = {
        "sym.rt/alpha", "sym.rt/beta", "sym.rt/αβγ-utf8",
        "sym.rt/with space", "sym.rt/trailing."};
    for (const std::string& n : names) {
        Symbol s(n);
        EXPECT_FALSE(s.empty());
        EXPECT_EQ(s.str(), n) << "resolve must return the exact bytes";
        // Re-interning is idempotent and returns the same id.
        EXPECT_EQ(Symbol(n).id(), s.id());
        EXPECT_EQ(Symbol::intern(n), s);
        // fromId rebuilds the same symbol.
        EXPECT_EQ(Symbol::fromId(s.id()), s);
    }
}

TEST(Symbol, IdsAreDeterministicDenseAndCollisionFree)
{
    // Ids are a pure function of interning order: K fresh names in a
    // fixed order must get exactly the next K consecutive ids. This
    // is the cross-run determinism property — two runs interning the
    // same sequence get the same ids — observed in one process.
    const std::uint32_t base =
        static_cast<std::uint32_t>(Symbol::tableSize());
    constexpr int kCount = 512;
    std::vector<Symbol> syms;
    for (int i = 0; i < kCount; ++i)
        syms.push_back(Symbol("sym.dense/" + std::to_string(i)));
    for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(syms[i].id(), base + static_cast<std::uint32_t>(i))
            << "fresh ids must be dense and in interning order";
        EXPECT_EQ(syms[i].str(), "sym.dense/" + std::to_string(i));
    }
    EXPECT_EQ(Symbol::tableSize(), base + kCount);
    // Re-interning the whole batch mints nothing new.
    for (int i = 0; i < kCount; ++i)
        Symbol("sym.dense/" + std::to_string(i));
    EXPECT_EQ(Symbol::tableSize(), base + kCount);
}

TEST(Symbol, LookupNeverInterns)
{
    const std::size_t before = Symbol::tableSize();
    Symbol miss = Symbol::lookup("sym.lookup/never-interned");
    EXPECT_TRUE(miss.empty());
    EXPECT_EQ(Symbol::tableSize(), before)
        << "lookup of an unknown name must not grow the table";

    Symbol s("sym.lookup/interned");
    Symbol hit = Symbol::lookup("sym.lookup/interned");
    EXPECT_EQ(hit, s);
}

TEST(Symbol, NameHashIsAPureFunctionOfTheName)
{
    // The hash must not depend on id or interning order — predictor
    // tables keyed by it stay byte-identical however `--jobs` workers
    // interleave their interning.
    const std::vector<std::string> names = {"sym.hash/a", "sym.hash/b",
                                            ""};
    for (const std::string& n : names)
        EXPECT_EQ(Symbol(n).nameHash(), refFnv1a(n)) << n;
}

TEST(Symbol, ComparisonAndOrdering)
{
    Symbol a("sym.cmp/a");
    Symbol b("sym.cmp/b");
    EXPECT_TRUE(a == a);
    EXPECT_TRUE(a != b);
    // operator< is intern order (a was interned first), not
    // lexicographic.
    EXPECT_TRUE(a < b);
    // String comparison resolves, never interns.
    const std::size_t before = Symbol::tableSize();
    EXPECT_TRUE(a == std::string_view("sym.cmp/a"));
    EXPECT_TRUE(std::string_view("sym.cmp/b") == b);
    EXPECT_TRUE(a != std::string_view("sym.cmp/never-interned"));
    EXPECT_EQ(Symbol::tableSize(), before);
}

TEST(Symbol, RenderingIsByteIdenticalAndStable)
{
    const std::string name = "sym.render/fnA[0.1]#x";
    Symbol s(name);
    std::ostringstream os;
    os << s;
    EXPECT_EQ(os.str(), name);
    // str() returns a process-lifetime reference: the same entry on
    // every call, so render paths may keep pointers into it.
    EXPECT_EQ(&s.str(), &Symbol(name).str());
    EXPECT_EQ(&s.str(), &Symbol::fromId(s.id()).str());
}

TEST(Symbol, ConcurrentInterningAgreesOnEveryId)
{
    // Forked SimContexts intern concurrently: names raced over by
    // several threads must resolve to one id everywhere, fresh ids
    // must stay dense and collision-free, and every name must
    // round-trip. (Raw id values may differ run to run under races —
    // that is fine, nothing observable depends on them.)
    constexpr int kThreads = 8;
    constexpr int kShared = 64;  // names every thread interns
    constexpr int kPrivate = 64; // names only one thread interns
    const std::uint32_t base =
        static_cast<std::uint32_t>(Symbol::tableSize());
    std::vector<std::vector<std::uint32_t>> ids(
        kThreads, std::vector<std::uint32_t>(kShared + kPrivate));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &ids]() {
            for (int i = 0; i < kShared; ++i)
                ids[t][i] =
                    Symbol("sym.mt/shared" + std::to_string(i)).id();
            for (int i = 0; i < kPrivate; ++i)
                ids[t][kShared + i] =
                    Symbol("sym.mt/t" + std::to_string(t) + "/" +
                           std::to_string(i))
                        .id();
        });
    }
    for (std::thread& th : threads)
        th.join();

    // All threads agree on every shared name's id.
    for (int i = 0; i < kShared; ++i)
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(ids[t][i], ids[0][i])
                << "threads disagree on sym.mt/shared" << i;
    // The union of minted ids is exactly the next dense range.
    std::set<std::uint32_t> minted;
    for (const auto& perThread : ids)
        minted.insert(perThread.begin(), perThread.end());
    EXPECT_EQ(minted.size(), kShared + kThreads * kPrivate);
    EXPECT_EQ(*minted.begin(), base);
    EXPECT_EQ(*minted.rbegin(), base + minted.size() - 1);
    // Everything round-trips after the dust settles.
    for (int i = 0; i < kShared; ++i)
        EXPECT_EQ(Symbol::lookup("sym.mt/shared" + std::to_string(i))
                      .id(),
                  ids[0][i]);
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPrivate; ++i)
            EXPECT_EQ(Symbol("sym.mt/t" + std::to_string(t) + "/" +
                             std::to_string(i))
                          .id(),
                      ids[t][kShared + i]);
}

TEST(Symbol, TableGrowsPastIndexResizeAndChunkBoundaries)
{
    // Push the table across at least one index regrowth (load factor
    // 0.7 over a 256-slot initial index) and one 1024-entry chunk
    // boundary; every symbol interned before and after must keep
    // resolving.
    std::vector<Symbol> syms;
    for (int i = 0; i < 3000; ++i)
        syms.push_back(Symbol("sym.grow/" + std::to_string(i)));
    for (int i = 0; i < 3000; ++i) {
        EXPECT_EQ(syms[i].str(), "sym.grow/" + std::to_string(i));
        EXPECT_EQ(Symbol::lookup("sym.grow/" + std::to_string(i)),
                  syms[i]);
    }
}

} // namespace
} // namespace specfaas
