/**
 * @file
 * Unit and differential tests for the order-indexed pipeline
 * structures (PipelineMap, OrderedKeySet) and the bulk-erase
 * additions to FlatMap.
 *
 * The controllers route their pipeline state (slot maps, blocked
 * frontiers, fork records, fault attempts) through PipelineMap; a
 * wrong answer from any of these corrupts squash or commit silently.
 * The differential suite drives PipelineMap and a reference std::map
 * through the same randomized op streams — commit-heavy (popFront),
 * squash-heavy (popBackExpect / eraseFrom), and fault-retry mixes
 * (middle erase + re-insert) — at ~10^5 ops per seed and asserts
 * full-content equality throughout, mirroring the EventQueueBucketed
 * suite. The unit tests pin the surfaces the differential stream
 * can't see: the dead-prefix compaction policy, the O(1) erase fast
 * paths, eraseIf's exactly-one-predicate-call-per-entry contract,
 * and the OrderedKeySet front-compare answering anyBefore.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "runtime/instance.hh"

namespace specfaas {
namespace {

struct OrderLess
{
    bool
    operator()(const OrderKey& a, const OrderKey& b) const
    {
        return orderKeyLess(a, b);
    }
};

// ---------------------------------------------------------------------------
// Differential suite: PipelineMap vs std::map under mixed op streams.
// ---------------------------------------------------------------------------

/** Assert the pipeline's live region matches the reference exactly. */
void
expectEqual(PipelineMap<int, int>& pm, const std::map<int, int>& ref)
{
    ASSERT_EQ(pm.size(), ref.size());
    ASSERT_EQ(pm.empty(), ref.empty());
    auto rit = ref.begin();
    for (auto it = pm.begin(); it != pm.end(); ++it, ++rit) {
        ASSERT_EQ(it->first, rit->first);
        ASSERT_EQ(it->second, rit->second);
    }
    if (!ref.empty()) {
        ASSERT_EQ(pm.front().first, ref.begin()->first);
        ASSERT_EQ(pm.back().first, ref.rbegin()->first);
    }
}

/** Op-mix weights, in the order the dispatcher draws them. */
struct OpMix
{
    double insert;       // emplace a fresh (or colliding) key
    double popFront;     // commit: consume the frontier entry
    double popBackTail;  // squash step: pop the exact tail key
    double eraseFrom;    // squash: truncate a random suffix
    double eraseKey;     // fault retry: remove one coordinate
    double eraseIf;      // pending-callee purge: predicate sweep
    double lookup;       // find / lower_bound / count probes
    double clear;        // invocation teardown
};

/**
 * Drive PipelineMap<int,int> and std::map<int,int> through @p ops
 * randomized operations drawn from @p mix, checking equality after
 * every mutation. Keys are drawn from a window that slides upward so
 * the stream looks like a real pipeline: new work arrives above the
 * commit frontier, squashes truncate recent suffixes.
 */
void
runDifferential(std::uint64_t seed, std::size_t ops, const OpMix& mix)
{
    Rng rng(seed);
    PipelineMap<int, int> pm;
    std::map<int, int> ref;
    int nextKey = 0; // upper edge of the key window

    const std::vector<double> weights = {
        mix.insert,  mix.popFront, mix.popBackTail, mix.eraseFrom,
        mix.eraseKey, mix.eraseIf, mix.lookup,      mix.clear};

    for (std::size_t i = 0; i < ops; ++i) {
        switch (rng.weightedPick(weights)) {
        case 0: { // insert
            // Mostly append past the tail (program-order walk), but
            // sometimes land inside the live window (adopted callee)
            // or collide with an existing key (emplace no-op).
            int key;
            if (rng.bernoulli(0.7) || ref.empty()) {
                key = nextKey++;
            } else {
                const int lo = ref.begin()->first;
                key = lo + static_cast<int>(rng.uniformInt(
                                static_cast<std::uint64_t>(nextKey - lo)));
            }
            const int val = static_cast<int>(rng.next() & 0xffff);
            auto [it, inserted] = pm.emplace(key, val);
            auto [rit, rinserted] = ref.emplace(key, val);
            ASSERT_EQ(inserted, rinserted);
            ASSERT_EQ(it->first, rit->first);
            ASSERT_EQ(it->second, rit->second);
            break;
        }
        case 1: { // popFront (commit)
            if (ref.empty())
                break;
            ASSERT_EQ(pm.front().first, ref.begin()->first);
            pm.popFront();
            ref.erase(ref.begin());
            break;
        }
        case 2: { // popBackExpect (squash victim loop)
            if (ref.empty())
                break;
            const int tail = ref.rbegin()->first;
            pm.popBackExpect(tail);
            ref.erase(tail);
            break;
        }
        case 3: { // eraseFrom (squash suffix truncation)
            if (ref.empty())
                break;
            const int lo = ref.begin()->first;
            const int from = lo + static_cast<int>(rng.uniformInt(
                                      static_cast<std::uint64_t>(
                                          nextKey - lo + 1)));
            const std::size_t n = pm.eraseFrom(from);
            std::size_t rn = 0;
            for (auto it = ref.lower_bound(from); it != ref.end();
                 it = ref.erase(it))
                ++rn;
            ASSERT_EQ(n, rn);
            break;
        }
        case 4: { // erase(key) — present or absent
            const int key = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(nextKey + 1)));
            ASSERT_EQ(pm.erase(key), ref.erase(key));
            break;
        }
        case 5: { // eraseIf (value-predicate purge)
            const int bit = static_cast<int>(rng.uniformInt(4));
            const auto pred = [bit](const std::pair<int, int>& e) {
                return ((e.second >> bit) & 1) != 0;
            };
            const std::size_t n = pm.eraseIf(pred);
            std::size_t rn = 0;
            for (auto it = ref.begin(); it != ref.end();) {
                if (pred(*it)) {
                    it = ref.erase(it);
                    ++rn;
                } else {
                    ++it;
                }
            }
            ASSERT_EQ(n, rn);
            break;
        }
        case 6: { // lookups
            const int key = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(nextKey + 1)));
            ASSERT_EQ(pm.count(key), ref.count(key));
            auto it = pm.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it != pm.end(), rit != ref.end());
            if (rit != ref.end()) {
                ASSERT_EQ(it->second, rit->second);
            }
            auto lb = pm.lower_bound(key);
            auto rlb = ref.lower_bound(key);
            ASSERT_EQ(lb != pm.end(), rlb != ref.end());
            if (rlb != ref.end()) {
                ASSERT_EQ(lb->first, rlb->first);
            }
            break;
        }
        case 7: { // clear
            pm.clear();
            ref.clear();
            break;
        }
        }
        ASSERT_NO_FATAL_FAILURE(expectEqual(pm, ref));
    }
}

TEST(PipelineMap, DifferentialCommitHeavy)
{
    // Commit frontier dominates: the pipeline drains from the front
    // almost as fast as it fills, the shape that exercises the
    // dead-prefix compaction the hardest.
    runDifferential(0x5eed1001ull, 100000,
                    OpMix{40, 35, 2, 1, 2, 1, 15, 0.2});
}

TEST(PipelineMap, DifferentialSquashHeavy)
{
    // Deep squashes: suffix truncation and reverse-order tail pops
    // dominate, the misprediction-storm shape.
    runDifferential(0x5eed1002ull, 100000,
                    OpMix{40, 8, 15, 8, 2, 2, 15, 0.2});
}

TEST(PipelineMap, DifferentialFaultRetryMix)
{
    // Fault retries: single-coordinate erases and predicate purges
    // punch holes in the middle of the live region.
    runDifferential(0x5eed1003ull, 100000,
                    OpMix{40, 12, 4, 3, 12, 8, 15, 0.5});
}

TEST(PipelineMap, DifferentialBalancedChurn)
{
    runDifferential(0x5eed1004ull, 100000,
                    OpMix{35, 15, 8, 4, 6, 4, 20, 1});
}

// ---------------------------------------------------------------------------
// Compaction policy and dead-prefix bookkeeping.
// ---------------------------------------------------------------------------

TEST(PipelineMap, PopFrontCompactsOnceDeadReachesHalf)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 100; ++i)
        pm.emplace(i, i * 10);
    // Below both thresholds: the dead prefix just grows.
    for (int i = 0; i < 63; ++i)
        pm.popFront();
    EXPECT_EQ(pm.deadPrefix(), 63u);
    EXPECT_EQ(pm.size(), 37u);
    EXPECT_EQ(pm.front().first, 63);
    // 64th pop crosses kCompactMin with dead >= half: compacts.
    pm.popFront();
    EXPECT_EQ(pm.deadPrefix(), 0u);
    EXPECT_EQ(pm.size(), 36u);
    EXPECT_EQ(pm.front().first, 64);
    EXPECT_EQ(pm.back().first, 99);
}

TEST(PipelineMap, SmallPipelineNeverCompactsButStaysCorrect)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 40; ++i)
        pm.emplace(i, i);
    for (int i = 0; i < 40; ++i)
        pm.popFront();
    EXPECT_TRUE(pm.empty());
    // Dead slack below kCompactMin is tolerated while empty...
    EXPECT_EQ(pm.deadPrefix(), 40u);
    // ...and inserting into the drained pipeline still works: the
    // live region begins past the dead prefix.
    pm.emplace(100, 1);
    pm.emplace(99, 2);
    EXPECT_EQ(pm.size(), 2u);
    EXPECT_EQ(pm.front().first, 99);
    EXPECT_EQ(pm.back().first, 100);
    EXPECT_EQ(pm.at(100), 1);
}

TEST(PipelineMap, PopFrontResetsEntryPayloadImmediately)
{
    // The reclaimed entry must release its payload at pop time (the
    // controllers park instance pointers and callbacks in pipeline
    // values), not at compaction time.
    PipelineMap<int, std::shared_ptr<int>> pm;
    auto payload = std::make_shared<int>(7);
    std::weak_ptr<int> watch = payload;
    pm.emplace(1, std::move(payload));
    pm.emplace(2, nullptr);
    pm.popFront();
    EXPECT_TRUE(watch.expired())
        << "popFront must drop the entry's payload immediately";
    EXPECT_EQ(pm.size(), 1u);
}

TEST(PipelineMap, DrainToEmptyViaTailOpsResetsDeadPrefix)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 8; ++i)
        pm.emplace(i, i);
    for (int i = 0; i < 4; ++i)
        pm.popFront();
    EXPECT_EQ(pm.deadPrefix(), 4u);
    // popBackExpect down to empty: the whole vector resets.
    for (int i = 7; i >= 4; --i)
        pm.popBackExpect(i);
    EXPECT_TRUE(pm.empty());
    EXPECT_EQ(pm.deadPrefix(), 0u);
    // eraseFrom to empty likewise.
    for (int i = 0; i < 8; ++i)
        pm.emplace(i, i);
    pm.popFront();
    EXPECT_EQ(pm.eraseFrom(1), 7u);
    EXPECT_TRUE(pm.empty());
    EXPECT_EQ(pm.deadPrefix(), 0u);
}

// ---------------------------------------------------------------------------
// Erase fast paths.
// ---------------------------------------------------------------------------

TEST(PipelineMap, EraseByKeyFrontBackMiddleAbsent)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 5; ++i)
        pm.emplace(i, i * 10);
    EXPECT_EQ(pm.erase(0), 1u); // front: frontier advance
    EXPECT_EQ(pm.deadPrefix(), 1u);
    EXPECT_EQ(pm.erase(4), 1u); // back: pop
    EXPECT_EQ(pm.erase(2), 1u); // middle: shift
    EXPECT_EQ(pm.erase(42), 0u); // absent
    EXPECT_EQ(pm.size(), 2u);
    EXPECT_EQ(pm.front().first, 1);
    EXPECT_EQ(pm.back().first, 3);
}

TEST(PipelineMap, EraseByIteratorFrontBackMiddle)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 5; ++i)
        pm.emplace(i, i);
    auto it = pm.erase(pm.begin()); // front fast path
    EXPECT_EQ(it, pm.begin());
    EXPECT_EQ(pm.front().first, 1);
    it = pm.erase(pm.begin() + 3); // tail fast path (key 4)
    EXPECT_EQ(it, pm.end());
    EXPECT_EQ(pm.back().first, 3);
    it = pm.erase(pm.begin() + 1); // middle (key 2)
    EXPECT_EQ(it->first, 3);
    EXPECT_EQ(pm.size(), 2u);
}

TEST(PipelineMap, PopBackExpectEnforcesTailIdentity)
{
    PipelineMap<int, int> pm;
    pm.emplace(1, 10);
    pm.emplace(2, 20);
    pm.popBackExpect(2);
    EXPECT_EQ(pm.back().first, 1);
    EXPECT_DEATH(pm.popBackExpect(5), "suffix-pop invariant");
}

// ---------------------------------------------------------------------------
// eraseIf complexity contract (the squash purge relies on it).
// ---------------------------------------------------------------------------

TEST(PipelineMap, EraseIfRunsPredicateExactlyOncePerEntry)
{
    PipelineMap<int, int> pm;
    for (int i = 0; i < 1000; ++i)
        pm.emplace(i, i);
    std::size_t calls = 0;
    const std::size_t erased = pm.eraseIf([&calls](const auto& e) {
        ++calls;
        return e.first % 3 == 0;
    });
    EXPECT_EQ(calls, 1000u)
        << "eraseIf must be a single pass, not erase-per-victim";
    EXPECT_EQ(erased, 334u);
    EXPECT_EQ(pm.size(), 666u);
}

TEST(FlatMap, EraseIfRunsPredicateExactlyOncePerEntry)
{
    FlatMap<int, int> m;
    for (int i = 0; i < 1000; ++i)
        m.emplace(i, i);
    std::size_t calls = 0;
    const std::size_t erased = m.eraseIf([&calls](const auto& e) {
        ++calls;
        return e.second % 2 == 0;
    });
    EXPECT_EQ(calls, 1000u);
    EXPECT_EQ(erased, 500u);
    EXPECT_EQ(m.size(), 500u);
}

TEST(FlatMap, EraseFromTruncatesSuffixAndReportsCount)
{
    FlatMap<int, int> m;
    for (int i = 0; i < 10; ++i)
        m.emplace(i, i);
    EXPECT_EQ(m.eraseFrom(7), 3u);
    EXPECT_EQ(m.size(), 7u);
    EXPECT_EQ(m.eraseFrom(100), 0u);
    EXPECT_EQ(m.eraseFrom(0), 7u);
    EXPECT_TRUE(m.empty());
}

// ---------------------------------------------------------------------------
// OrderKey comparator shape (the controllers' actual key type).
// ---------------------------------------------------------------------------

TEST(PipelineMap, OrderKeyPipelineMirrorsControllerUsage)
{
    PipelineMap<OrderKey, int, OrderLess> pm;
    OrderKey a; a.push_back(0);
    OrderKey b; b.push_back(0); b.push_back(1);
    OrderKey c; c.push_back(1);
    OrderKey d; d.push_back(2);
    pm.emplace(c, 3);
    pm.emplace(a, 1);
    pm.emplace(d, 4);
    pm.emplace(b, 2);
    ASSERT_EQ(pm.size(), 4u);
    // Lexicographic program order: [0] < [0,1] < [1] < [2].
    EXPECT_EQ(pm.front().second, 1);
    auto it = pm.begin();
    EXPECT_EQ((it + 1)->second, 2);
    // Squash from [1]: the nested callee under [0] survives.
    EXPECT_EQ(pm.eraseFrom(c), 2u);
    EXPECT_EQ(pm.back().second, 2);
    // Commit frontier consumes in program order.
    pm.popFront();
    EXPECT_EQ(pm.front().second, 2);
}

// ---------------------------------------------------------------------------
// OrderedKeySet.
// ---------------------------------------------------------------------------

TEST(OrderedKeySet, InsertEraseContains)
{
    OrderedKeySet<int> s;
    EXPECT_TRUE(s.empty());
    s.insert(5);
    s.insert(1);
    s.insert(9);
    s.insert(5); // duplicate: no-op
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_FALSE(s.contains(4));
    s.erase(5);
    EXPECT_FALSE(s.contains(5));
    s.erase(5); // absent: no-op
    EXPECT_EQ(s.size(), 2u);
}

TEST(OrderedKeySet, AnyBeforeIsFrontCompare)
{
    OrderedKeySet<int> s;
    EXPECT_FALSE(s.anyBefore(100));
    s.insert(7);
    s.insert(3);
    EXPECT_TRUE(s.anyBefore(4)) << "3 sorts before 4";
    EXPECT_FALSE(s.anyBefore(3)) << "strictly before, not at";
    EXPECT_FALSE(s.anyBefore(0));
    s.erase(3);
    EXPECT_FALSE(s.anyBefore(4));
    EXPECT_TRUE(s.anyBefore(8));
}

TEST(OrderedKeySet, EraseFromTruncatesSuffix)
{
    OrderedKeySet<int> s;
    for (int k : {2, 4, 6, 8})
        s.insert(k);
    s.eraseFrom(5);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(2));
    EXPECT_TRUE(s.contains(4));
    EXPECT_FALSE(s.contains(6));
    s.eraseFrom(0);
    EXPECT_TRUE(s.empty());
}

TEST(OrderedKeySet, OrderKeyBranchTrackingScenario)
{
    // The spec controller's usage: open branches indexed by program
    // order; anyBefore answers "is a branch before this coordinate
    // still unresolved", eraseFrom mirrors the squash.
    OrderedKeySet<OrderKey, OrderLess> s;
    OrderKey b0; b0.push_back(1);
    OrderKey b1; b1.push_back(3);
    OrderKey probe; probe.push_back(2);
    s.insert(b1);
    EXPECT_FALSE(s.anyBefore(probe));
    s.insert(b0);
    EXPECT_TRUE(s.anyBefore(probe));
    s.eraseFrom(b0); // squash from [1]
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.anyBefore(probe));
}

/**
 * Differential check for OrderedKeySet against a sorted reference:
 * interleaved insert / erase / eraseFrom / membership / anyBefore.
 */
TEST(OrderedKeySet, DifferentialVsReference)
{
    Rng rng(0x5eed1005ull);
    OrderedKeySet<int> s;
    std::map<int, bool> ref; // keys only
    for (std::size_t i = 0; i < 100000; ++i) {
        const int key = static_cast<int>(rng.uniformInt(256));
        switch (rng.uniformInt(5)) {
        case 0:
        case 1:
            s.insert(key);
            ref.emplace(key, true);
            break;
        case 2:
            s.erase(key);
            ref.erase(key);
            break;
        case 3: {
            if (rng.bernoulli(0.9))
                break; // keep eraseFrom rare so the set stays populated
            s.eraseFrom(key);
            ref.erase(ref.lower_bound(key), ref.end());
            break;
        }
        case 4: {
            ASSERT_EQ(s.contains(key), ref.count(key) == 1);
            const bool expect =
                !ref.empty() && ref.begin()->first < key;
            ASSERT_EQ(s.anyBefore(key), expect);
            break;
        }
        }
        ASSERT_EQ(s.size(), ref.size());
    }
}

} // namespace
} // namespace specfaas
