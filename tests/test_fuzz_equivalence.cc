/**
 * @file
 * Randomized equivalence fuzzing.
 *
 * Generates random applications — random explicit workflow trees
 * (sequences, branches, parallel sections) and random implicit call
 * trees (gathers, guarded calls), with random function bodies mixing
 * compute, global reads/writes, HTTP, temp files and local steps —
 * and checks the core correctness property on each: for the same
 * request sequence, a SpecFaaS run must produce exactly the baseline's
 * responses and final global-store state, under aggressive speculation
 * settings.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "platform/platform.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

/** Generator of random-but-deterministic applications. */
class AppFuzzer
{
  public:
    explicit AppFuzzer(std::uint64_t seed) : rng_(seed) {}

    Application
    explicitApp()
    {
        Application app;
        app.name = "fuzz-explicit";
        app.suite = "fuzz";
        app.type = WorkflowType::Explicit;
        app_ = &app;
        app.workflow = genNode(0);
        finishApp(app);
        return app;
    }

    Application
    implicitApp()
    {
        Application app;
        app.name = "fuzz-implicit";
        app.suite = "fuzz";
        app.type = WorkflowType::Implicit;
        app_ = &app;
        app.rootFunction = genCallTree(0);
        finishApp(app);
        return app;
    }

  private:
    /** Random explicit workflow node (bounded depth). */
    WorkflowNode
    genNode(int depth)
    {
        const double roll = rng_.uniform();
        if (depth >= 2 || roll < 0.45)
            return task(genFunction(/*allow_calls=*/depth < 2));
        if (roll < 0.65) {
            std::vector<WorkflowNode> children;
            const int n = static_cast<int>(rng_.uniformInt(
                std::int64_t{2}, std::int64_t{4}));
            for (int i = 0; i < n; ++i)
                children.push_back(genNode(depth + 1));
            return sequence(std::move(children));
        }
        if (roll < 0.84) {
            const std::string cond = genCondFunction();
            if (rng_.bernoulli(0.3))
                return when(cond, genNode(depth + 1));
            return when(cond, genNode(depth + 1), genNode(depth + 1));
        }
        if (roll < 0.9) {
            // Bounded loop: the condition counts its own visits via a
            // loop-carried field the body threads through.
            const std::string cond = genLoopCondFunction();
            const std::string body = genLoopBodyFunction();
            return whileLoop(cond, task(body));
        }
        std::vector<WorkflowNode> arms;
        const int n = static_cast<int>(
            rng_.uniformInt(std::int64_t{2}, std::int64_t{3}));
        // Parallel arms get disjoint storage zones: sibling arms run
        // concurrently in the BASELINE too, so records shared across
        // arms would be racy there (no canonical outcome to compare
        // against). SpecFaaS itself orders arms via the Data Buffer.
        const int saved_zone = zone_;
        for (int i = 0; i < n; ++i) {
            zone_ = nextZone_++;
            arms.push_back(genNode(depth + 1));
        }
        zone_ = saved_zone;
        return parallel(std::move(arms));
    }

    /** Random implicit call subtree; returns the function name. */
    std::string
    genCallTree(int depth)
    {
        const bool caller = depth < 2 && rng_.bernoulli(depth == 0 ? 1.0 : 0.4);
        FunctionDef def = genBody(/*allow_calls=*/false);
        def.name = nextName();
        if (caller) {
            const int calls = static_cast<int>(
                rng_.uniformInt(std::int64_t{1}, std::int64_t{3}));
            for (int c = 0; c < calls; ++c) {
                const std::string callee = genCallTree(depth + 1);
                const std::string var = strFormat("c%d", c);
                ValueFn args = [](const Env& e) {
                    Value a = Value::object({});
                    a["key"] = e.input.at("key");
                    return a;
                };
                if (rng_.bernoulli(0.3)) {
                    def.body.push_back(Op::callIf(
                        fns::bucketGuard("key", 8), callee, args, var));
                } else {
                    def.body.push_back(Op::call(callee, args, var));
                }
            }
            // Fold call results into the output deterministically.
            const int calls_made = calls;
            def.output = [calls_made](const Env& e) {
                std::int64_t acc = intOr(e.input.at("salt"), 0);
                for (int c = 0; c < calls_made; ++c) {
                    const Value& v = e.var(strFormat("c%d", c));
                    if (v.isObject())
                        acc = (acc * 31 + intOr(v.at("v"), 0)) % 1009;
                }
                Value out = Value::object({});
                out["v"] = Value(acc);
                return out;
            };
        }
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    std::string
    nextName()
    {
        return strFormat("Fz%u", counter_++);
    }

    /** Random function body (no calls; calls added separately). */
    FunctionDef
    genBody(bool allow_calls)
    {
        (void)allow_calls;
        FunctionDef def;
        def.computeCv = 0.1;
        const int ops = static_cast<int>(
            rng_.uniformInt(std::int64_t{1}, std::int64_t{4}));
        bool read = false;
        for (int i = 0; i < ops; ++i) {
            const double roll = rng_.uniform();
            if (roll < 0.40) {
                def.body.push_back(Op::compute(msToTicks(
                    rng_.uniform(1.0, 8.0))));
            } else if (roll < 0.62) {
                const int bank = static_cast<int>(rng_.uniformInt(
                    std::int64_t{0}, std::int64_t{3}));
                def.body.push_back(Op::storageRead(
                    [bank, zone = zone_](const Env& e) {
                        return strFormat(
                            "fz%d_%d:%s", zone, bank,
                            e.input.at("key").toString().c_str());
                    },
                    strFormat("r%d", i)));
                read = true;
            } else if (roll < 0.80) {
                const int bank = static_cast<int>(rng_.uniformInt(
                    std::int64_t{0}, std::int64_t{3}));
                def.body.push_back(Op::storageWrite(
                    [bank, zone = zone_](const Env& e) {
                        return strFormat(
                            "fz%d_%d:%s", zone, bank,
                            e.input.at("key").toString().c_str());
                    },
                    [](const Env& e) {
                        Value rec = Value::object({});
                        rec["v"] = Value(intOr(e.input.at("salt"), 1));
                        return rec;
                    }));
            } else if (roll < 0.88) {
                def.body.push_back(Op::http());
            } else if (roll < 0.94) {
                def.body.push_back(Op::fileWrite([](const Env&) {
                    return std::string("tmp.dat");
                }));
            } else {
                def.body.push_back(Op::setVar(
                    strFormat("s%d", i), [](const Env& e) {
                        return Value(intOr(e.input.at("salt"), 0) + 1);
                    }));
            }
        }
        const bool uses_read = read;
        def.output = [uses_read](const Env& e) {
            std::int64_t acc =
                bucketOf(e.input.toString(), 97);
            if (uses_read) {
                for (int i = 0; i < 4; ++i) {
                    const Value& v = e.var(strFormat("r%d", i));
                    if (v.isObject())
                        acc = (acc * 17 + intOr(v.at("v"), 0)) % 1009;
                }
            }
            Value out = Value::object({});
            out["v"] = Value(acc);
            out["key"] = e.input.at("key");
            out["salt"] = e.input.at("salt");
            return out;
        };
        return def;
    }

    std::string
    genFunction(bool allow_calls)
    {
        FunctionDef def = genBody(allow_calls);
        def.name = nextName();
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    /** Loop condition: true while input.iter < 2. */
    std::string
    genLoopCondFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(1.5)));
        def.output = [](const Env& e) {
            return Value(intOr(e.input.at("iter"), 0) < 2);
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    /** Loop body: passes the input through with iter incremented. */
    std::string
    genLoopBodyFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(2.0)));
        def.output = [](const Env& e) {
            Value out = e.input;
            out["iter"] = Value(intOr(e.input.at("iter"), 0) + 1);
            return out;
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    std::string
    genCondFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(rng_.uniform(1.0, 4.0))));
        const int field = static_cast<int>(
            rng_.uniformInt(std::int64_t{0}, std::int64_t{2}));
        def.output = [field](const Env& e) {
            return e.input.at(strFormat("b%d", field));
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    void
    finishApp(Application& app)
    {
        app.inputGen = [](Rng& rng) {
            Value v = Value::object({});
            v["key"] = Value(strFormat(
                "k%llu",
                static_cast<unsigned long long>(rng.zipf(12, 1.4))));
            v["salt"] = Value(rng.uniformInt(std::int64_t{0},
                                             std::int64_t{5}));
            for (int b = 0; b < 3; ++b)
                v[strFormat("b%d", b)] = Value(rng.bernoulli(0.85));
            return v;
        };
        const int zones = nextZone_;
        app.seedStore = [zones](KvStore& store, Rng& rng) {
            for (int zone = 0; zone < zones; ++zone) {
                for (int bank = 0; bank < 4; ++bank) {
                    for (int k = 0; k < 12; ++k) {
                        store.put(
                            strFormat("fz%d_%d:\"k%d\"", zone, bank,
                                      k),
                            Value::object(
                                {{"v", Value(rng.uniformInt(
                                          std::int64_t{0},
                                          std::int64_t{99}))}}));
                    }
                }
            }
        };
    }

    Rng rng_;
    Application* app_ = nullptr;
    std::uint32_t counter_ = 0;
    int zone_ = 0;
    int nextZone_ = 1;
};

struct Outcome
{
    std::vector<Value> responses;
    std::uint64_t fingerprint = 0;
};

Outcome
runApp(const Application& app, bool speculative, SpecConfig config,
       std::uint64_t seed, std::size_t requests)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.spec = config;
    options.seed = seed;
    FaasPlatform platform(options);
    platform.deploy(app);
    Outcome out;
    for (std::size_t i = 0; i < requests; ++i) {
        Value input = app.inputGen(platform.inputRng());
        auto r = platform.invokeSync(app, std::move(input));
        out.responses.push_back(r.response);
    }
    out.fingerprint = platform.store().fingerprint();
    return out;
}

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzEquivalence, ExplicitAppMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 2654435761ull + 1);
    Application app = fuzzer.explicitApp();

    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;

    Outcome base = runApp(app, false, {}, 17, 18);
    Outcome spec = runApp(app, true, aggressive, 17, 18);
    ASSERT_EQ(base.responses.size(), spec.responses.size());
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        ASSERT_EQ(base.responses[i].toString(),
                  spec.responses[i].toString())
            << "seed " << GetParam() << " request " << i;
    }
    EXPECT_EQ(base.fingerprint, spec.fingerprint)
        << "seed " << GetParam();
}

TEST_P(FuzzEquivalence, ImplicitAppMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 40503ull + 7);
    Application app = fuzzer.implicitApp();

    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;

    Outcome base = runApp(app, false, {}, 23, 18);
    Outcome spec = runApp(app, true, aggressive, 23, 18);
    ASSERT_EQ(base.responses.size(), spec.responses.size());
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        ASSERT_EQ(base.responses[i].toString(),
                  spec.responses[i].toString())
            << "seed " << GetParam() << " request " << i;
    }
    EXPECT_EQ(base.fingerprint, spec.fingerprint)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<std::uint64_t>(0, 60));

} // namespace
} // namespace specfaas
