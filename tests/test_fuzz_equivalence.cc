/**
 * @file
 * Randomized equivalence fuzzing.
 *
 * Generates random applications (via tests/fuzz_apps.hh) — random
 * explicit workflow trees (sequences, branches, loops, parallel
 * sections) and random implicit call trees (gathers, guarded calls),
 * with random function bodies mixing compute, global reads/writes,
 * HTTP, temp files and local steps — and checks the core correctness
 * property on each: for the same request sequence, a SpecFaaS run must
 * produce exactly the baseline's responses and final global-store
 * state, under aggressive speculation settings.
 *
 * On top of the fresh-app differential, this suite covers the replay
 * fast paths (memoized repeats of one input), loop-carried storage
 * dependences, and determinism of the engine counters themselves
 * (same seed twice ⇒ identical squash/launch/commit totals).
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/logging.hh"
#include "fuzz_apps.hh"
#include "platform/platform.hh"
#include "sim/sim_context.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

using fuzz::AppFuzzer;
using fuzz::Outcome;
using fuzz::runApp;
using fuzz::runAppInputs;

SpecConfig
aggressiveConfig()
{
    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;
    return aggressive;
}

void
expectSameOutcome(const Outcome& base, const Outcome& spec,
                  std::uint64_t seed)
{
    ASSERT_EQ(base.responses.size(), spec.responses.size());
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        ASSERT_EQ(base.responses[i].toString(),
                  spec.responses[i].toString())
            << "seed " << seed << " request " << i;
    }
    EXPECT_EQ(base.fingerprint, spec.fingerprint) << "seed " << seed;
}

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzEquivalence, ExplicitAppMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 2654435761ull + 1);
    Application app = fuzzer.explicitApp();

    Outcome base = runApp(app, false, {}, 17, 18);
    Outcome spec = runApp(app, true, aggressiveConfig(), 17, 18);
    expectSameOutcome(base, spec, GetParam());
}

TEST_P(FuzzEquivalence, ImplicitAppMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 40503ull + 7);
    Application app = fuzzer.implicitApp();

    Outcome base = runApp(app, false, {}, 23, 18);
    Outcome spec = runApp(app, true, aggressiveConfig(), 23, 18);
    expectSameOutcome(base, spec, GetParam());
}

/**
 * Loop-carrying apps: every iteration reads the record the previous
 * iteration wrote, so memoized/predicted iteration outputs that skip
 * the read-modify-write would corrupt both the carry and the store.
 */
TEST_P(FuzzEquivalence, LoopCarryAppMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 6364136223846793005ull + 11);
    Application app = fuzzer.loopApp();

    Outcome base = runApp(app, false, {}, 29, 18);
    Outcome spec = runApp(app, true, aggressiveConfig(), 29, 18);
    expectSameOutcome(base, spec, GetParam());
}

/**
 * Memoized replay: repeat one input until the memoization tables are
 * hot, so later requests ride the replay fast path (pure skips and
 * predicted outputs). The replayed run must still match a baseline
 * fed the identical input list.
 */
TEST_P(FuzzEquivalence, MemoizedReplayMatchesBaseline)
{
    AppFuzzer fuzzer(GetParam() * 2654435761ull + 1);
    Application app = fuzzer.explicitApp();

    Rng input_rng(31);
    std::vector<Value> inputs;
    const Value repeated = app.inputGen(input_rng);
    for (int i = 0; i < 10; ++i)
        inputs.push_back(repeated);
    // A couple of fresh inputs after the hot streak, so mispredicted
    // replays of a now-stale memo entry get exercised too.
    inputs.push_back(app.inputGen(input_rng));
    inputs.push_back(app.inputGen(input_rng));

    Outcome base = runAppInputs(app, false, {}, 37, inputs);
    Outcome spec = runAppInputs(app, true, aggressiveConfig(), 37,
                                inputs);
    expectSameOutcome(base, spec, GetParam());
}

/**
 * Engine determinism: two speculative runs with identical seeds must
 * agree not just on outputs but on the internal event totals —
 * speculative launches, squashes and commits. A drift here means some
 * decision consumed nondeterministic state even though the outputs
 * happened to converge.
 */
TEST_P(FuzzEquivalence, SameSeedRunsHaveIdenticalCounters)
{
    AppFuzzer fuzzer(GetParam() * 40503ull + 7);
    Application app = fuzzer.implicitApp();

    Outcome first = runApp(app, true, aggressiveConfig(), 41, 12);
    Outcome second = runApp(app, true, aggressiveConfig(), 41, 12);

    EXPECT_EQ(first.squashes, second.squashes)
        << "seed " << GetParam();
    EXPECT_EQ(first.speculativeLaunches, second.speculativeLaunches)
        << "seed " << GetParam();
    EXPECT_EQ(first.commits, second.commits) << "seed " << GetParam();
    EXPECT_EQ(first.fingerprint, second.fingerprint)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<std::uint64_t>(0, 60));

/**
 * The fuzz differential run through the parallel harness: per-seed
 * equivalence must hold on every worker, and the batched verdicts
 * must not depend on the job count.
 */
TEST(FuzzParallel, BatchedEquivalenceIsJobCountIndependent)
{
    auto run_batch = [](std::size_t jobs) {
        SimContext session;
        std::vector<std::function<std::uint64_t(SimContext&)>> tasks;
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            tasks.push_back([seed](SimContext& context) {
                AppFuzzer fuzzer(seed * 2654435761ull + 1);
                Application app = fuzzer.explicitApp();
                const Outcome base =
                    runApp(app, false, {}, 17, 8, &context);
                const Outcome spec = runApp(
                    app, true, aggressiveConfig(), 17, 8, &context);
                EXPECT_EQ(base.fingerprint, spec.fingerprint)
                    << "seed " << seed;
                return base.fingerprint ^ (spec.fingerprint << 1);
            });
        }
        return runSimTasks<std::uint64_t>(jobs, std::move(tasks),
                                          &session);
    };
    EXPECT_EQ(run_batch(1), run_batch(4));
}

} // namespace
} // namespace specfaas
