/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats_util.hh"

namespace specfaas {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.uniformInt(std::uint64_t{10});
        EXPECT_LT(x, 10u);
    }
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.uniformInt(std::int64_t{-3}, std::int64_t{3});
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.bernoulli(0.7) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.7, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.1);
    EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, LognormalMeanMatches)
{
    Rng rng(19);
    std::vector<double> xs;
    for (int i = 0; i < 40000; ++i)
        xs.push_back(rng.lognormal(8.0, 0.3));
    EXPECT_NEAR(mean(xs), 8.0, 0.25);
    for (double x : xs)
        EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng rng(19);
    EXPECT_DOUBLE_EQ(rng.lognormal(8.0, 0.0), 8.0);
}

TEST(Rng, ZipfSkewsTowardLowIndices)
{
    Rng rng(23);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 30000; ++i)
        ++counts[rng.zipf(100, 1.4)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 30000 / 10); // head carries real mass
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(counts[i], 0);
}

TEST(Rng, WeightedPickHonorsWeights)
{
    Rng rng(29);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.weightedPick(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

} // namespace
} // namespace specfaas
