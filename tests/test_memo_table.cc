/** @file Unit tests for the memoization tables. */

#include <gtest/gtest.h>

#include "specfaas/memo_table.hh"

namespace specfaas {
namespace {

Value
input(int i)
{
    Value v = Value::object({});
    v["k"] = Value(i);
    return v;
}

TEST(MemoTable, MissThenHit)
{
    MemoTable table;
    EXPECT_EQ(table.lookup(input(1)), nullptr);
    MemoRow row;
    row.output = Value("out");
    table.update(input(1), std::move(row));
    const MemoRow* hit = table.lookup(input(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->output.asString(), "out");
}

TEST(MemoTable, UpdateOverwrites)
{
    MemoTable table;
    MemoRow r1;
    r1.output = Value(1);
    table.update(input(1), std::move(r1));
    MemoRow r2;
    r2.output = Value(2);
    table.update(input(1), std::move(r2));
    EXPECT_EQ(table.lookup(input(1))->output.asInt(), 2);
    EXPECT_EQ(table.size(), 1u);
}

TEST(MemoTable, LruEvictionAtCapacity)
{
    MemoTable table(2);
    table.update(input(1), MemoRow{Value(1), {}});
    table.update(input(2), MemoRow{Value(2), {}});
    (void)table.lookup(input(1)); // refresh 1; 2 is now LRU
    table.update(input(3), MemoRow{Value(3), {}});
    EXPECT_NE(table.lookup(input(1)), nullptr);
    EXPECT_EQ(table.lookup(input(2)), nullptr);
    EXPECT_NE(table.lookup(input(3)), nullptr);
    EXPECT_EQ(table.size(), 2u);
}

TEST(MemoTable, HitRateAccounting)
{
    MemoTable table;
    table.update(input(1), MemoRow{Value(1), {}});
    (void)table.lookup(input(1));
    (void)table.lookup(input(2));
    EXPECT_EQ(table.lookups(), 2u);
    EXPECT_EQ(table.hits(), 1u);
    EXPECT_NEAR(table.hitRate(), 0.5, 1e-9);
}

TEST(MemoTable, CalleeArgsStored)
{
    MemoTable table;
    MemoRow row;
    row.output = Value("o");
    row.calleeArgs[3] = Value("args3");
    row.calleeArgs[7] = Value("args7");
    table.update(input(1), std::move(row));
    const MemoRow* hit = table.lookup(input(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->calleeArgs.size(), 2u);
    EXPECT_EQ(hit->calleeArgs.at(3).asString(), "args3");
}

TEST(MemoTable, FootprintGrowsWithRows)
{
    MemoTable table;
    EXPECT_EQ(table.footprintBytes(), 0u);
    table.update(input(1), MemoRow{Value("payload"), {}});
    const std::size_t one = table.footprintBytes();
    EXPECT_GT(one, 0u);
    table.update(input(2), MemoRow{Value("payload"), {}});
    EXPECT_GT(table.footprintBytes(), one);
}

TEST(MemoStore, PerFunctionTables)
{
    MemoStore store(10);
    store.table("f").update(input(1), MemoRow{Value(1), {}});
    store.table("g").update(input(1), MemoRow{Value(2), {}});
    EXPECT_EQ(store.table("f").lookup(input(1))->output.asInt(), 1);
    EXPECT_EQ(store.table("g").lookup(input(1))->output.asInt(), 2);
    EXPECT_EQ(store.find("missing"), nullptr);
    EXPECT_EQ(store.totalRows(), 2u);
    EXPECT_GT(store.totalFootprintBytes(), 0u);
}

TEST(MemoStore, OverallHitRate)
{
    MemoStore store;
    store.table("f").update(input(1), MemoRow{Value(1), {}});
    (void)store.table("f").lookup(input(1)); // hit
    (void)store.table("g").lookup(input(1)); // miss
    EXPECT_NEAR(store.overallHitRate(), 0.5, 1e-9);
}

TEST(MemoStore, CapacityAppliesPerFunction)
{
    MemoStore store(1);
    store.table("f").update(input(1), MemoRow{Value(1), {}});
    store.table("f").update(input(2), MemoRow{Value(2), {}});
    EXPECT_EQ(store.table("f").size(), 1u);
}

} // namespace
} // namespace specfaas
