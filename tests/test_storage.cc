/** @file Unit tests for the global KvStore and per-node LocalCache. */

#include <gtest/gtest.h>

#include "storage/kv_store.hh"
#include "storage/local_cache.hh"

namespace specfaas {
namespace {

TEST(KvStore, PutGetRoundTrip)
{
    KvStore store;
    store.put("k", Value(42));
    auto v = store.get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asInt(), 42);
}

TEST(KvStore, MissingKeyIsNullopt)
{
    KvStore store;
    EXPECT_FALSE(store.get("nope").has_value());
}

TEST(KvStore, OverwriteReplaces)
{
    KvStore store;
    store.put("k", Value(1));
    store.put("k", Value(2));
    EXPECT_EQ(store.get("k")->asInt(), 2);
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, CountersTrackAccesses)
{
    KvStore store;
    store.put("a", Value(1));
    (void)store.get("a");
    (void)store.get("b");
    EXPECT_EQ(store.writeCount(), 1u);
    EXPECT_EQ(store.readCount(), 2u);
    (void)store.peek("a"); // peek does not count
    EXPECT_EQ(store.readCount(), 2u);
}

TEST(KvStore, EraseAndClear)
{
    KvStore store;
    store.put("a", Value(1));
    EXPECT_TRUE(store.erase("a"));
    EXPECT_FALSE(store.erase("a"));
    store.put("b", Value(2));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.writeCount(), 0u);
}

TEST(KvStore, FingerprintIsOrderIndependentAndContentSensitive)
{
    KvStore a;
    a.put("x", Value(1));
    a.put("y", Value(2));
    KvStore b;
    b.put("y", Value(2));
    b.put("x", Value(1));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.put("x", Value(3));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(LocalCache, HitAfterPut)
{
    LocalCache cache;
    cache.put("k", Value(5), 1);
    auto v = cache.get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asInt(), 5);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(LocalCache, MissCounts)
{
    LocalCache cache;
    EXPECT_FALSE(cache.get("k").has_value());
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(LocalCache, LruEviction)
{
    LocalCache cache(2);
    cache.put("a", Value(1), 1);
    cache.put("b", Value(2), 1);
    (void)cache.get("a"); // refresh a; b becomes LRU
    cache.put("c", Value(3), 1);
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
}

TEST(LocalCache, InvalidateOwnerDropsOnlyTheirEntries)
{
    LocalCache cache;
    cache.put("a", Value(1), /*owner=*/10);
    cache.put("b", Value(2), /*owner=*/20);
    cache.invalidateOwner(10);
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("b").has_value());
}

TEST(LocalCache, OverwriteUpdatesOwner)
{
    LocalCache cache;
    cache.put("a", Value(1), 10);
    cache.put("a", Value(2), 20);
    cache.invalidateOwner(10);
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_EQ(cache.get("a")->asInt(), 2);
}

} // namespace
} // namespace specfaas
