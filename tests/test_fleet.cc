/**
 * @file
 * Unit tests for the dynamic fleet layer: autoscaler policy,
 * keep-alive tracking, node lifecycle, fair-share admission, and the
 * configuration validation at fleet construction.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "fleet/autoscaler.hh"
#include "fleet/eviction.hh"
#include "fleet/fleet.hh"
#include "sim/simulation.hh"

namespace specfaas {
namespace {

AutoscalerConfig
testScalerConfig()
{
    AutoscalerConfig c;
    c.enabled = true;
    c.interval = 100 * kMillisecond;
    c.utilHigh = 0.70;
    c.queueDepthHigh = 64;
    c.utilLow = 0.20;
    c.lowStreak = 3;
    c.scaleUpStep = 16;
    c.scaleDownStep = 8;
    c.cooldown = 500 * kMillisecond;
    return c;
}

ScaleSignals
signals(std::uint32_t ready, double util, std::size_t queue)
{
    ScaleSignals s;
    s.readyNodes = ready;
    s.utilization = util;
    s.controllerQueue = queue;
    return s;
}

TEST(Autoscaler, ScalesUpOnUtilizationPressure)
{
    Autoscaler scaler(testScalerConfig(), 10, 100);
    const ScaleDecision d =
        scaler.evaluate(signals(10, 0.9, 0), kSecond);
    EXPECT_EQ(d.delta, 16);
}

TEST(Autoscaler, ScalesUpOnQueuePressure)
{
    Autoscaler scaler(testScalerConfig(), 10, 100);
    const ScaleDecision d =
        scaler.evaluate(signals(10, 0.1, 200), kSecond);
    EXPECT_EQ(d.delta, 16);
}

TEST(Autoscaler, ScaleUpClampsToMaxNodes)
{
    Autoscaler scaler(testScalerConfig(), 10, 20);
    ScaleSignals s = signals(15, 0.9, 0);
    s.provisioningNodes = 2; // 15 + 2 in flight, room for 3
    EXPECT_EQ(scaler.evaluate(s, kSecond).delta, 3);
    Autoscaler full(testScalerConfig(), 10, 15);
    EXPECT_EQ(full.evaluate(signals(15, 0.9, 0), kSecond).delta, 0);
}

TEST(Autoscaler, CooldownBlocksBackToBackActions)
{
    Autoscaler scaler(testScalerConfig(), 10, 100);
    EXPECT_EQ(scaler.evaluate(signals(10, 0.9, 0), kSecond).delta, 16);
    // Still pressured 100 ms later: inside the 500 ms cooldown.
    EXPECT_EQ(scaler
                  .evaluate(signals(10, 0.9, 0),
                            kSecond + 100 * kMillisecond)
                  .delta,
              0);
    // Past the cooldown the pressure acts again.
    EXPECT_EQ(scaler
                  .evaluate(signals(10, 0.9, 0),
                            kSecond + 600 * kMillisecond)
                  .delta,
              16);
}

TEST(Autoscaler, ScaleDownNeedsSustainedIdle)
{
    Autoscaler scaler(testScalerConfig(), 10, 100);
    const Tick step = 100 * kMillisecond;
    // Two idle ticks are not enough (lowStreak = 3).
    EXPECT_EQ(scaler.evaluate(signals(40, 0.05, 0), step).delta, 0);
    EXPECT_EQ(scaler.evaluate(signals(40, 0.05, 0), 2 * step).delta, 0);
    EXPECT_EQ(scaler.lowStreak(), 2u);
    // A busy tick resets the streak.
    EXPECT_EQ(scaler.evaluate(signals(40, 0.5, 0), 3 * step).delta, 0);
    EXPECT_EQ(scaler.lowStreak(), 0u);
    // Three consecutive idle ticks drain one step.
    EXPECT_EQ(scaler.evaluate(signals(40, 0.05, 0), 4 * step).delta, 0);
    EXPECT_EQ(scaler.evaluate(signals(40, 0.05, 0), 5 * step).delta, 0);
    EXPECT_EQ(scaler.evaluate(signals(40, 0.05, 0), 6 * step).delta,
              -8);
}

TEST(Autoscaler, ScaleDownClampsToMinNodes)
{
    Autoscaler scaler(testScalerConfig(), 10, 100);
    const Tick step = 100 * kMillisecond;
    scaler.evaluate(signals(12, 0.05, 0), step);
    scaler.evaluate(signals(12, 0.05, 0), 2 * step);
    EXPECT_EQ(scaler.evaluate(signals(12, 0.05, 0), 3 * step).delta,
              -2);
    // At the floor nothing happens even when idle persists.
    Autoscaler at_floor(testScalerConfig(), 10, 100);
    at_floor.evaluate(signals(10, 0.05, 0), step);
    at_floor.evaluate(signals(10, 0.05, 0), 2 * step);
    EXPECT_EQ(
        at_floor.evaluate(signals(10, 0.05, 0), 3 * step).delta, 0);
}

TEST(KeepAlive, FixedTtlIgnoresHistory)
{
    EvictionConfig cfg;
    cfg.policy = EvictionConfig::Policy::FixedTtl;
    cfg.fixedTtl = 42 * kSecond;
    KeepAliveTracker tracker(cfg);
    const Symbol fn("keepalive-fixed-fn");
    tracker.noteAcquire(fn, 0);
    tracker.noteAcquire(fn, kMillisecond);
    EXPECT_EQ(tracker.keepAliveFor(fn), 42 * kSecond);
}

TEST(KeepAlive, NoHistoryUsesMaxKeepAlive)
{
    EvictionConfig cfg;
    cfg.policy = EvictionConfig::Policy::Histogram;
    cfg.maxKeepAlive = 90 * kSecond;
    KeepAliveTracker tracker(cfg);
    EXPECT_EQ(tracker.keepAliveFor(Symbol("keepalive-cold-fn")),
              90 * kSecond);
}

TEST(KeepAlive, HistogramCoversObservedGaps)
{
    EvictionConfig cfg;
    cfg.policy = EvictionConfig::Policy::Histogram;
    cfg.keepAlivePercentile = 99.0;
    cfg.minKeepAlive = kMillisecond;
    cfg.maxKeepAlive = 600 * kSecond;
    KeepAliveTracker tracker(cfg);
    const Symbol fn("keepalive-hist-fn");
    // Acquisitions 3 s apart: the keep-alive must cover that gap
    // (next power-of-two bucket), but stay well below the maximum.
    Tick now = 0;
    for (int i = 0; i < 50; ++i) {
        tracker.noteAcquire(fn, now);
        now += 3 * kSecond;
    }
    const Tick keep = tracker.keepAliveFor(fn);
    EXPECT_GE(keep, 3 * kSecond);
    EXPECT_LE(keep, 8 * kSecond);
    EXPECT_EQ(tracker.observations(fn), 49u);
}

TEST(KeepAlive, ClampsToConfiguredBounds)
{
    EvictionConfig cfg;
    cfg.policy = EvictionConfig::Policy::Histogram;
    cfg.minKeepAlive = 10 * kSecond;
    cfg.maxKeepAlive = 20 * kSecond;
    KeepAliveTracker tracker(cfg);
    const Symbol fast("keepalive-fast-fn");
    for (int i = 0; i < 20; ++i)
        tracker.noteAcquire(fast, i * kMillisecond);
    EXPECT_EQ(tracker.keepAliveFor(fast), 10 * kSecond); // clamp up
    const Symbol slow("keepalive-slow-fn");
    for (int i = 0; i < 20; ++i)
        tracker.noteAcquire(slow, i * 300 * kSecond);
    EXPECT_EQ(tracker.keepAliveFor(slow), 20 * kSecond); // clamp down
}

FleetConfig
dynamicConfig()
{
    FleetConfig fleet;
    fleet.dynamics = true;
    fleet.minNodes = 2;
    fleet.maxNodes = 8;
    fleet.provisioningDelay = 200 * kMillisecond;
    fleet.autoscaler.enabled = false; // lifecycle driven by hand
    fleet.eviction.policy = EvictionConfig::Policy::None;
    return fleet;
}

ClusterConfig
smallCluster()
{
    ClusterConfig cluster;
    cluster.numNodes = 3;
    cluster.coresPerNode = 4;
    return cluster;
}

TEST(Fleet, StaticFleetSchedulesNoEvents)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), FleetConfig{});
    EXPECT_FALSE(fleet.dynamic());
    sim.events().run();
    EXPECT_EQ(sim.now(), 0); // nothing pending, no daemons
    EXPECT_EQ(fleet.readyWorkers(), 3u);
    EXPECT_EQ(fleet.liveCores(), 12u);
    EXPECT_EQ(fleet.stats().peakReadyNodes, 3u);
}

TEST(Fleet, ProvisionBecomesReadyAfterDelay)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), dynamicConfig());
    fleet.provision(2);
    EXPECT_EQ(fleet.provisioningWorkers(), 2u);
    EXPECT_EQ(fleet.readyWorkers(), 3u);
    EXPECT_FALSE(fleet.placeable(3));
    // The provisioning daemon needs a live event to run alongside.
    sim.events().schedule(300 * kMillisecond, []() {});
    sim.events().run();
    EXPECT_EQ(fleet.provisioningWorkers(), 0u);
    EXPECT_EQ(fleet.readyWorkers(), 5u);
    EXPECT_TRUE(fleet.placeable(3));
    EXPECT_EQ(fleet.stats().provisioned, 2u);
    EXPECT_EQ(fleet.stats().peakReadyNodes, 5u);
    EXPECT_EQ(fleet.liveCores(), 20u);
}

TEST(Fleet, DrainStopsPlacementAndEvictsWarmPool)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), dynamicConfig());
    // Park a warm container on every node, round-robin.
    fleet.containers().prewarm(Symbol("drain-test-fn"), 3);
    fleet.drain(1);
    // The least-loaded Ready worker with the highest id drains.
    EXPECT_EQ(fleet.state(2), NodeState::Draining);
    EXPECT_FALSE(fleet.placeable(2));
    EXPECT_EQ(fleet.readyWorkers(), 2u);
    EXPECT_EQ(fleet.stats().evictions, 1u); // its warm container
    // liveCores still counts draining nodes (not yet retired).
    EXPECT_EQ(fleet.liveCores(), 12u);
}

TEST(Fleet, DrainKeepsMinNodes)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), dynamicConfig());
    fleet.drain(10); // asks for far more than allowed
    EXPECT_EQ(fleet.readyWorkers(), 2u); // minNodes floor
}

TEST(Fleet, FailedNodeIsNotPlaceable)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), FleetConfig{});
    EXPECT_TRUE(fleet.placeable(1));
    fleet.failNode(1);
    EXPECT_FALSE(fleet.placeable(1));
    EXPECT_EQ(fleet.state(1), NodeState::Ready); // down, not retired
    fleet.restoreNode(1);
    EXPECT_TRUE(fleet.placeable(1));
}

FleetConfig
fairShareConfig()
{
    FleetConfig fleet = dynamicConfig();
    fleet.admission.fairShare = true;
    fleet.admission.engageQueueDepth = 0; // engage on any queue
    fleet.admission.fairFactor = 1.0;
    fleet.admission.minTenantInFlight = 2;
    return fleet;
}

TEST(Fleet, FairShareThrottlesTheHogTenantOnly)
{
    Simulation sim;
    Fleet fleet(sim, smallCluster(), fairShareConfig());
    EXPECT_TRUE(fleet.admissionActive());
    // Back up the control plane so fair sharing engages.
    for (std::uint32_t i = 0;
         i < smallCluster().controllerThreads + 2; ++i)
        fleet.controller().submit(10 * kSecond, []() {});
    ASSERT_GT(fleet.controller().queueLength(), 0u);

    const Symbol hog("fair-hog-tenant");
    const Symbol meek("fair-meek-tenant");
    ASSERT_TRUE(fleet.admit(meek)); // both tenants active
    std::uint64_t admitted = 0;
    while (fleet.admit(hog) && admitted < 100)
        ++admitted;
    EXPECT_LT(admitted, 100u); // the hog eventually throttles
    EXPECT_GT(fleet.stats().fairRejects, 0u);
    // The meek tenant is under its share and still admits.
    EXPECT_TRUE(fleet.admit(meek));
    EXPECT_EQ(fleet.tenantInFlight(meek), 2u);
    // Completions free the hog's budget again.
    const std::uint64_t before = fleet.tenantInFlight(hog);
    fleet.complete(hog);
    EXPECT_EQ(fleet.tenantInFlight(hog), before - 1);
}

TEST(Fleet, AdmissionInactiveWithoutDynamics)
{
    Simulation sim;
    FleetConfig fleet_cfg;
    fleet_cfg.admission.fairShare = true; // ignored: static fleet
    Fleet fleet(sim, smallCluster(), fleet_cfg);
    EXPECT_FALSE(fleet.admissionActive());
    EXPECT_TRUE(fleet.admit(Symbol("any-tenant")));
}

using FleetConfigDeath = ::testing::Test;

TEST(FleetConfigDeath, ZeroControllerThreadsDies)
{
    ClusterConfig cluster = smallCluster();
    cluster.controllerThreads = 0;
    EXPECT_DEATH(
        {
            Simulation sim;
            Fleet fleet(sim, cluster, FleetConfig{});
        },
        "controllerThreads");
}

TEST(FleetConfigDeath, ZeroNodesDies)
{
    ClusterConfig cluster = smallCluster();
    cluster.numNodes = 0;
    EXPECT_DEATH(
        {
            Simulation sim;
            Fleet fleet(sim, cluster, FleetConfig{});
        },
        "numNodes");
}

TEST(FleetConfigDeath, MinNodesAboveInitialDies)
{
    FleetConfig fleet_cfg = dynamicConfig();
    fleet_cfg.minNodes = 99;
    EXPECT_DEATH(
        {
            Simulation sim;
            Fleet fleet(sim, smallCluster(), fleet_cfg);
        },
        "minNodes");
}

TEST(FleetConfigDeath, MaxNodesBelowInitialDies)
{
    FleetConfig fleet_cfg = dynamicConfig();
    fleet_cfg.maxNodes = 2;
    EXPECT_DEATH(
        {
            Simulation sim;
            Fleet fleet(sim, smallCluster(), fleet_cfg);
        },
        "maxNodes");
}

TEST(Cluster, ViewDelegatesToFleet)
{
    Simulation sim;
    Cluster cluster(sim, smallCluster());
    EXPECT_EQ(cluster.totalCores(), 12u);
    EXPECT_EQ(cluster.nodes().size(), 3u);
    EXPECT_EQ(&cluster.node(1), cluster.nodes()[1].get());
    EXPECT_FALSE(cluster.fleet().dynamic());
    cluster.failNode(0);
    EXPECT_FALSE(cluster.fleet().placeable(0));
    cluster.restoreNode(0);
    EXPECT_TRUE(cluster.fleet().placeable(0));
}

} // namespace
} // namespace specfaas
