/** @file Loop directives (§II-A while / do_while) on both engines. */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "workflow/flow_program.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

/**
 * Loop app: seq(Init, while(NotDone, Step), Final).
 * Init emits {n: 0, lim}; Step increments n; NotDone tests n < lim.
 */
Application
loopApp(bool do_while = false)
{
    Application app;
    app.name = "loop";
    app.suite = "test";
    app.type = WorkflowType::Explicit;

    app.functions.push_back(worker("LpInit", 3.0, [](const Env& e) {
        Value out = Value::object({});
        out["n"] = Value(0);
        out["lim"] = e.input.at("lim");
        return out;
    }));
    app.functions.push_back(worker("LpCond", 2.0, [](const Env& e) {
        return Value(e.input.at("n").asInt() <
                     e.input.at("lim").asInt());
    }));
    app.functions.push_back(worker("LpStep", 4.0, [](const Env& e) {
        Value out = Value::object({});
        out["n"] = Value(e.input.at("n").asInt() + 1);
        out["lim"] = e.input.at("lim");
        return out;
    }));
    app.functions.push_back(worker("LpFinal", 3.0, [](const Env& e) {
        Value out = Value::object({});
        out["iterations"] = e.input.at("n");
        return out;
    }));

    WorkflowNode loop =
        do_while ? doWhileLoop("LpCond", task("LpStep"))
                 : whileLoop("LpCond", task("LpStep"));
    app.workflow =
        sequence({task("LpInit"), std::move(loop), task("LpFinal")});
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["lim"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{5}));
        return v;
    };
    return app;
}

TEST(Loops, CompilerBuildsBackEdge)
{
    auto program = compileWorkflow(
        sequence({whileLoop("c", task("b")), task("after")}));
    const FlowNode& branch = program.node(program.entry);
    ASSERT_EQ(branch.kind, FlowNode::Kind::Branch);
    const FlowNode& body = program.node(branch.targets[0]);
    EXPECT_EQ(body.function, "b");
    // The body loops back to the condition.
    EXPECT_EQ(body.next, program.entry);
    // Falsy exits to the continuation.
    EXPECT_EQ(program.node(branch.targets[1]).function, "after");
}

TEST(Loops, DoWhileEntersBodyFirst)
{
    auto program = compileWorkflow(doWhileLoop("c", task("b")));
    EXPECT_EQ(program.node(program.entry).function, "b");
    const FlowIndex cond = program.node(program.entry).next;
    EXPECT_EQ(program.node(cond).kind, FlowNode::Kind::Branch);
}

TEST(Loops, BaselineIteratesCorrectCount)
{
    Application app = loopApp();
    FaasPlatform platform;
    platform.deploy(app);
    for (std::int64_t lim : {0, 1, 3}) {
        auto r = platform.invokeSync(
            app, Value::object({{"lim", Value(lim)}}));
        EXPECT_EQ(r.response.at("iterations").asInt(), lim)
            << "lim=" << lim;
        // Init + (lim+1 cond evaluations) + lim steps + Final.
        EXPECT_EQ(r.functionsExecuted,
                  static_cast<std::uint32_t>(2 + (lim + 1) + lim));
    }
}

TEST(Loops, DoWhileRunsBodyAtLeastOnce)
{
    Application app = loopApp(/*do_while=*/true);
    FaasPlatform platform;
    platform.deploy(app);
    auto r =
        platform.invokeSync(app, Value::object({{"lim", Value(0)}}));
    EXPECT_EQ(r.response.at("iterations").asInt(), 1);
}

TEST(Loops, SpecMatchesBaselineAcrossSeeds)
{
    Application app = loopApp();
    for (std::uint64_t seed : {3ull, 14ull, 29ull}) {
        PlatformOptions base_options;
        base_options.seed = seed;
        FaasPlatform base(base_options);
        base.deploy(app);

        PlatformOptions spec_options;
        spec_options.seed = seed;
        spec_options.speculative = true;
        spec_options.spec.bpDeadBand = 0.0;
        FaasPlatform spec(spec_options);
        spec.deploy(app);

        for (int i = 0; i < 25; ++i) {
            Value input = app.inputGen(base.inputRng());
            (void)spec.inputRng().next(); // keep streams aligned
            auto rb = base.invokeSync(app, input);
            auto rs = spec.invokeSync(app, input);
            ASSERT_EQ(rb.response.toString(), rs.response.toString())
                << "seed " << seed << " request " << i;
            ASSERT_EQ(rb.executedSequence, rs.executedSequence);
        }
    }
}

TEST(Loops, SpeculationLearnsLoopTrip)
{
    // With a dominant trip count, the predictor learns the loop
    // pattern and overlaps iterations.
    Application app = loopApp();
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["lim"] = Value(rng.bernoulli(0.9) ? 3 : 1);
        return v;
    };
    PlatformOptions options;
    options.speculative = true;
    options.seed = 4;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 30);
    auto r =
        platform.invokeSync(app, Value::object({{"lim", Value(3)}}));
    EXPECT_EQ(r.response.at("iterations").asInt(), 3);
    EXPECT_GT(r.speculativeLaunches, 0u);
}

TEST(Loops, LoopAroundParallelSection)
{
    // Stress the fork-reuse guard: the loop body is a parallel pair.
    Application app;
    app.name = "loop-par";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(worker("QInit", 2.0, [](const Env& e) {
        Value out = Value::object({});
        out["n"] = Value(0);
        out["lim"] = e.input.at("lim");
        return out;
    }));
    app.functions.push_back(worker("QCond", 2.0, [](const Env& e) {
        return Value(e.input.at("n").asInt() <
                     e.input.at("lim").asInt());
    }));
    app.functions.push_back(worker("QlA", 3.0, fns::passInput()));
    app.functions.push_back(worker("QlB", 3.0, fns::passInput()));
    app.functions.push_back(worker("QJoin", 2.0, [](const Env& e) {
        // Input is the [armA, armB] array; advance the counter.
        const Value& arm = e.input.asArray()[0];
        Value out = Value::object({});
        out["n"] = Value(arm.at("n").asInt() + 1);
        out["lim"] = arm.at("lim");
        return out;
    }));
    app.workflow = sequence(
        {task("QInit"),
         whileLoop("QCond",
                   sequence({parallel({task("QlA"), task("QlB")}),
                             task("QJoin")}))});
    app.inputGen = [](Rng&) {
        return Value::object({{"lim", Value(2)}});
    };

    for (bool speculative : {false, true}) {
        PlatformOptions options;
        options.speculative = speculative;
        options.seed = 8;
        FaasPlatform platform(options);
        platform.deploy(app);
        auto r = platform.invokeSync(
            app, Value::object({{"lim", Value(2)}}));
        EXPECT_EQ(r.response.at("n").asInt(), 2)
            << (speculative ? "spec" : "base");
    }
}

} // namespace
} // namespace specfaas
