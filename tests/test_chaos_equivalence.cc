/**
 * @file
 * Chaos differential testing: random applications under random
 * deterministic fault plans.
 *
 * Four invariants, checked against the baseline engine running the
 * SAME fault plan:
 *
 *   1. Equivalence — a SpecFaaS run produces exactly the baseline's
 *      responses and final global-store state.
 *   2. Liveness — every request terminates (no recovery livelock),
 *      enforced with a bounded event loop instead of a test timeout.
 *   3. Replayability — the same seed yields a byte-identical Chrome
 *      trace, so any chaos failure replays exactly.
 *   4. Isolation — no committed effect survives from a squashed or
 *      crashed speculative function (checked both by the store
 *      fingerprint equivalence and by a targeted poison-write app).
 *
 * Every fault kind also gets a targeted test proving, through the
 * injector's counters, that the fault actually fired — a chaos suite
 * whose faults never trigger is green but worthless.
 *
 * Failing (app-seed, plan-seed) pairs belong in
 * tests/corpus/chaos_seeds.txt (see the header there); the corpus is
 * replayed by ChaosCorpus.ReplayAllEntries below.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "fuzz_apps.hh"
#include "obs/trace_export.hh"
#include "platform/platform.hh"
#include "sim/sim_context.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace {

using fuzz::AppFuzzer;
using fuzz::ChaosOutcome;
using fuzz::runChaos;

SpecConfig
aggressiveConfig()
{
    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;
    return aggressive;
}

/** Build the random chaos app of one (kind, appSeed) pair. */
Application
chaosApp(bool explicit_app, std::uint64_t app_seed)
{
    AppFuzzer fuzzer(app_seed * 2654435761ull + 101);
    return explicit_app ? fuzzer.explicitApp() : fuzzer.implicitApp();
}

/** Build the random fault plan of one (app, planSeed) pair. */
FaultPlan
chaosPlan(const Application& app, std::uint64_t plan_seed)
{
    Rng plan_rng(plan_seed * 1000003ull + 29);
    return FaultPlan::random(plan_rng, fuzz::functionNames(app),
                             ClusterConfig{}.numNodes);
}

/**
 * Run one differential chaos case on both engines and assert the
 * liveness + equivalence invariants. On failure the plan's text spec
 * is printed so the case replays verbatim.
 */
void
expectChaosEquivalent(const Application& app, const FaultPlan& plan,
                      const std::string& label)
{
    ChaosOutcome base = runChaos(app, false, {}, 53, 10, plan);
    ChaosOutcome spec =
        runChaos(app, true, aggressiveConfig(), 53, 10, plan);

    ASSERT_TRUE(base.allTerminated)
        << label << ": baseline request hung under plan:\n"
        << plan.toSpec();
    ASSERT_TRUE(spec.allTerminated)
        << label << ": speculative request hung under plan:\n"
        << plan.toSpec();
    ASSERT_EQ(base.responses.size(), spec.responses.size()) << label;
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        ASSERT_EQ(base.responses[i].toString(),
                  spec.responses[i].toString())
            << label << " request " << i << " under plan:\n"
            << plan.toSpec();
    }
    EXPECT_EQ(base.fingerprint, spec.fingerprint)
        << label << ": store state diverged under plan:\n"
        << plan.toSpec();
}

void
runChaosCase(bool explicit_app, std::uint64_t app_seed,
             std::uint64_t plan_seed)
{
    const Application app = chaosApp(explicit_app, app_seed);
    const FaultPlan plan = chaosPlan(app, plan_seed);
    expectChaosEquivalent(
        app, plan,
        strFormat("%s app-seed %llu plan-seed %llu",
                  explicit_app ? "explicit" : "implicit",
                  static_cast<unsigned long long>(app_seed),
                  static_cast<unsigned long long>(plan_seed)));
}

// ---------------------------------------------------------------------
// Invariants 1, 2 and 4 at scale: 260 app seeds x 2 plan seeds.
// ---------------------------------------------------------------------

class ChaosEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChaosEquivalence, RandomAppUnderRandomFaultsMatchesBaseline)
{
    const std::uint64_t seed = GetParam();
    for (std::uint64_t plan_idx = 0; plan_idx < 2; ++plan_idx)
        runChaosCase(seed % 2 == 0, seed, seed * 2 + plan_idx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosEquivalence,
                         ::testing::Range<std::uint64_t>(0, 260));

// ---------------------------------------------------------------------
// Invariant 3: replayability.
// ---------------------------------------------------------------------

/**
 * One traced speculative chaos run, rendered to Chrome-trace JSON.
 * Each run gets a private SimContext, so no global resets are needed
 * between runs — that isolation is itself part of what this pins.
 */
std::string
tracedChaosJson(std::uint64_t seed)
{
    const Application app = chaosApp(/*explicit_app=*/true, seed);
    const FaultPlan plan = chaosPlan(app, seed);
    SimContext context;
    context.trace().enable(1u << 16);
    ChaosOutcome out = runChaos(app, true, aggressiveConfig(), 53, 6,
                                plan, 4, &context);
    EXPECT_TRUE(out.allTerminated);
    return obs::toChromeTraceJson(context.trace().snapshot());
}

TEST(ChaosDeterminism, SameSeedYieldsByteIdenticalTrace)
{
    for (std::uint64_t seed : {2ull, 7ull, 12ull}) {
        const std::string first = tracedChaosJson(seed);
        const std::string second = tracedChaosJson(seed);
        ASSERT_FALSE(first.empty());
        EXPECT_EQ(first, second) << "trace drift at seed " << seed;
    }
}

TEST(ChaosDeterminism, SameSeedYieldsIdenticalFaultCounters)
{
    const Application app = chaosApp(/*explicit_app=*/false, 9);
    const FaultPlan plan = chaosPlan(app, 9);
    ChaosOutcome first =
        runChaos(app, true, aggressiveConfig(), 53, 8, plan);
    ChaosOutcome second =
        runChaos(app, true, aggressiveConfig(), 53, 8, plan);
    EXPECT_EQ(first.faultsInjected, second.faultsInjected);
    EXPECT_EQ(first.retries, second.retries);
    EXPECT_EQ(first.gaveUp, second.gaveUp);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
}

// ---------------------------------------------------------------------
// Parallel-harness differential: running chaos cases through
// runSimTasks() with any job count must be indistinguishable from a
// serial run — same verdicts, same merged trace, same counters.
// ---------------------------------------------------------------------

/** Comparable digest of one chaos case (both engines). */
std::string
chaosCaseDigest(bool explicit_app, std::uint64_t app_seed,
                std::uint64_t plan_seed, SimContext& context)
{
    const Application app = chaosApp(explicit_app, app_seed);
    const FaultPlan plan = chaosPlan(app, plan_seed);
    const ChaosOutcome base =
        runChaos(app, false, {}, 53, 6, plan, 4, &context);
    const ChaosOutcome spec = runChaos(app, true, aggressiveConfig(),
                                       53, 6, plan, 4, &context);
    std::string digest = strFormat(
        "%s/%llu/%llu terminated=%d/%d faults=%llu/%llu fp=%llx/%llx",
        explicit_app ? "explicit" : "implicit",
        static_cast<unsigned long long>(app_seed),
        static_cast<unsigned long long>(plan_seed),
        base.allTerminated ? 1 : 0, spec.allTerminated ? 1 : 0,
        static_cast<unsigned long long>(base.faultsInjected),
        static_cast<unsigned long long>(spec.faultsInjected),
        static_cast<unsigned long long>(base.fingerprint),
        static_cast<unsigned long long>(spec.fingerprint));
    for (const Value& r : base.responses)
        digest += "\n  " + r.toString();
    for (const Value& r : spec.responses)
        digest += "\n  " + r.toString();
    return digest;
}

TEST(ChaosParallel, JobCountDoesNotChangeOutcomesOrArtifacts)
{
    auto run_batch = [](std::size_t jobs) {
        SimContext session;
        session.trace().enable(1u << 14);
        std::vector<std::function<std::string(SimContext&)>> tasks;
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            tasks.push_back([seed](SimContext& context) {
                return chaosCaseDigest(seed % 2 == 0, seed, seed * 2,
                                       context);
            });
        }
        std::string all;
        for (const std::string& digest : runSimTasks<std::string>(
                 jobs, std::move(tasks), &session))
            all += digest + "\n";
        all += obs::toChromeTraceJson(session.trace().snapshot());
        all += session.counters().table();
        return all;
    };
    const std::string serial = run_batch(1);
    const std::string parallel = run_batch(4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------
// Targeted per-fault-kind coverage.
// ---------------------------------------------------------------------

/**
 * Two-task sequence whose bodies exercise every injectable op:
 * compute, a storage read of a seeded key, a storage write, and an
 * HTTP request. Each targeted plan below points one fault kind at it.
 */
Application
miniChaosApp()
{
    Application app;
    app.name = "chaos-mini";
    app.suite = "chaos";
    app.type = WorkflowType::Explicit;

    auto make = [](const char* name) {
        FunctionDef def;
        def.name = name;
        def.body.push_back(Op::compute(msToTicks(2.0)));
        def.body.push_back(Op::storageRead(
            [](const Env&) { return std::string("chaos:k0"); }, "r0"));
        def.body.push_back(Op::storageWrite(
            [name](const Env&) {
                return strFormat("chaos:w-%s", name);
            },
            [](const Env& e) {
                Value rec = Value::object({});
                rec["v"] = Value(intOr(e.input.at("salt"), 1) + 5);
                return rec;
            }));
        def.body.push_back(Op::http());
        def.output = [](const Env& e) {
            Value out = Value::object({});
            out["v"] = Value(
                (intOr(e.var("r0").isObject() ? e.var("r0").at("v")
                                              : Value(),
                       0) *
                     13 +
                 intOr(e.input.at("salt"), 0)) %
                1009);
            return out;
        };
        return def;
    };
    app.functions.push_back(make("CmA"));
    app.functions.push_back(make("CmB"));
    app.workflow = sequence({task("CmA"), task("CmB")});
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["salt"] = Value(rng.uniformInt(std::int64_t{0},
                                         std::int64_t{5}));
        return v;
    };
    app.seedStore = [](KvStore& store, Rng& rng) {
        store.put("chaos:k0",
                  Value::object({{"v", Value(rng.uniformInt(
                                           std::int64_t{0},
                                           std::int64_t{99}))}}));
    };
    return app;
}

/** One rule with ample retry headroom so recovery always succeeds. */
FaultPlan
onRulePlan(FaultRule rule)
{
    FaultPlan plan;
    plan.seed = 71;
    plan.maxAttempts = 16;
    plan.rules.push_back(std::move(rule));
    return plan;
}

/**
 * Run one targeted plan on both engines; assert @p kind actually
 * fired (in both: a fault the baseline never sees tests nothing) and
 * the runs stayed equivalent.
 */
void
expectKindFires(const FaultPlan& plan, FaultKind kind,
                std::uint32_t prewarm = 4)
{
    const Application app = miniChaosApp();
    ChaosOutcome base = runChaos(app, false, {}, 59, 6, plan, prewarm);
    ChaosOutcome spec = runChaos(app, true, aggressiveConfig(), 59, 6,
                                 plan, prewarm);
    ASSERT_TRUE(base.allTerminated);
    ASSERT_TRUE(spec.allTerminated);
    const auto idx = static_cast<std::size_t>(kind);
    EXPECT_GT(base.injectedByKind[idx], 0u)
        << faultKindName(kind) << " never fired in the baseline run";
    EXPECT_GT(spec.injectedByKind[idx], 0u)
        << faultKindName(kind) << " never fired in the SpecFaaS run";
    ASSERT_EQ(base.responses.size(), spec.responses.size());
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        ASSERT_EQ(base.responses[i].toString(),
                  spec.responses[i].toString())
            << faultKindName(kind) << " request " << i;
    }
    EXPECT_EQ(base.fingerprint, spec.fingerprint);
}

TEST(ChaosFaultKinds, ContainerCrashColdStartFires)
{
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.phase = CrashPhase::ColdStart;
    rule.budget = 2;
    // No warm pool: every acquisition cold-starts, so the cold-start
    // crash window is actually open.
    expectKindFires(onRulePlan(rule), FaultKind::ContainerCrash,
                    /*prewarm=*/0);
}

TEST(ChaosFaultKinds, ContainerCrashMidExecutionFires)
{
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.phase = CrashPhase::MidExecution;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::ContainerCrash);
}

TEST(ChaosFaultKinds, ContainerCrashAtCommitFires)
{
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.phase = CrashPhase::AtCommit;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::ContainerCrash);
}

TEST(ChaosFaultKinds, NodeFailureFires)
{
    FaultRule rule;
    rule.kind = FaultKind::NodeFailure;
    rule.node = 0;
    rule.atTick = msToTicks(1.0);
    rule.downtime = msToTicks(20.0);
    rule.budget = 1;
    expectKindFires(onRulePlan(rule), FaultKind::NodeFailure);
}

TEST(ChaosFaultKinds, StorageReadErrorFires)
{
    FaultRule rule;
    rule.kind = FaultKind::StorageReadError;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::StorageReadError);
}

TEST(ChaosFaultKinds, StorageWriteErrorFires)
{
    FaultRule rule;
    rule.kind = FaultKind::StorageWriteError;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::StorageWriteError);
}

TEST(ChaosFaultKinds, StorageDelayFires)
{
    FaultRule rule;
    rule.kind = FaultKind::StorageDelay;
    rule.extraDelay = msToTicks(1.0);
    rule.budget = 3;
    expectKindFires(onRulePlan(rule), FaultKind::StorageDelay);
}

TEST(ChaosFaultKinds, HttpFailureFires)
{
    FaultRule rule;
    rule.kind = FaultKind::HttpFailure;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::HttpFailure);
}

TEST(ChaosFaultKinds, StuckFunctionFires)
{
    FaultRule rule;
    rule.kind = FaultKind::StuckFunction;
    rule.budget = 2;
    expectKindFires(onRulePlan(rule), FaultKind::StuckFunction);
}

// ---------------------------------------------------------------------
// Give-up path + invariant 4 (no committed effect from a crashed
// function), checked on both engines through the store itself.
// ---------------------------------------------------------------------

/**
 * PoisonA commits a prefix write; PoisonB writes a sentinel and then
 * always crashes at commit. With a finite retry cap the request must
 * fail with the deterministic error response, the prefix write must
 * survive, and the sentinel must never reach the store.
 */
TEST(ChaosGiveUp, ExhaustedRetriesFailDeterministicallyWithoutLeaks)
{
    Application app;
    app.name = "chaos-poison";
    app.suite = "chaos";
    app.type = WorkflowType::Explicit;

    FunctionDef a;
    a.name = "PoisonA";
    a.body.push_back(Op::compute(msToTicks(1.0)));
    a.body.push_back(Op::storageWrite(
        [](const Env&) { return std::string("chaos:ok"); },
        [](const Env&) {
            return Value::object({{"v", Value(std::int64_t{1})}});
        }));
    a.output = [](const Env&) {
        return Value::object({{"v", Value(std::int64_t{1})}});
    };
    app.functions.push_back(std::move(a));

    FunctionDef b;
    b.name = "PoisonB";
    b.body.push_back(Op::storageWrite(
        [](const Env&) { return std::string("chaos:poison"); },
        [](const Env&) {
            return Value::object({{"v", Value(std::int64_t{13})}});
        }));
    b.body.push_back(Op::compute(msToTicks(1.0)));
    b.output = [](const Env&) {
        return Value::object({{"v", Value(std::int64_t{2})}});
    };
    app.functions.push_back(std::move(b));

    app.workflow = sequence({task("PoisonA"), task("PoisonB")});
    app.inputGen = [](Rng&) { return Value::object({}); };

    FaultPlan plan;
    plan.seed = 97;
    plan.maxAttempts = 3;
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.function = "PoisonB";
    rule.phase = CrashPhase::AtCommit;
    rule.budget = kUnlimitedBudget;
    plan.rules.push_back(rule);

    const std::string expected =
        FaultInjector::errorResponse("PoisonB").toString();

    std::uint64_t fingerprints[2] = {0, 0};
    for (const bool speculative : {false, true}) {
        PlatformOptions options;
        options.speculative = speculative;
        options.spec = aggressiveConfig();
        options.seed = 61;
        options.faultPlan = plan;
        FaasPlatform platform(options);
        platform.deploy(app);

        auto r = platform.invokeSync(app, Value::object({}));
        EXPECT_EQ(r.response.toString(), expected)
            << (speculative ? "speculative" : "baseline");

        // The committed prefix survives; the crashed function's write
        // never reaches the store (invariant 4).
        EXPECT_TRUE(platform.store().peek("chaos:ok").has_value())
            << (speculative ? "speculative" : "baseline");
        EXPECT_FALSE(platform.store().peek("chaos:poison").has_value())
            << (speculative ? "speculative" : "baseline");

        ASSERT_NE(platform.faultInjector(), nullptr);
        EXPECT_GE(platform.faultInjector()->gaveUp(), 1u);
        fingerprints[speculative ? 1 : 0] =
            platform.store().fingerprint();
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

// ---------------------------------------------------------------------
// Regression corpus replay.
// ---------------------------------------------------------------------

/**
 * Replay every (app-kind, app-seed, plan-seed) triple recorded in
 * tests/corpus/chaos_seeds.txt. See that file's header for the
 * append workflow when a chaos case fails.
 */
TEST(ChaosCorpus, ReplayAllEntries)
{
    const std::string path =
        std::string(CHAOS_CORPUS_DIR) + "/chaos_seeds.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing corpus file " << path;

    std::size_t entries = 0;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream toks(line);
        std::string kind;
        if (!(toks >> kind))
            continue;
        std::uint64_t app_seed = 0;
        std::uint64_t plan_seed = 0;
        ASSERT_TRUE(static_cast<bool>(toks >> app_seed >> plan_seed))
            << path << ":" << line_no << ": malformed corpus line";
        ASSERT_TRUE(kind == "explicit" || kind == "implicit")
            << path << ":" << line_no << ": unknown app kind '" << kind
            << "'";
        runChaosCase(kind == "explicit", app_seed, plan_seed);
        if (::testing::Test::HasFatalFailure())
            return;
        ++entries;
    }
    EXPECT_GT(entries, 0u) << "corpus is empty";
}

} // namespace
} // namespace specfaas
