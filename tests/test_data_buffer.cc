/** @file Unit and property tests for the Data Buffer (§V-C, §V-D). */

#include <gtest/gtest.h>

#include "specfaas/data_buffer.hh"

namespace specfaas {
namespace {

class DataBufferTest : public ::testing::Test
{
  protected:
    DataBufferTest() : buffer(store) {}

    void
    openColumns(std::initializer_list<InstanceId> owners)
    {
        std::int32_t pos = 0;
        for (InstanceId id : owners)
            buffer.addColumn(id, OrderKey{pos++});
    }

    KvStore store;
    DataBuffer buffer;
};

TEST_F(DataBufferTest, ReadMissesEmptyBuffer)
{
    openColumns({1});
    auto r = buffer.read(1, "rec");
    EXPECT_FALSE(r.forwarded);
    EXPECT_FALSE(r.value.has_value());
}

TEST_F(DataBufferTest, InOrderRawForwardsValue)
{
    openColumns({1, 2});
    buffer.write(1, "rec", Value(42));
    auto r = buffer.read(2, "rec");
    ASSERT_TRUE(r.forwarded);
    EXPECT_EQ(r.value->asInt(), 42);
    EXPECT_EQ(buffer.forwards(), 1u);
}

TEST_F(DataBufferTest, ReadPrefersYoungestPredecessor)
{
    openColumns({1, 2, 3});
    buffer.write(1, "rec", Value(1));
    buffer.write(2, "rec", Value(2));
    auto r = buffer.read(3, "rec");
    ASSERT_TRUE(r.forwarded);
    EXPECT_EQ(r.value->asInt(), 2);
}

TEST_F(DataBufferTest, SuccessorWriteInvisibleToPredecessorRead)
{
    openColumns({1, 2});
    buffer.write(2, "rec", Value(7)); // out-of-order WAR setup
    auto r = buffer.read(1, "rec");
    EXPECT_FALSE(r.forwarded); // predecessor must not see it
}

TEST_F(DataBufferTest, OutOfOrderRawSquashesReader)
{
    openColumns({1, 2});
    (void)buffer.read(2, "rec"); // premature read by successor
    auto violators = buffer.write(1, "rec", Value(1));
    ASSERT_EQ(violators.size(), 1u);
    EXPECT_EQ(violators[0], 2u);
    EXPECT_EQ(buffer.violations(), 1u);
}

TEST_F(DataBufferTest, WriteScanStopsAtRedefinition)
{
    openColumns({1, 2, 3});
    // Function 2 redefines the record; function 3 reads 2's value.
    buffer.write(2, "rec", Value(2));
    (void)buffer.read(3, "rec");
    // Function 1's late write must not squash 3 (its read got 2's
    // value, which is still correct) — the scan stops at 2's W bit.
    auto violators = buffer.write(1, "rec", Value(1));
    EXPECT_TRUE(violators.empty());
}

TEST_F(DataBufferTest, WriterReadingItsOwnWrite)
{
    openColumns({1});
    buffer.write(1, "rec", Value(9));
    auto r = buffer.read(1, "rec");
    ASSERT_TRUE(r.forwarded);
    EXPECT_EQ(r.value->asInt(), 9);
}

TEST_F(DataBufferTest, ReaderWithWBitBeforeReadIsNotViolated)
{
    openColumns({1, 2});
    // Function 2 writes first (redefinition), then reads its own
    // value: a later predecessor write is WAW + the read is not
    // exposed — no squash.
    buffer.write(2, "rec", Value(5));
    (void)buffer.read(2, "rec");
    auto violators = buffer.write(1, "rec", Value(1));
    EXPECT_TRUE(violators.empty());
}

TEST_F(DataBufferTest, WawResolvesByProgramOrderAtCommit)
{
    openColumns({1, 2});
    buffer.write(2, "rec", Value(2)); // younger write issued first
    buffer.write(1, "rec", Value(1));
    buffer.commitColumn(1);
    EXPECT_EQ(store.peek("rec")->asInt(), 1);
    buffer.commitColumn(2);
    EXPECT_EQ(store.peek("rec")->asInt(), 2); // program order wins
}

TEST_F(DataBufferTest, CommitFlushesOnlyWrites)
{
    openColumns({1});
    (void)buffer.read(1, "read-only");
    buffer.write(1, "written", Value(1));
    buffer.commitColumn(1);
    EXPECT_FALSE(store.peek("read-only").has_value());
    EXPECT_TRUE(store.peek("written").has_value());
    EXPECT_EQ(buffer.columnCount(), 0u);
    EXPECT_EQ(buffer.rowCount(), 0u);
}

TEST_F(DataBufferTest, InvalidateDiscardsWrites)
{
    openColumns({1, 2});
    buffer.write(2, "rec", Value(2));
    buffer.invalidateColumn(2);
    EXPECT_EQ(buffer.columnCount(), 1u);
    auto r = buffer.read(1, "rec");
    EXPECT_FALSE(r.forwarded);
    buffer.commitColumn(1);
    EXPECT_FALSE(store.peek("rec").has_value());
}

TEST_F(DataBufferTest, MergeMovesWritesToCaller)
{
    // Caller 1, callee 2 (ordered after the caller, §V-D).
    buffer.addColumn(1, OrderKey{0});
    buffer.addColumn(2, OrderKey{0, 0});
    buffer.write(2, "rec", Value(7));
    buffer.mergeColumn(2, 1);
    EXPECT_EQ(buffer.columnCount(), 1u);
    EXPECT_TRUE(buffer.hasWrite(1, "rec"));
    buffer.commitColumn(1);
    EXPECT_EQ(store.peek("rec")->asInt(), 7);
}

TEST_F(DataBufferTest, MergePropagatesReadBits)
{
    buffer.addColumn(1, OrderKey{1});
    buffer.addColumn(2, OrderKey{1, 0});
    buffer.addColumn(9, OrderKey{0}); // predecessor of the caller
    (void)buffer.read(2, "rec");      // callee reads prematurely
    buffer.mergeColumn(2, 1);
    // The predecessor's late write must now squash the caller, which
    // absorbed the callee's exposure.
    auto violators = buffer.write(9, "rec", Value(1));
    ASSERT_EQ(violators.size(), 1u);
    EXPECT_EQ(violators[0], 1u);
}

TEST_F(DataBufferTest, MergedWriteForwardsToLaterReaders)
{
    buffer.addColumn(1, OrderKey{0});
    buffer.addColumn(2, OrderKey{0, 0});
    buffer.addColumn(3, OrderKey{1});
    buffer.write(2, "rec", Value(3));
    buffer.mergeColumn(2, 1);
    auto r = buffer.read(3, "rec");
    ASSERT_TRUE(r.forwarded);
    EXPECT_EQ(r.value->asInt(), 3);
}

TEST_F(DataBufferTest, ForwardProvenanceTracksReaders)
{
    openColumns({1, 2});
    buffer.write(1, "rec", Value(1));
    (void)buffer.read(2, "rec");
    auto readers = buffer.readersForwardedFrom(1);
    ASSERT_EQ(readers.size(), 1u);
    EXPECT_EQ(readers[0], 2u);
    // Commit makes the data architectural: no longer speculative.
    buffer.commitColumn(1);
    EXPECT_TRUE(buffer.readersForwardedFrom(1).empty());
}

TEST_F(DataBufferTest, ProvenanceRemapsOnMerge)
{
    buffer.addColumn(1, OrderKey{0});
    buffer.addColumn(2, OrderKey{0, 0});
    buffer.addColumn(3, OrderKey{1});
    buffer.write(2, "rec", Value(1));
    (void)buffer.read(3, "rec"); // 3 forwarded from callee 2
    buffer.mergeColumn(2, 1);
    auto readers = buffer.readersForwardedFrom(1);
    ASSERT_EQ(readers.size(), 1u);
    EXPECT_EQ(readers[0], 3u);
}

TEST_F(DataBufferTest, FootprintReflectsContents)
{
    openColumns({1, 2});
    EXPECT_EQ(buffer.footprintBytes(), 0u);
    buffer.write(1, "record-key", Value("some payload"));
    EXPECT_GT(buffer.footprintBytes(), 10u);
}

/**
 * Property: for any interleaving of single-writer/single-reader
 * accesses where the reader reads after the writer's write was
 * buffered, the forwarded value equals the writer's value; when the
 * reader read first, the writer's write reports the violation.
 */
class RawOrderProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RawOrderProperty, DetectsExactlyOutOfOrderRaw)
{
    KvStore store;
    DataBuffer buffer(store);
    buffer.addColumn(1, OrderKey{0});
    buffer.addColumn(2, OrderKey{1});
    const bool read_first = GetParam() % 2 == 0;
    const std::string key = "k" + std::to_string(GetParam());
    if (read_first) {
        (void)buffer.read(2, key);
        auto violators = buffer.write(1, key, Value(GetParam()));
        ASSERT_EQ(violators.size(), 1u);
    } else {
        buffer.write(1, key, Value(GetParam()));
        auto r = buffer.read(2, key);
        ASSERT_TRUE(r.forwarded);
        EXPECT_EQ(r.value->asInt(), GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RawOrderProperty,
                         ::testing::Range(0, 12));

} // namespace
} // namespace specfaas
