/** @file Unit tests for the squash-frequency minimizer (§V-C). */

#include <gtest/gtest.h>

#include "specfaas/squash_minimizer.hh"

namespace specfaas {
namespace {

TEST(KeyClass, CollapsesDigitRuns)
{
    EXPECT_EQ(keyClassOf("order:4711"), "order:#");
    EXPECT_EQ(keyClassOf("order:4711:item9"), "order:#:item#");
    EXPECT_EQ(keyClassOf("no-digits"), "no-digits");
    EXPECT_EQ(keyClassOf(""), "");
    EXPECT_EQ(keyClassOf("123"), "#");
}

TEST(SquashMinimizer, NoStallBelowThreshold)
{
    SquashMinimizer minimizer(3);
    minimizer.recordSquash("prod", "cons", "rec:1");
    minimizer.recordSquash("prod", "cons", "rec:2");
    EXPECT_FALSE(minimizer.stallProducer("cons", "rec:3").has_value());
}

TEST(SquashMinimizer, StallsAfterThreshold)
{
    SquashMinimizer minimizer(3);
    for (int i = 0; i < 3; ++i)
        minimizer.recordSquash("prod", "cons",
                               "rec:" + std::to_string(i));
    auto producer = minimizer.stallProducer("cons", "rec:99");
    ASSERT_TRUE(producer.has_value());
    EXPECT_EQ(*producer, "prod");
}

TEST(SquashMinimizer, GeneralizesAcrossRequestIds)
{
    SquashMinimizer minimizer(1);
    minimizer.recordSquash("p", "c", "order:1:state");
    // A different request id maps to the same pattern.
    EXPECT_TRUE(minimizer.stallProducer("c", "order:777:state")
                    .has_value());
    // A different key class does not.
    EXPECT_FALSE(minimizer.stallProducer("c", "cart:777").has_value());
}

TEST(SquashMinimizer, PatternsArePerConsumer)
{
    SquashMinimizer minimizer(1);
    minimizer.recordSquash("p", "c1", "rec:1");
    EXPECT_TRUE(minimizer.stallProducer("c1", "rec:2").has_value());
    EXPECT_FALSE(minimizer.stallProducer("c2", "rec:2").has_value());
}

TEST(SquashMinimizer, Counters)
{
    SquashMinimizer minimizer(1);
    minimizer.recordSquash("p", "c", "rec:1");
    minimizer.recordSquash("p", "c", "rec:2");
    EXPECT_EQ(minimizer.recordedSquashes(), 2u);
    EXPECT_EQ(minimizer.patternCount(), 1u);
    minimizer.noteStall();
    EXPECT_EQ(minimizer.stallsServed(), 1u);
}

TEST(SquashMinimizer, LatestProducerWins)
{
    SquashMinimizer minimizer(2);
    minimizer.recordSquash("p1", "c", "rec:1");
    minimizer.recordSquash("p2", "c", "rec:2");
    EXPECT_EQ(*minimizer.stallProducer("c", "rec:3"), "p2");
}

} // namespace
} // namespace specfaas
