/** @file Unit tests for the path-indexed branch predictor. */

#include <gtest/gtest.h>

#include <cmath>

#include "specfaas/branch_predictor.hh"

namespace specfaas {
namespace {

TEST(BranchPredictor, NoPredictionWithoutHistory)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predict("b", pathhash::kEmpty).has_value());
}

TEST(BranchPredictor, LearnsDominantOutcome)
{
    BranchPredictor bp;
    for (int i = 0; i < 9; ++i)
        bp.update("b", pathhash::kEmpty, 0);
    bp.update("b", pathhash::kEmpty, 1);
    auto p = bp.predict("b", pathhash::kEmpty);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, 0u);
    EXPECT_NEAR(p->probability, 0.9, 1e-9);
}

TEST(BranchPredictor, DeadBandSuppressesWeakPredictions)
{
    BranchPredictor bp(/*dead_band=*/0.10);
    // 55/45: inside the band (needs > 0.60).
    for (int i = 0; i < 55; ++i)
        bp.update("b", pathhash::kEmpty, 0);
    for (int i = 0; i < 45; ++i)
        bp.update("b", pathhash::kEmpty, 1);
    EXPECT_FALSE(bp.predict("b", pathhash::kEmpty).has_value());
    // 70/30: outside the band.
    BranchPredictor bp2(0.10);
    for (int i = 0; i < 70; ++i)
        bp2.update("c", pathhash::kEmpty, 0);
    for (int i = 0; i < 30; ++i)
        bp2.update("c", pathhash::kEmpty, 1);
    EXPECT_TRUE(bp2.predict("c", pathhash::kEmpty).has_value());
}

TEST(BranchPredictor, ZeroDeadBandPredictsAnyMajority)
{
    BranchPredictor bp(0.0);
    bp.update("b", pathhash::kEmpty, 1);
    auto p = bp.predict("b", pathhash::kEmpty);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, 1u);
}

TEST(BranchPredictor, PathSpecificHistoryWins)
{
    BranchPredictor bp(0.0);
    const std::uint64_t path1 =
        pathhash::extend(pathhash::kEmpty, "f1");
    const std::uint64_t path2 =
        pathhash::extend(pathhash::kEmpty, "f2");
    // Taken when reached via f1, not-taken via f2 (§V-A example).
    for (int i = 0; i < 10; ++i) {
        bp.update("b", path1, 0);
        bp.update("b", path2, 1);
    }
    EXPECT_EQ(bp.predict("b", path1)->target, 0u);
    EXPECT_EQ(bp.predict("b", path2)->target, 1u);
}

TEST(BranchPredictor, AggregateFallbackForUnseenPath)
{
    BranchPredictor bp(0.0);
    const std::uint64_t seen = pathhash::extend(pathhash::kEmpty, "f1");
    for (int i = 0; i < 10; ++i)
        bp.update("b", seen, 1);
    const std::uint64_t unseen =
        pathhash::extend(pathhash::kEmpty, "other");
    auto p = bp.predict("b", unseen);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, 1u);
}

// Regression: path 0 *is* the aggregate entry, and update() used to
// bump it twice per observation, crossing min_samples in half the
// real sample count.
TEST(BranchPredictor, AggregatePathIsNotDoubleCounted)
{
    BranchPredictor bp(0.0, /*min_samples=*/4);
    // Two observations recorded directly against the aggregate path.
    bp.update("b", 0, 0);
    bp.update("b", 0, 0);
    // Only 2 of the 4 required samples exist — double-counting would
    // have reached 4 and predicted here.
    EXPECT_FALSE(bp.predict("b", 0).has_value());
    bp.update("b", 0, 0);
    bp.update("b", 0, 0);
    auto p = bp.predict("b", 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, 0u);
    EXPECT_DOUBLE_EQ(p->probability, 1.0);
    // Exactly one table entry: path 0 never forks a sub-entry.
    EXPECT_EQ(bp.entryCount(), 1u);
}

TEST(BranchPredictor, MinSamplesGate)
{
    BranchPredictor bp(0.0, /*min_samples=*/5);
    for (int i = 0; i < 4; ++i)
        bp.update("b", pathhash::kEmpty, 0);
    EXPECT_FALSE(bp.predict("b", pathhash::kEmpty).has_value());
    bp.update("b", pathhash::kEmpty, 0);
    EXPECT_TRUE(bp.predict("b", pathhash::kEmpty).has_value());
}

TEST(BranchPredictor, MultiWayTargets)
{
    BranchPredictor bp(0.0);
    for (int i = 0; i < 8; ++i)
        bp.update("b", pathhash::kEmpty, 3);
    bp.update("b", pathhash::kEmpty, 1);
    auto p = bp.predict("b", pathhash::kEmpty);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, 3u);
}

TEST(BranchPredictor, HitRateAccounting)
{
    BranchPredictor bp;
    // Undefined with no predictions — 1.0 here used to fabricate a
    // perfect hit rate for speculation-disabled runs.
    EXPECT_TRUE(std::isnan(bp.hitRate()));
    bp.notePrediction(true);
    bp.notePrediction(true);
    bp.notePrediction(false);
    EXPECT_EQ(bp.predictions(), 3u);
    EXPECT_EQ(bp.hits(), 2u);
    EXPECT_NEAR(bp.hitRate(), 2.0 / 3.0, 1e-9);
}

TEST(BranchPredictor, ClearForgets)
{
    BranchPredictor bp(0.0);
    bp.update("b", pathhash::kEmpty, 0);
    bp.clear();
    EXPECT_FALSE(bp.predict("b", pathhash::kEmpty).has_value());
    EXPECT_EQ(bp.entryCount(), 0u);
}

TEST(PathHash, ExtendIsOrderSensitive)
{
    const auto ab = pathhash::extend(
        pathhash::extend(pathhash::kEmpty, "a"), "b");
    const auto ba = pathhash::extend(
        pathhash::extend(pathhash::kEmpty, "b"), "a");
    EXPECT_NE(ab, ba);
    EXPECT_NE(ab, pathhash::kEmpty);
}

} // namespace
} // namespace specfaas
