/** @file Unit tests for the Value dynamic payload type. */

#include <gtest/gtest.h>

#include "common/value.hh"

namespace specfaas {
namespace {

TEST(Value, DefaultIsNull)
{
    Value v;
    EXPECT_TRUE(v.isNull());
    EXPECT_EQ(v.kind(), Value::Kind::Null);
}

TEST(Value, KindsRoundTrip)
{
    EXPECT_TRUE(Value(true).isBool());
    EXPECT_TRUE(Value(42).isInt());
    EXPECT_TRUE(Value(3.5).isDouble());
    EXPECT_TRUE(Value("x").isString());
    EXPECT_TRUE(Value::array({Value(1)}).isArray());
    EXPECT_TRUE(Value::object({{"a", Value(1)}}).isObject());
}

TEST(Value, Accessors)
{
    EXPECT_EQ(Value(true).asBool(), true);
    EXPECT_EQ(Value(7).asInt(), 7);
    EXPECT_DOUBLE_EQ(Value(2.25).asDouble(), 2.25);
    EXPECT_EQ(Value("hi").asString(), "hi");
}

TEST(Value, AsNumberCoversIntAndDouble)
{
    EXPECT_DOUBLE_EQ(Value(7).asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(Value(2.5).asNumber(), 2.5);
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value().truthy());
    EXPECT_FALSE(Value(false).truthy());
    EXPECT_FALSE(Value(0).truthy());
    EXPECT_FALSE(Value(0.0).truthy());
    EXPECT_FALSE(Value("").truthy());
    EXPECT_TRUE(Value(true).truthy());
    EXPECT_TRUE(Value(1).truthy());
    EXPECT_TRUE(Value(-2.5).truthy());
    EXPECT_TRUE(Value("no").truthy());
    EXPECT_TRUE(Value::array({}).truthy());
    EXPECT_TRUE(Value::object({}).truthy());
}

TEST(Value, ObjectFieldLookup)
{
    Value v = Value::object({{"a", Value(1)}, {"b", Value("x")}});
    EXPECT_EQ(v.at("a").asInt(), 1);
    EXPECT_EQ(v.at("b").asString(), "x");
    EXPECT_TRUE(v.at("missing").isNull());
    EXPECT_TRUE(Value(3).at("anything").isNull());
}

TEST(Value, MutationThroughIndexOperator)
{
    Value v;
    v["x"] = Value(5);
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.at("x").asInt(), 5);
    v["x"] = Value(6);
    EXPECT_EQ(v.at("x").asInt(), 6);
}

TEST(Value, DeepEquality)
{
    Value a = Value::object(
        {{"k", Value::array({Value(1), Value("s")})}});
    Value b = Value::object(
        {{"k", Value::array({Value(1), Value("s")})}});
    Value c = Value::object(
        {{"k", Value::array({Value(2), Value("s")})}});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Value, IntAndDoubleAreDistinct)
{
    EXPECT_NE(Value(1), Value(1.0));
}

TEST(Value, HashIsStableAndDiscriminating)
{
    Value a = Value::object({{"x", Value(1)}});
    Value b = Value::object({{"x", Value(1)}});
    Value c = Value::object({{"x", Value(2)}});
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_NE(Value().hash(), Value(0).hash());
    EXPECT_NE(Value("1").hash(), Value(1).hash());
}

TEST(Value, HashDistinguishesNesting)
{
    Value flat = Value::array({Value(1), Value(2)});
    Value nested = Value::array({Value::array({Value(1), Value(2)})});
    EXPECT_NE(flat.hash(), nested.hash());
}

TEST(Value, ToStringCanonicalForm)
{
    Value v = Value::object({{"b", Value(2)}, {"a", Value("s")}});
    // Object keys are sorted (std::map), strings quoted.
    EXPECT_EQ(v.toString(), "{\"a\":\"s\",\"b\":2}");
    EXPECT_EQ(Value::array({Value(true), Value()}).toString(),
              "[true,null]");
}

TEST(Value, SizeOfContainers)
{
    EXPECT_EQ(Value::array({Value(1), Value(2)}).size(), 2u);
    EXPECT_EQ(Value::object({{"a", Value(1)}}).size(), 1u);
    EXPECT_EQ(Value(5).size(), 0u);
}

TEST(Value, IntOrHelper)
{
    EXPECT_EQ(intOr(Value(9), 1), 9);
    EXPECT_EQ(intOr(Value(), 1), 1);
    EXPECT_EQ(intOr(Value("x"), 4), 4);
}

TEST(Value, CopyIsDeep)
{
    Value a;
    a["inner"] = Value::array({Value(1)});
    Value b = a;
    b["inner"].asArray().push_back(Value(2));
    EXPECT_EQ(a.at("inner").size(), 1u);
    EXPECT_EQ(b.at("inner").size(), 2u);
}

TEST(Value, UsableAsUnorderedMapKey)
{
    std::unordered_map<Value, int> map;
    map[Value::object({{"k", Value(1)}})] = 10;
    map[Value::object({{"k", Value(2)}})] = 20;
    EXPECT_EQ(map.at(Value::object({{"k", Value(1)}})), 10);
    EXPECT_EQ(map.at(Value::object({{"k", Value(2)}})), 20);
}

} // namespace
} // namespace specfaas
