/** @file Structural invariants of the three application suites. */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

TEST(Workloads, SixteenApplicationsInThreeSuites)
{
    auto registry = makeAllSuites();
    EXPECT_EQ(registry->all().size(), 16u);
    EXPECT_EQ(registry->suite("FaaSChain").size(), 6u);
    EXPECT_EQ(registry->suite("TrainTicket").size(), 5u);
    EXPECT_EQ(registry->suite("Alibaba").size(), 5u);
}

TEST(Workloads, SuiteWorkflowTypesMatchPaper)
{
    auto registry = makeAllSuites();
    for (const Application* app : registry->suite("FaaSChain"))
        EXPECT_EQ(app->type, WorkflowType::Explicit) << app->name;
    for (const Application* app : registry->suite("TrainTicket"))
        EXPECT_EQ(app->type, WorkflowType::Implicit) << app->name;
    for (const Application* app : registry->suite("Alibaba"))
        EXPECT_EQ(app->type, WorkflowType::Implicit) << app->name;
}

TEST(Workloads, FunctionNamesAreGloballyUnique)
{
    auto registry = makeAllSuites();
    std::set<std::string> names;
    for (const Application* app : registry->all()) {
        for (const auto& f : app->functions) {
            EXPECT_TRUE(names.insert(f.name).second)
                << "duplicate function " << f.name;
        }
    }
}

TEST(Workloads, ImplicitRootsExist)
{
    auto registry = makeAllSuites();
    for (const Application* app : registry->all()) {
        if (app->type != WorkflowType::Implicit)
            continue;
        EXPECT_NE(app->findFunction(app->rootFunction), nullptr)
            << app->name;
    }
}

TEST(Workloads, AllCalleesAreDefined)
{
    auto registry = makeAllSuites();
    for (const Application* app : registry->all()) {
        for (const auto& f : app->functions) {
            for (const auto& op : f.body) {
                if (op.kind != Op::Kind::Call)
                    continue;
                EXPECT_NE(app->findFunction(op.callee), nullptr)
                    << app->name << ": " << f.name << " calls undefined "
                    << op.callee;
            }
        }
    }
}

TEST(Workloads, TableOneShapeTargets)
{
    auto registry = makeAllSuites();
    double faaschain_funcs = 0;
    for (const Application* app : registry->suite("FaaSChain"))
        faaschain_funcs += static_cast<double>(app->functionCount());
    EXPECT_NEAR(faaschain_funcs / 6.0, 7.8, 1.0);

    double tt_funcs = 0;
    for (const Application* app : registry->suite("TrainTicket"))
        tt_funcs += static_cast<double>(app->functionCount());
    EXPECT_NEAR(tt_funcs / 5.0, 11.2, 2.0);

    double ali_funcs = 0;
    std::size_t ali_depth = 0;
    for (const Application* app : registry->suite("Alibaba")) {
        ali_funcs += static_cast<double>(app->functionCount());
        ali_depth = std::max(ali_depth, app->maxDagDepth());
    }
    EXPECT_NEAR(ali_funcs / 5.0, 17.6, 2.5);
    EXPECT_EQ(ali_depth, 5u);

    std::size_t chain_depth = 0;
    for (const Application* app : registry->suite("FaaSChain"))
        chain_depth = std::max(chain_depth, app->maxDagDepth());
    EXPECT_EQ(chain_depth, 10u);
}

TEST(Workloads, BranchCountsMatchPaper)
{
    auto registry = makeAllSuites();
    std::size_t faaschain_branches = 0;
    for (const Application* app : registry->suite("FaaSChain"))
        faaschain_branches += app->branchCount();
    EXPECT_EQ(faaschain_branches, 15u); // 2.5 avg × 6 apps

    std::size_t tt_branches = 0;
    for (const Application* app : registry->suite("TrainTicket"))
        tt_branches += app->branchCount();
    EXPECT_EQ(tt_branches, 9u); // 1.8 avg × 5 apps
}

TEST(Workloads, InputGeneratorsAreSeedDeterministic)
{
    auto registry = makeAllSuites();
    for (const Application* app : registry->all()) {
        Rng a(5);
        Rng b(5);
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(app->inputGen(a), app->inputGen(b)) << app->name;
    }
}

TEST(Workloads, AlibabaGeneratorIsDeterministic)
{
    AlibabaTraceConfig config;
    auto a = alibabaSuite(config);
    auto b = alibabaSuite(config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].functionCount(), b[i].functionCount());
        EXPECT_EQ(a[i].rootFunction, b[i].rootFunction);
        EXPECT_EQ(a[i].functionNames(), b[i].functionNames());
    }
}

TEST(Workloads, EveryAppRunsOnBothEngines)
{
    auto registry = makeAllSuites();
    for (const Application* app : registry->all()) {
        for (bool speculative : {false, true}) {
            PlatformOptions options;
            options.speculative = speculative;
            options.seed = 2;
            FaasPlatform platform(options);
            platform.deploy(*app);
            auto r = platform.invokeSync(
                *app, app->inputGen(platform.inputRng()));
            EXPECT_GT(r.functionsExecuted, 0u) << app->name;
            EXPECT_GT(r.responseTime(), 0) << app->name;
        }
    }
}

TEST(Workloads, MostFunctionsReadNoWritableGlobalState)
{
    // Observation 3's qualitative claim holds for the rebuilt suites.
    auto registry = makeAllSuites();
    std::size_t total = 0;
    std::size_t no_read = 0;
    for (const Application* app : registry->all()) {
        for (const auto& f : app->functions) {
            ++total;
            if (!f.readsGlobalState())
                ++no_read;
        }
    }
    EXPECT_GT(static_cast<double>(no_read) / static_cast<double>(total),
              0.5);
}

} // namespace
} // namespace specfaas
