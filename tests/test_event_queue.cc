/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace specfaas {
namespace {

TEST(EventQueue, RunsInTimestampOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoForEqualTimestamps)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i]() { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesOnlyWhenEventsFire)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    q.schedule(100, []() {});
    EXPECT_EQ(q.now(), 0);
    q.runOne();
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&]() { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    const EventId id = q.schedule(10, []() {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelledEventsDontBlockEmpty)
{
    EventQueue q;
    const EventId id = q.schedule(10, []() {});
    EXPECT_FALSE(q.empty());
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            q.schedule(10, chain);
    };
    q.schedule(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t : {10, 20, 30, 40})
        q.schedule(t, [&fired, &q]() { fired.push_back(q.now()); });
    q.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(q.now(), 25);
    q.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, PendingCountExcludesCancelled)
{
    EventQueue q;
    const EventId a = q.schedule(1, []() {});
    q.schedule(2, []() {});
    EXPECT_EQ(q.pendingCount(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pendingCount(), 1u);
}

// Regression: cancel() used to accept ids of already-fired events,
// growing the cancelled-pending tally with no matching heap entry and
// underflowing pendingCount() (size_t wraparound to ~2^64).
TEST(EventQueue, CancelAfterExecutionIsRejected)
{
    EventQueue q;
    const EventId id = q.schedule(5, []() {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_TRUE(q.empty());

    // The queue must stay consistent afterwards.
    q.schedule(5, []() {});
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, PendingCountNeverUnderflows)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (Tick t : {1, 2, 3})
        ids.push_back(q.schedule(t, []() {}));
    q.run();
    for (EventId id : ids)
        EXPECT_FALSE(q.cancel(id)); // all fired; none cancellable
    EXPECT_EQ(q.pendingCount(), 0u);

    // Mixed pattern: one live, one fired, one cancelled twice.
    const EventId live = q.schedule(10, []() {});
    const EventId fast = q.schedule(1, []() {});
    q.runOne(); // fires `fast`
    EXPECT_FALSE(q.cancel(fast));
    EXPECT_TRUE(q.cancel(live));
    EXPECT_FALSE(q.cancel(live));
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DaemonDoesNotKeepRunAlive)
{
    EventQueue q;
    int daemon_fires = 0;
    std::function<void()> tick = [&]() {
        ++daemon_fires;
        q.scheduleDaemon(5, tick);
    };
    q.scheduleDaemon(5, tick);
    bool work_done = false;
    q.schedule(12, [&]() { work_done = true; });
    EXPECT_EQ(q.pendingWorkCount(), 1u);
    q.run();
    // run() drains the real work and stops; the self-rescheduling
    // daemon fired only while work was still pending.
    EXPECT_TRUE(work_done);
    EXPECT_EQ(q.now(), 12);
    EXPECT_EQ(daemon_fires, 2); // t=5 and t=10
    EXPECT_EQ(q.pendingWorkCount(), 0u);
    EXPECT_FALSE(q.empty()); // the daemon itself is still queued
}

TEST(EventQueue, RunReturnsImmediatelyWithOnlyDaemons)
{
    EventQueue q;
    bool fired = false;
    q.scheduleDaemon(5, [&]() { fired = true; });
    q.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.now(), 0);
}

TEST(EventQueue, RunUntilFiresDaemons)
{
    EventQueue q;
    std::vector<Tick> at;
    std::function<void()> tick = [&]() {
        at.push_back(q.now());
        q.scheduleDaemon(10, tick);
    };
    q.scheduleDaemon(10, tick);
    q.runUntil(35);
    EXPECT_EQ(at, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(q.now(), 35);
}

TEST(EventQueue, CancelDaemonKeepsCountsConsistent)
{
    EventQueue q;
    const EventId d = q.scheduleDaemon(5, []() {});
    q.schedule(10, []() {});
    EXPECT_EQ(q.pendingWorkCount(), 1u);
    EXPECT_TRUE(q.cancel(d));
    EXPECT_EQ(q.pendingWorkCount(), 1u);
    q.run();
    EXPECT_EQ(q.pendingWorkCount(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue q;
    q.schedule(1, []() {});
    q.schedule(2, []() {});
    q.run();
    EXPECT_EQ(q.executedCount(), 2u);
}

TEST(EventQueue, RunUntilSkipsCancelledDaemonsBeyondUntil)
{
    // A cancelled daemon whose timestamp lies past `until` must not
    // stop runUntil() from reaching `until`, and its lazily-queued
    // heap entry must be reclaimed rather than counted as pending.
    EventQueue q;
    bool fired = false;
    const EventId d = q.scheduleDaemon(50, [&]() { fired = true; });
    q.schedule(10, []() {});
    EXPECT_TRUE(q.cancel(d));
    q.runUntil(20);
    EXPECT_EQ(q.now(), 20);
    EXPECT_FALSE(fired);
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, DaemonFireAndCancelAccounting)
{
    // pendingWorkCount() must not drift when daemons are cancelled
    // before firing, fire normally, or are cancelled after other
    // daemons fired (exercising the daemon-id list compaction).
    EventQueue q;
    const EventId d1 = q.scheduleDaemon(5, []() {});
    const EventId d2 = q.scheduleDaemon(6, []() {});
    const EventId d3 = q.scheduleDaemon(7, []() {});
    q.schedule(10, []() {});
    EXPECT_EQ(q.pendingCount(), 4u);
    EXPECT_EQ(q.pendingWorkCount(), 1u);

    EXPECT_TRUE(q.cancel(d2));
    EXPECT_EQ(q.pendingCount(), 3u);
    EXPECT_EQ(q.pendingWorkCount(), 1u);

    q.runUntil(5); // d1 fires
    EXPECT_EQ(q.pendingCount(), 2u);
    EXPECT_EQ(q.pendingWorkCount(), 1u);
    EXPECT_FALSE(q.cancel(d1)) << "fired daemon must not cancel";

    EXPECT_TRUE(q.cancel(d3));
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.pendingWorkCount(), 1u);

    q.run();
    EXPECT_EQ(q.pendingWorkCount(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilReclaimsCancelledEntriesPastUntil)
{
    // Lazily-cancelled one-shots sitting beyond `until` at the top of
    // the heap are popped and resolved by runUntil() instead of
    // blocking on the timestamp check.
    EventQueue q;
    std::vector<EventId> ids;
    for (Tick t = 100; t < 110; ++t)
        ids.push_back(q.schedule(t, []() {}));
    for (EventId id : ids)
        EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_TRUE(q.empty());
    q.runUntil(50);
    EXPECT_EQ(q.now(), 50);
    EXPECT_EQ(q.executedCount(), 0u);
    // All heap entries were reclaimed, so running further does
    // nothing and time only moves via runUntil.
    EXPECT_FALSE(q.runOne());
    EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, StateWindowStaysBoundedUnderChurn)
{
    // The per-id state window must track the span of unresolved ids,
    // not the total number of events ever scheduled: a long-running
    // simulation that schedules millions of events may never grow it
    // past the compaction threshold plus the in-flight span.
    EventQueue q;
    std::uint64_t remaining = 200000;
    std::function<void()> fire = [&]() {
        if (remaining == 0)
            return;
        --remaining;
        q.schedule(1, [&]() { fire(); });
        if ((remaining & 3) == 0)
            q.cancel(q.schedule(2, []() {}));
    };
    q.schedule(1, [&]() { fire(); });
    q.run();
    EXPECT_EQ(remaining, 0u);
    // Window = compaction threshold (1024) + a small in-flight tail;
    // anything near the 250k ids ever issued means compaction broke.
    EXPECT_LT(q.stateWindowSize(), 5000u);
}

// ---------------------------------------------------------------------
// Differential testing of the two-lane queue against a reference heap.
//
// The production queue routes near-future events through a 16384-tick
// calendar wheel (intrusive bucket lists, occupancy bitmap, cached
// minimum) and far-future events through a binary heap, with lazy
// cancellation in both lanes. The reference model below is the
// documented contract itself — events fire in (timestamp, id) order —
// held in a std::set. Each step performs one random insert, cancel or
// fire against both and asserts identical fire order, fire time, and
// pendingCount, so any divergence in the lane plumbing surfaces at
// the exact operation that caused it. Seeds are pinned: failures
// reproduce deterministically.

void
runDifferential(std::uint64_t seed, int schedulePct, int cancelPct,
                Tick smallMax, Tick largeMax, std::size_t ops)
{
    EventQueue q;
    std::set<std::pair<Tick, EventId>> ref;
    std::vector<Tick> whenOf{0}; // indexed by id; ids start at 1
    std::vector<EventId> issued;    // cancel targets, fired or not
    std::vector<EventId> fired;
    std::uint64_t executed = 0;
    std::mt19937_64 rng(seed);
    const auto rnd = [&rng](std::uint64_t m) { return rng() % m; };

    const auto fireOne = [&]() {
        ASSERT_FALSE(ref.empty());
        const auto [when, id] = *ref.begin();
        ref.erase(ref.begin());
        const std::size_t before = fired.size();
        ASSERT_TRUE(q.runOne());
        ASSERT_EQ(fired.size(), before + 1);
        ASSERT_EQ(fired.back(), id)
            << "queue fired a different event than the reference";
        ASSERT_EQ(q.now(), when);
        ++executed;
    };

    for (std::size_t op = 0; op < ops; ++op) {
        const int r = static_cast<int>(rnd(100));
        if (r < schedulePct || ref.empty()) {
            // Insert. Mostly near-future (wheel lane), with a tail
            // beyond the 16384-tick horizon (heap lane) so fires
            // constantly arbitrate across both.
            const Tick delay = rnd(4) == 0
                                   ? static_cast<Tick>(rnd(
                                         static_cast<std::uint64_t>(
                                             largeMax)))
                                   : static_cast<Tick>(rnd(
                                         static_cast<std::uint64_t>(
                                             smallMax)));
            const Tick when = q.now() + delay;
            const EventId predicted =
                static_cast<EventId>(whenOf.size());
            const auto cb = [&fired, predicted]() {
                fired.push_back(predicted);
            };
            const EventId id = rnd(4) == 0 ? q.scheduleAt(when, cb)
                                           : q.schedule(delay, cb);
            ASSERT_EQ(id, predicted) << "event ids must be dense";
            whenOf.push_back(when);
            issued.push_back(id);
            ref.insert({when, id});
        } else if (r < schedulePct + cancelPct) {
            // Cancel a random issued id — possibly already fired or
            // cancelled; cancel() must report exactly whether the
            // event was still pending.
            const EventId id = issued[rnd(issued.size())];
            const bool wasPending = ref.erase({whenOf[id], id}) > 0;
            ASSERT_EQ(q.cancel(id), wasPending);
        } else {
            fireOne();
        }
        ASSERT_EQ(q.pendingCount(), ref.size());
        ASSERT_EQ(q.empty(), ref.empty());
    }

    // Drain: remaining fire order must match the reference exactly.
    while (!ref.empty()) {
        fireOne();
        ASSERT_EQ(q.pendingCount(), ref.size());
    }
    EXPECT_FALSE(q.runOne());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.executedCount(), executed);
}

TEST(EventQueueBucketed, DifferentialNearFutureChurn)
{
    // Wheel-lane heavy: delays inside one wheel revolution, dense
    // same-tick collisions exercising bucket FIFO order.
    runDifferential(/*seed=*/0x5eed0001, /*schedulePct=*/45,
                    /*cancelPct=*/15, /*smallMax=*/2048,
                    /*largeMax=*/12000, /*ops=*/100000);
}

TEST(EventQueueBucketed, DifferentialHorizonCrossing)
{
    // Far-future tail several horizons out: entries scheduled into
    // the heap must interleave correctly with wheel entries as the
    // clock approaches and crosses their timestamps.
    runDifferential(/*seed=*/0x5eed0002, /*schedulePct=*/50,
                    /*cancelPct=*/10, /*smallMax=*/16384 * 2,
                    /*largeMax=*/140000, /*ops=*/100000);
}

TEST(EventQueueBucketed, DifferentialCancelHeavy)
{
    // Cancellation-dominated: lazy-cancelled entries pile up in both
    // lanes and must be reclaimed without disturbing fire order,
    // pendingCount, or the wheel's cached minimum.
    runDifferential(/*seed=*/0x5eed0003, /*schedulePct=*/35,
                    /*cancelPct=*/35, /*smallMax=*/4096,
                    /*largeMax=*/50000, /*ops=*/100000);
}

TEST(EventQueueBucketed, DifferentialSparseLongJumps)
{
    // Sparse occupancy with long empty stretches: the bitmap scan
    // and cached-minimum reseed paths dominate. Few events, huge
    // gaps, frequent full-revolution wraps.
    runDifferential(/*seed=*/0x5eed0004, /*schedulePct=*/30,
                    /*cancelPct=*/20, /*smallMax=*/16000,
                    /*largeMax=*/1000000, /*ops=*/20000);
}

TEST(EventQueueBucketed, DifferentialZeroDelayBursts)
{
    // Degenerate delays: almost everything lands in the current or
    // next few buckets, including delay 0 (fires at now). Bucket
    // FIFO order under heavy same-tick collision carries the whole
    // tie-break burden.
    runDifferential(/*seed=*/0x5eed0005, /*schedulePct=*/50,
                    /*cancelPct=*/15, /*smallMax=*/4,
                    /*largeMax=*/20000, /*ops=*/60000);
}

TEST(Simulation, ForkedRngsDifferButAreReproducible)
{
    Simulation a(99);
    Simulation b(99);
    Rng ra = a.forkRng();
    Rng rb = b.forkRng();
    EXPECT_EQ(ra.next(), rb.next());
    Rng ra2 = a.forkRng();
    EXPECT_NE(ra.next(), ra2.next());
    EXPECT_EQ(a.seed(), 99u);
}

} // namespace
} // namespace specfaas
