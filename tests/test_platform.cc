/** @file Tests of the platform facade, load generator, and harness. */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/summary.hh"
#include "platform/experiment.hh"
#include "platform/load_generator.hh"
#include "platform/platform.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

TEST(Platform, DeploySeedsStoreAndRegistersFunctions)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("HotelBook");
    FaasPlatform platform;
    platform.deploy(app);
    EXPECT_EQ(platform.registry().size(), app.functionCount());
    EXPECT_GT(platform.store().size(), 0u); // seeded records
}

TEST(Platform, SpeculativePlatformExposesController)
{
    PlatformOptions options;
    options.speculative = true;
    FaasPlatform platform(options);
    EXPECT_NE(platform.specController(), nullptr);
    EXPECT_EQ(platform.engine().name(), "specfaas");
    FaasPlatform base;
    EXPECT_EQ(base.specController(), nullptr);
    EXPECT_EQ(base.engine().name(), "baseline");
}

TEST(Platform, SameSeedSameResults)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("SmartHome");
    auto run = [&](std::uint64_t seed) {
        PlatformOptions options;
        options.seed = seed;
        FaasPlatform platform(options);
        platform.deploy(app);
        std::vector<Tick> times;
        for (int i = 0; i < 10; ++i) {
            auto r = platform.invokeSync(
                app, app.inputGen(platform.inputRng()));
            times.push_back(r.responseTime());
        }
        return times;
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}

TEST(LoadGenerator, DeliversAllRequests)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("Login");
    FaasPlatform platform;
    platform.deploy(app);
    auto result = LoadGenerator::run(platform, app, 100.0, 50);
    EXPECT_EQ(result.results.size() + result.rejected, 50u);
    EXPECT_GT(result.wallTime, 0);
    EXPECT_GT(result.cpuUtilization, 0.0);
    EXPECT_DOUBLE_EQ(result.offeredRps, 100.0);
}

TEST(LoadGenerator, MixedApplicationsRoundRobin)
{
    auto registry = makeAllSuites();
    FaasPlatform platform;
    std::vector<const Application*> apps = {
        &registry->get("Login"), &registry->get("Banking")};
    for (const Application* app : apps)
        platform.deploy(*app);
    auto result = LoadGenerator::run(platform, apps, 100.0, 20);
    std::size_t login = 0;
    for (const auto& r : result.results)
        login += r.app == "Login" ? 1 : 0;
    EXPECT_EQ(login, 10u);
}

TEST(LoadGenerator, HigherLoadRaisesUtilization)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("OnlPurch");
    auto measure = [&](double rps) {
        PlatformOptions options;
        FaasPlatform platform(options);
        platform.deploy(app);
        return LoadGenerator::run(platform, app, rps, 100)
            .cpuUtilization;
    };
    EXPECT_GT(measure(300.0), measure(50.0));
}

TEST(Experiment, UnloadedResponseIsStable)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("Login");
    const double a =
        Experiment::unloadedResponseMs(app, EngineSetup{}, 10);
    const double b =
        Experiment::unloadedResponseMs(app, EngineSetup{}, 10);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(Experiment, SpeedupAtLoadAboveOneForSpec)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("SmartHome");
    EngineSetup base;
    EngineSetup spec;
    spec.speculative = true;
    const double s =
        Experiment::speedupAtLoad(app, base, spec, 100.0, 100);
    EXPECT_GT(s, 1.5);
}

TEST(Experiment, EffectiveThroughputSpecExceedsBaseline)
{
    auto registry = makeAllSuites();
    const Application& app = registry->get("Login");
    EngineSetup base;
    EngineSetup spec;
    spec.speculative = true;
    const double tb =
        Experiment::effectiveThroughput(app, base, 2.0, 150);
    const double ts =
        Experiment::effectiveThroughput(app, spec, 2.0, 150);
    EXPECT_GT(ts, tb);
}

TEST(Summary, BreakdownAndPercentiles)
{
    InvocationResult r1;
    r1.submittedAt = 0;
    r1.completedAt = msToTicks(100.0);
    r1.functionsExecuted = 2;
    r1.execution = msToTicks(40.0);
    r1.platformOverhead = msToTicks(20.0);
    InvocationResult r2 = r1;
    r2.completedAt = msToTicks(200.0);
    auto s = summarize({r1, r2});
    EXPECT_EQ(s.requests, 2u);
    EXPECT_DOUBLE_EQ(s.meanResponseMs, 150.0);
    EXPECT_DOUBLE_EQ(s.maxResponseMs, 200.0);
    // Per-function: (40+40)/(2+2) = 20 ms execution.
    EXPECT_DOUBLE_EQ(s.perFunctionBreakdown.execution, 20.0);
    EXPECT_DOUBLE_EQ(s.perFunctionBreakdown.platformOverhead, 10.0);
    EXPECT_NEAR(s.perFunctionBreakdown.executionShare(), 2.0 / 3.0,
                1e-9);
    // No predictions in these synthetic results → undefined, not a
    // fabricated 100%.
    EXPECT_TRUE(std::isnan(s.branchHitRate));
}

TEST(Summary, BranchHitRateFromCounts)
{
    InvocationResult r1;
    r1.submittedAt = 0;
    r1.completedAt = msToTicks(10.0);
    r1.branchPredictions = 3;
    r1.branchHits = 2;
    InvocationResult r2 = r1;
    r2.branchPredictions = 1;
    r2.branchHits = 1;
    auto s = summarize({r1, r2});
    EXPECT_NEAR(s.branchHitRate, 3.0 / 4.0, 1e-12);
}

TEST(Summary, EmptyInputIsSafe)
{
    auto s = summarize({});
    EXPECT_EQ(s.requests, 0u);
    EXPECT_DOUBLE_EQ(s.meanResponseMs, 0.0);
}

} // namespace
} // namespace specfaas
