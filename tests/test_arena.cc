/** @file Unit tests for the slab-backed object pool. */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/slot_array.hh"

namespace specfaas {
namespace {

struct Tracked
{
    static int liveObjects;
    std::string payload;

    explicit Tracked(std::string p) : payload(std::move(p))
    {
        ++liveObjects;
    }
    ~Tracked() { --liveObjects; }
};

int Tracked::liveObjects = 0;

TEST(SlabPool, CreateDestroyRoundTrip)
{
    Tracked::liveObjects = 0;
    SlabPool<Tracked, 4> pool;
    Tracked* t = pool.create("hello");
    EXPECT_EQ(t->payload, "hello");
    EXPECT_EQ(pool.liveCount(), 1u);
    EXPECT_EQ(Tracked::liveObjects, 1);
    pool.destroy(t);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

TEST(SlabPool, RecyclesDestroyedSlots)
{
    SlabPool<Tracked, 4> pool;
    Tracked* a = pool.create("a");
    pool.destroy(a);
    Tracked* b = pool.create("b");
    EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b))
        << "freelist must hand back the recycled slot";
    EXPECT_EQ(b->payload, "b");
    EXPECT_EQ(pool.slabCount(), 1u);
    pool.destroy(b);
}

TEST(SlabPool, GrowsByWholeSlabs)
{
    SlabPool<Tracked, 4> pool;
    std::set<void*> addrs;
    Tracked* objs[9];
    for (int i = 0; i < 9; ++i) {
        objs[i] = pool.create(std::to_string(i));
        addrs.insert(objs[i]);
    }
    EXPECT_EQ(addrs.size(), 9u) << "live objects at distinct slots";
    EXPECT_EQ(pool.slabCount(), 3u) << "9 objects at 4 per slab";
    EXPECT_EQ(pool.liveCount(), 9u);
    // Pointers are stable across further growth.
    const std::string before = objs[0]->payload;
    for (int i = 0; i < 20; ++i)
        pool.create("x");
    EXPECT_EQ(objs[0]->payload, before);
}

TEST(SlabPool, DestructorReleasesSurvivors)
{
    Tracked::liveObjects = 0;
    {
        SlabPool<Tracked, 4> pool;
        for (int i = 0; i < 7; ++i)
            pool.create("s");
        Tracked* gone = pool.create("gone");
        pool.destroy(gone);
        EXPECT_EQ(Tracked::liveObjects, 7);
    }
    EXPECT_EQ(Tracked::liveObjects, 0)
        << "pool teardown must run destructors of live objects only";
}

TEST(SlabPool, StressInterleavedCreateDestroy)
{
    Tracked::liveObjects = 0;
    SlabPool<Tracked, 8> pool;
    std::vector<Tracked*> live;
    // Deterministic churn: grow to 100, shrink to 50, regrow to 120.
    for (int i = 0; i < 100; ++i)
        live.push_back(pool.create(std::to_string(i)));
    for (int i = 0; i < 50; ++i) {
        pool.destroy(live.back());
        live.pop_back();
    }
    const std::size_t slabsAfterShrink = pool.slabCount();
    // Exactly the 50 freed slots: regrowth must recycle, not carve.
    for (int i = 0; i < 50; ++i)
        live.push_back(pool.create("r"));
    EXPECT_EQ(pool.slabCount(), slabsAfterShrink)
        << "regrowth into freed slots must not allocate new slabs";
    EXPECT_EQ(pool.liveCount(), live.size());
    EXPECT_EQ(Tracked::liveObjects, static_cast<int>(live.size()));
    for (Tracked* t : live)
        pool.destroy(t);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

// --- SlotArray: index-addressed pool with generation-tagged handles ---

TEST(SlotArray, CreateGetDestroyRoundTrip)
{
    SlotArray<Tracked> arr;
    const SlotHandle h = arr.create("one");
    ASSERT_NE(arr.get(h), nullptr);
    EXPECT_EQ(arr.get(h)->payload, "one");
    EXPECT_EQ(&arr.at(h), arr.get(h));
    EXPECT_EQ(arr.liveCount(), 1u);
    arr.destroy(h);
    EXPECT_EQ(arr.get(h), nullptr);
    EXPECT_EQ(arr.liveCount(), 0u);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

TEST(SlotArray, DefaultHandleNeverResolves)
{
    SlotArray<Tracked> arr;
    arr.create("occupant");
    const SlotHandle none{};
    EXPECT_FALSE(static_cast<bool>(none));
    EXPECT_EQ(arr.get(none), nullptr)
        << "generation 0 must never resolve, even with a live "
           "occupant at index 0";
    EXPECT_EQ(arr.get(SlotHandle{99, 1}), nullptr)
        << "out-of-range index must miss, not fault";
}

TEST(SlotArray, RecycledIndexCarriesNewGeneration)
{
    // The ABA guard itself: destroy + recreate reuses the index, but
    // the stale handle keeps missing while the fresh one resolves.
    SlotArray<Tracked> arr;
    const SlotHandle stale = arr.create("first");
    arr.destroy(stale);
    const SlotHandle fresh = arr.create("second");
    EXPECT_EQ(fresh.index, stale.index) << "freelist should recycle";
    EXPECT_GT(fresh.gen, stale.gen);
    EXPECT_EQ(arr.get(stale), nullptr)
        << "stale handle resolved a recycled slot (ABA)";
    ASSERT_NE(arr.get(fresh), nullptr);
    EXPECT_EQ(arr.get(fresh)->payload, "second");
}

TEST(SlotArray, GenerationsOnlyGrowAcrossManyReuses)
{
    SlotArray<Tracked> arr;
    SlotHandle prev = arr.create("0");
    for (int i = 1; i < 100; ++i) {
        arr.destroy(prev);
        const SlotHandle next = arr.create(std::to_string(i));
        EXPECT_EQ(next.index, prev.index);
        EXPECT_GT(next.gen, prev.gen);
        EXPECT_EQ(arr.get(prev), nullptr);
        prev = next;
    }
}

TEST(SlotArray, AddressesAreStableAcrossGrowth)
{
    // Storage is carved from slabs that never move: pointers taken
    // early must stay valid while the array grows past several slab
    // boundaries.
    SlotArray<Tracked, 8> arr;
    std::vector<std::pair<SlotHandle, Tracked*>> first;
    for (int i = 0; i < 8; ++i) {
        const SlotHandle h = arr.create(std::to_string(i));
        first.emplace_back(h, arr.get(h));
    }
    for (int i = 8; i < 100; ++i)
        arr.create(std::to_string(i));
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(arr.get(first[i].first), first[i].second);
        EXPECT_EQ(first[i].second->payload, std::to_string(i));
    }
    EXPECT_EQ(arr.liveCount(), 100u);
    EXPECT_EQ(arr.indexCount(), 100u);
}

TEST(SlotArray, FreelistKeepsIndexCountBounded)
{
    // Steady create/destroy churn recycles indexes instead of
    // carving new ones: the high-water mark tracks peak liveness,
    // not total objects ever created.
    SlotArray<Tracked> arr;
    for (int round = 0; round < 50; ++round) {
        SlotHandle a = arr.create("a");
        SlotHandle b = arr.create("b");
        arr.destroy(a);
        arr.destroy(b);
    }
    EXPECT_EQ(arr.liveCount(), 0u);
    EXPECT_LE(arr.indexCount(), 2u);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

TEST(SlotArray, DestructorDestroysSurvivors)
{
    Tracked::liveObjects = 0;
    {
        SlotArray<Tracked> arr;
        arr.create("a");
        const SlotHandle b = arr.create("b");
        arr.create("c");
        arr.destroy(b);
        EXPECT_EQ(Tracked::liveObjects, 2);
    }
    EXPECT_EQ(Tracked::liveObjects, 0)
        << "array destructor must run survivors' destructors";
}

TEST(SlotArray, HandleEqualityComparesIndexAndGeneration)
{
    SlotArray<Tracked> arr;
    const SlotHandle a = arr.create("a");
    const SlotHandle copy = a;
    EXPECT_EQ(a, copy);
    arr.destroy(a);
    const SlotHandle recycled = arr.create("b");
    EXPECT_EQ(recycled.index, a.index);
    EXPECT_NE(recycled, a)
        << "same index, different generation: distinct handles";
    EXPECT_NE(SlotHandle{}, a);
}

TEST(SlotArray, AtPanicsOnStaleHandle)
{
    SlotArray<Tracked> arr;
    const SlotHandle h = arr.create("x");
    arr.destroy(h);
    EXPECT_DEATH(arr.at(h), "stale slot handle");
}

} // namespace
} // namespace specfaas
