/** @file Unit tests for the slab-backed object pool. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/arena.hh"

namespace specfaas {
namespace {

struct Tracked
{
    static int liveObjects;
    std::string payload;

    explicit Tracked(std::string p) : payload(std::move(p))
    {
        ++liveObjects;
    }
    ~Tracked() { --liveObjects; }
};

int Tracked::liveObjects = 0;

TEST(SlabPool, CreateDestroyRoundTrip)
{
    Tracked::liveObjects = 0;
    SlabPool<Tracked, 4> pool;
    Tracked* t = pool.create("hello");
    EXPECT_EQ(t->payload, "hello");
    EXPECT_EQ(pool.liveCount(), 1u);
    EXPECT_EQ(Tracked::liveObjects, 1);
    pool.destroy(t);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

TEST(SlabPool, RecyclesDestroyedSlots)
{
    SlabPool<Tracked, 4> pool;
    Tracked* a = pool.create("a");
    pool.destroy(a);
    Tracked* b = pool.create("b");
    EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b))
        << "freelist must hand back the recycled slot";
    EXPECT_EQ(b->payload, "b");
    EXPECT_EQ(pool.slabCount(), 1u);
    pool.destroy(b);
}

TEST(SlabPool, GrowsByWholeSlabs)
{
    SlabPool<Tracked, 4> pool;
    std::set<void*> addrs;
    Tracked* objs[9];
    for (int i = 0; i < 9; ++i) {
        objs[i] = pool.create(std::to_string(i));
        addrs.insert(objs[i]);
    }
    EXPECT_EQ(addrs.size(), 9u) << "live objects at distinct slots";
    EXPECT_EQ(pool.slabCount(), 3u) << "9 objects at 4 per slab";
    EXPECT_EQ(pool.liveCount(), 9u);
    // Pointers are stable across further growth.
    const std::string before = objs[0]->payload;
    for (int i = 0; i < 20; ++i)
        pool.create("x");
    EXPECT_EQ(objs[0]->payload, before);
}

TEST(SlabPool, DestructorReleasesSurvivors)
{
    Tracked::liveObjects = 0;
    {
        SlabPool<Tracked, 4> pool;
        for (int i = 0; i < 7; ++i)
            pool.create("s");
        Tracked* gone = pool.create("gone");
        pool.destroy(gone);
        EXPECT_EQ(Tracked::liveObjects, 7);
    }
    EXPECT_EQ(Tracked::liveObjects, 0)
        << "pool teardown must run destructors of live objects only";
}

TEST(SlabPool, StressInterleavedCreateDestroy)
{
    Tracked::liveObjects = 0;
    SlabPool<Tracked, 8> pool;
    std::vector<Tracked*> live;
    // Deterministic churn: grow to 100, shrink to 50, regrow to 120.
    for (int i = 0; i < 100; ++i)
        live.push_back(pool.create(std::to_string(i)));
    for (int i = 0; i < 50; ++i) {
        pool.destroy(live.back());
        live.pop_back();
    }
    const std::size_t slabsAfterShrink = pool.slabCount();
    // Exactly the 50 freed slots: regrowth must recycle, not carve.
    for (int i = 0; i < 50; ++i)
        live.push_back(pool.create("r"));
    EXPECT_EQ(pool.slabCount(), slabsAfterShrink)
        << "regrowth into freed slots must not allocate new slabs";
    EXPECT_EQ(pool.liveCount(), live.size());
    EXPECT_EQ(Tracked::liveObjects, static_cast<int>(live.size()));
    for (Tracked* t : live)
        pool.destroy(t);
    EXPECT_EQ(Tracked::liveObjects, 0);
}

} // namespace
} // namespace specfaas
