/**
 * @file
 * Focused tests of the classic closed-catalogue LoadGenerator: the
 * NaN conventions of LoadRunResult on degenerate runs, mixed-app
 * round-robin accounting and determinism, and byte-identical merged
 * traces under the parallel harness at any job count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/trace_export.hh"
#include "platform/load_generator.hh"
#include "platform/platform.hh"
#include "sim/sim_context.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

TEST(LoadRunResult, EmptyRunRatesAreNaN)
{
    // A default (never-run) result has no window and no submissions;
    // both derived rates must read "undefined", not "zero".
    const LoadRunResult empty;
    EXPECT_TRUE(std::isnan(empty.completedRps()));
    EXPECT_TRUE(std::isnan(empty.rejectionRate()));
}

TEST(LoadRunResult, ZeroWallTimeRateIsNaN)
{
    LoadRunResult result;
    result.results.resize(3); // completions without a time window
    result.wallTime = 0;
    EXPECT_TRUE(std::isnan(result.completedRps()));
    // Rejection rate is well-defined the moment anything was
    // submitted, window or not.
    EXPECT_DOUBLE_EQ(result.rejectionRate(), 0.0);
    result.rejected = 1;
    EXPECT_DOUBLE_EQ(result.rejectionRate(), 0.25);
}

TEST(LoadRunResult, RejectOnlyRunHasDefinedRates)
{
    LoadRunResult result;
    result.rejected = 5;
    result.wallTime = kSecond;
    EXPECT_DOUBLE_EQ(result.completedRps(), 0.0);
    EXPECT_DOUBLE_EQ(result.rejectionRate(), 1.0);
}

/** One mixed-app run; per-request (app, responseTime) pairs. */
std::vector<std::pair<std::string, Tick>>
mixedRun(std::uint64_t seed, SimContext* context = nullptr)
{
    auto registry = makeAllSuites();
    std::vector<const Application*> apps = {
        &registry->get("Login"), &registry->get("Banking"),
        &registry->get("SmartHome")};
    PlatformOptions options;
    options.seed = seed;
    options.context = context;
    FaasPlatform platform(options);
    for (const Application* app : apps)
        platform.deploy(*app);
    const LoadRunResult result =
        LoadGenerator::run(platform, apps, 150.0, 30);
    std::vector<std::pair<std::string, Tick>> out;
    for (const InvocationResult& r : result.results)
        out.emplace_back(r.app, r.responseTime());
    return out;
}

TEST(LoadGeneratorMixed, SameSeedSameOutcome)
{
    const auto a = mixedRun(21);
    const auto b = mixedRun(21);
    EXPECT_EQ(a, b);
    const auto c = mixedRun(22);
    EXPECT_NE(a, c);
}

TEST(LoadGeneratorMixed, RoundRobinAccountsPerApp)
{
    // 30 requests over 3 apps round-robin: each app gets exactly 10
    // submissions; completions + rejections per app must add to 10.
    auto registry = makeAllSuites();
    std::vector<const Application*> apps = {
        &registry->get("Login"), &registry->get("Banking"),
        &registry->get("SmartHome")};
    PlatformOptions options;
    options.seed = 21;
    FaasPlatform platform(options);
    for (const Application* app : apps)
        platform.deploy(*app);
    const LoadRunResult result =
        LoadGenerator::run(platform, apps, 150.0, 30);
    std::size_t login = 0;
    std::size_t banking = 0;
    std::size_t smart = 0;
    for (const InvocationResult& r : result.results) {
        login += r.app == "Login" ? 1 : 0;
        banking += r.app == "Banking" ? 1 : 0;
        smart += r.app == "SmartHome" ? 1 : 0;
    }
    EXPECT_EQ(login + banking + smart + result.rejected, 30u);
    // With the default wide-open admission queue nothing is rejected,
    // so the split is exactly even.
    EXPECT_EQ(result.rejected, 0u);
    EXPECT_EQ(login, 10u);
    EXPECT_EQ(banking, 10u);
    EXPECT_EQ(smart, 10u);
}

/** Merged Chrome trace of two mixed runs executed on @p jobs threads. */
std::string
mergedTrace(std::size_t jobs)
{
    SimContext session;
    session.trace().enable(1 << 16);
    std::vector<std::function<std::size_t(SimContext&)>> tasks;
    for (std::uint64_t seed : {31, 32}) {
        tasks.push_back([seed](SimContext& context) {
            return mixedRun(seed, &context).size();
        });
    }
    const auto sizes =
        runSimTasks<std::size_t>(jobs, std::move(tasks), &session);
    EXPECT_EQ(sizes.size(), 2u);
    return obs::toChromeTraceJson(session.trace().snapshot());
}

TEST(LoadGeneratorMixed, TracesByteIdenticalAcrossJobCounts)
{
    const std::string serial = mergedTrace(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, mergedTrace(2));
    EXPECT_EQ(serial, mergedTrace(8));
}

} // namespace
} // namespace specfaas
