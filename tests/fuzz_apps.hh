/**
 * @file
 * Shared randomized-application generator and differential runners for
 * the fuzz and chaos test suites (and the bench/fuzz_chaos CLI).
 *
 * AppFuzzer builds random-but-deterministic applications: explicit
 * workflow trees (sequences, branches, loops, parallel sections) and
 * implicit call trees, with random function bodies mixing compute,
 * global reads/writes, HTTP, temp files and local steps. The seed
 * fully determines the app, so a failing seed reproduces anywhere.
 *
 * runApp / runChaos execute the same request sequence on one engine
 * and report everything the equivalence checks compare: responses,
 * the final store fingerprint, engine counters, and (under a fault
 * plan) the injection/retry/give-up tallies.
 */

#ifndef SPECFAAS_TESTS_FUZZ_APPS_HH
#define SPECFAAS_TESTS_FUZZ_APPS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "platform/platform.hh"
#include "workloads/app_helpers.hh"

namespace specfaas {
namespace fuzz {

/** Generator of random-but-deterministic applications. */
class AppFuzzer
{
  public:
    explicit AppFuzzer(std::uint64_t seed) : rng_(seed) {}

    Application
    explicitApp()
    {
        Application app;
        app.name = "fuzz-explicit";
        app.suite = "fuzz";
        app.type = WorkflowType::Explicit;
        app_ = &app;
        app.workflow = genNode(0);
        finishApp(app);
        return app;
    }

    Application
    implicitApp()
    {
        Application app;
        app.name = "fuzz-implicit";
        app.suite = "fuzz";
        app.type = WorkflowType::Implicit;
        app_ = &app;
        app.rootFunction = genCallTree(0);
        finishApp(app);
        return app;
    }

    /**
     * Loop-carrying app: a guaranteed while-loop whose body threads
     * state through both the carry value (iter) and a storage
     * read-modify-write, flanked by plain tasks. Exercises the
     * memoization/replay machinery on loop-carried dependences.
     */
    Application
    loopApp()
    {
        Application app;
        app.name = "fuzz-loop";
        app.suite = "fuzz";
        app.type = WorkflowType::Explicit;
        app_ = &app;
        const std::string cond = genLoopCondFunction();
        const std::string body = genLoopCarryFunction();
        std::vector<WorkflowNode> steps;
        steps.push_back(task(genFunction(false)));
        steps.push_back(whileLoop(cond, task(body)));
        steps.push_back(task(genFunction(false)));
        app.workflow = sequence(std::move(steps));
        finishApp(app);
        return app;
    }

  private:
    /** Random explicit workflow node (bounded depth). */
    WorkflowNode
    genNode(int depth)
    {
        const double roll = rng_.uniform();
        if (depth >= 2 || roll < 0.45)
            return task(genFunction(/*allow_calls=*/depth < 2));
        if (roll < 0.65) {
            std::vector<WorkflowNode> children;
            const int n = static_cast<int>(rng_.uniformInt(
                std::int64_t{2}, std::int64_t{4}));
            for (int i = 0; i < n; ++i)
                children.push_back(genNode(depth + 1));
            return sequence(std::move(children));
        }
        if (roll < 0.84) {
            const std::string cond = genCondFunction();
            if (rng_.bernoulli(0.3))
                return when(cond, genNode(depth + 1));
            return when(cond, genNode(depth + 1), genNode(depth + 1));
        }
        if (roll < 0.9) {
            // Bounded loop: the condition counts its own visits via a
            // loop-carried field the body threads through.
            const std::string cond = genLoopCondFunction();
            const std::string body = genLoopBodyFunction();
            return whileLoop(cond, task(body));
        }
        std::vector<WorkflowNode> arms;
        const int n = static_cast<int>(
            rng_.uniformInt(std::int64_t{2}, std::int64_t{3}));
        // Parallel arms get disjoint storage zones: sibling arms run
        // concurrently in the BASELINE too, so records shared across
        // arms would be racy there (no canonical outcome to compare
        // against). SpecFaaS itself orders arms via the Data Buffer.
        const int saved_zone = zone_;
        for (int i = 0; i < n; ++i) {
            zone_ = nextZone_++;
            arms.push_back(genNode(depth + 1));
        }
        zone_ = saved_zone;
        return parallel(std::move(arms));
    }

    /** Random implicit call subtree; returns the function name. */
    std::string
    genCallTree(int depth)
    {
        const bool caller =
            depth < 2 && rng_.bernoulli(depth == 0 ? 1.0 : 0.4);
        FunctionDef def = genBody(/*allow_calls=*/false);
        def.name = nextName();
        if (caller) {
            const int calls = static_cast<int>(
                rng_.uniformInt(std::int64_t{1}, std::int64_t{3}));
            for (int c = 0; c < calls; ++c) {
                const std::string callee = genCallTree(depth + 1);
                const std::string var = strFormat("c%d", c);
                ValueFn args = [](const Env& e) {
                    Value a = Value::object({});
                    a["key"] = e.input.at("key");
                    return a;
                };
                if (rng_.bernoulli(0.3)) {
                    def.body.push_back(Op::callIf(
                        fns::bucketGuard("key", 8), callee, args, var));
                } else {
                    def.body.push_back(Op::call(callee, args, var));
                }
            }
            // Fold call results into the output deterministically.
            const int calls_made = calls;
            def.output = [calls_made](const Env& e) {
                std::int64_t acc = intOr(e.input.at("salt"), 0);
                for (int c = 0; c < calls_made; ++c) {
                    const Value& v = e.var(strFormat("c%d", c));
                    if (v.isObject())
                        acc = (acc * 31 + intOr(v.at("v"), 0)) % 1009;
                }
                Value out = Value::object({});
                out["v"] = Value(acc);
                return out;
            };
        }
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    std::string
    nextName()
    {
        return strFormat("Fz%u", counter_++);
    }

    /** Random function body (no calls; calls added separately). */
    FunctionDef
    genBody(bool allow_calls)
    {
        (void)allow_calls;
        FunctionDef def;
        def.computeCv = 0.1;
        const int ops = static_cast<int>(
            rng_.uniformInt(std::int64_t{1}, std::int64_t{4}));
        bool read = false;
        for (int i = 0; i < ops; ++i) {
            const double roll = rng_.uniform();
            if (roll < 0.40) {
                def.body.push_back(Op::compute(msToTicks(
                    rng_.uniform(1.0, 8.0))));
            } else if (roll < 0.62) {
                const int bank = static_cast<int>(rng_.uniformInt(
                    std::int64_t{0}, std::int64_t{3}));
                def.body.push_back(Op::storageRead(
                    [bank, zone = zone_](const Env& e) {
                        return strFormat(
                            "fz%d_%d:%s", zone, bank,
                            e.input.at("key").toString().c_str());
                    },
                    strFormat("r%d", i)));
                read = true;
            } else if (roll < 0.80) {
                const int bank = static_cast<int>(rng_.uniformInt(
                    std::int64_t{0}, std::int64_t{3}));
                def.body.push_back(Op::storageWrite(
                    [bank, zone = zone_](const Env& e) {
                        return strFormat(
                            "fz%d_%d:%s", zone, bank,
                            e.input.at("key").toString().c_str());
                    },
                    [](const Env& e) {
                        Value rec = Value::object({});
                        rec["v"] = Value(intOr(e.input.at("salt"), 1));
                        return rec;
                    }));
            } else if (roll < 0.88) {
                def.body.push_back(Op::http());
            } else if (roll < 0.94) {
                def.body.push_back(Op::fileWrite([](const Env&) {
                    return std::string("tmp.dat");
                }));
            } else {
                def.body.push_back(Op::setVar(
                    strFormat("s%d", i), [](const Env& e) {
                        return Value(intOr(e.input.at("salt"), 0) + 1);
                    }));
            }
        }
        const bool uses_read = read;
        def.output = [uses_read](const Env& e) {
            std::int64_t acc =
                bucketOf(e.input.toString(), 97);
            if (uses_read) {
                for (int i = 0; i < 4; ++i) {
                    const Value& v = e.var(strFormat("r%d", i));
                    if (v.isObject())
                        acc = (acc * 17 + intOr(v.at("v"), 0)) % 1009;
                }
            }
            Value out = Value::object({});
            out["v"] = Value(acc);
            out["key"] = e.input.at("key");
            out["salt"] = e.input.at("salt");
            return out;
        };
        return def;
    }

    std::string
    genFunction(bool allow_calls)
    {
        FunctionDef def = genBody(allow_calls);
        def.name = nextName();
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    /** Loop condition: true while input.iter < 2. */
    std::string
    genLoopCondFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(1.5)));
        def.output = [](const Env& e) {
            return Value(intOr(e.input.at("iter"), 0) < 2);
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    /** Loop body: passes the input through with iter incremented. */
    std::string
    genLoopBodyFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(2.0)));
        def.output = [](const Env& e) {
            // A loop placed right after a parallel block receives the
            // join's ARRAY carry; restart from an object in that case.
            Value out =
                e.input.isObject() ? e.input : Value::object({});
            out["iter"] = Value(intOr(e.input.at("iter"), 0) + 1);
            return out;
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    /**
     * Loop body with a storage-carried dependence: read a record,
     * fold it, write it back, then increment iter in the carry. Each
     * iteration depends on the previous one through the store.
     */
    std::string
    genLoopCarryFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(Op::compute(msToTicks(2.0)));
        def.body.push_back(Op::storageRead(
            [zone = zone_](const Env& e) {
                return strFormat(
                    "fz%d_0:%s", zone,
                    e.input.at("key").toString().c_str());
            },
            "acc"));
        def.body.push_back(Op::storageWrite(
            [zone = zone_](const Env& e) {
                return strFormat(
                    "fz%d_0:%s", zone,
                    e.input.at("key").toString().c_str());
            },
            [](const Env& e) {
                const Value& prev = e.var("acc");
                const std::int64_t prior =
                    prev.isObject() ? intOr(prev.at("v"), 0) : 0;
                Value rec = Value::object({});
                rec["v"] = Value(
                    (prior * 7 + intOr(e.input.at("salt"), 1) + 1) %
                    1009);
                return rec;
            }));
        def.output = [](const Env& e) {
            Value out =
                e.input.isObject() ? e.input : Value::object({});
            out["iter"] = Value(intOr(e.input.at("iter"), 0) + 1);
            return out;
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    std::string
    genCondFunction()
    {
        FunctionDef def;
        def.name = nextName();
        def.body.push_back(
            Op::compute(msToTicks(rng_.uniform(1.0, 4.0))));
        const int field = static_cast<int>(
            rng_.uniformInt(std::int64_t{0}, std::int64_t{2}));
        def.output = [field](const Env& e) {
            return e.input.at(strFormat("b%d", field));
        };
        app_->functions.push_back(std::move(def));
        return app_->functions.back().name;
    }

    void
    finishApp(Application& app)
    {
        app.inputGen = [](Rng& rng) {
            Value v = Value::object({});
            v["key"] = Value(strFormat(
                "k%llu",
                static_cast<unsigned long long>(rng.zipf(12, 1.4))));
            v["salt"] = Value(rng.uniformInt(std::int64_t{0},
                                             std::int64_t{5}));
            for (int b = 0; b < 3; ++b)
                v[strFormat("b%d", b)] = Value(rng.bernoulli(0.85));
            return v;
        };
        const int zones = nextZone_;
        app.seedStore = [zones](KvStore& store, Rng& rng) {
            for (int zone = 0; zone < zones; ++zone) {
                for (int bank = 0; bank < 4; ++bank) {
                    for (int k = 0; k < 12; ++k) {
                        store.put(
                            strFormat("fz%d_%d:\"k%d\"", zone, bank,
                                      k),
                            Value::object(
                                {{"v", Value(rng.uniformInt(
                                          std::int64_t{0},
                                          std::int64_t{99}))}}));
                    }
                }
            }
        };
    }

    Rng rng_;
    Application* app_ = nullptr;
    std::uint32_t counter_ = 0;
    int zone_ = 0;
    int nextZone_ = 1;
};

/** Everything an equivalence check compares after a run. */
struct Outcome
{
    std::vector<Value> responses;
    std::uint64_t fingerprint = 0;
    /** Engine counters (zero on a baseline run). */
    std::uint64_t squashes = 0;
    std::uint64_t speculativeLaunches = 0;
    std::uint64_t commits = 0;
};

/**
 * Run @p requests dataset-drawn requests serially on one engine.
 * @p context isolates the run's ids/trace/counters when harnesses
 * execute many runs in one process (null = default context).
 */
inline Outcome
runApp(const Application& app, bool speculative, SpecConfig config,
       std::uint64_t seed, std::size_t requests,
       SimContext* context = nullptr)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.spec = config;
    options.seed = seed;
    options.context = context;
    FaasPlatform platform(options);
    platform.deploy(app);
    Outcome out;
    for (std::size_t i = 0; i < requests; ++i) {
        Value input = app.inputGen(platform.inputRng());
        auto r = platform.invokeSync(app, std::move(input));
        out.responses.push_back(r.response);
    }
    out.fingerprint = platform.store().fingerprint();
    if (auto* spec = platform.specController(); spec != nullptr) {
        const SpecStats s = spec->stats();
        out.squashes = s.squashes;
        out.speculativeLaunches = s.speculativeLaunches;
        out.commits = s.commits;
    }
    return out;
}

/** Run an explicit list of inputs (e.g. the same input repeatedly, to
 * drive the memoized-replay fast paths). */
inline Outcome
runAppInputs(const Application& app, bool speculative, SpecConfig config,
             std::uint64_t seed, const std::vector<Value>& inputs,
             SimContext* context = nullptr)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.spec = config;
    options.seed = seed;
    options.context = context;
    FaasPlatform platform(options);
    platform.deploy(app);
    Outcome out;
    for (const Value& input : inputs) {
        auto r = platform.invokeSync(app, Value(input));
        out.responses.push_back(r.response);
    }
    out.fingerprint = platform.store().fingerprint();
    if (auto* spec = platform.specController(); spec != nullptr) {
        const SpecStats s = spec->stats();
        out.squashes = s.squashes;
        out.speculativeLaunches = s.speculativeLaunches;
        out.commits = s.commits;
    }
    return out;
}

/** Deployed function names, for fault plans targeting real functions. */
inline std::vector<std::string>
functionNames(const Application& app)
{
    std::vector<std::string> names;
    names.reserve(app.functions.size());
    for (const auto& f : app.functions)
        names.push_back(f.name);
    return names;
}

/** A chaos run's comparable outcome plus its liveness verdict. */
struct ChaosOutcome
{
    std::vector<Value> responses;
    std::uint64_t fingerprint = 0;
    /** False when a request failed to terminate within the step cap. */
    bool allTerminated = true;
    std::uint64_t faultsInjected = 0;
    std::uint64_t retries = 0;
    std::uint64_t gaveUp = 0;
    /** Per-kind injection tallies, indexed by FaultKind. */
    std::array<std::uint64_t, 7> injectedByKind{};
};

/**
 * Run @p requests requests serially under @p plan on one engine,
 * with a bounded event loop so a liveness bug surfaces as
 * allTerminated=false instead of a hang. A small warm pool keeps
 * cold starts (and cold-start crashes) in play.
 */
inline ChaosOutcome
runChaos(const Application& app, bool speculative, SpecConfig config,
         std::uint64_t seed, std::size_t requests, const FaultPlan& plan,
         std::uint32_t prewarm = 4, SimContext* context = nullptr)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.spec = config;
    options.seed = seed;
    options.faultPlan = plan;
    options.prewarmPerFunction = prewarm;
    options.context = context;
    FaasPlatform platform(options);
    platform.deploy(app);

    ChaosOutcome out;
    for (std::size_t i = 0; i < requests; ++i) {
        Value input = app.inputGen(platform.inputRng());
        bool finished = false;
        InvocationResult result;
        platform.engine().invoke(app, std::move(input),
                                 [&](InvocationResult r) {
                                     result = std::move(r);
                                     finished = true;
                                 });
        std::size_t steps = 0;
        constexpr std::size_t kStepCap = 5'000'000;
        while (!finished && steps < kStepCap &&
               platform.sim().events().runOne()) {
            ++steps;
        }
        if (!finished) {
            out.allTerminated = false;
            break;
        }
        out.responses.push_back(result.response);
    }
    // Drain stragglers (lazy squashes, pending retries of dead
    // invocations) so the store settles before fingerprinting — but
    // not after a liveness failure, where draining could spin too.
    if (out.allTerminated)
        platform.sim().events().run();
    out.fingerprint = platform.store().fingerprint();
    if (auto* fi = platform.faultInjector(); fi != nullptr) {
        out.faultsInjected = fi->injectedTotal();
        out.retries = fi->retries();
        out.gaveUp = fi->gaveUp();
        for (int k = 0; k < 7; ++k) {
            out.injectedByKind[static_cast<std::size_t>(k)] =
                fi->injected(static_cast<FaultKind>(k));
        }
    }
    return out;
}

} // namespace fuzz
} // namespace specfaas

#endif // SPECFAAS_TESTS_FUZZ_APPS_HH
