/** @file End-to-end tests of the conventional (baseline) engine. */

#include <gtest/gtest.h>

#include <memory>

#include "baseline/baseline_controller.hh"
#include "platform/platform.hh"
#include "workloads/app_helpers.hh"
#include "workloads/suites.hh"

namespace specfaas {
namespace {

/** Tiny explicit app: seq(double, when(positive, yes, no)). */
Application
tinyExplicit()
{
    Application app;
    app.name = "tiny";
    app.suite = "test";
    app.type = WorkflowType::Explicit;

    FunctionDef dbl = worker("Tdouble", 2.0, [](const Env& e) {
        return Value(e.input.at("x").asInt() * 2);
    });
    app.functions.push_back(std::move(dbl));

    FunctionDef positive = worker("Tpositive", 1.0, [](const Env& e) {
        return Value(e.input.asInt() > 0);
    });
    app.functions.push_back(std::move(positive));

    app.functions.push_back(worker("Tyes", 1.0, [](const Env& e) {
        Value out = Value::object({});
        out["sign"] = Value("pos");
        out["v"] = e.input;
        return out;
    }));
    app.functions.push_back(worker("Tno", 1.0, [](const Env& e) {
        Value out = Value::object({});
        out["sign"] = Value("neg");
        out["v"] = e.input;
        return out;
    }));

    app.workflow = sequence(
        {task("Tdouble"), when("Tpositive", task("Tyes"), task("Tno"))});
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["x"] = Value(rng.uniformInt(std::int64_t{-5}, std::int64_t{5}));
        return v;
    };
    return app;
}

/** Tiny implicit app: root calls a square service. */
Application
tinyImplicit()
{
    Application app;
    app.name = "tiny-implicit";
    app.suite = "test";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "Troot";

    FunctionDef root;
    root.name = "Troot";
    root.body.push_back(Op::compute(msToTicks(1.0)));
    root.body.push_back(Op::call(
        "Tsquare", [](const Env& e) { return e.input.at("x"); }, "sq"));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["sq"] = e.var("sq");
        return out;
    };
    app.functions.push_back(std::move(root));

    app.functions.push_back(worker("Tsquare", 1.0, [](const Env& e) {
        return Value(e.input.asInt() * e.input.asInt());
    }));

    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["x"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{9}));
        return v;
    };
    return app;
}

TEST(Baseline, SequencePropagatesOutputs)
{
    FaasPlatform platform;
    Application app = tinyExplicit();
    platform.deploy(app);
    Value input = Value::object({{"x", Value(3)}});
    auto r = platform.invokeSync(app, input);
    EXPECT_EQ(r.response.at("sign").asString(), "pos");
    EXPECT_EQ(r.response.at("v").asInt(), 6);
    EXPECT_EQ(r.functionsExecuted, 3u);
    EXPECT_EQ(r.executedSequence,
              (std::vector<std::string>{"Tdouble", "Tpositive", "Tyes"}));
}

TEST(Baseline, BranchFalseArmTaken)
{
    FaasPlatform platform;
    Application app = tinyExplicit();
    platform.deploy(app);
    auto r = platform.invokeSync(app,
                                 Value::object({{"x", Value(-2)}}));
    EXPECT_EQ(r.response.at("sign").asString(), "neg");
    EXPECT_EQ(r.response.at("v").asInt(), -4);
}

TEST(Baseline, BranchTargetInheritsBranchInput)
{
    // Tyes receives the *branch's input* (Tdouble's output), not the
    // boolean the condition function returned (§II-A).
    FaasPlatform platform;
    Application app = tinyExplicit();
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value::object({{"x", Value(4)}}));
    EXPECT_EQ(r.response.at("v").asInt(), 8);
}

TEST(Baseline, ImplicitCallBlocksAndReturns)
{
    FaasPlatform platform;
    Application app = tinyImplicit();
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value::object({{"x", Value(7)}}));
    EXPECT_EQ(r.response.at("sq").asInt(), 49);
    EXPECT_EQ(r.functionsExecuted, 2u);
    // Program-order sequence: caller first, callee after.
    EXPECT_EQ(r.executedSequence,
              (std::vector<std::string>{"Troot", "Tsquare"}));
}

TEST(Baseline, TimingIncludesPlatformAndTransferOverheads)
{
    FaasPlatform platform;
    Application app = tinyExplicit();
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value::object({{"x", Value(1)}}));
    const auto& cfg = platform.cluster().config();
    // Three launches worth of platform overhead.
    EXPECT_EQ(r.platformOverhead, 3 * cfg.platformOverhead);
    // Three conductor steps: double→when, when→arm, and the final
    // completion notification back through the controller.
    EXPECT_EQ(r.transferOverhead, 3 * cfg.conductorOverhead);
    EXPECT_GT(r.execution, 0);
    EXPECT_EQ(r.containerCreation, 0); // prewarmed
    EXPECT_GT(r.responseTime(),
              r.platformOverhead + r.transferOverhead);
}

TEST(Baseline, ColdStartChargesContainerCreation)
{
    PlatformOptions options;
    options.prewarmPerFunction = 0;
    FaasPlatform platform(options);
    Application app = tinyExplicit();
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value::object({{"x", Value(1)}}));
    const auto& cfg = platform.cluster().config();
    EXPECT_EQ(r.containerCreation, 3 * cfg.containerCreation);
    EXPECT_EQ(r.runtimeSetup, 3 * cfg.runtimeSetup);
}

TEST(Baseline, ParallelArmsJoinInOrder)
{
    Application app;
    app.name = "par";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(worker("Pslow", 20.0, [](const Env&) {
        return Value("slow");
    }));
    app.functions.push_back(worker("Pfast", 1.0, [](const Env&) {
        return Value("fast");
    }));
    app.functions.push_back(worker("Pjoin", 1.0, fns::passInput()));
    app.workflow = sequence(
        {parallel({task("Pslow"), task("Pfast")}), task("Pjoin")});

    FaasPlatform platform;
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value());
    // Join output ordered by arm index, not completion time.
    ASSERT_TRUE(r.response.isArray());
    EXPECT_EQ(r.response.asArray()[0].asString(), "slow");
    EXPECT_EQ(r.response.asArray()[1].asString(), "fast");
}

TEST(Baseline, ParallelArmsOverlapInTime)
{
    Application app;
    app.name = "par2";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    for (const char* name : {"Qa", "Qb"}) {
        FunctionDef f = worker(name, 50.0, fns::passInput());
        f.computeCv = 0.0;
        app.functions.push_back(std::move(f));
    }
    app.workflow = parallel({task("Qa"), task("Qb")});

    FaasPlatform platform;
    platform.deploy(app);
    auto r = platform.invokeSync(app, Value());
    // Two 50 ms functions in parallel: well under 100 ms + overheads.
    EXPECT_LT(ticksToMs(r.responseTime()), 80.0);
}

TEST(Baseline, ConcurrentInvocationsDoNotInterfere)
{
    FaasPlatform platform;
    Application app = tinyExplicit();
    platform.deploy(app);
    std::vector<InvocationResult> results;
    for (int i = 0; i < 10; ++i) {
        Value input = Value::object({{"x", Value(i - 5)}});
        platform.invoke(app, input, [&](InvocationResult r) {
            results.push_back(std::move(r));
        });
    }
    platform.sim().events().run();
    ASSERT_EQ(results.size(), 10u);
    for (const auto& r : results) {
        EXPECT_TRUE(r.response.isObject());
        EXPECT_EQ(r.functionsExecuted, 3u);
    }
}

TEST(Baseline, RejectsWhenControllerBackedUp)
{
    PlatformOptions options;
    options.cluster.admissionQueueLimit = 0;
    FaasPlatform platform(options);
    Application app = tinyExplicit();
    platform.deploy(app);
    // Fill the controller queue.
    for (std::uint32_t i = 0;
         i < platform.cluster().config().controllerThreads + 2; ++i) {
        platform.cluster().controller().submit(msToTicks(50.0), []() {});
    }
    bool rejected = false;
    platform.invoke(app, Value::object({{"x", Value(1)}}),
                    [&](InvocationResult r) { rejected = r.rejected; });
    platform.sim().events().run();
    EXPECT_TRUE(rejected);
}

/**
 * Single-worker app whose handler snapshots the baseline
 * controller's live invocation-record handles into @p captured.
 */
Application
invCaptureApp(std::shared_ptr<std::vector<SlotHandle>> captured,
              std::shared_ptr<BaselineController*> ctrl)
{
    Application app;
    app.name = "aba-base";
    app.suite = "test";
    app.type = WorkflowType::Explicit;
    app.functions.push_back(
        worker("Bwork", 2.0, [captured, ctrl](const Env& e) {
            if (*ctrl != nullptr) {
                const auto hs = (*ctrl)->liveInvocationHandles();
                captured->insert(captured->end(), hs.begin(),
                                 hs.end());
            }
            return Value(e.input.at("x").asInt() + 1);
        }));
    app.workflow = task("Bwork");
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["x"] = Value(rng.uniformInt(std::int64_t{0}, std::int64_t{9}));
        return v;
    };
    return app;
}

TEST(Baseline, StaleInvocationHandlesMissAfterCompletion)
{
    // Invocation records live in a generation-tagged arena; a handle
    // captured mid-run (the shape deferred work holds across
    // conductor hops and retry timers) must miss once the invocation
    // finishes, and keep missing after later requests recycle the
    // index — the generation is the ABA guard.
    auto captured = std::make_shared<std::vector<SlotHandle>>();
    auto ctrl = std::make_shared<BaselineController*>(nullptr);
    Application app = invCaptureApp(captured, ctrl);
    PlatformOptions options;
    options.speculative = false;
    options.seed = 7;
    FaasPlatform platform(options);
    platform.deploy(app);
    *ctrl = &dynamic_cast<BaselineController&>(platform.engine());

    InvocationResult r =
        platform.invokeSync(app, Value::object({{"x", Value(1)}}));
    EXPECT_EQ(r.response.asInt(), 2);
    ASSERT_FALSE(captured->empty());
    EXPECT_EQ((*ctrl)->liveInvocations(), 0u);
    for (SlotHandle h : *captured) {
        EXPECT_TRUE(static_cast<bool>(h));
        EXPECT_FALSE((*ctrl)->invocationHandleResolves(h))
            << "record " << h.index << "@" << h.gen
            << " should be stale after completion";
    }

    // Recycle the index with fresh requests; old handles still miss
    // and the new occupant of the index carries a newer generation.
    const std::vector<SlotHandle> old = *captured;
    captured->clear();
    for (int i = 0; i < 5; ++i)
        platform.invokeSync(app, app.inputGen(platform.inputRng()));
    ASSERT_FALSE(captured->empty());
    bool reused = false;
    for (SlotHandle h : old) {
        EXPECT_FALSE((*ctrl)->invocationHandleResolves(h));
        for (SlotHandle fresh : *captured) {
            if (fresh.index != h.index)
                continue;
            reused = true;
            EXPECT_GT(fresh.gen, h.gen)
                << "recycled index must carry a newer generation";
        }
    }
    EXPECT_TRUE(reused)
        << "expected later requests to recycle the record index";
}

TEST(Baseline, StaleInvocationHandlesMissAfterFaultGiveUp)
{
    // Retries exhausted: failInvocation kills the remaining work and
    // answers the error. The teardown path must bump the generation
    // exactly like normal completion does.
    auto captured = std::make_shared<std::vector<SlotHandle>>();
    auto ctrl = std::make_shared<BaselineController*>(nullptr);
    // Capture in a healthy first stage, then crash the second stage
    // on every attempt — the capture is guaranteed to have happened
    // by the time the give-up fires.
    Application app = invCaptureApp(captured, ctrl);
    app.functions.push_back(worker(
        "Bfail", 2.0, [](const Env&) { return Value("unreached"); }));
    app.workflow = sequence({task("Bwork"), task("Bfail")});
    PlatformOptions options;
    options.speculative = false;
    options.seed = 7;
    FaultRule rule;
    rule.kind = FaultKind::ContainerCrash;
    rule.function = "Bfail";
    rule.phase = CrashPhase::MidExecution;
    rule.budget = kUnlimitedBudget;
    rule.probability = 1.0;
    options.faultPlan.rules.push_back(rule);
    options.faultPlan.maxAttempts = 2;
    FaasPlatform platform(options);
    platform.deploy(app);
    *ctrl = &dynamic_cast<BaselineController&>(platform.engine());

    platform.invokeSync(app, Value::object({{"x", Value(1)}}));
    ASSERT_FALSE(captured->empty());
    EXPECT_EQ((*ctrl)->liveInvocations(), 0u)
        << "give-up must fully tear the invocation down";
    for (SlotHandle h : *captured)
        EXPECT_FALSE((*ctrl)->invocationHandleResolves(h))
            << "record " << h.index << "@" << h.gen
            << " survived the fault give-up";
}

} // namespace
} // namespace specfaas
