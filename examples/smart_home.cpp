/**
 * @file
 * The paper's running example (Listing 1 / Fig. 1): the smart-home
 * application. Runs it on both engines and prints the per-request
 * timeline information that Figure 5 illustrates — conventional
 * sequential execution vs speculative overlap — plus the speculation
 * statistics of the SpecFaaS run.
 *
 * Build & run: ./build/examples/smart_home
 */

#include <cstdio>

#include "common/table.hh"
#include "platform/platform.hh"
#include "workloads/faaschain.hh"

using namespace specfaas;

namespace {

void
report(const char* label, const InvocationResult& r)
{
    std::printf("  %-9s response=%6.1f ms  functions=%u  "
                "specLaunches=%u  squashes=%u  memoHits=%u\n",
                label, ticksToMs(r.responseTime()), r.functionsExecuted,
                r.speculativeLaunches, r.squashes, r.memoHits);
    std::printf("            sequence:");
    for (const auto& fn : r.executedSequence)
        std::printf(" %s", fn.c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    DatasetConfig dataset;
    Application app = makeSmartHomeApp(dataset);

    // Conventional execution (Fig. 5(a)): every function waits for
    // its control and data dependences.
    PlatformOptions base_options;
    base_options.seed = 7;
    FaasPlatform baseline(base_options);
    baseline.deploy(app);
    baseline.train(app, 20);

    // SpecFaaS (Fig. 5(c)): control dependences predicted, data
    // dependences memoized, everything overlapped.
    PlatformOptions spec_options;
    spec_options.speculative = true;
    spec_options.seed = 7;
    FaasPlatform spec(spec_options);
    spec.deploy(app);
    spec.train(app, 20);

    std::printf("smart-home application (paper Listing 1 / Fig. 1)\n\n");
    double base_total = 0.0;
    double spec_total = 0.0;
    for (int i = 0; i < 5; ++i) {
        Value input = app.inputGen(baseline.inputRng());
        // Same request payload to both platforms.
        (void)spec.inputRng().next();
        auto rb = baseline.invokeSync(app, input);
        auto rs = spec.invokeSync(app, input);
        std::printf("request %d: home=%s\n", i,
                    input.at("user").toString().c_str());
        report("baseline", rb);
        report("SpecFaaS", rs);
        base_total += ticksToMs(rb.responseTime());
        spec_total += ticksToMs(rs.responseTime());
        std::printf("\n");
    }
    std::printf("average speedup over these requests: %.1fx\n",
                base_total / spec_total);

    auto* controller = spec.specController();
    std::printf("\nSpecFaaS engine state after the run:\n");
    std::printf("  branch predictor: %zu entries, %s hit rate\n",
                controller->branchPredictor().entryCount(),
                fmtPercentOrDash(
                    controller->branchPredictor().hitRate(), 0)
                    .c_str());
    std::printf("  memoization: %zu rows, %.1f KB, %.0f%% hit rate\n",
                controller->memoStore().totalRows(),
                static_cast<double>(
                    controller->memoStore().totalFootprintBytes()) /
                    1024.0,
                100.0 * controller->memoStore().overallHitRate());
    std::printf("  squashes=%llu  deferredSideEffects=%llu\n",
                static_cast<unsigned long long>(
                    controller->stats().squashes),
                static_cast<unsigned long long>(
                    controller->stats().deferredSideEffects));
    return 0;
}
