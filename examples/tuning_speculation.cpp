/**
 * @file
 * Configuring SpecFaaS: function annotations and speculation policies
 * (§VI). Demonstrates:
 *
 *  - the `non-speculative` annotation, for functions whose
 *    dependences would keep causing squashes;
 *  - the `pure-function` annotation + pureFunctionSkip, which skips
 *    executing a pure function entirely on a memoization hit;
 *  - squash policies (Lazy vs container kill vs handler-process
 *    kill) and their latency effect;
 *  - the branch-predictor dead band and speculation-depth limits.
 *
 * Build & run: ./build/examples/tuning_speculation
 */

#include <cstdio>

#include "platform/platform.hh"
#include "workloads/faaschain.hh"

using namespace specfaas;

namespace {

double
meanMs(FaasPlatform& platform, const Application& app, int n = 40)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        auto r = platform.invokeSync(app,
                                     app.inputGen(platform.inputRng()));
        total += ticksToMs(r.responseTime());
    }
    return total / n;
}

double
runWith(const Application& app, SpecConfig config)
{
    PlatformOptions options;
    options.speculative = true;
    options.spec = config;
    options.seed = 5;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 30);
    return meanMs(platform, app);
}

} // namespace

int
main()
{
    DatasetConfig dataset;
    dataset.branchBias = 0.85; // make mispredictions visible

    std::printf("--- squash policies (OnlPurch, 85%% biased "
                "branches) ---\n");
    {
        Application app = makeOnlPurchApp(dataset);
        SpecConfig lazy;
        lazy.squashPolicy = SquashPolicy::Lazy;
        SpecConfig container;
        container.squashPolicy = SquashPolicy::ContainerKill;
        SpecConfig process;
        process.squashPolicy = SquashPolicy::ProcessKill;
        std::printf("  LazySquash:     %6.1f ms\n", runWith(app, lazy));
        std::printf("  ContainerKill:  %6.1f ms\n",
                    runWith(app, container));
        std::printf("  ProcessKill:    %6.1f ms  (SpecFaaS default)\n",
                    runWith(app, process));
    }

    std::printf("\n--- annotations (HotelBook) ---\n");
    {
        Application plain = makeHotelBookApp(dataset);
        std::printf("  unannotated:                 %6.1f ms\n",
                    runWith(plain, SpecConfig{}));

        // Mark the squash-prone consumer non-speculative: it waits
        // for its predecessors instead of racing them.
        Application annotated = makeHotelBookApp(dataset);
        for (auto& f : annotated.functions)
            if (f.name == "HbCharge")
                f.nonSpeculativeAnnotation = true;
        std::printf("  HbCharge non-speculative:    %6.1f ms\n",
                    runWith(annotated, SpecConfig{}));

        // Declare the pure computation stages and let SpecFaaS skip
        // them on memo hits.
        Application pure = makeHotelBookApp(dataset);
        for (auto& f : pure.functions)
            if (f.isEffectivelyPure())
                f.pureAnnotation = true;
        SpecConfig skip;
        skip.pureFunctionSkip = true;
        std::printf("  pure-function skip enabled:  %6.1f ms\n",
                    runWith(pure, skip));
    }

    std::printf("\n--- speculation depth (OnlPurch) ---\n");
    {
        Application app = makeOnlPurchApp(dataset);
        for (std::uint32_t depth : {1u, 2u, 4u, 12u}) {
            SpecConfig config;
            config.maxSpecDepth = depth;
            std::printf("  depth %2u: %6.1f ms\n", depth,
                        runWith(app, config));
        }
    }

    std::printf("\n--- branch-predictor dead band (Login, 60%% "
                "biased) ---\n");
    {
        DatasetConfig coin = dataset;
        coin.branchBias = 0.60;
        Application app = makeLoginApp(coin);
        SpecConfig off;
        off.bpDeadBand = 0.0; // predict even weak branches
        SpecConfig band;
        band.bpDeadBand = 0.15; // refuse branches inside 50±15%
        std::printf("  dead band off:  %6.1f ms\n", runWith(app, off));
        std::printf("  dead band 15%%:  %6.1f ms\n", runWith(app, band));
    }
    return 0;
}
