/**
 * @file
 * Quickstart: define a tiny serverless application, deploy it on a
 * baseline platform and on a SpecFaaS platform, and compare response
 * times.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/logging.hh"
#include "platform/platform.hh"
#include "workflow/workflow.hh"

using namespace specfaas;

namespace {

/**
 * A three-function order pipeline:
 *   Validate (branch) -> PriceOrder -> ConfirmOrder
 * Validate approves ~90% of requests; the rest short-circuit to
 * Reject.
 */
Application
makeOrderApp()
{
    Application app;
    app.name = "orders";
    app.suite = "quickstart";
    app.type = WorkflowType::Explicit;

    // Branch-condition function: returns the boolean used by `when`.
    FunctionDef validate;
    validate.name = "Validate";
    validate.body.push_back(Op::compute(msToTicks(6.0)));
    validate.output = [](const Env& e) { return e.input.at("valid"); };
    app.functions.push_back(std::move(validate));

    // Prices the order: reads the catalog record for the item.
    FunctionDef price;
    price.name = "PriceOrder";
    price.body.push_back(Op::compute(msToTicks(8.0)));
    price.body.push_back(Op::storageRead(
        [](const Env& e) {
            return "catalog:" + e.input.at("item").toString();
        },
        "entry"));
    price.output = [](const Env& e) {
        Value out = Value::object({});
        out["item"] = e.input.at("item");
        out["total"] = Value(intOr(e.var("entry").at("price"), 5) *
                             e.input.at("qty").asInt());
        return out;
    };
    app.functions.push_back(std::move(price));

    // Confirms: writes the order record and notifies over HTTP.
    FunctionDef confirm;
    confirm.name = "ConfirmOrder";
    confirm.body.push_back(Op::compute(msToTicks(7.0)));
    confirm.body.push_back(Op::storageWrite(
        [](const Env& e) {
            return "order:" + e.input.at("item").toString();
        },
        [](const Env& e) { return e.input; }));
    confirm.body.push_back(Op::http());
    confirm.output = [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["total"] = e.input.at("total");
        return out;
    };
    app.functions.push_back(std::move(confirm));

    FunctionDef reject;
    reject.name = "Reject";
    reject.body.push_back(Op::compute(msToTicks(2.0)));
    reject.output = [](const Env&) {
        return Value::object({{"ok", Value(false)}});
    };
    app.functions.push_back(std::move(reject));

    // Composer-style workflow (§II-A).
    app.workflow = when(
        "Validate",
        sequence({task("PriceOrder"), task("ConfirmOrder")}),
        task("Reject"));

    // Requests: a handful of popular items, 90% valid.
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["item"] = Value(strFormat(
            "sku%llu", static_cast<unsigned long long>(rng.zipf(20, 1.5))));
        v["qty"] = Value(static_cast<std::int64_t>(rng.uniformInt(3) + 1));
        v["valid"] = Value(rng.bernoulli(0.9));
        return v;
    };
    app.seedStore = [](KvStore& store, Rng& rng) {
        for (int i = 0; i < 20; ++i) {
            store.put(strFormat("catalog:\"sku%d\"", i),
                      Value::object({{"price",
                                      Value(rng.uniformInt(
                                          std::int64_t{3},
                                          std::int64_t{20}))}}));
        }
    };
    return app;
}

double
measure(bool speculative, const Application& app)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.seed = 42;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 25); // warm containers + speculation tables

    double total = 0.0;
    const int requests = 50;
    for (int i = 0; i < requests; ++i) {
        Value input = app.inputGen(platform.inputRng());
        InvocationResult r = platform.invokeSync(app, std::move(input));
        total += ticksToMs(r.responseTime());
    }
    return total / requests;
}

} // namespace

int
main()
{
    Application app = makeOrderApp();

    const double baseline_ms = measure(false, app);
    const double spec_ms = measure(true, app);

    std::printf("order pipeline, warmed-up environment:\n");
    std::printf("  baseline (conventional OpenWhisk-style): %6.1f ms\n",
                baseline_ms);
    std::printf("  SpecFaaS (speculative execution):        %6.1f ms\n",
                spec_ms);
    std::printf("  speedup: %.1fx\n", baseline_ms / spec_ms);
    return 0;
}
