/**
 * @file
 * Implicit (multi-tier) workflow scenario: the TrainTicket booking
 * application, where the root function calls subroutine services over
 * RPC (§II-C). Shows how SpecFaaS launches callees speculatively from
 * the learned sequence table + memoized callee arguments (§V-D), and
 * demonstrates open-loop load behaviour on both engines.
 *
 * Build & run: ./build/examples/ticket_booking
 */

#include <cstdio>

#include "metrics/summary.hh"
#include "platform/load_generator.hh"
#include "platform/platform.hh"
#include "workloads/trainticket.hh"

using namespace specfaas;

namespace {

RunSummary
runLoad(bool speculative, const Application& app, double rps)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.seed = 11;
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 30);
    auto run = LoadGenerator::run(platform, app, rps, 200);
    return summarize(run.results);
}

} // namespace

int
main()
{
    Application app = makeTcktApp(trainTicketDataset());

    std::printf("TrainTicket booking (implicit workflow, %zu "
                "functions, call depth %zu)\n\n",
                app.functionCount(), app.maxDagDepth());

    // One serial request, with the speculation machinery visible.
    PlatformOptions options;
    options.speculative = true;
    options.seed = 11;
    FaasPlatform spec(options);
    spec.deploy(app);
    spec.train(app, 30);
    Value input = app.inputGen(spec.inputRng());
    auto r = spec.invokeSync(app, input);
    std::printf("one booking request %s:\n", input.toString().c_str());
    std::printf("  response: %s\n", r.response.toString().c_str());
    std::printf("  response time: %.1f ms, %u functions, "
                "%u launched speculatively, %u memo hits\n\n",
                ticksToMs(r.responseTime()), r.functionsExecuted,
                r.speculativeLaunches, r.memoHits);

    // Load sweep on both engines.
    std::printf("%-10s %14s %14s %10s\n", "load (rps)",
                "baseline mean", "SpecFaaS mean", "speedup");
    for (double rps : {100.0, 250.0, 500.0}) {
        auto base = runLoad(false, app, rps);
        auto fast = runLoad(true, app, rps);
        std::printf("%-10.0f %11.1f ms %11.1f ms %9.1fx\n", rps,
                    base.meanResponseMs, fast.meanResponseMs,
                    base.meanResponseMs / fast.meanResponseMs);
    }
    return 0;
}
