/**
 * @file
 * Regenerates Observation 2: the sequence of functions executed by an
 * application is highly deterministic — the most popular sequence
 * accounts for ~90% of invocations in Alibaba and ~98% in TrainTicket.
 */

#include "bench_common.hh"

#include "platform/platform.hh"
#include "traces/determinism.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Observation 2: function-sequence determinism");
    auto registry = makeAllSuites();

    TextTable table;
    table.header({"Application", "Suite", "Invocations",
                  "Distinct sequences", "Dominant share"});

    std::map<std::string, std::vector<double>> by_suite;
    for (const char* suite : {"Alibaba", "TrainTicket"}) {
        for (const Application* app : registry->suite(suite)) {
            PlatformOptions options;
            options.seed = 42;
            FaasPlatform platform(options);
            platform.deploy(*app);
            std::vector<InvocationResult> results;
            for (int i = 0; i < 400; ++i) {
                results.push_back(platform.invokeSync(
                    *app, app->inputGen(platform.inputRng())));
            }
            auto stats = analyzeSequences(results);
            by_suite[suite].push_back(stats.dominantShare);
            table.row({app->name, suite,
                       strFormat("%zu", stats.invocations),
                       strFormat("%zu", stats.distinctSequences),
                       fmtPercent(stats.dominantShare)});
        }
    }
    table.separator();
    for (const auto& [suite, shares] : by_suite) {
        table.row({"(average)", suite, "", "",
                   fmtPercent(mean(shares))});
        obs.report().addMetric(
            strFormat("dominant_share.%s", suite.c_str()),
            mean(shares), /*higherIsBetter=*/true);
    }
    table.print();

    std::printf("\nPaper reference: dominant sequence covers ~90%% of "
                "invocations in Alibaba and ~98%% in TrainTicket "
                "(FaaSChain omitted: its branch outcomes are "
                "synthetic, as in the paper).\n");
    return 0;
}
