/**
 * @file
 * Regenerates Table III: effective throughput — the maximum request
 * rate served without QoS violation, where QoS is violated when the
 * mean response time exceeds 2x the single-request response time.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Table III: effective throughput (requests per second)");
    auto registry = makeAllSuites();

    TextTable table;
    table.header({"Application Suite", "Baseline", "SpecFaaS",
                  "Improvement"});

    std::vector<double> base_suite;
    std::vector<double> spec_suite;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::vector<double> base_rates;
        std::vector<double> spec_rates;
        for (const Application* app : registry->suite(suite)) {
            base_rates.push_back(Experiment::effectiveThroughput(
                *app, baselineSetup(), 2.0, 250));
            spec_rates.push_back(Experiment::effectiveThroughput(
                *app, specSetup(), 2.0, 250));
        }
        const double b = mean(base_rates);
        const double s = mean(spec_rates);
        base_suite.push_back(b);
        spec_suite.push_back(s);
        table.row({suite, fmtDouble(b, 1), fmtDouble(s, 1),
                   fmtRatio(s / b)});
        obs.report().addMetric(
            strFormat("throughput_improvement.%s", suite), s / b,
            /*higherIsBetter=*/true, "x");
    }
    table.separator();
    const double b = mean(base_suite);
    const double s = mean(spec_suite);
    table.row({"Average", fmtDouble(b, 1), fmtDouble(s, 1),
               fmtRatio(s / b)});
    table.print();
    obs.report().addMetric("baseline_effective_rps", b,
                           /*higherIsBetter=*/true, "rps");
    obs.report().addMetric("specfaas_effective_rps", s,
                           /*higherIsBetter=*/true, "rps");
    obs.report().addMetric("avg_throughput_improvement", s / b,
                           /*higherIsBetter=*/true, "x");

    std::printf("\nPaper reference: 118.3->485.0 (4.1x) FaaSChain, "
                "90.3->346.0 (3.8x) TrainTicket, 81.6->304.2 (3.7x) "
                "Alibaba; average improvement 3.9x.\n");
    return 0;
}
