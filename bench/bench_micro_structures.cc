/**
 * @file
 * google-benchmark microbenchmarks of the SpecFaaS controller
 * structures: Data Buffer read/write/commit, branch-predictor
 * lookup/update, memoization-table lookup, Value hashing, and the
 * event-queue schedule/run loop. These bound the per-operation
 * controller overhead the paper argues is negligible (§V-E).
 */

#include <benchmark/benchmark.h>

#include "common/value.hh"
#include "obs/obs_cli.hh"
#include "sim/event_queue.hh"
#include "specfaas/branch_predictor.hh"
#include "specfaas/data_buffer.hh"
#include "specfaas/memo_table.hh"
#include "storage/kv_store.hh"

namespace specfaas {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue q;
        int fired = 0;
        for (int i = 0; i < 64; ++i)
            q.schedule(i, [&fired]() { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_DataBufferWriteReadCommit(benchmark::State& state)
{
    const auto columns = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        KvStore store;
        DataBuffer buffer(store);
        for (std::size_t c = 0; c < columns; ++c) {
            buffer.addColumn(c + 1,
                             OrderKey{static_cast<std::int32_t>(c)});
        }
        for (std::size_t c = 0; c < columns; ++c) {
            buffer.write(c + 1, "rec" + std::to_string(c % 4),
                         Value(static_cast<std::int64_t>(c)));
            auto r = buffer.read(columns - c,
                                 "rec" + std::to_string(c % 4));
            benchmark::DoNotOptimize(r.forwarded);
        }
        for (std::size_t c = 0; c < columns; ++c)
            buffer.commitColumn(c + 1);
    }
}
BENCHMARK(BM_DataBufferWriteReadCommit)->Arg(4)->Arg(12);

void
BM_BranchPredictorPredictUpdate(benchmark::State& state)
{
    BranchPredictor bp;
    std::uint64_t path = pathhash::kEmpty;
    for (int i = 0; i < 100; ++i)
        bp.update("branch", path, i % 10 == 0 ? 1 : 0);
    for (auto _ : state) {
        auto p = bp.predict("branch", path);
        benchmark::DoNotOptimize(p);
        bp.update("branch", path, 0);
    }
}
BENCHMARK(BM_BranchPredictorPredictUpdate);

void
BM_MemoTableLookup(benchmark::State& state)
{
    MemoTable table(50);
    std::vector<Value> inputs;
    for (int i = 0; i < 50; ++i) {
        Value v = Value::object({});
        v["route"] = Value(std::to_string(i));
        MemoRow row;
        row.output = Value(static_cast<std::int64_t>(i));
        table.update(v, std::move(row));
        inputs.push_back(std::move(v));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const MemoRow* row = table.lookup(inputs[i % inputs.size()]);
        benchmark::DoNotOptimize(row);
        ++i;
    }
}
BENCHMARK(BM_MemoTableLookup);

void
BM_ValueHash(benchmark::State& state)
{
    Value v = Value::object({});
    v["route"] = Value("r12");
    v["date"] = Value("d3");
    v["nested"] = Value::array({Value(1), Value(2.5), Value("x")});
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.hash());
    }
}
BENCHMARK(BM_ValueHash);

} // namespace
} // namespace specfaas

// Hand-rolled BENCHMARK_MAIN so the observability flags
// (--trace-out/--counters) are stripped before google-benchmark sees
// argv and rejects them as unknown.
int
main(int argc, char** argv)
{
    specfaas::obs::ObsSession obs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
