/**
 * @file
 * Regenerates Fig. 11: end-to-end speedup of SpecFaaS over the
 * OpenWhisk-style baseline per application, for the Low/Medium/High
 * load levels (100/250/500 rps), in a warmed-up environment. Pass
 * `--cold` to repeat the experiment without warming up the
 * environment (no pre-warmed containers), as in §VIII-A last ¶.
 */

#include <cstring>

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    const std::size_t jobs = jobsArg(argc, argv);
    const bool cold = argc > 1 && std::strcmp(argv[1], "--cold") == 0;
    banner(std::string("Fig. 11: SpecFaaS speedup per application and "
                       "load level") +
           (cold ? " (COLD environment)" : " (warmed-up)"));

    auto registry = makeAllSuites();
    const std::size_t requests = 250;
    obs.report().setConfig(
        "requests", Value(static_cast<std::int64_t>(requests)));
    obs.report().setConfig("cold", Value(cold));

    TextTable table;
    table.header({"Application", "Suite", "Low", "Medium", "High",
                  "Avg"});

    // One task per (application, load level); tasks are independent
    // simulations, so they fan out across --jobs worker threads and
    // the ordered merge keeps output identical to a serial run.
    std::vector<const Application*> apps;
    std::vector<const char*> app_suite;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        for (const Application* app : registry->suite(suite)) {
            apps.push_back(app);
            app_suite.push_back(suite);
        }
    }
    const std::vector<double> loads = loadLevels();
    std::vector<std::function<double(SimContext&)>> tasks;
    for (const Application* app : apps) {
        for (double rps : loads) {
            tasks.push_back([app, rps, cold,
                             requests](SimContext& context) {
                EngineSetup base = baselineSetup();
                EngineSetup spec = specSetup();
                base.context = &context;
                spec.context = &context;
                if (cold) {
                    // Cold environment: no pre-provisioned containers,
                    // so the measurement includes the cold-start ramp
                    // (the platform still keeps containers alive once
                    // created, like OpenWhisk's grace period, and the
                    // speculation tables persist across invocations as
                    // in §V-E).
                    base.prewarmPerFunction = 0;
                    spec.prewarmPerFunction = 0;
                }
                return Experiment::speedupAtLoad(*app, base, spec, rps,
                                                 requests);
            });
        }
    }
    const std::vector<double> results =
        runSimTasks<double>(jobs, std::move(tasks));

    std::map<std::string, std::vector<double>> suite_speedups;
    std::vector<double> all;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::vector<std::string> row = {apps[a]->name, app_suite[a]};
        std::vector<double> speedups;
        for (std::size_t l = 0; l < loads.size(); ++l) {
            const double s = results[a * loads.size() + l];
            speedups.push_back(s);
            row.push_back(fmtRatio(s));
        }
        const double avg = mean(speedups);
        row.push_back(fmtRatio(avg));
        table.row(std::move(row));
        suite_speedups[app_suite[a]].push_back(avg);
        all.push_back(avg);
    }

    table.separator();
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        table.row({strFormat("%s avg", suite), "", "", "", "",
                   fmtRatio(mean(suite_speedups[suite]))});
    }
    table.row({"Overall avg", "", "", "", "", fmtRatio(mean(all))});
    table.print();

    for (const auto& [suite, speedups] : suite_speedups) {
        obs.report().addMetric(
            strFormat("avg_speedup.%s", suite.c_str()),
            mean(speedups), /*higherIsBetter=*/true, "x");
    }
    obs.report().addMetric("overall_avg_speedup", mean(all),
                           /*higherIsBetter=*/true, "x");

    std::printf("\nPaper reference: average speedup 4.6x warmed-up "
                "(suite averages ~5.0x FaaSChain, ~4.3x TrainTicket, "
                "~4.5x Alibaba); cold-environment averages 5.2x / "
                "4.5x / 4.7x.\n");
    return 0;
}
