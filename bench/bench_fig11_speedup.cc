/**
 * @file
 * Regenerates Fig. 11: end-to-end speedup of SpecFaaS over the
 * OpenWhisk-style baseline per application, for the Low/Medium/High
 * load levels (100/250/500 rps), in a warmed-up environment. Pass
 * `--cold` to repeat the experiment without warming up the
 * environment (no pre-warmed containers), as in §VIII-A last ¶.
 */

#include <cstring>

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    const bool cold = argc > 1 && std::strcmp(argv[1], "--cold") == 0;
    banner(std::string("Fig. 11: SpecFaaS speedup per application and "
                       "load level") +
           (cold ? " (COLD environment)" : " (warmed-up)"));

    auto registry = makeAllSuites();
    const std::size_t requests = 250;
    obs.report().setConfig(
        "requests", Value(static_cast<std::int64_t>(requests)));
    obs.report().setConfig("cold", Value(cold));

    TextTable table;
    table.header({"Application", "Suite", "Low", "Medium", "High",
                  "Avg"});

    std::map<std::string, std::vector<double>> suite_speedups;
    std::vector<double> all;

    auto run_app = [&](const Application& app,
                       const std::string& suite) {
        std::vector<std::string> row = {app.name, suite};
        std::vector<double> speedups;
        for (double rps : loadLevels()) {
            EngineSetup base = baselineSetup();
            EngineSetup spec = specSetup();
            if (cold) {
                // Cold environment: no pre-provisioned containers, so
                // the measurement includes the cold-start ramp (the
                // platform still keeps containers alive once created,
                // like OpenWhisk's grace period, and the speculation
                // tables persist across invocations as in §V-E).
                base.prewarmPerFunction = 0;
                spec.prewarmPerFunction = 0;
            }
            const double s = Experiment::speedupAtLoad(
                app, base, spec, rps, requests);
            speedups.push_back(s);
            row.push_back(fmtRatio(s));
        }
        const double avg = mean(speedups);
        row.push_back(fmtRatio(avg));
        table.row(std::move(row));
        suite_speedups[suite].push_back(avg);
        all.push_back(avg);
    };

    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"})
        for (const Application* app : registry->suite(suite))
            run_app(*app, suite);

    table.separator();
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        table.row({strFormat("%s avg", suite), "", "", "", "",
                   fmtRatio(mean(suite_speedups[suite]))});
    }
    table.row({"Overall avg", "", "", "", "", fmtRatio(mean(all))});
    table.print();

    for (const auto& [suite, speedups] : suite_speedups) {
        obs.report().addMetric(
            strFormat("avg_speedup.%s", suite.c_str()),
            mean(speedups), /*higherIsBetter=*/true, "x");
    }
    obs.report().addMetric("overall_avg_speedup", mean(all),
                           /*higherIsBetter=*/true, "x");

    std::printf("\nPaper reference: average speedup 4.6x warmed-up "
                "(suite averages ~5.0x FaaSChain, ~4.3x TrainTicket, "
                "~4.5x Alibaba); cold-environment averages 5.2x / "
                "4.5x / 4.7x.\n");
    return 0;
}
