/**
 * @file
 * Engine-throughput microbench: simulated events per second of host
 * wall time, the figure of merit for the kernel hot path (ROADMAP
 * item 2).
 *
 * Two phases:
 *
 *  - "fig11": the fig11 application suites (FaaSChain, TrainTicket,
 *    Alibaba) run through both engines at the Medium load level, the
 *    same simulations the headline speedup figure is computed from.
 *    Event counts, simulated ticks and completed-request totals are
 *    deterministic and CI-gates them; events/sec and wall time are
 *    machine-dependent and reported in a non-gated section.
 *  - "kernel": a pure EventQueue churn loop (self-rescheduling timer
 *    chains plus one-shot schedule/cancel noise) that isolates the
 *    kernel from the platform model. Tens of millions of events keep
 *    the id-state window compaction honest.
 *  - "pipeline": a pure churn loop over the controllers' order-
 *    indexed pipeline structures (PipelineMap commit frontier and
 *    squash truncation, OrderedKeySet branch index), isolating the
 *    squash/commit rework from the platform model and pinning its
 *    wall cost against regressions back to per-element scans.
 *
 *     bench_engine_throughput [--requests=<n>] [--kernel-events=<n>]
 *                             [--pipeline-ops=<n>]
 *                             [--json-out=<f>] [--trace-out=<f>] ...
 *
 * Events/sec and wall time land in the report section "throughput";
 * the committed BENCH_engine_throughput.json snapshot gates only the
 * deterministic "metrics" object (compare_reports ignores sections),
 * so the CI check is immune to runner speed.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_common.hh"
#include "common/flat_map.hh"
#include "platform/load_generator.hh"
#include "sim/event_queue.hh"

namespace {

/**
 * Global allocation tally. Heap traffic is the engine's dominant
 * hidden cost, so the bench reports allocations per event alongside
 * events/sec; the count is deterministic for a fixed seed and
 * standard library (reported in a section, not a gated metric).
 */
std::atomic<std::uint64_t> gAllocs{0};

} // namespace

void*
operator new(std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

using namespace specfaas;
using namespace specfaas::bench;

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    const auto d = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(d).count();
}

/**
 * Deterministic kernel-only churn: 64 staggered self-rescheduling
 * chains, each firing decrements a shared budget; every 8th firing
 * also schedules a one-shot and immediately cancels half of them, so
 * the lazy-cancellation skip path stays exercised.
 */
struct KernelChurn
{
    EventQueue q;
    Rng rng{12345};
    std::uint64_t remaining;

    explicit KernelChurn(std::uint64_t budget) : remaining(budget)
    {
        for (Tick t = 1; t <= 64; ++t)
            arm(t);
    }

    void
    arm(Tick delay)
    {
        q.schedule(delay, [this] { fire(); });
    }

    void
    fire()
    {
        if (remaining == 0)
            return;
        --remaining;
        arm(static_cast<Tick>(1 + (rng.next() & 15)));
        if ((remaining & 7) == 0) {
            const EventId extra = q.schedule(3, [] {});
            if ((remaining & 8) != 0)
                q.cancel(extra);
        }
    }
};

/**
 * Deterministic churn over the order-indexed pipeline structures,
 * mirroring the controller access pattern: program-order append
 * bursts (a speculative walk), commit-frontier pops, squashes as
 * reverse tail pops plus one suffix truncation, fault-retry point
 * erases, and open-branch index maintenance alongside. The op count
 * is deterministic for the fixed seed, so CI gates it; the wall cost
 * pins the structures against a regression back to per-element
 * scans and shifts.
 * @return ops executed (every structural mutation counts as one)
 */
std::uint64_t
pipelineChurn(std::uint64_t budget)
{
    Rng rng(67890);
    PipelineMap<std::uint64_t, std::uint64_t> slots;
    OrderedKeySet<std::uint64_t> branches;
    std::uint64_t next = 0;
    std::uint64_t ops = 0;
    while (ops < budget) {
        const std::uint64_t burst = 1 + (rng.next() & 31);
        for (std::uint64_t i = 0; i < burst; ++i) {
            slots.emplace(next, next);
            if ((next & 7) == 0)
                branches.insert(next);
            ++next;
            ++ops;
        }
        const std::uint64_t pick = rng.next() % 100;
        if (pick < 55) { // commit a prefix
            std::uint64_t n = 1 + (rng.next() & 15);
            while (n-- != 0 && !slots.empty()) {
                branches.erase(slots.front().first);
                slots.popFront();
                ++ops;
            }
        } else if (pick < 85) { // squash
            std::uint64_t n = 1 + (rng.next() & 7);
            while (n-- != 0 && !slots.empty()) {
                slots.popBackExpect(slots.back().first);
                ++ops;
            }
            if (!slots.empty()) {
                const std::uint64_t lo = slots.front().first;
                const std::uint64_t span =
                    slots.back().first - lo + 1;
                const std::uint64_t from = lo + rng.next() % span;
                ops += slots.eraseFrom(from);
                branches.eraseFrom(from);
            }
        } else if (!slots.empty()) { // fault retry at one coordinate
            const std::uint64_t lo = slots.front().first;
            const std::uint64_t span = slots.back().first - lo + 1;
            const std::uint64_t key = lo + rng.next() % span;
            if (branches.anyBefore(key))
                ++ops; // counted so the query can't be optimised out
            ops += slots.erase(key);
        }
    }
    while (!slots.empty()) { // drain: final commit sweep
        slots.popFront();
        ++ops;
    }
    branches.clear();
    return ops;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::Profiler::setAllocSource(&gAllocs);
    obs::ObsSession obs(argc, argv);
    std::size_t requests = 150;
    std::uint64_t kernelEvents = 4'000'000;
    std::uint64_t pipelineOps = 8'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--requests=", 11) == 0)
            requests = std::strtoull(argv[i] + 11, nullptr, 10);
        else if (std::strncmp(argv[i], "--kernel-events=", 16) == 0)
            kernelEvents = std::strtoull(argv[i] + 16, nullptr, 10);
        else if (std::strncmp(argv[i], "--pipeline-ops=", 15) == 0)
            pipelineOps = std::strtoull(argv[i] + 15, nullptr, 10);
    }
    banner("Engine throughput: events/sec on the fig11 workload "
           "and a kernel-only churn loop");
    obs.report().setConfig(
        "requests", Value(static_cast<std::int64_t>(requests)));
    obs.report().setConfig(
        "kernel_events", Value(static_cast<std::int64_t>(kernelEvents)));
    obs.report().setConfig(
        "pipeline_ops", Value(static_cast<std::int64_t>(pipelineOps)));

    // Phase 1: the fig11 suites through both engines at Medium load.
    // The wall timer spans platform preparation (prewarm + training)
    // too — those are simulated events like any other.
    auto registry = makeAllSuites();
    std::uint64_t fig11Events = 0;
    std::uint64_t fig11Ticks = 0;
    std::uint64_t fig11Completed = 0;
    const std::uint64_t allocs0 = gAllocs.load();
    const auto fig11Start = std::chrono::steady_clock::now();
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        for (const Application* app : registry->suite(suite)) {
            for (const bool speculative : {false, true}) {
                EngineSetup setup =
                    speculative ? specSetup() : baselineSetup();
                auto platform =
                    Experiment::preparedPlatform(*app, setup);
                LoadRunResult run = LoadGenerator::run(
                    *platform, *app, LoadLevels::kMedium, requests);
                fig11Events +=
                    platform->sim().events().executedCount();
                fig11Ticks +=
                    static_cast<std::uint64_t>(platform->sim().now());
                fig11Completed += run.results.size();
            }
        }
    }
    const double fig11Ms = elapsedMs(fig11Start);
    const std::uint64_t fig11Allocs = gAllocs.load() - allocs0;
    const double fig11Eps =
        static_cast<double>(fig11Events) / (fig11Ms / 1000.0);

    // Phase 2: kernel-only churn.
    const std::uint64_t allocs1 = gAllocs.load();
    const auto kernelStart = std::chrono::steady_clock::now();
    KernelChurn churn(kernelEvents);
    churn.q.run();
    const double kernelMs = elapsedMs(kernelStart);
    const std::uint64_t kernelAllocs = gAllocs.load() - allocs1;
    const std::uint64_t kernelExecuted = churn.q.executedCount();
    const double kernelEps =
        static_cast<double>(kernelExecuted) / (kernelMs / 1000.0);

    // Phase 3: pipeline-structure churn.
    const std::uint64_t allocs2 = gAllocs.load();
    const auto pipelineStart = std::chrono::steady_clock::now();
    const std::uint64_t pipelineExecuted = pipelineChurn(pipelineOps);
    const double pipelineMs = elapsedMs(pipelineStart);
    const std::uint64_t pipelineAllocs = gAllocs.load() - allocs2;
    const double pipelineOpsPerSec =
        static_cast<double>(pipelineExecuted) / (pipelineMs / 1000.0);

    TextTable table;
    table.header({"Phase", "Events", "Wall ms", "Events/sec",
                  "Allocs/event"});
    table.row({"fig11 (both engines, Medium)",
               strFormat("%llu",
                         static_cast<unsigned long long>(fig11Events)),
               strFormat("%.0f", fig11Ms),
               strFormat("%.3g", fig11Eps),
               strFormat("%.2f", static_cast<double>(fig11Allocs) /
                                     static_cast<double>(fig11Events))});
    table.row({"kernel churn",
               strFormat("%llu",
                         static_cast<unsigned long long>(kernelExecuted)),
               strFormat("%.0f", kernelMs),
               strFormat("%.3g", kernelEps),
               strFormat("%.2f", static_cast<double>(kernelAllocs) /
                                     static_cast<double>(kernelExecuted))});
    table.row({"pipeline churn",
               strFormat("%llu",
                         static_cast<unsigned long long>(pipelineExecuted)),
               strFormat("%.0f", pipelineMs),
               strFormat("%.3g", pipelineOpsPerSec),
               strFormat("%.2f",
                         static_cast<double>(pipelineAllocs) /
                             static_cast<double>(pipelineExecuted))});
    table.print();

    // Deterministic identity of the run — what CI gates.
    obs.report().addMetric("fig11_events_executed",
                           static_cast<double>(fig11Events),
                           /*higherIsBetter=*/true, "events");
    obs.report().addMetric("fig11_sim_ticks",
                           static_cast<double>(fig11Ticks),
                           /*higherIsBetter=*/true, "ticks");
    obs.report().addMetric("fig11_requests_completed",
                           static_cast<double>(fig11Completed),
                           /*higherIsBetter=*/true, "requests");
    obs.report().addMetric("kernel_events_executed",
                           static_cast<double>(kernelExecuted),
                           /*higherIsBetter=*/true, "events");
    obs.report().addMetric("pipeline_ops_executed",
                           static_cast<double>(pipelineExecuted),
                           /*higherIsBetter=*/true, "ops");

    // Machine-dependent timings — informational only.
    Value throughput;
    throughput["fig11_wall_ms"] = Value(fig11Ms);
    throughput["fig11_events_per_sec"] = Value(fig11Eps);
    throughput["fig11_allocations"] =
        Value(static_cast<std::int64_t>(fig11Allocs));
    throughput["kernel_wall_ms"] = Value(kernelMs);
    throughput["kernel_events_per_sec"] = Value(kernelEps);
    throughput["kernel_allocations"] =
        Value(static_cast<std::int64_t>(kernelAllocs));
    throughput["pipeline_wall_ms"] = Value(pipelineMs);
    throughput["pipeline_ops_per_sec"] = Value(pipelineOpsPerSec);
    throughput["pipeline_allocations"] =
        Value(static_cast<std::int64_t>(pipelineAllocs));
    obs.report().addSection("throughput", std::move(throughput));

    std::printf("\nEvents/sec is host-dependent; the JSON gate compares "
                "only the deterministic event/tick/request counts.\n");
    return 0;
}
