/**
 * @file
 * CI regression gate over two --json-out run reports.
 *
 *     compare_reports [--threshold=0.05] [--two-sided]
 *                     baseline.json candidate.json
 *
 * Exit status: 0 when the candidate is no worse than the baseline
 * (every metric's bad-direction change is within the threshold),
 * 1 on regressions or report mismatches, 2 on usage/IO errors.
 * With --two-sided, any change beyond the threshold fails in either
 * direction — the mode identity gates use, where the metrics are a
 * deterministic fingerprint and all drift is a behaviour change.
 *
 * When the baseline carries a deterministic profiler section
 * (sections.profile.zones, produced under --profile), per-zone
 * visit/count data is gated too: a baseline zone missing from the
 * candidate is an error, and with --two-sided any per-zone drift
 * beyond the threshold fails. Baselines without the section gate
 * metrics only, so profiled and unprofiled snapshots coexist.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json_report.hh"

using namespace specfaas;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: compare_reports [--threshold=<rel>] "
                 "[--two-sided] "
                 "<baseline.json> <candidate.json>\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::CompareOptions opts;
    const char* paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
            char* end = nullptr;
            opts.relTolerance = std::strtod(argv[i] + 12, &end);
            if (end == argv[i] + 12 || opts.relTolerance < 0.0) {
                std::fprintf(stderr,
                             "compare_reports: bad --threshold=%s\n",
                             argv[i] + 12);
                return 2;
            }
            continue;
        }
        if (std::strcmp(argv[i], "--two-sided") == 0) {
            opts.twoSided = true;
            continue;
        }
        if (npaths == 2)
            return usage();
        paths[npaths++] = argv[i];
    }
    if (npaths != 2)
        return usage();

    std::string output;
    const int rc =
        obs::compareReportFiles(paths[0], paths[1], opts, &output);
    std::fputs(output.c_str(), rc == 2 ? stderr : stdout);
    return rc;
}
