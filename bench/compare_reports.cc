/**
 * @file
 * CI regression gate over two --json-out run reports.
 *
 *     compare_reports [--threshold=0.05] baseline.json candidate.json
 *
 * Exit status: 0 when the candidate is no worse than the baseline
 * (every metric's bad-direction change is within the threshold),
 * 1 on regressions or report mismatches, 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_report.hh"

using namespace specfaas;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: compare_reports [--threshold=<rel>] "
                 "<baseline.json> <candidate.json>\n");
    return 2;
}

bool
readFile(const char* path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
loadReport(const char* path, Value& out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "compare_reports: cannot read %s\n",
                     path);
        return false;
    }
    std::string error;
    if (!obs::parseJson(text, out, &error)) {
        std::fprintf(stderr, "compare_reports: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::CompareOptions opts;
    const char* paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
            char* end = nullptr;
            opts.relTolerance = std::strtod(argv[i] + 12, &end);
            if (end == argv[i] + 12 || opts.relTolerance < 0.0) {
                std::fprintf(stderr,
                             "compare_reports: bad --threshold=%s\n",
                             argv[i] + 12);
                return 2;
            }
            continue;
        }
        if (npaths == 2)
            return usage();
        paths[npaths++] = argv[i];
    }
    if (npaths != 2)
        return usage();

    Value baseline;
    Value candidate;
    if (!loadReport(paths[0], baseline) ||
        !loadReport(paths[1], candidate))
        return 2;

    const obs::CompareResult result =
        obs::compareReports(baseline, candidate, opts);

    for (const std::string& e : result.errors)
        std::printf("ERROR      %s\n", e.c_str());
    for (const std::string& r : result.regressions)
        std::printf("REGRESSION %s\n", r.c_str());
    for (const std::string& n : result.notes)
        std::printf("note       %s\n", n.c_str());

    if (result.ok()) {
        std::printf("OK: %s is within %.1f%% of %s\n", paths[1],
                    100.0 * opts.relTolerance, paths[0]);
        return 0;
    }
    std::printf("FAIL: %zu error(s), %zu regression(s)\n",
                result.errors.size(), result.regressions.size());
    return 1;
}
