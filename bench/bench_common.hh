/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every binary regenerates one table or figure of the paper; the
 * helpers here standardize engine setups, suite construction and
 * header printing so outputs are directly quotable in EXPERIMENTS.md.
 */

#ifndef SPECFAAS_BENCH_BENCH_COMMON_HH
#define SPECFAAS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats_util.hh"
#include "common/table.hh"
#include "obs/obs_cli.hh"
#include "platform/experiment.hh"
#include "sim/sim_context.hh"
#include "workloads/suites.hh"

namespace specfaas::bench {

/**
 * Strip a `--jobs=<n>` flag from argv (after ObsSession has taken the
 * observability flags) and return the worker count for the bench's
 * sweep: 1 by default (serial, the historical behavior), an explicit
 * 0 meaning "all hardware threads". Malformed values — empty or with
 * trailing garbage ("--jobs=4abc") — abort with a clear error instead
 * of being silently misread. Independent sweep points then run through
 * runSimTasks(), whose ordered context merge keeps every artifact
 * byte-identical to the serial run regardless of the job count.
 */
inline std::size_t
jobsArg(int& argc, char** argv)
{
    std::size_t jobs = 1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            if (!parseJobsValue(argv[i] + 7, jobs))
                fatal("invalid --jobs value: '%s'", argv[i] + 7);
            if (jobs == 0)
                jobs = defaultJobs();
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return jobs;
}

/** Print a banner naming the experiment. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================\n");
}

/** Baseline engine setup used by all experiments. */
inline EngineSetup
baselineSetup(std::uint64_t seed = 42)
{
    EngineSetup setup;
    setup.speculative = false;
    setup.seed = seed;
    return setup;
}

/** Full SpecFaaS engine setup used by all experiments. */
inline EngineSetup
specSetup(std::uint64_t seed = 42)
{
    EngineSetup setup;
    setup.speculative = true;
    setup.seed = seed;
    return setup;
}

/** The three paper load levels, in order. */
inline std::vector<double>
loadLevels()
{
    return {LoadLevels::kLow, LoadLevels::kMedium, LoadLevels::kHigh};
}

inline const char*
loadName(double rps)
{
    if (rps <= LoadLevels::kLow)
        return "Low";
    if (rps <= LoadLevels::kMedium)
        return "Medium";
    return "High";
}

} // namespace specfaas::bench

#endif // SPECFAAS_BENCH_BENCH_COMMON_HH
