/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every binary regenerates one table or figure of the paper; the
 * helpers here standardize engine setups, suite construction and
 * header printing so outputs are directly quotable in EXPERIMENTS.md.
 */

#ifndef SPECFAAS_BENCH_BENCH_COMMON_HH
#define SPECFAAS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "common/table.hh"
#include "obs/obs_cli.hh"
#include "platform/experiment.hh"
#include "workloads/suites.hh"

namespace specfaas::bench {

/** Print a banner naming the experiment. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================\n");
}

/** Baseline engine setup used by all experiments. */
inline EngineSetup
baselineSetup(std::uint64_t seed = 42)
{
    EngineSetup setup;
    setup.speculative = false;
    setup.seed = seed;
    return setup;
}

/** Full SpecFaaS engine setup used by all experiments. */
inline EngineSetup
specSetup(std::uint64_t seed = 42)
{
    EngineSetup setup;
    setup.speculative = true;
    setup.seed = seed;
    return setup;
}

/** The three paper load levels, in order. */
inline std::vector<double>
loadLevels()
{
    return {LoadLevels::kLow, LoadLevels::kMedium, LoadLevels::kHigh};
}

inline const char*
loadName(double rps)
{
    if (rps <= LoadLevels::kLow)
        return "Low";
    if (rps <= LoadLevels::kMedium)
        return "Medium";
    return "High";
}

} // namespace specfaas::bench

#endif // SPECFAAS_BENCH_BENCH_COMMON_HH
