/**
 * @file
 * Regenerates Fig. 4 / Observation 6: the CDFs of per-node P50-P90
 * CPU utilization across the (synthesized) Alibaba bare-metal fleet.
 * The paper's takeaway: most of the time CPU usage is 60-80%, so the
 * cluster has headroom for cycles wasted by mis-speculation.
 */

#include "bench_common.hh"

#include "traces/cpu_utilization.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Fig. 4: P50-P90 CPU utilization CDFs (Alibaba stand-in)");

    CpuTraceConfig config;
    auto nodes = generateCpuTrace(config);
    const std::vector<double> levels = {50, 60, 70, 80, 90};
    auto cdfs = utilizationCdfs(nodes, levels, 10);

    TextTable table;
    std::vector<std::string> header = {"CDF"};
    for (double level : levels)
        header.push_back(strFormat("P%.0f", level));
    table.header(std::move(header));

    // Rows: cumulative probability; cells: the utilization at that
    // cumulative probability for each percentile curve.
    for (std::size_t i = 0; i < cdfs[0].size(); ++i) {
        std::vector<std::string> row = {
            fmtPercent(cdfs[0][i].cum, 0)};
        for (std::size_t c = 0; c < cdfs.size(); ++c)
            row.push_back(fmtPercent(cdfs[c][i].x));
        table.row(std::move(row));
    }
    table.print();

    // Headline number: median node's P90 utilization.
    std::vector<double> p90s;
    for (const auto& series : nodes)
        p90s.push_back(percentile(series, 90));
    std::printf("\nMedian node P90 utilization: %s (paper: CPU usage "
                "is mostly 60-80%%, leaving headroom for "
                "mis-speculated work)\n",
                fmtPercent(percentile(p90s, 50)).c_str());
    obs.report().addMetric("median_node_p90_utilization",
                           percentile(p90s, 50),
                           /*higherIsBetter=*/false);
    return 0;
}
