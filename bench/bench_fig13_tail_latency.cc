/**
 * @file
 * Regenerates Fig. 13: P99 tail latency of SpecFaaS normalized to the
 * baseline P99, per application suite and load level. The paper
 * reports an average tail-latency reduction of 58.7%.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Fig. 13: P99 tail latency (SpecFaaS / baseline)");
    auto registry = makeAllSuites();
    const std::size_t requests = 400;

    TextTable table;
    table.header({"Suite", "Low", "Medium", "High", "Avg reduction"});

    std::vector<double> all_reductions;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::vector<double> normalized;
        for (double rps : loadLevels()) {
            std::vector<double> base_p99s;
            std::vector<double> spec_p99s;
            for (const Application* app : registry->suite(suite)) {
                auto b = Experiment::measureAtLoad(
                    *app, baselineSetup(), rps, requests);
                auto s = Experiment::measureAtLoad(
                    *app, specSetup(), rps, requests);
                base_p99s.push_back(b.summary.p99ResponseMs);
                spec_p99s.push_back(s.summary.p99ResponseMs);
            }
            normalized.push_back(mean(spec_p99s) / mean(base_p99s));
        }
        const double avg_norm = mean(normalized);
        all_reductions.push_back(1.0 - avg_norm);
        table.row({suite, fmtPercent(normalized[0]),
                   fmtPercent(normalized[1]), fmtPercent(normalized[2]),
                   fmtPercent(1.0 - avg_norm)});
    }
    table.separator();
    table.row({"Average", "", "", "",
               fmtPercent(mean(all_reductions))});
    table.print();

    std::printf("\nPaper reference: tail latency reduced by 62%% "
                "(FaaSChain), 56%% (TrainTicket), 58%% (Alibaba); "
                "58.7%% on average.\n");
    return 0;
}
