/**
 * @file
 * Regenerates Fig. 13: P99 tail latency of SpecFaaS normalized to the
 * baseline P99, per application suite and load level. The paper
 * reports an average tail-latency reduction of 58.7%.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

/** Baseline and SpecFaaS P99 of one (app, load) measurement. */
struct P99Pair
{
    double base = 0.0;
    double spec = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    const std::size_t jobs = jobsArg(argc, argv);
    banner("Fig. 13: P99 tail latency (SpecFaaS / baseline)");
    auto registry = makeAllSuites();
    const std::size_t requests = 400;
    obs.report().setConfig(
        "requests", Value(static_cast<std::int64_t>(requests)));

    TextTable table;
    table.header({"Suite", "Low", "Medium", "High", "Avg reduction"});

    // One task per (suite, load, app) pair of measurements, built in
    // the same nesting order the serial loop used; the ordered results
    // are then folded back into the per-suite histograms below.
    const std::vector<double> loads = loadLevels();
    std::vector<std::function<P99Pair(SimContext&)>> tasks;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        for (double rps : loads) {
            for (const Application* app : registry->suite(suite)) {
                tasks.push_back([app, rps,
                                 requests](SimContext& context) {
                    EngineSetup base = baselineSetup();
                    EngineSetup spec = specSetup();
                    base.context = &context;
                    spec.context = &context;
                    auto b = Experiment::measureAtLoad(*app, base, rps,
                                                       requests);
                    auto s = Experiment::measureAtLoad(*app, spec, rps,
                                                       requests);
                    return P99Pair{b.summary.p99ResponseMs,
                                   s.summary.p99ResponseMs};
                });
            }
        }
    }
    const std::vector<P99Pair> results =
        runSimTasks<P99Pair>(jobs, std::move(tasks));

    // Per-suite P99 distributions across apps and load levels, in a
    // bounded log-bucketed histogram instead of raw vectors.
    obs::LatencyHistogram base_hist;
    obs::LatencyHistogram spec_hist;

    std::size_t cursor = 0;
    std::vector<double> all_reductions;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::vector<double> normalized;
        for (std::size_t l = 0; l < loads.size(); ++l) {
            obs::LatencyHistogram base_p99s;
            obs::LatencyHistogram spec_p99s;
            for (std::size_t a = 0; a < registry->suite(suite).size();
                 ++a) {
                const P99Pair& p = results[cursor++];
                base_p99s.add(p.base);
                spec_p99s.add(p.spec);
            }
            base_hist.merge(base_p99s);
            spec_hist.merge(spec_p99s);
            normalized.push_back(spec_p99s.mean() / base_p99s.mean());
        }
        const double avg_norm = mean(normalized);
        all_reductions.push_back(1.0 - avg_norm);
        table.row({suite, fmtPercent(normalized[0]),
                   fmtPercent(normalized[1]), fmtPercent(normalized[2]),
                   fmtPercent(1.0 - avg_norm)});
        obs.report().addMetric(
            strFormat("tail_reduction.%s", suite), 1.0 - avg_norm,
            /*higherIsBetter=*/true);
    }
    table.separator();
    table.row({"Average", "", "", "",
               fmtPercent(mean(all_reductions))});
    table.print();
    obs.report().addMetric("avg_tail_reduction", mean(all_reductions),
                           /*higherIsBetter=*/true);
    obs.report().addHistogram("baseline_p99_ms", base_hist);
    obs.report().addHistogram("specfaas_p99_ms", spec_hist);

    std::printf("\nPaper reference: tail latency reduced by 62%% "
                "(FaaSChain), 56%% (TrainTicket), 58%% (Alibaba); "
                "58.7%% on average.\n");
    return 0;
}
