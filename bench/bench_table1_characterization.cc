/**
 * @file
 * Regenerates Table I: characterization of the three application
 * suites — number of applications and, per application on average:
 * functions, cross-function branches, data dependences, callees per
 * calling function, max DAG depth, and warm execution time.
 */

#include "bench_common.hh"

#include "platform/platform.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

struct SuiteRow
{
    std::string name;
    std::string type;
    std::size_t apps = 0;
    double functions = 0.0;
    double branches = 0.0;
    double dataDeps = 0.0;
    double callees = 0.0;
    std::size_t maxDepth = 0;
    double execMs = 0.0;
};

SuiteRow
characterize(const std::string& suite_name,
             const std::vector<const Application*>& apps)
{
    SuiteRow row;
    row.name = suite_name;
    row.apps = apps.size();
    row.type = apps.front()->type == WorkflowType::Explicit
                   ? "Explicit"
                   : "Implicit";
    for (const Application* app : apps) {
        row.functions += static_cast<double>(app->functionCount());
        row.branches += static_cast<double>(app->branchCount());
        row.dataDeps += static_cast<double>(app->dataDependenceCount());
        row.callees += app->avgCalleesPerCallingFunction();
        row.maxDepth = std::max(row.maxDepth, app->maxDagDepth());

        // Warm execution time: mean baseline response over serial
        // requests (like the paper's Table I measurement).
        EngineSetup setup = baselineSetup();
        setup.trainingInvocations = 5;
        row.execMs += Experiment::unloadedResponseMs(*app, setup, 10);
    }
    const auto n = static_cast<double>(apps.size());
    row.functions /= n;
    row.branches /= n;
    row.dataDeps /= n;
    row.callees /= n;
    row.execMs /= n;
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Table I: FaaS application suites considered");
    auto registry = makeAllSuites();

    TextTable table;
    table.header({"Characteristic", "Alibaba", "TrainTicket",
                  "FaaSChain"});

    std::vector<SuiteRow> rows;
    for (const char* suite : {"Alibaba", "TrainTicket", "FaaSChain"})
        rows.push_back(characterize(suite, registry->suite(suite)));

    auto cell = [&](auto get) {
        return std::vector<std::string>{get(rows[0]), get(rows[1]),
                                        get(rows[2])};
    };
    auto push = [&](const std::string& label,
                    std::vector<std::string> cells) {
        cells.insert(cells.begin(), label);
        table.row(std::move(cells));
    };

    push("Workflow Type", cell([](const SuiteRow& r) { return r.type; }));
    push("# of Applications", cell([](const SuiteRow& r) {
             return strFormat("%zu", r.apps);
         }));
    push("Avg # Functions", cell([](const SuiteRow& r) {
             return fmtDouble(r.functions, 1);
         }));
    push("Avg # Branches", cell([](const SuiteRow& r) {
             return r.type == "Implicit" && r.name == "Alibaba"
                        ? std::string("N/A")
                        : fmtDouble(r.branches, 1);
         }));
    push("Avg # Data Deps.", cell([](const SuiteRow& r) {
             return fmtDouble(r.dataDeps, 1);
         }));
    push("Avg # Callees/Func.", cell([](const SuiteRow& r) {
             return r.type == "Explicit" ? std::string("N/A")
                                         : fmtDouble(r.callees, 1);
         }));
    push("Max DAG Depth", cell([](const SuiteRow& r) {
             return strFormat("%zu", r.maxDepth);
         }));
    push("Avg Exec. Time (ms)", cell([](const SuiteRow& r) {
             return fmtDouble(r.execMs, 1);
         }));

    table.print();
    for (const SuiteRow& r : rows) {
        obs.report().addMetric(
            strFormat("avg_exec_ms.%s", r.name.c_str()), r.execMs,
            /*higherIsBetter=*/false, "ms");
    }
    std::printf("\nPaper reference: Alibaba 17.6 funcs / depth 5 / "
                "387.2 ms; TrainTicket 11.2 / 3 / 268.8 ms; FaaSChain "
                "7.8 / 10 / 160.0 ms\n");
    return 0;
}
