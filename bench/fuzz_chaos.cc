/**
 * @file
 * Standalone chaos differential fuzzer.
 *
 *     fuzz_chaos [--seeds=<lo>:<hi>] [--requests=<n>] [--plans=<n>]
 *
 * Runs the same differential check as the ChaosEquivalence ctest
 * suite over an arbitrary seed range: for each app seed, generate a
 * random application (explicit workflows on even seeds, implicit
 * call trees on odd) and a batch of random fault plans, run both
 * engines under the identical plan, and require termination, equal
 * responses and an equal final-store fingerprint.
 *
 * Cases are independent simulations, so `--jobs=<n>` fans them out
 * across n worker threads (0 = all hardware threads). Each case runs
 * against a private SimContext and its diagnostics are buffered, then
 * everything is emitted in case order — stdout, the exit status and
 * the merged counters are byte-identical to a `--jobs=1` run.
 *
 * On a failure the app kind, both seeds and the plan's text spec are
 * printed — append `<kind> <app-seed> <plan-seed>` to
 * tests/corpus/chaos_seeds.txt to pin the case as a regression test
 * (see the corpus header for the workflow). Exit status 1 on any
 * divergence or hang, 0 when the whole range is clean.
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "fuzz_apps.hh"
#include "platform/platform.hh"
#include "sim/sim_context.hh"

using namespace specfaas;

namespace {

int
usage()
{
    std::fprintf(stderr, "usage: fuzz_chaos [--seeds=<lo>:<hi>] "
                         "[--requests=<n>] [--plans=<n>] "
                         "[--jobs=<n>]\n");
    return 2;
}

SpecConfig
aggressiveConfig()
{
    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;
    return aggressive;
}

struct CaseId
{
    bool explicitApp;
    std::uint64_t appSeed;
    std::uint64_t planSeed;

    const char* kind() const
    {
        return explicitApp ? "explicit" : "implicit";
    }
};

/** Outcome of one chaos case; log is non-empty only on failure. */
struct CaseResult
{
    bool passed = false;
    std::string log;
};

void
appendf(std::string& out, const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    out += buf;
}

void
reportFailure(std::string& log, const CaseId& id,
              const FaultPlan& plan, const char* what)
{
    appendf(log, "FAIL %s app-seed %llu plan-seed %llu: %s\n",
            id.kind(), static_cast<unsigned long long>(id.appSeed),
            static_cast<unsigned long long>(id.planSeed), what);
    appendf(log, "  corpus line: %s %llu %llu\n", id.kind(),
            static_cast<unsigned long long>(id.appSeed),
            static_cast<unsigned long long>(id.planSeed));
    appendf(log, "  fault plan:\n%s", plan.toSpec().c_str());
}

CaseResult
runCase(const CaseId& id, std::size_t requests, SimContext& context)
{
    // Mirrors chaosApp()/chaosPlan() in tests/test_chaos_equivalence.cc
    // so corpus lines mean the same thing in both drivers.
    fuzz::AppFuzzer fuzzer(id.appSeed * 2654435761ull + 101);
    const Application app =
        id.explicitApp ? fuzzer.explicitApp() : fuzzer.implicitApp();
    Rng plan_rng(id.planSeed * 1000003ull + 29);
    const FaultPlan plan = FaultPlan::random(
        plan_rng, fuzz::functionNames(app), ClusterConfig{}.numNodes);

    const fuzz::ChaosOutcome base =
        fuzz::runChaos(app, false, {}, 53, requests, plan, 4, &context);
    const fuzz::ChaosOutcome spec =
        fuzz::runChaos(app, true, aggressiveConfig(), 53, requests,
                       plan, 4, &context);

    CaseResult result;
    if (!base.allTerminated) {
        reportFailure(result.log, id, plan,
                      "baseline request did not terminate");
        return result;
    }
    if (!spec.allTerminated) {
        reportFailure(result.log, id, plan,
                      "speculative request did not terminate");
        return result;
    }
    if (base.responses.size() != spec.responses.size()) {
        reportFailure(result.log, id, plan, "response counts differ");
        return result;
    }
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        if (base.responses[i].toString() !=
            spec.responses[i].toString()) {
            reportFailure(result.log, id, plan, "responses diverged");
            appendf(result.log,
                    "  request %zu\n    baseline: %s\n    "
                    "speculative: %s\n",
                    i, base.responses[i].toString().c_str(),
                    spec.responses[i].toString().c_str());
            return result;
        }
    }
    if (base.fingerprint != spec.fingerprint) {
        reportFailure(result.log, id, plan,
                      "final store state diverged");
        return result;
    }
    result.passed = true;
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 100;
    std::size_t requests = 10;
    std::uint64_t plans = 2;
    std::size_t jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            if (!parseJobsValue(argv[i] + 7, jobs))
                return usage();
            if (jobs == 0)
                jobs = defaultJobs();
        } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
            char* end = nullptr;
            lo = std::strtoull(argv[i] + 8, &end, 10);
            if (end == nullptr || *end != ':')
                return usage();
            hi = std::strtoull(end + 1, &end, 10);
            if (*end != '\0' || hi <= lo)
                return usage();
        } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
            requests = std::strtoull(argv[i] + 11, nullptr, 10);
            if (requests == 0)
                return usage();
        } else if (std::strncmp(argv[i], "--plans=", 8) == 0) {
            plans = std::strtoull(argv[i] + 8, nullptr, 10);
            if (plans == 0)
                return usage();
        } else {
            return usage();
        }
    }

    std::vector<CaseId> ids;
    for (std::uint64_t seed = lo; seed < hi; ++seed)
        for (std::uint64_t p = 0; p < plans; ++p)
            ids.push_back({seed % 2 == 0, seed, seed * plans + p});
    const std::uint64_t cases = ids.size();

    // Run in bounded slabs so wide seed ranges never hold tens of
    // thousands of forked contexts alive at once. Slabs execute in
    // case order and each slab's results are emitted in case order,
    // so stdout and the exit status do not depend on --jobs.
    constexpr std::size_t kSlab = 1024;
    std::uint64_t failures = 0;
    for (std::size_t base = 0; base < ids.size(); base += kSlab) {
        const std::size_t count =
            std::min(kSlab, ids.size() - base);
        std::vector<std::function<CaseResult(SimContext&)>> tasks;
        tasks.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const CaseId id = ids[base + i];
            tasks.push_back([id, requests](SimContext& context) {
                return runCase(id, requests, context);
            });
        }
        for (const CaseResult& result :
             runSimTasks<CaseResult>(jobs, std::move(tasks))) {
            if (!result.passed)
                ++failures;
            std::fputs(result.log.c_str(), stdout);
        }
    }

    std::printf("%llu/%llu chaos cases passed (seeds [%llu, %llu), "
                "%llu plan(s) each, %zu requests)\n",
                static_cast<unsigned long long>(cases - failures),
                static_cast<unsigned long long>(cases),
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(plans), requests);
    return failures == 0 ? 0 : 1;
}
