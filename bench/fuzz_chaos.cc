/**
 * @file
 * Standalone chaos differential fuzzer.
 *
 *     fuzz_chaos [--seeds=<lo>:<hi>] [--requests=<n>] [--plans=<n>]
 *
 * Runs the same differential check as the ChaosEquivalence ctest
 * suite over an arbitrary seed range: for each app seed, generate a
 * random application (explicit workflows on even seeds, implicit
 * call trees on odd) and a batch of random fault plans, run both
 * engines under the identical plan, and require termination, equal
 * responses and an equal final-store fingerprint.
 *
 * On a failure the app kind, both seeds and the plan's text spec are
 * printed — append `<kind> <app-seed> <plan-seed>` to
 * tests/corpus/chaos_seeds.txt to pin the case as a regression test
 * (see the corpus header for the workflow). Exit status 1 on any
 * divergence or hang, 0 when the whole range is clean.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz_apps.hh"
#include "platform/platform.hh"

using namespace specfaas;

namespace {

int
usage()
{
    std::fprintf(stderr, "usage: fuzz_chaos [--seeds=<lo>:<hi>] "
                         "[--requests=<n>] [--plans=<n>]\n");
    return 2;
}

SpecConfig
aggressiveConfig()
{
    SpecConfig aggressive;
    aggressive.bpDeadBand = 0.0;
    aggressive.stallThreshold = 2;
    return aggressive;
}

struct CaseId
{
    bool explicitApp;
    std::uint64_t appSeed;
    std::uint64_t planSeed;

    const char* kind() const
    {
        return explicitApp ? "explicit" : "implicit";
    }
};

void
reportFailure(const CaseId& id, const FaultPlan& plan,
              const char* what)
{
    std::printf("FAIL %s app-seed %llu plan-seed %llu: %s\n",
                id.kind(),
                static_cast<unsigned long long>(id.appSeed),
                static_cast<unsigned long long>(id.planSeed), what);
    std::printf("  corpus line: %s %llu %llu\n", id.kind(),
                static_cast<unsigned long long>(id.appSeed),
                static_cast<unsigned long long>(id.planSeed));
    std::printf("  fault plan:\n%s", plan.toSpec().c_str());
}

/** @return true when the case passed */
bool
runCase(const CaseId& id, std::size_t requests)
{
    // Mirrors chaosApp()/chaosPlan() in tests/test_chaos_equivalence.cc
    // so corpus lines mean the same thing in both drivers.
    fuzz::AppFuzzer fuzzer(id.appSeed * 2654435761ull + 101);
    const Application app =
        id.explicitApp ? fuzzer.explicitApp() : fuzzer.implicitApp();
    Rng plan_rng(id.planSeed * 1000003ull + 29);
    const FaultPlan plan = FaultPlan::random(
        plan_rng, fuzz::functionNames(app), ClusterConfig{}.numNodes);

    const fuzz::ChaosOutcome base =
        fuzz::runChaos(app, false, {}, 53, requests, plan);
    const fuzz::ChaosOutcome spec = fuzz::runChaos(
        app, true, aggressiveConfig(), 53, requests, plan);

    if (!base.allTerminated) {
        reportFailure(id, plan, "baseline request did not terminate");
        return false;
    }
    if (!spec.allTerminated) {
        reportFailure(id, plan,
                      "speculative request did not terminate");
        return false;
    }
    if (base.responses.size() != spec.responses.size()) {
        reportFailure(id, plan, "response counts differ");
        return false;
    }
    for (std::size_t i = 0; i < base.responses.size(); ++i) {
        if (base.responses[i].toString() !=
            spec.responses[i].toString()) {
            reportFailure(id, plan, "responses diverged");
            std::printf("  request %zu\n    baseline: %s\n    "
                        "speculative: %s\n",
                        i, base.responses[i].toString().c_str(),
                        spec.responses[i].toString().c_str());
            return false;
        }
    }
    if (base.fingerprint != spec.fingerprint) {
        reportFailure(id, plan, "final store state diverged");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 100;
    std::size_t requests = 10;
    std::uint64_t plans = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
            char* end = nullptr;
            lo = std::strtoull(argv[i] + 8, &end, 10);
            if (end == nullptr || *end != ':')
                return usage();
            hi = std::strtoull(end + 1, &end, 10);
            if (*end != '\0' || hi <= lo)
                return usage();
        } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
            requests = std::strtoull(argv[i] + 11, nullptr, 10);
            if (requests == 0)
                return usage();
        } else if (std::strncmp(argv[i], "--plans=", 8) == 0) {
            plans = std::strtoull(argv[i] + 8, nullptr, 10);
            if (plans == 0)
                return usage();
        } else {
            return usage();
        }
    }

    std::uint64_t cases = 0;
    std::uint64_t failures = 0;
    for (std::uint64_t seed = lo; seed < hi; ++seed) {
        for (std::uint64_t p = 0; p < plans; ++p) {
            const CaseId id{seed % 2 == 0, seed, seed * plans + p};
            ++cases;
            if (!runCase(id, requests))
                ++failures;
        }
    }

    std::printf("%llu/%llu chaos cases passed (seeds [%llu, %llu), "
                "%llu plan(s) each, %zu requests)\n",
                static_cast<unsigned long long>(cases - failures),
                static_cast<unsigned long long>(cases),
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(plans), requests);
    return failures == 0 ? 0 : 1;
}
