/**
 * @file
 * Regenerates Table IV: CPU utilization of the squashed speculative
 * work. Sweeps the speculation hit rate on the FaaSChain suite and
 * compares two squash policies — LazySquash (mis-speculated handlers
 * run to completion in the background) and SpecFaaS's immediate
 * handler-process kill — with utilization normalized to the
 * baseline's. Also reports the SpecFaaS speedup at each hit rate.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

struct Cell
{
    double utilization = 0.0;
    double speedup = 0.0;
};

Cell
measure(const std::vector<const Application*>& apps,
        const EngineSetup& setup, double rps,
        const std::vector<double>& base_means,
        const std::vector<double>& base_utils)
{
    Cell cell;
    std::vector<double> utils;
    std::vector<double> speedups;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        auto m = Experiment::measureAtLoad(*apps[i], setup, rps, 200);
        utils.push_back(m.cpuUtilization / base_utils[i]);
        speedups.push_back(base_means[i] / m.summary.meanResponseMs);
    }
    cell.utilization = mean(utils);
    cell.speedup = mean(speedups);
    return cell;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Table IV: CPU utilization of squashed work "
           "(normalized to baseline)");

    const std::vector<double> biases = {1.0, 0.9, 0.7, 0.5};
    const double rps = LoadLevels::kMedium;

    TextTable table;
    table.header({"HitRate", "Baseline", "LazySquash", "SpecFaaS",
                  "Speedup"});

    for (double bias : biases) {
        SuiteOptions options;
        options.faasChain.branchBias = bias;
        auto registry = makeAllSuites(options);
        auto apps = registry->suite("FaaSChain");

        // Baseline reference point per application.
        std::vector<double> base_means;
        std::vector<double> base_utils;
        for (const Application* app : apps) {
            auto b = Experiment::measureAtLoad(*app, baselineSetup(),
                                               rps, 200);
            base_means.push_back(b.summary.meanResponseMs);
            base_utils.push_back(std::max(b.cpuUtilization, 1e-9));
        }

        // The sweep forces speculation at every hit rate: the dead
        // band (which would refuse to predict 50/50 branches) and the
        // squash minimizer (which would learn around the violations)
        // are disabled so the squashed work is exposed, as in the
        // paper's controlled hit-rate experiment.
        EngineSetup lazy = specSetup();
        lazy.spec.squashPolicy = SquashPolicy::Lazy;
        lazy.spec.bpDeadBand = 0.0;
        lazy.spec.stallThreshold = 1000000000;
        EngineSetup kill = specSetup();
        kill.spec.squashPolicy = SquashPolicy::ProcessKill;
        kill.spec.bpDeadBand = 0.0;
        kill.spec.stallThreshold = 1000000000;

        const Cell lazy_cell =
            measure(apps, lazy, rps, base_means, base_utils);
        const Cell kill_cell =
            measure(apps, kill, rps, base_means, base_utils);

        table.row({strFormat("%.0f%%", bias * 100), "1.00",
                   fmtDouble(lazy_cell.utilization),
                   fmtDouble(kill_cell.utilization),
                   fmtRatio(kill_cell.speedup)});
        obs.report().addMetric(
            strFormat("lazy_utilization.hit%.0f", bias * 100),
            lazy_cell.utilization, /*higherIsBetter=*/false);
        obs.report().addMetric(
            strFormat("spec_utilization.hit%.0f", bias * 100),
            kill_cell.utilization, /*higherIsBetter=*/false);
        obs.report().addMetric(
            strFormat("spec_speedup.hit%.0f", bias * 100),
            kill_cell.speedup, /*higherIsBetter=*/true, "x");
    }
    table.print();

    std::printf("\nPaper reference (normalized utilization): 100%% "
                "hit: 1.09 lazy / 1.03 spec (5.2x); 90%%: 1.24 / 1.08 "
                "(4.6x); 70%%: 1.43 / 1.15 (4.0x); 50%%: 1.63 / 1.38 "
                "(3.9x). Immediate handler kills waste far fewer "
                "cycles than letting squashed work finish.\n");
    return 0;
}
