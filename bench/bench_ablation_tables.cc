/**
 * @file
 * Regenerates the in-text ablation numbers of §V-B and §VIII-B:
 *
 *  - memoization-table hit rate vs table size (the paper reports a
 *    50-entry table reaching ~96% on TrainTicket and 65-98% on
 *    FaaSChain);
 *  - memoization-table footprint (paper: 100-1K entries, 1.5-30 KB
 *    per application);
 *  - branch-predictor hit rates per suite (paper: 98% TrainTicket,
 *    90% Alibaba);
 *  - the fraction of pure-function invocations that could skip
 *    execution entirely (paper: >57.6% on TrainTicket), and the
 *    speedup effect of enabling the pure-function optimization;
 *  - Data Buffer size (paper: at most 12 columns x 4 rows, ~3 KB).
 */

#include "bench_common.hh"

#include <cmath>

#include "platform/platform.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

void
memoSizeSweep(const ApplicationRegistry& registry,
              obs::JsonReport& report)
{
    std::printf("\n--- Memoization hit rate vs table capacity ---\n");
    TextTable table;
    table.header({"Suite", "8 rows", "25 rows", "50 rows",
                  "200 rows"});
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::vector<std::string> row = {suite};
        for (std::size_t capacity : {8u, 25u, 50u, 200u}) {
            std::vector<double> rates;
            for (const Application* app : registry.suite(suite)) {
                EngineSetup setup = specSetup();
                setup.spec.memoCapacity =
                    static_cast<std::uint32_t>(capacity);
                auto platform =
                    Experiment::preparedPlatform(*app, setup);
                for (int i = 0; i < 60; ++i) {
                    (void)platform->invokeSync(
                        *app, app->inputGen(platform->inputRng()));
                }
                rates.push_back(platform->specController()
                                    ->memoStore()
                                    .overallHitRate());
            }
            row.push_back(fmtPercent(mean(rates)));
            if (capacity == 50u) {
                report.addMetric(
                    strFormat("memo_hit_rate_50.%s", suite),
                    mean(rates), /*higherIsBetter=*/true);
            }
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("Paper: 50-entry tables reach ~96%% on TrainTicket; "
                "65-98%% across FaaSChain apps.\n");
}

void
tableFootprints(const ApplicationRegistry& registry,
                obs::JsonReport& report)
{
    std::printf("\n--- Memoization footprint and branch predictor ---\n");
    TextTable table;
    table.header({"Suite", "Memo rows", "Memo footprint",
                  "BP entries", "BP hit rate"});
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::size_t rows = 0;
        std::size_t bytes = 0;
        std::size_t entries = 0;
        std::vector<double> hit_rates;
        const auto apps = registry.suite(suite);
        for (const Application* app : apps) {
            EngineSetup setup = specSetup();
            auto platform = Experiment::preparedPlatform(*app, setup);
            for (int i = 0; i < 80; ++i) {
                (void)platform->invokeSync(
                    *app, app->inputGen(platform->inputRng()));
            }
            auto* spec = platform->specController();
            rows += spec->memoStore().totalRows();
            bytes += spec->memoStore().totalFootprintBytes();
            entries += spec->branchPredictor().entryCount();
            // NaN = the app has no predicted branch; keep it out of
            // the suite mean.
            const double hr = spec->branchPredictor().hitRate();
            if (!std::isnan(hr))
                hit_rates.push_back(hr);
        }
        const double napps = static_cast<double>(apps.size());
        table.row({suite,
                   strFormat("%.0f/app",
                             static_cast<double>(rows) / napps),
                   strFormat("%.1f KB/app",
                             static_cast<double>(bytes) / 1024.0 /
                                 napps),
                   strFormat("%zu", entries),
                   fmtPercentOrDash(hit_rates.empty()
                                        ? std::nan("")
                                        : mean(hit_rates))});
        report.addMetric(strFormat("bp_hit_rate.%s", suite),
                         hit_rates.empty() ? std::nan("")
                                           : mean(hit_rates),
                         /*higherIsBetter=*/true);
    }
    table.print();
    std::printf("Paper: combined tables use 100-1K entries and "
                "1.5-30 KB per application; BP hit rates 98%% "
                "(TrainTicket) / 90%% (Alibaba).\n");
}

void
pureFunctionSkip(const ApplicationRegistry& registry)
{
    std::printf("\n--- Pure-function optimization (§V-B, not enabled "
                "in the paper's evaluation) ---\n");
    TextTable table;
    table.header({"Suite", "Pure functions", "Skips/req (when on)",
                  "Extra speedup"});
    for (const char* suite : {"TrainTicket", "Alibaba"}) {
        std::size_t pure = 0;
        std::size_t total = 0;
        for (const Application* app : registry.suite(suite)) {
            for (const auto& f : app->functions) {
                ++total;
                if (f.pureAnnotation || f.isEffectivelyPure())
                    ++pure;
            }
        }
        std::vector<double> base_ms;
        std::vector<double> skip_ms;
        double skips_per_req = 0.0;
        std::size_t requests = 0;
        for (const Application* app : registry.suite(suite)) {
            EngineSetup off = specSetup();
            base_ms.push_back(
                Experiment::unloadedResponseMs(*app, off, 20));
            EngineSetup on = specSetup();
            on.spec.pureFunctionSkip = true;
            auto platform = Experiment::preparedPlatform(*app, on);
            double total_ms = 0.0;
            for (int i = 0; i < 20; ++i) {
                auto r = platform->invokeSync(
                    *app, app->inputGen(platform->inputRng()));
                total_ms += ticksToMs(r.responseTime());
                ++requests;
            }
            skip_ms.push_back(total_ms / 20.0);
            skips_per_req += static_cast<double>(
                platform->specController()->stats().pureSkips);
        }
        table.row({suite,
                   strFormat("%zu of %zu", pure, total),
                   fmtDouble(skips_per_req /
                                 static_cast<double>(requests),
                             2),
                   fmtRatio(mean(base_ms) / mean(skip_ms), 2)});
    }
    table.print();
    std::printf("Paper: >57.6%% of TrainTicket function invocations "
                "are pure and could be skipped; the evaluation "
                "conservatively leaves this off (as does every other "
                "bench here).\n");
}

void
dataBufferSize(const ApplicationRegistry& registry)
{
    std::printf("\n--- Data Buffer geometry (§VIII-B) ---\n");
    // Peak columns are bounded by the speculation depth; rows by the
    // records an invocation touches. Report the configured bound and
    // the approximate footprint of a live invocation's buffer.
    EngineSetup setup = specSetup();
    const Application& app = registry.get("OnlPurch");
    auto platform = Experiment::preparedPlatform(app, setup);
    std::printf("Max in-flight columns (speculation depth): %u\n",
                platform->options().spec.maxSpecDepth);
    std::printf("Paper: at most 12 columns and 4 rows, ~3 KB total "
                "per invocation.\n");
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Ablation tables (§V-B / §VIII-B in-text numbers)");
    auto registry = makeAllSuites();
    memoSizeSweep(*registry, obs.report());
    tableFootprints(*registry, obs.report());
    pureFunctionSkip(*registry);
    dataBufferSize(*registry);
    return 0;
}
