/**
 * @file
 * Regenerates Fig. 3: the average response time of one function
 * invocation under cold-start conditions, broken into five
 * categories — Container Creation, Runtime Setup, Platform Overhead,
 * Transfer Function Overhead, and Function Execution — plus the warm
 * breakdown behind Observation 1 (function execution is 33-42% of
 * the warm response time).
 */

#include "bench_common.hh"

#include "metrics/summary.hh"
#include "platform/platform.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

BreakdownMs
suiteBreakdown(const std::vector<const Application*>& apps, bool warm)
{
    std::vector<InvocationResult> results;
    for (const Application* app : apps) {
        PlatformOptions options;
        options.seed = 42;
        options.prewarmPerFunction = warm ? 32 : 0;
        FaasPlatform platform(options);
        platform.deploy(*app);
        if (warm)
            platform.train(*app, 3); // warm the containers
        // Cold: one request per app so every function truly
        // cold-starts, as in the paper's Fig. 3 measurement.
        for (int i = 0; i < (warm ? 10 : 1); ++i) {
            Value input = app->inputGen(platform.inputRng());
            results.push_back(
                platform.invokeSync(*app, std::move(input)));
        }
    }
    return meanBreakdown(results);
}

void
printBreakdown(const char* mode,
               const std::vector<std::pair<std::string, BreakdownMs>>&
                   rows)
{
    TextTable table;
    table.header({strFormat("Category (%s, ms/function)", mode),
                  rows[0].first, rows[1].first, rows[2].first});
    auto push = [&](const std::string& label, auto get) {
        table.row({label, fmtDouble(get(rows[0].second), 1),
                   fmtDouble(get(rows[1].second), 1),
                   fmtDouble(get(rows[2].second), 1)});
    };
    push("Container Creation",
         [](const BreakdownMs& b) { return b.containerCreation; });
    push("Runtime Setup",
         [](const BreakdownMs& b) { return b.runtimeSetup; });
    push("Platform Overhead",
         [](const BreakdownMs& b) { return b.platformOverhead; });
    push("Transfer Function Overhead",
         [](const BreakdownMs& b) { return b.transferOverhead; });
    push("Function Execution",
         [](const BreakdownMs& b) { return b.execution; });
    table.separator();
    push("Total", [](const BreakdownMs& b) { return b.total(); });
    table.row({"Execution share",
               fmtPercent(rows[0].second.executionShare()),
               fmtPercent(rows[1].second.executionShare()),
               fmtPercent(rows[2].second.executionShare())});
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Fig. 3: response-time breakdown of a function invocation");
    auto registry = makeAllSuites();

    std::vector<std::pair<std::string, BreakdownMs>> cold;
    std::vector<std::pair<std::string, BreakdownMs>> warm;
    for (const char* suite : {"Alibaba", "TrainTicket", "FaaSChain"}) {
        auto apps = registry->suite(suite);
        cold.emplace_back(suite, suiteBreakdown(apps, false));
        warm.emplace_back(suite, suiteBreakdown(apps, true));
    }

    printBreakdown("cold start", cold);
    std::printf("\n");
    printBreakdown("warmed-up", warm);

    for (const auto& [suite, b] : cold) {
        obs.report().addMetric(
            strFormat("cold_total_ms.%s", suite.c_str()), b.total(),
            /*higherIsBetter=*/false, "ms");
    }
    for (const auto& [suite, b] : warm) {
        obs.report().addMetric(
            strFormat("warm_execution_share.%s", suite.c_str()),
            b.executionShare(), /*higherIsBetter=*/true);
    }

    std::printf("\nPaper reference: container creation ~1500 ms "
                "dominates cold starts; warm execution share is "
                "33-42%% (Observation 1).\n");
    return 0;
}
