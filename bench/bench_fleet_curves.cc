/**
 * @file
 * Fleet-scale throughput-vs-QoS curves: baseline vs SpecFaaS on a
 * dynamic fleet of 100–400 nodes under non-stationary multi-tenant
 * load.
 *
 * Extends the paper's fixed-5-node load experiments (§VII) to the
 * regime real platforms run in: an autoscaled node fleet with
 * histogram keep-alive warm pools and fair-share admission, driven by
 * an open-loop trace-style load (Alibaba-shape tenants with skewed
 * weights; diurnal and bursty arrival processes). For each offered
 * load the bench reports completion rate, rejection rate, p50/p95/p99
 * response, and fleet lifecycle activity. The paper's control-plane
 * bottleneck shows up directly: the baseline controller saturates an
 * order of magnitude below the SpecFaaS sequence-table dispatch, and
 * SpecFaaS instead pushes into node-capacity scale-up.
 *
 * All reported metrics derive from simulated time and deterministic
 * counters, so the whole report is a two-sided identity gate in CI,
 * byte-identical at any --jobs count.
 */

#include "bench_common.hh"

#include <cstring>

#include "fleet/fleet.hh"
#include "loadgen/load_driver.hh"
#include "workloads/alibaba.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

/** Tenant traffic shares: a few hot apps, a long-ish tail. */
constexpr double kTenantWeights[] = {8.0, 4.0, 2.0, 1.0, 1.0, 1.0};
constexpr std::size_t kTenants =
    sizeof(kTenantWeights) / sizeof(kTenantWeights[0]);

/**
 * Offered loads of the sweep, rps. Calibrated against two ceilings.
 * With 60 ms mean leaf service an app costs ~1.06 core-seconds, so
 * compute capacity is ~750 rps on the initial 100x8 cores and ~3 krps
 * at the 400-node cap. The controller admits ~262 rps under the
 * baseline (12 threads / (17.6 launches x 2.6 ms)) but ~1.1 krps
 * under SpecFaaS (0.6 ms sequence-table dispatch). The four loads
 * sit below both knees, past the baseline's controller knee, and
 * past the initial fleet's compute knee — where only SpecFaaS can
 * convert autoscaled nodes into throughput.
 */
const std::vector<double> kLoads = {150.0, 300.0, 600.0, 1000.0};

/** Cluster geometry: 100 initial nodes, controller-bound baseline. */
ClusterConfig
fleetCluster()
{
    ClusterConfig cluster;
    cluster.numNodes = 100;
    cluster.coresPerNode = 8;
    cluster.controllerThreads = 12;
    cluster.admissionQueueLimit = 256;
    return cluster;
}

/** Fleet dynamics, timescales compressed to fit a CI-sized window. */
FleetConfig
fleetDynamics()
{
    FleetConfig fleet;
    fleet.dynamics = true;
    fleet.minNodes = 100;
    fleet.maxNodes = 400;
    fleet.provisioningDelay = 500 * kMillisecond;
    fleet.autoscaler.enabled = true;
    fleet.autoscaler.interval = 200 * kMillisecond;
    fleet.autoscaler.utilHigh = 0.70;
    fleet.autoscaler.queueDepthHigh = 64;
    fleet.autoscaler.utilLow = 0.20;
    fleet.autoscaler.lowStreak = 3;
    fleet.autoscaler.scaleUpStep = 16;
    fleet.autoscaler.scaleDownStep = 8;
    fleet.autoscaler.cooldown = 400 * kMillisecond;
    fleet.eviction.policy = EvictionConfig::Policy::Histogram;
    fleet.eviction.scanInterval = 500 * kMillisecond;
    fleet.eviction.keepAlivePercentile = 99.0;
    // Clamp wide enough that warm pools survive the queueing delays
    // of the saturated points instead of thrashing cold starts.
    fleet.eviction.minKeepAlive = 5 * kSecond;
    fleet.eviction.maxKeepAlive = 30 * kSecond;
    fleet.admission.fairShare = true;
    fleet.admission.engageQueueDepth = 16;
    fleet.admission.fairFactor = 2.0;
    fleet.admission.minTenantInFlight = 32;
    return fleet;
}

ArrivalSpec
arrivalFor(const char* kind, double rps)
{
    ArrivalSpec spec;
    spec.rps = rps;
    if (std::strcmp(kind, "diurnal") == 0) {
        spec.kind = ArrivalSpec::Kind::Diurnal;
        spec.diurnalAmplitude = 0.5;
        spec.diurnalPeriod = 2 * kSecond;
    } else {
        spec.kind = ArrivalSpec::Kind::Bursty;
        spec.burstMultiplier = 4.0;
        spec.burstDuty = 0.2;
        spec.meanBurstLen = 150 * kMillisecond;
    }
    return spec;
}

/** ~2.5 s of offered load per point, bounded below for stability. */
std::size_t
requestsFor(double rps)
{
    return static_cast<std::size_t>(
        std::max(600.0, rps * 2.5));
}

/** Deterministic outcome of one (engine, arrival, load) point. */
struct CurvePoint
{
    std::size_t completed = 0;
    std::size_t rejected = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double completedRps = 0.0;
    double rejectionRate = 0.0;
    std::uint64_t peakNodes = 0;
    std::uint64_t provisioned = 0;
    std::uint64_t retired = 0;
    std::uint64_t evictions = 0;
    std::uint64_t fairRejects = 0;
};

CurvePoint
measurePoint(SimContext& context, bool speculative, const char* kind,
             double rps, const std::vector<Application>& apps)
{
    PlatformOptions options;
    options.speculative = speculative;
    options.seed = 42;
    options.cluster = fleetCluster();
    options.fleet = fleetDynamics();
    // Callers hold their container across the whole synchronous
    // subtree, so per-function container concurrency is rps x
    // multi-second holds — prewarm generously or the measured window
    // is one long cold-start transient instead of steady state.
    options.prewarmPerFunction = 512;
    options.context = &context;

    FaasPlatform platform(options);
    for (const Application& app : apps)
        platform.deploy(app);
    // Short warm-up: trains the speculative tables on each tenant and
    // exercises the warm pools before the measured window.
    for (const Application& app : apps)
        platform.train(app, 6);
    // Serial training advances the clock far past the deploy-time
    // prewarm's keep-alive, so the eviction daemon has emptied the
    // pools by now; refill them so the measured window starts warm
    // instead of being one long cold-start transient.
    for (const Application& app : apps)
        for (const FunctionDef& fn : app.functions)
            platform.cluster().containers().prewarm(
                Symbol(fn.name), options.prewarmPerFunction);

    std::vector<TenantSpec> tenants;
    for (std::size_t i = 0; i < apps.size(); ++i)
        tenants.push_back(TenantSpec{&apps[i], kTenantWeights[i]});
    Rng inputBase = platform.sim().forkRng();
    TrafficMix mix(tenants, inputBase);

    const FleetLoadResult run = LoadDriver::run(
        platform, mix, arrivalFor(kind, rps), requestsFor(rps));

    const FleetStats& stats = platform.cluster().fleet().stats();
    CurvePoint p;
    p.completed = run.completedCount();
    p.rejected = run.rejected;
    p.p50 = run.latencyPercentileMs(50.0);
    p.p95 = run.latencyPercentileMs(95.0);
    p.p99 = run.latencyPercentileMs(99.0);
    p.completedRps = run.completedRps();
    p.rejectionRate = run.rejectionRate();
    p.peakNodes = stats.peakReadyNodes;
    p.provisioned = stats.provisioned;
    p.retired = stats.retired;
    p.evictions = stats.evictions;
    p.fairRejects = stats.fairRejects;
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    const std::size_t jobs = jobsArg(argc, argv);
    banner("Fleet curves: throughput vs QoS latency, dynamic fleet "
           "(100-400 nodes)");

    AlibabaTraceConfig trace;
    trace.applications = kTenants;
    // Heavier handlers than the trace's 7.5 ms mean: at fleet scale
    // the interesting regime is where compute actually binds, so the
    // autoscaler has something to fix once SpecFaaS removes the
    // control-plane bottleneck.
    trace.meanServiceMs = 60.0;
    const std::vector<Application> apps = alibabaSuite(trace);

    obs.report().setConfig("tenants",
                           Value(static_cast<std::int64_t>(kTenants)));
    obs.report().setConfig("initial_nodes", Value(std::int64_t{100}));
    obs.report().setConfig("max_nodes", Value(std::int64_t{400}));
    {
        ValueArray loads;
        for (double rps : kLoads)
            loads.push_back(Value(rps));
        obs.report().setConfig("loads_rps", Value(std::move(loads)));
    }

    const std::vector<const char*> engines = {"base", "spec"};
    const std::vector<const char*> arrivals = {"diurnal", "bursty"};

    std::vector<std::function<CurvePoint(SimContext&)>> tasks;
    for (const char* engine : engines) {
        for (const char* kind : arrivals) {
            for (double rps : kLoads) {
                const bool speculative =
                    std::strcmp(engine, "spec") == 0;
                tasks.push_back([speculative, kind, rps,
                                 &apps](SimContext& context) {
                    return measurePoint(context, speculative, kind,
                                        rps, apps);
                });
            }
        }
    }
    const std::vector<CurvePoint> results =
        runSimTasks<CurvePoint>(jobs, std::move(tasks));

    std::size_t cursor = 0;
    for (const char* engine : engines) {
        for (const char* kind : arrivals) {
            TextTable table;
            table.header({strFormat("%s/%s rps", engine, kind),
                          "completed", "rej%", "p50 ms", "p95 ms",
                          "p99 ms", "peak nodes", "evictions"});
            for (double rps : kLoads) {
                const CurvePoint& p = results[cursor++];
                table.row(
                    {strFormat("%.0f", rps),
                     strFormat("%zu", p.completed),
                     strFormat("%.1f", 100.0 * p.rejectionRate),
                     strFormat("%.1f", p.p50),
                     strFormat("%.1f", p.p95),
                     strFormat("%.1f", p.p99),
                     strFormat("%llu",
                               static_cast<unsigned long long>(
                                   p.peakNodes)),
                     strFormat("%llu",
                               static_cast<unsigned long long>(
                                   p.evictions))});

                const std::string prefix = strFormat(
                    "%s.%s.r%.0f", engine, kind, rps);
                auto& report = obs.report();
                report.addMetric(prefix + ".completed",
                                 static_cast<double>(p.completed),
                                 /*higherIsBetter=*/true);
                report.addMetric(prefix + ".rejection_rate",
                                 p.rejectionRate,
                                 /*higherIsBetter=*/false);
                report.addMetric(prefix + ".completed_rps",
                                 p.completedRps,
                                 /*higherIsBetter=*/true);
                report.addMetric(prefix + ".p50_ms", p.p50,
                                 /*higherIsBetter=*/false, "ms");
                report.addMetric(prefix + ".p95_ms", p.p95,
                                 /*higherIsBetter=*/false, "ms");
                report.addMetric(prefix + ".p99_ms", p.p99,
                                 /*higherIsBetter=*/false, "ms");
                report.addMetric(prefix + ".peak_nodes",
                                 static_cast<double>(p.peakNodes),
                                 /*higherIsBetter=*/false);
                report.addMetric(prefix + ".evictions",
                                 static_cast<double>(p.evictions),
                                 /*higherIsBetter=*/false);
                report.addMetric(prefix + ".fair_rejects",
                                 static_cast<double>(p.fairRejects),
                                 /*higherIsBetter=*/false);
            }
            table.print();
        }
    }

    std::printf("\nThe baseline saturates at its controller ceiling "
                "(~260 rps here): the autoscaler adds nodes on queue "
                "pressure but the control plane cannot use them, so "
                "completions stay flat and admission sheds load. "
                "SpecFaaS's sequence-table dispatch lifts that "
                "ceiling ~4x; its knee moves to node capacity, which "
                "scale-up actually extends.\n");
    return 0;
}
