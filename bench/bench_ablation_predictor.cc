/**
 * @file
 * Branch-predictor design ablation (§V-A).
 *
 * The paper keeps per-path sub-entries in each branch-predictor entry
 * because "the path of functions executed from the beginning of the
 * application until the branch typically determines the branch
 * outcome" (Fig. 8). This bench constructs exactly that situation —
 * a branch whose outcome is fully determined by which upstream arm
 * executed, while the aggregate outcome distribution is 50/50 — and
 * compares the path-indexed predictor against an aggregate-only
 * ablation, plus both designs on the regular FaaSChain suite.
 */

#include "bench_common.hh"

#include <cmath>

#include "platform/platform.hh"
#include "workloads/app_helpers.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

/**
 * seq( when(First, MarkA, MarkB), when(PathCond, Fast, Slow), Done ).
 * First is a fair coin; PathCond's outcome equals which mark ran, so
 * it is 100% path-determined yet 50/50 in aggregate.
 */
Application
pathCorrelatedApp()
{
    Application app;
    app.name = "path-correlated";
    app.suite = "ablation";
    app.type = WorkflowType::Explicit;

    app.functions.push_back(condFunction("PcFirst", "b0", 5.0));
    app.functions.push_back(worker("PcMarkA", 6.0, [](const Env&) {
        return Value::object({{"came", Value(1)}});
    }));
    app.functions.push_back(worker("PcMarkB", 6.0, [](const Env&) {
        return Value::object({{"came", Value(2)}});
    }));
    app.functions.push_back(worker("PcPathCond", 4.0, [](const Env& e) {
        return Value(intOr(e.input.at("came"), 0) == 1);
    }));
    app.functions.push_back(worker("PcFast", 8.0, fns::passInput()));
    app.functions.push_back(worker("PcSlow", 8.0, fns::passInput()));
    app.functions.push_back(worker("PcDone", 4.0, [](const Env& e) {
        Value out = Value::object({});
        out["came"] = e.input.at("came");
        return out;
    }));

    app.workflow = sequence({
        when("PcFirst", task("PcMarkA"), task("PcMarkB")),
        when("PcPathCond", task("PcFast"), task("PcSlow")),
        task("PcDone"),
    });
    app.inputGen = [](Rng& rng) {
        Value v = Value::object({});
        v["b0"] = Value(rng.bernoulli(0.5)); // fair coin upstream
        return v;
    };
    return app;
}

struct Measured
{
    double hitRate = 0.0;
    double meanMs = 0.0;
};

Measured
measure(const Application& app, bool path_history)
{
    PlatformOptions options;
    options.speculative = true;
    options.seed = 42;
    options.spec.bpPathHistory = path_history;
    options.spec.bpDeadBand = 0.0; // always predict, measure quality
    FaasPlatform platform(options);
    platform.deploy(app);
    platform.train(app, 40);

    Measured m;
    const int requests = 100;
    double total = 0.0;
    for (int i = 0; i < requests; ++i) {
        auto r = platform.invokeSync(
            app, app.inputGen(platform.inputRng()));
        total += ticksToMs(r.responseTime());
    }
    m.meanMs = total / requests;
    m.hitRate = platform.specController()->branchPredictor().hitRate();
    return m;
}

double
suiteHitRate(const ApplicationRegistry& registry, bool path_history)
{
    std::vector<double> rates;
    for (const Application* app : registry.suite("FaaSChain")) {
        EngineSetup setup = specSetup();
        setup.spec.bpPathHistory = path_history;
        auto platform = Experiment::preparedPlatform(*app, setup);
        for (int i = 0; i < 60; ++i) {
            (void)platform->invokeSync(
                *app, app->inputGen(platform->inputRng()));
        }
        // NaN = no predictions made for this app; exclude it rather
        // than poison the suite mean.
        const double hr =
            platform->specController()->branchPredictor().hitRate();
        if (!std::isnan(hr))
            rates.push_back(hr);
    }
    return rates.empty() ? std::nan("") : mean(rates);
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Ablation: path-indexed vs aggregate branch prediction "
           "(§V-A, Fig. 8)");

    Application app = pathCorrelatedApp();
    const Measured with_path = measure(app, true);
    const Measured aggregate = measure(app, false);

    TextTable table;
    table.header({"Configuration", "BP hit rate", "Mean response"});
    table.row({"path-indexed (paper)",
               fmtPercentOrDash(with_path.hitRate),
               fmtMs(with_path.meanMs)});
    table.row({"aggregate-only", fmtPercentOrDash(aggregate.hitRate),
               fmtMs(aggregate.meanMs)});
    table.print();
    obs.report().addMetric("path_indexed_hit_rate", with_path.hitRate,
                           /*higherIsBetter=*/true);
    obs.report().addMetric("aggregate_only_hit_rate",
                           aggregate.hitRate,
                           /*higherIsBetter=*/true);
    obs.report().addMetric("path_indexed_mean_ms", with_path.meanMs,
                           /*higherIsBetter=*/false, "ms");
    obs.report().addMetric("aggregate_only_mean_ms", aggregate.meanMs,
                           /*higherIsBetter=*/false, "ms");

    std::printf("\nOn the path-correlated workload the branch is a "
                "fair coin in aggregate but fully determined by the "
                "upstream arm; per-path sub-entries recover it.\n");

    auto registry = makeAllSuites();
    std::printf("\nFaaSChain suite BP hit rate: %s path-indexed vs %s "
                "aggregate-only\n",
                fmtPercentOrDash(suiteHitRate(*registry, true)).c_str(),
                fmtPercentOrDash(suiteHitRate(*registry, false))
                    .c_str());
    return 0;
}
