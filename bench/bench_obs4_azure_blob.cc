/**
 * @file
 * Regenerates Observation 4: remote storage is not frequently
 * updated. The analyzer recomputes, from a raw blob-access stream,
 * the statistics the paper extracts from the Azure Functions traces:
 * write fraction, read-only blob fraction, write-count distribution
 * of writable blobs, and the write-to-next-read gap distribution.
 */

#include "bench_common.hh"

#include "traces/azure_blob.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Observation 4: blob-store access analysis (Azure stand-in)");

    BlobTraceConfig config;
    auto trace = generateBlobTrace(config);
    auto stats = analyzeBlobTrace(trace);

    TextTable table;
    table.header({"Statistic", "Measured", "Paper"});
    table.row({"Accesses analyzed",
               strFormat("%llu", static_cast<unsigned long long>(
                                     stats.accesses)),
               "40M"});
    table.row({"Write fraction", fmtPercent(stats.writeFraction),
               "23%"});
    table.row({"Read-only blobs",
               fmtPercent(stats.readOnlyBlobFraction), "~67%"});
    table.row({"Writable blobs written <10 times",
               fmtPercent(stats.writableUnder10Writes), "99.9%"});
    table.row({"Write->read gap > 1 s",
               fmtPercent(stats.writeReadGapOver1s), "96%"});
    table.row({"Write->read gap > 10 s",
               fmtPercent(stats.writeReadGapOver10s), "27%"});
    table.print();

    obs.report().addMetric("write_fraction", stats.writeFraction,
                           /*higherIsBetter=*/false);
    obs.report().addMetric("read_only_blob_fraction",
                           stats.readOnlyBlobFraction,
                           /*higherIsBetter=*/true);

    std::printf("\nInterpretation: writes are rare and far from the "
                "reads that follow them, so buffering speculative "
                "writes per invocation rarely conflicts with remote "
                "storage traffic.\n");
    return 0;
}
