/**
 * @file
 * Regenerates Fig. 12: the cumulative speedup breakdown of SpecFaaS
 * — branch prediction alone, plus memoization, plus the squash
 * optimization (handler-process kill instead of container kill) —
 * averaged across the three load levels.
 *
 * As in the paper: for the implicit suites (TrainTicket, Alibaba),
 * branch prediction and memoization only work together, so they form
 * a single combined category; the FaaSChain applications without
 * data dependences (Login, Banking, FlightBook) gain nothing from
 * memoization.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

namespace {

double
avgSpeedup(const Application& app, const EngineSetup& spec)
{
    std::vector<double> speedups;
    for (double rps : loadLevels()) {
        speedups.push_back(Experiment::speedupAtLoad(
            app, baselineSetup(), spec, rps, 200));
    }
    return mean(speedups);
}

} // namespace

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Fig. 12: breakdown of SpecFaaS speedups (cumulative)");
    auto registry = makeAllSuites();
    obs.report().setConfig("requests",
                           Value(static_cast<std::int64_t>(200)));

    TextTable table;
    table.header({"Application", "Suite", "+BranchPred",
                  "+Memoization", "+SquashOpt (full)"});

    std::vector<double> full_all;
    for (const char* suite : {"FaaSChain", "TrainTicket", "Alibaba"}) {
        std::vector<double> bp_only;
        std::vector<double> bp_memo;
        std::vector<double> full;
        const bool implicit = std::string(suite) != "FaaSChain";
        for (const Application* app : registry->suite(suite)) {
            // Stage 1: branch prediction only, container-kill squash.
            EngineSetup s1 = specSetup();
            s1.spec.memoization = false;
            s1.spec.squashPolicy = SquashPolicy::ContainerKill;
            // Stage 2: + memoization, still container-kill squash.
            EngineSetup s2 = specSetup();
            s2.spec.squashPolicy = SquashPolicy::ContainerKill;
            // Stage 3: + the cheap process-kill squash (full system).
            EngineSetup s3 = specSetup();

            const double v2 = avgSpeedup(*app, s2);
            const double v3 = avgSpeedup(*app, s3);
            // Implicit workflows cannot speculate with only one of
            // the two mechanisms (§VIII-B): report the combined
            // category only.
            const double v1 = implicit ? v2 : avgSpeedup(*app, s1);
            bp_only.push_back(v1);
            bp_memo.push_back(v2);
            full.push_back(v3);
            full_all.push_back(v3);

            table.row({app->name, suite,
                       implicit ? "(combined)" : fmtRatio(v1),
                       fmtRatio(v2), fmtRatio(v3)});
        }
        table.separator();
        table.row({strFormat("%s avg", suite), "",
                   implicit ? "(combined)" : fmtRatio(mean(bp_only)),
                   fmtRatio(mean(bp_memo)), fmtRatio(mean(full))});
        table.separator();
        if (!implicit) {
            obs.report().addMetric(
                strFormat("bp_only_speedup.%s", suite), mean(bp_only),
                /*higherIsBetter=*/true, "x");
        }
        obs.report().addMetric(
            strFormat("bp_memo_speedup.%s", suite), mean(bp_memo),
            /*higherIsBetter=*/true, "x");
        obs.report().addMetric(strFormat("full_speedup.%s", suite),
                               mean(full), /*higherIsBetter=*/true,
                               "x");
    }
    table.row({"Overall avg (full)", "", "", "",
               fmtRatio(mean(full_all))});
    table.print();
    obs.report().addMetric("overall_full_speedup", mean(full_all),
                           /*higherIsBetter=*/true, "x");

    std::printf("\nPaper reference: BP alone gives ~2.9x on FaaSChain; "
                "BP+memoization 3.9x/3.5x/3.5x; full system "
                "5.0x/4.4x/4.5x (FaaSChain/TrainTicket/Alibaba).\n");
    return 0;
}
