/**
 * @file
 * Regenerates Observations 3 and 5: a static census of the deployed
 * functions' global-state behaviour and side effects.
 *
 * Observation 3: most functions do not read writable global state;
 * many do not write global state at all. Observation 5: functions
 * that do have side effects exhibit only three kinds — global-storage
 * writes, temporary local-file writes, and HTTP requests.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    banner("Observations 3 & 5: global state and side-effect census");
    auto registry = makeAllSuites();

    TextTable table;
    table.header({"Suite", "Functions", "No global read",
                  "No global write", "No side effects",
                  "Storage writes", "File writes", "HTTP"});

    std::size_t all_total = 0;
    std::size_t all_pure = 0;
    for (const char* suite : {"Alibaba", "TrainTicket", "FaaSChain"}) {
        std::size_t total = 0;
        std::size_t no_read = 0;
        std::size_t no_write = 0;
        std::size_t no_side_effects = 0;
        std::size_t storage_writers = 0;
        std::size_t file_writers = 0;
        std::size_t http = 0;
        for (const Application* app : registry->suite(suite)) {
            for (const auto& f : app->functions) {
                ++total;
                if (!f.readsGlobalState())
                    ++no_read;
                if (!f.writesGlobalState())
                    ++no_write;
                if (!f.hasSideEffects())
                    ++no_side_effects;
                bool has_file = false;
                bool has_http = false;
                for (const auto& op : f.body) {
                    if (op.kind == Op::Kind::FileWrite)
                        has_file = true;
                    if (op.kind == Op::Kind::Http)
                        has_http = true;
                }
                if (f.writesGlobalState())
                    ++storage_writers;
                if (has_file)
                    ++file_writers;
                if (has_http)
                    ++http;
            }
        }
        all_total += total;
        all_pure += no_side_effects;
        auto pct = [total](std::size_t n) {
            return fmtPercent(static_cast<double>(n) /
                              static_cast<double>(total));
        };
        table.row({suite, strFormat("%zu", total), pct(no_read),
                   pct(no_write), pct(no_side_effects),
                   strFormat("%zu", storage_writers),
                   strFormat("%zu", file_writers),
                   strFormat("%zu", http)});
    }
    table.print();

    obs.report().addMetric("pure_function_fraction",
                           static_cast<double>(all_pure) /
                               static_cast<double>(all_total),
                           /*higherIsBetter=*/true);
    std::printf("\nOverall: %.1f%% of the %zu deployed functions have "
                "no side effects at all.\n",
                100.0 * static_cast<double>(all_pure) /
                    static_cast<double>(all_total),
                all_total);
    std::printf("Paper reference: 75.8%% (TrainTicket) / 85.1%% "
                "(FaaSChain) of functions read no writable global "
                "state; 63.4%% of 110 surveyed functions have no side "
                "effects, and the rest only write storage, write temp "
                "files, or issue HTTP requests (Obs. 5).\n");
    return 0;
}
