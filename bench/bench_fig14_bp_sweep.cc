/**
 * @file
 * Regenerates Fig. 14: SpecFaaS speedup on the FaaSChain applications
 * (averaged across loads) as the branch-predictor hit rate varies.
 * As in the paper, branch outcomes are synthetic (§VII): the dataset
 * bias sets the dominant-direction probability, which the predictor's
 * steady-state hit rate tracks — 100/90/70/50%.
 */

#include "bench_common.hh"

using namespace specfaas;
using namespace specfaas::bench;

int
main(int argc, char** argv)
{
    obs::ObsSession obs(argc, argv);
    const std::size_t jobs = jobsArg(argc, argv);
    banner("Fig. 14: speedup vs branch-prediction hit rate "
           "(FaaSChain)");

    const std::vector<double> biases = {1.0, 0.9, 0.7, 0.5};

    TextTable table;
    std::vector<std::string> header = {"Application"};
    for (double b : biases)
        header.push_back(strFormat("%.0f%% hit", b * 100));
    table.header(std::move(header));

    std::map<double, std::vector<double>> per_bias;
    SuiteOptions probe_options;
    auto probe = makeAllSuites(probe_options);
    std::vector<std::string> names;
    for (const Application* app : probe->suite("FaaSChain"))
        names.push_back(app->name);

    std::vector<std::vector<std::string>> rows(
        names.size(), std::vector<std::string>());
    for (std::size_t i = 0; i < names.size(); ++i)
        rows[i].push_back(names[i]);

    // One task per (bias, app, load); registries for every bias are
    // built up front so the task lambdas can borrow the Application
    // pointers for the duration of the parallel batch.
    const std::vector<double> loads = loadLevels();
    std::vector<std::unique_ptr<ApplicationRegistry>> registries;
    std::vector<std::function<double(SimContext&)>> tasks;
    for (double bias : biases) {
        SuiteOptions options;
        options.faasChain.branchBias = bias;
        registries.push_back(makeAllSuites(options));
        for (const Application* app :
             registries.back()->suite("FaaSChain")) {
            for (double rps : loads) {
                tasks.push_back([app, rps](SimContext& context) {
                    EngineSetup base = baselineSetup();
                    // The sweep measures prediction quality directly,
                    // so the dead band (which would refuse 50/50
                    // branches) is off.
                    EngineSetup spec = specSetup();
                    spec.spec.bpDeadBand = 0.0;
                    base.context = &context;
                    spec.context = &context;
                    return Experiment::speedupAtLoad(*app, base, spec,
                                                     rps, 200);
                });
            }
        }
    }
    const std::vector<double> results =
        runSimTasks<double>(jobs, std::move(tasks));

    std::size_t cursor = 0;
    for (double bias : biases) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            std::vector<double> speedups;
            for (std::size_t l = 0; l < loads.size(); ++l)
                speedups.push_back(results[cursor++]);
            const double avg = mean(speedups);
            per_bias[bias].push_back(avg);
            rows[i].push_back(fmtRatio(avg));
        }
    }
    for (auto& row : rows)
        table.row(std::move(row));
    table.separator();
    std::vector<std::string> avg_row = {"Average"};
    double perfect = 0.0;
    for (double bias : biases) {
        const double avg = mean(per_bias[bias]);
        if (bias == 1.0)
            perfect = avg;
        avg_row.push_back(fmtRatio(avg));
        obs.report().addMetric(
            strFormat("avg_speedup.hit%.0f", bias * 100), avg,
            /*higherIsBetter=*/true, "x");
    }
    table.row(std::move(avg_row));
    table.print();

    const double at90 = mean(per_bias[0.9]);
    std::printf("\nDrop from perfect to 90%% hit rate: %.1f%% "
                "(paper: 5.7%%). Speedups then fall substantially "
                "toward the 50%% hit rate, as in the paper.\n",
                100.0 * (perfect - at90) / perfect);
    return 0;
}
