#include "spec_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/sim_context.hh"

namespace specfaas {

namespace {

/**
 * Predictor key for an explicit branch node. Branch nodes use even
 * site ids and call sites odd ones, so the two families can never
 * collide within a function.
 */
std::uint64_t
branchKey(Symbol function, FlowIndex node)
{
    return BranchPredictor::branchKeyOf(
        function.nameHash(), static_cast<std::uint64_t>(node) * 2);
}

/** Predictor key for an implicit call site. */
std::uint64_t
callKey(Symbol function, std::size_t call_site)
{
    return BranchPredictor::branchKeyOf(
        function.nameHash(),
        static_cast<std::uint64_t>(call_site) * 2 + 1);
}

/** Path-hash step for entering a call site (caller@site). */
std::uint64_t
callSiteHash(Symbol function, std::size_t call_site)
{
    return function.nameHash() ^
           ((static_cast<std::uint64_t>(call_site) + 1) *
            0x9e3779b97f4a7c15ull);
}

/** Successor position at the same nesting level. */
OrderKey
increment(OrderKey key)
{
    SPECFAAS_ASSERT(!key.empty(), "incrementing empty order key");
    key.back() += 1;
    return key;
}

} // namespace

SpecController::SpecController(Simulation& sim, Cluster& cluster,
                               KvStore& store,
                               const FunctionRegistry& registry,
                               SpecConfig config)
    : sim_(sim),
      cluster_(cluster),
      store_(store),
      registry_(registry),
      config_(config),
      interp_(sim, cluster, *this),
      launcher_(sim, cluster, registry, interp_),
      profiler_(sim.context().profiler()),
      bp_(config.bpDeadBand, config.bpMinSamples),
      memo_(config.memoCapacity),
      minimizer_(config.stallThreshold)
{
    memo_.setProfiler(&profiler_);
}

SpecController::~SpecController()
{
    // Aggregate into the process-global registry so a bench binary
    // can print totals across every platform it constructed.
    counters_.mergeInto(sim_.context().counters());
}

SpecStats
SpecController::stats() const
{
    SpecStats s;
    s.speculativeLaunches = ctrSpeculativeLaunches_;
    s.squashes = ctrSquashes_;
    s.controlMispredicts = ctrControlMispredicts_;
    s.dataMispredicts = ctrDataMispredicts_;
    s.bufferViolations = ctrBufferViolations_;
    s.stalledReads = ctrStalledReads_;
    s.deferredSideEffects = ctrDeferredSideEffects_;
    s.commits = ctrCommits_;
    s.pureSkips = ctrPureSkips_;
    return s;
}

const FlowProgram&
SpecController::compiled(const Application& app)
{
    auto it = programs_.find(&app);
    if (it == programs_.end())
        it = programs_.emplace(&app, compileWorkflow(app)).first;
    return it->second;
}

SpecController::SpecInvocation*
SpecController::find(InvocationId id)
{
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : it->second;
}

SpecController::SpecInvocation&
SpecController::invocationOf(const InstancePtr& inst)
{
    SpecInvocation* inv = find(inst->invocation);
    SPECFAAS_ASSERT(inv != nullptr, "instance %s of dead invocation",
                    inst->label().c_str());
    return *inv;
}

SpecController::Slot*
SpecController::slotOf(const InstancePtr& inst)
{
    // The instance carries its slot's generation-tagged handle; a
    // squashed/committed slot bumped the generation, so the lookup
    // misses exactly when the old byInstance map had no entry.
    return slotArena_.get(inst->slotHandle);
}

std::uint32_t
SpecController::effectiveSpecDepth() const
{
    std::uint32_t busy = 0;
    std::uint32_t total = 0;
    for (const auto& n : cluster_.nodes()) {
        busy += n->busyCores();
        total += n->cores();
    }
    const double util =
        total == 0 ? 0.0
                   : static_cast<double>(busy) / static_cast<double>(total);
    return util > config_.loadThrottleUtilization
               ? config_.throttledSpecDepth
               : config_.maxSpecDepth;
}

std::size_t
SpecController::liveSpeculativeSlots(const SpecInvocation& inv) const
{
    // Introspection-only scan; hot paths read inv.specLive. Every
    // call doubles as a drift check of the incremental counter.
    std::size_t n = 0;
    for (const auto& [order, h] : inv.slots) {
        (void)order;
        const Slot* slot = slotArena_.get(h);
        if (slot != nullptr && slot->launchedSpeculatively &&
            !slot->completed)
            ++n;
    }
    SPECFAAS_ASSERT(n == inv.specLive,
                    "specLive counter drift: scan %zu counter %zu", n,
                    inv.specLive);
    return n;
}

std::size_t
SpecController::speculativeInFlight() const
{
    std::size_t n = 0;
    for (const auto& [id, inv] : live_) {
        (void)id;
        n += liveSpeculativeSlots(*inv);
    }
    return n;
}

void
SpecController::invoke(const Application& app, Value input,
                       ResultCallback done)
{
    OBS_ZONE(profiler_, "spec/invoke");
    const InvocationId id = sim_.context().nextInvocationId();

    // Admission control, as in the baseline (§II-B front-end).
    if (cluster_.controller().queueLength() >
        cluster_.config().admissionQueueLimit) {
        InvocationResult rejected;
        rejected.id = id;
        rejected.app = app.name;
        rejected.submittedAt = sim_.now();
        rejected.completedAt = sim_.now();
        rejected.rejected = true;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kSpec, "reject", sim_.now(),
                       obs::kControlPlanePid, id,
                       {{"app", app.name}});
        }
        done(std::move(rejected));
        return;
    }

    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kSpec, "invoke", sim_.now(),
                   obs::kControlPlanePid, id, {{"app", app.name}});
    }

    SpecInvocation* inv = invPool_.create();
    inv->app = &app;
    inv->done = std::move(done);
    inv->result.id = id;
    inv->result.app = app.name;
    inv->result.submittedAt = sim_.now();
    inv->buffer = std::make_unique<DataBuffer>(store_);
    SpecInvocation& ref = *inv;
    live_[id] = inv;

    if (app.type == WorkflowType::Explicit) {
        ref.program = &compiled(app);
        Frontier f;
        f.flowIdx = ref.program->entry;
        f.carry = std::move(input);
        f.source = InputSource::Actual;
        f.order = OrderKey{0};
        f.pathHash = pathhash::kEmpty;
        walk(ref, std::move(f));
    } else {
        // Implicit: launch the root function; everything else is
        // driven by its calls and the learned sequence table.
        const SlotHandle h = slotArena_.create();
        Slot& slot = slotArena_.at(h);
        slot.inv = &ref;
        slot.self = h;
        slot.function = Symbol(app.rootFunction);
        slot.order = OrderKey{0};
        slot.input = input;
        slot.pathHash = pathhash::kEmpty;
        slot.nonSpeculative = true;

        LaunchSpec spec;
        spec.function = slot.function;
        spec.input = std::move(input);
        spec.invocation = id;
        spec.order = slot.order;
        spec.preOverhead = cluster_.config().platformOverhead;
        spec.controllerService = cluster_.config().specLaunchService;
        slot.inst = launcher_.launch(std::move(spec));
        slot.inst->pathHash = slot.pathHash;
        slot.inst->slotHandle = h;

        ref.buffer->addColumn(slot.inst->id, slot.order);
        auto [it, ok] = ref.slots.emplace(slot.order, h);
        (void)it;
        SPECFAAS_ASSERT(ok, "root slot collision");
        speculateCallees(ref, slot);
    }
}

// ---------------------------------------------------------------------
// Explicit-workflow walk
// ---------------------------------------------------------------------

SpecController::Slot&
SpecController::launchSlot(SpecInvocation& inv, Frontier& f,
                           const FlowNode& node)
{
    const bool speculative =
        f.afterUnresolvedBranch || f.source != InputSource::Actual;

    const SlotHandle h = slotArena_.create();
    Slot& slot = slotArena_.at(h);
    slot.inv = &inv;
    slot.self = h;
    slot.function = node.function;
    slot.order = f.order;
    slot.flowNode = f.flowIdx;
    slot.input = f.carry;
    slot.inputSource = f.source;
    slot.carryProducer = f.carryProducer;
    slot.inputValidated = f.source == InputSource::Actual;
    slot.launchedSpeculatively = speculative;
    slot.pathHash = f.pathHash;
    slot.isBranch = node.kind == FlowNode::Kind::Branch;

    const bool first = inv.slots.empty() && inv.result.functionsExecuted == 0;

    LaunchSpec spec;
    spec.function = node.function;
    spec.input = f.carry;
    spec.invocation = inv.result.id;
    spec.order = f.order;
    spec.flowNode = f.flowIdx;
    spec.preOverhead = first ? cluster_.config().platformOverhead
                             : cluster_.config().sequenceTableDispatch;
    if (!first)
        inv.result.transferOverhead +=
            cluster_.config().sequenceTableDispatch;
    spec.controllerService = cluster_.config().specLaunchService;
    if (inv.containerKillDebt > 0) {
        // The warm container this launch would have used was
        // destroyed by a container-kill squash; wait for a
        // replacement environment (§VI).
        spec.preOverhead += cluster_.config().containerRespawnLatency;
        --inv.containerKillDebt;
    }
    spec.controlSpeculative = f.afterUnresolvedBranch;
    spec.dataSpeculative = f.source != InputSource::Actual;
    spec.inputSource = f.source;
    slot.inst = launcher_.launch(std::move(spec));
    slot.inst->pathHash = f.pathHash;
    slot.inst->slotHandle = h;

    inv.buffer->addColumn(slot.inst->id, slot.order);

    if (speculative) {
        ++ctrSpeculativeLaunches_;
        ++inv.result.speculativeLaunches;
        ++inv.specLive;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(
                obs::cat::kSpec, "speculative-launch", sim_.now(),
                obs::kControlPlanePid, inv.result.id,
                {{"function", node.function.str()},
                 {"order", orderKeyToString(f.order)},
                 {"control", f.afterUnresolvedBranch ? "1" : "0",
                  true},
                 {"data",
                  f.source != InputSource::Actual ? "1" : "0",
                  true}});
        }
    }

    auto [it, ok] = inv.slots.emplace(slot.order, h);
    (void)it;
    SPECFAAS_ASSERT(ok, "slot collision at %s",
                    orderKeyToString(f.order).c_str());
    if (slot.isBranch)
        inv.openBranches.insert(slot.order);
    speculateCallees(inv, slot);
    maybePromote(inv, slot);
    return slot;
}

void
SpecController::walk(SpecInvocation& inv, Frontier f)
{
    OBS_ZONE(profiler_, "spec/walk");
    while (!inv.finished) {
        // A predicted carry may already be resolved: its producer
        // committed (validation implied) or completed with exactly
        // this value. Rewind/restart frontiers hit this after their
        // producer finished.
        if (f.source != InputSource::Actual && !f.carryProducer.empty()) {
            auto pit = inv.slots.find(f.carryProducer);
            const Slot* producer = pit == inv.slots.end()
                                       ? nullptr
                                       : slotArena_.get(pit->second);
            if (producer == nullptr ||
                (producer->completed && producer->output == f.carry)) {
                f.source = InputSource::Actual;
                f.carryProducer.clear();
            }
        }
        if (f.flowIdx == kFlowNone) {
            // End of the (possibly predicted) path: the carry is the
            // client response once everything commits.
            inv.responseValue = f.carry;
            inv.responseSeen = true;
            tryCommit(inv);
            return;
        }
        const FlowNode& node = inv.program->node(f.flowIdx);
        switch (node.kind) {
          case FlowNode::Kind::Func: {
            // Already committed at this coordinate: a rewind walked
            // back over irrevocable work. Replay the committed
            // outcome; re-launching would double-apply its effects.
            if (auto cit = inv.committed.find(f.order);
                cit != inv.committed.end()) {
                const auto& cn = cit->second;
                SPECFAAS_ASSERT(cn.function == node.function &&
                                    f.source == InputSource::Actual &&
                                    f.carry == cn.input,
                                "committed-replay mismatch at %s",
                                orderKeyToString(f.order).c_str());
                f.carry = cn.output;
                f.flowIdx = node.next;
                f.order = increment(f.order);
                f.pathHash =
                    pathhash::extend(f.pathHash, node.function);
                // Committed ⇒ every earlier branch is resolved.
                f.afterUnresolvedBranch = false;
                continue;
            }

            const FunctionDef& def = registry_.get(node.function);

            // `non-speculative` annotation (§VI): don't launch until
            // every predecessor has committed.
            if (def.nonSpeculativeAnnotation && !inv.slots.empty() &&
                orderKeyLess(inv.slots.begin()->first, f.order)) {
                inv.depthBlocked.push_back(std::move(f));
                return;
            }

            // Pure-function fast path (§V-B): skip execution on a
            // memo hit for an annotated pure function.
            if (config_.speculation && config_.memoization &&
                config_.pureFunctionSkip && def.pureAnnotation) {
                const MemoRow* row =
                    memo_.table(node.function).lookup(f.carry);
                if (row != nullptr) {
                    const SlotHandle sh = slotArena_.create();
                    Slot& slot = slotArena_.at(sh);
                    slot.inv = &inv;
                    slot.self = sh;
                    slot.function = node.function;
                    slot.order = f.order;
                    slot.flowNode = f.flowIdx;
                    slot.input = f.carry;
                    slot.inputSource = f.source;
                    slot.carryProducer = f.carryProducer;
                    slot.inputValidated =
                        f.source == InputSource::Actual;
                    slot.completed = true;
                    slot.skippedPure = true;
                    slot.output = row->output;
                    slot.pathHash = f.pathHash;
                    inv.slots.emplace(slot.order, sh);
                    ++ctrPureSkips_;
                    ++inv.result.memoHits;
                    if (auto& tr = sim_.context().trace(); tr.enabled()) {
                        tr.instant(obs::cat::kSpec, "pure-skip",
                                   sim_.now(), obs::kControlPlanePid,
                                   inv.result.id,
                                   {{"function",
                                     node.function.str()}});
                    }
                    // Purity: input fully determines output, so the
                    // carry keeps its source and producer.
                    f.carry = row->output;
                    f.flowIdx = node.next;
                    f.order = increment(f.order);
                    f.pathHash =
                        pathhash::extend(f.pathHash, node.function);
                    tryCommit(inv);
                    continue;
                }
            }

            const bool speculative =
                f.afterUnresolvedBranch ||
                f.source != InputSource::Actual;
            if (speculative && inv.specLive >= effectiveSpecDepth()) {
                inv.depthBlocked.push_back(std::move(f));
                return;
            }

            Slot& slot = launchSlot(inv, f, node);
            const std::uint64_t next_path =
                pathhash::extend(f.pathHash, node.function);

            if (config_.speculation && config_.memoization) {
                // An output already observed during this invocation
                // (a rewind re-executing the function) beats the
                // memo table: the table only updates at commit and
                // would replay a stale prediction forever.
                const Value* predicted = nullptr;
                auto hint = inv.outputHints.find(f.order);
                if (hint != inv.outputHints.end() &&
                    hint->second.function == node.function &&
                    hint->second.input == slot.input) {
                    predicted = &hint->second.output;
                } else {
                    const MemoRow* row =
                        memo_.table(node.function).lookup(slot.input);
                    if (row != nullptr)
                        predicted = &row->output;
                }
                if (auto& tr = sim_.context().trace(); tr.enabled()) {
                    tr.instant(obs::cat::kSpec,
                               predicted != nullptr ? "memo-hit"
                                                    : "memo-miss",
                               sim_.now(), obs::kControlPlanePid,
                               inv.result.id,
                               {{"function", node.function.str()}});
                }
                if (predicted != nullptr) {
                    // Data speculation: feed the memoized output to
                    // the successor before this function completes.
                    slot.outputFedForward = true;
                    slot.memoPredictedOutput = *predicted;
                    ++inv.result.memoHits;
                    f.carry = *predicted;
                    f.source = InputSource::Memoized;
                    f.carryProducer = slot.order;
                    f.flowIdx = node.next;
                    f.order = increment(f.order);
                    f.pathHash = next_path;
                    continue;
                }
            }

            // No memoized output: the walk waits for this function.
            Frontier blocked = f;
            blocked.flowIdx = node.next;
            blocked.order = increment(f.order);
            blocked.pathHash = next_path;
            inv.blocked.emplace(slot.order, std::move(blocked));
            return;
          }
          case FlowNode::Kind::Branch: {
            // Committed branch: its direction is settled — follow it
            // without re-launching (see the Func case above).
            if (auto cit = inv.committed.find(f.order);
                cit != inv.committed.end()) {
                const auto& cn = cit->second;
                SPECFAAS_ASSERT(cn.function == node.function &&
                                    f.source == InputSource::Actual &&
                                    f.carry == cn.input,
                                "committed-replay mismatch at %s",
                                orderKeyToString(f.order).c_str());
                // Branch targets inherit the branch input: the carry
                // is unchanged.
                f.flowIdx = cn.actualTarget;
                f.order = increment(f.order);
                f.pathHash =
                    pathhash::extend(f.pathHash, node.function);
                f.afterUnresolvedBranch = false;
                continue;
            }

            if (registry_.get(node.function).nonSpeculativeAnnotation &&
                !inv.slots.empty() &&
                orderKeyLess(inv.slots.begin()->first, f.order)) {
                inv.depthBlocked.push_back(std::move(f));
                return;
            }
            const bool speculative =
                f.afterUnresolvedBranch ||
                f.source != InputSource::Actual;
            if (speculative && inv.specLive >= effectiveSpecDepth()) {
                inv.depthBlocked.push_back(std::move(f));
                return;
            }

            Slot& slot = launchSlot(inv, f, node);
            const std::uint64_t next_path =
                pathhash::extend(f.pathHash, node.function);

            // An outcome already observed during this invocation (a
            // rewind re-executing the branch) beats the predictor.
            auto hint = inv.branchHints.find(f.order);
            if (hint != inv.branchHints.end() &&
                hint->second.function == node.function &&
                hint->second.input == slot.input) {
                slot.predictionMade = true;
                slot.predictedTarget = hint->second.target;
                if (auto& tr = sim_.context().trace(); tr.enabled()) {
                    tr.instant(obs::cat::kSpec, "branch-predict",
                               sim_.now(), obs::kControlPlanePid,
                               inv.result.id,
                               {{"function", node.function.str()},
                                {"source", "replay-hint"}});
                }
                f.flowIdx = slot.predictedTarget;
                f.afterUnresolvedBranch = true;
                f.order = increment(f.order);
                f.pathHash = next_path;
                continue;
            }

            std::optional<BranchPrediction> pred;
            if (config_.speculation && config_.branchPrediction) {
                pred = bp_.predict(branchKey(node.function, f.flowIdx),
                                   config_.bpPathHistory
                                       ? f.pathHash
                                       : pathhash::kEmpty);
            }
            if (pred && pred->target < node.targets.size()) {
                slot.predictionMade = true;
                slot.predictedTarget = node.targets[pred->target];
                if (auto& tr = sim_.context().trace(); tr.enabled()) {
                    tr.instant(
                        obs::cat::kSpec, "branch-predict", sim_.now(),
                        obs::kControlPlanePid, inv.result.id,
                        {{"function", node.function.str()},
                         {"source", "predictor"},
                         {"target", std::to_string(pred->target),
                          true},
                         {"probability",
                          strFormat("%.3f", pred->probability),
                          true}});
                }
                // Branch targets inherit the branch's input (§II-A):
                // carry, source and producer stay unchanged.
                f.flowIdx = slot.predictedTarget;
                f.afterUnresolvedBranch = true;
                f.order = increment(f.order);
                f.pathHash = next_path;
                continue;
            }

            // No usable prediction: wait for the branch to resolve.
            Frontier blocked = f;
            blocked.order = increment(f.order);
            blocked.pathHash = next_path;
            inv.blocked.emplace(slot.order, std::move(blocked));
            return;
          }
          case FlowNode::Kind::Fork: {
            // Loops can bring execution back to the same fork while a
            // previous iteration's join is still collecting; park
            // until it dissolves (resumed on commits).
            if (inv.joins.count(node.join)) {
                inv.depthBlocked.push_back(std::move(f));
                return;
            }
            inv.forks.emplace(f.order, ForkMeta{f});
            auto& js = inv.joins[node.join];
            js.pending = node.targets.size();
            js.outputs.assign(node.targets.size(), Value());
            for (std::size_t arm = 0; arm < node.targets.size(); ++arm) {
                Frontier af = f;
                af.flowIdx = node.targets[arm];
                af.order = f.order;
                af.order.push_back(static_cast<std::int32_t>(arm));
                af.order.push_back(0);
                walk(inv, std::move(af));
                if (inv.finished)
                    return;
            }
            return;
          }
          case FlowNode::Kind::Join: {
            // Only fully resolved arm outputs are deposited; an arm
            // arriving with a predicted carry parks until its
            // producer completes and re-walks the arm with the
            // actual value.
            if (f.source != InputSource::Actual) {
                SPECFAAS_ASSERT(!f.carryProducer.empty(),
                                "predicted join carry w/o producer");
                auto [bit, inserted] =
                    inv.blocked.emplace(f.carryProducer, f);
                (void)bit;
                SPECFAAS_ASSERT(inserted,
                                "double block on one producer");
                return;
            }
            auto it = inv.joins.find(f.flowIdx);
            SPECFAAS_ASSERT(it != inv.joins.end(), "join without fork");
            auto& js = it->second;
            SPECFAAS_ASSERT(f.order.size() >= 2, "join from base level");
            const auto arm =
                static_cast<std::size_t>(f.order[f.order.size() - 2]);
            SPECFAAS_ASSERT(arm < js.outputs.size(), "bad join arm");
            js.outputs[arm] = f.carry;
            SPECFAAS_ASSERT(js.pending > 0, "join underflow");
            if (--js.pending > 0)
                return;
            Value all = Value(std::move(js.outputs));
            inv.joins.erase(it);
            OrderKey base(f.order.begin(), f.order.end() - 2);
            f.flowIdx = node.next;
            f.carry = std::move(all);
            f.source = InputSource::Actual;
            f.carryProducer.clear();
            f.order = increment(std::move(base));
            continue;
          }
        }
    }
}

void
SpecController::resumeBlockedOn(SpecInvocation& inv, const Slot& slot)
{
    auto it = inv.blocked.find(slot.order);
    if (it == inv.blocked.end())
        return;
    Frontier f = std::move(it->second);
    inv.blocked.erase(it);

    if (slot.isBranch) {
        f.flowIdx = slot.actualTarget;
        f.carry = slot.input;
        f.source = slot.inputValidated ? InputSource::Actual
                                       : slot.inputSource;
        f.carryProducer = slot.inputValidated ? OrderKey{}
                                              : slot.carryProducer;
    } else {
        // flowIdx was recorded at block time (the Func's successor).
        f.carry = slot.output;
        f.source = InputSource::Actual;
        f.carryProducer.clear();
    }
    f.afterUnresolvedBranch = inv.openBranches.anyBefore(f.order);
    walk(inv, std::move(f));
}

void
SpecController::rewindExplicit(SpecInvocation& inv, Frontier f)
{
    walk(inv, std::move(f));
}

bool
SpecController::adjustRewindToForkBase(SpecInvocation& inv,
                                       OrderKey& from, Frontier& f)
{
    // A squash range starting inside a fork arm also kills the
    // sibling arms (everything later in program order dies), so the
    // rewind must restart the whole fork, not just this arm.
    if (from.size() <= 1)
        return false;
    const OrderKey base{from.front()};
    auto fit = inv.forks.find(base);
    if (fit == inv.forks.end())
        return false; // implicit-callee extension, not a fork region
    f = fit->second.restart;
    from = base;
    return true;
}

// ---------------------------------------------------------------------
// Squashing
// ---------------------------------------------------------------------

std::size_t
SpecController::squashRange(SpecInvocation& inv,
                            const OrderKey& from_ref,
                            SquashReason reason)
{
    OBS_ZONE(profiler_, "spec/squash");
    // Callers may pass a victim slot's own order; that slot is
    // destroyed below, so work on a copy.
    const OrderKey from = from_ref;
    // Cascade linkage: a squash issued while this one is being
    // processed (e.g. by a relaunch below) records this one as its
    // parent, so the trace shows recursive squashes as a chain.
    const std::uint64_t parentSquash = activeSquashId_;
    const std::uint64_t squashId = nextSquashId_++;
    activeSquashId_ = squashId;

    struct Relaunch
    {
        InstancePtr caller;
        std::size_t callSite;
        Symbol function;
        Value input;
        ValueCallback returnTo;
    };
    std::vector<Relaunch> relaunches;

    // Drop all speculative-callee bookkeeping pointing into the
    // squashed region in one compacting pass. Every pendingCallees
    // entry targets a live, not-yet-adopted slot, so the entries with
    // order >= from are exactly those whose slot dies below — this
    // replaces the old per-victim rescan of the whole map (quadratic
    // in deep cascades). The relaunches issued at the end of this
    // function may add fresh entries; they come after the purge in
    // event order, exactly as before.
    inv.pendingCallees.eraseIf([&from](const auto& e) {
        return !orderKeyLess(e.second, from);
    });

    // Collect victims in reverse program order. The handle list lives
    // in the invocation's scratch arena (trivially copyable payload,
    // reclaimed with the record); squash cascades re-enter this
    // function, so the arena is never reset here.
    const auto firstVictim = inv.slots.lower_bound(from);
    const std::size_t nVictims =
        static_cast<std::size_t>(inv.slots.end() - firstVictim);
    SlotHandle* victims =
        inv.scratch.allocArray<SlotHandle>(nVictims);
    {
        std::size_t i = 0;
        for (auto it = firstVictim; it != inv.slots.end(); ++it)
            victims[i++] = it->second;
    }

    for (std::size_t vi = nVictims; vi-- > 0;) {
        Slot& s = slotAt(victims[vi]);

        // An adopted callee whose caller survives is blocking that
        // caller at the call site: it must be relaunched with its
        // (already validated) arguments.
        if (s.isImplicitCallee && s.adopted && s.returnTo) {
            Slot* caller = slotArena_.get(s.callerSlot);
            if (caller != nullptr &&
                orderKeyLess(caller->order, from) && caller->inst &&
                caller->inst->state != InstanceState::Dead) {
                relaunches.push_back(Relaunch{caller->inst, s.callSite,
                                              s.function, s.input,
                                              std::move(s.returnTo)});
            }
        }

        if (s.inst) {
            if (inv.buffer->hasColumn(s.inst->id))
                inv.buffer->invalidateColumn(s.inst->id);
            // Reason and cascade id first: the interpreter's squash
            // trace events carry them.
            s.inst->squashReason = reason;
            s.inst->squashId = squashId;
            interp_.squash(s.inst, config_.squashPolicy);
            if (config_.squashPolicy == SquashPolicy::ContainerKill)
                ++inv.containerKillDebt;
        }

        if (s.launchedSpeculatively && !s.completed) {
            SPECFAAS_ASSERT(inv.specLive > 0, "specLive underflow");
            --inv.specLive;
        }

        ++ctrSquashes_;
        ++inv.result.squashes;
        // Reverse order: every removal must pop the current suffix
        // tail (no element shifting). popBackExpect asserts exactly
        // that — nothing in this loop (interpreter squash, container
        // release) re-enters the pipeline map, so a violation means a
        // new reentrant path and must be caught, not absorbed.
        inv.slots.popBackExpect(s.order);
        slotArena_.destroy(victims[vi]);
    }
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        std::vector<obs::TraceArg> args = {
            {"reason", squashReasonName(reason)},
            {"from", orderKeyToString(from)},
            {"victims", std::to_string(nVictims), true},
            {"id", std::to_string(squashId), true}};
        if (parentSquash != 0)
            args.push_back(
                {"parent", std::to_string(parentSquash), true});
        tr.instant(obs::cat::kSpec, "squash", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   std::move(args));
    }
    SPECFAAS_ASSERT(inv.result.squashes < 20000,
                    "runaway squash loop:\n%s", debugDump().c_str());

    // Purge walk bookkeeping inside the squashed region: suffix
    // truncations over the order-indexed structures.
    inv.blocked.eraseFrom(from);
    inv.depthBlocked.remove_if([&from](const Frontier& f) {
        return !orderKeyLess(f.order, from);
    });
    for (auto it = inv.forks.lower_bound(from); it != inv.forks.end();
         ++it) {
        const FlowNode& fork =
            inv.program->node(it->second.restart.flowIdx);
        inv.joins.erase(fork.join);
    }
    inv.forks.eraseFrom(from);
    inv.openBranches.eraseFrom(from);
    inv.responseSeen = false;

    for (auto& r : relaunches) {
        launchCalleeSlot(inv, r.caller, r.callSite, r.function,
                         std::move(r.input), InputSource::Actual, false,
                         std::move(r.returnTo));
    }
    activeSquashId_ = parentSquash;
    return nVictims;
}

// ---------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------

void
SpecController::crashed(const InstancePtr& inst, FaultKind kind)
{
    auto* faults = sim_.faultInjector();
    SPECFAAS_ASSERT(faults != nullptr, "crash without an injector");
    if (inst->state == InstanceState::Dead)
        return;
    SpecInvocation* pinv = find(inst->invocation);
    if (pinv == nullptr || pinv->finished)
        return;
    SpecInvocation& inv = *pinv;
    Slot* slot = slotOf(inst);
    if (slot == nullptr)
        return; // a squash already removed this coordinate

    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "crash", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"kind", faultKindName(kind)},
                    {"function", inst->def->name},
                    {"order", orderKeyToString(inst->order)}});
    }

    // Kill the handler immediately — no parked read or deferred side
    // effect may revive a crashed incarnation — but leave the slot in
    // place: the pipeline-level squash and re-walk run only after the
    // retry backoff, from recoverFromCrash.
    inst->squashReason = SquashReason::Fault;
    interp_.squash(inst, SquashPolicy::ContainerKill);

    const Symbol function = slot->function;
    const std::uint32_t attempt = ++inv.faultAttempts[slot->order];
    // Only a non-speculative slot can exhaust its retries: giving up
    // on a speculative coordinate could fail the request on work the
    // committed path never needed.
    if (slot->nonSpeculative && attempt >= faults->plan().maxAttempts) {
        faults->noteGaveUp(function.str());
        failInvocation(inv, function);
        return;
    }
    faults->noteRetry(function.str(), attempt);
    sim_.events().schedule(faults->backoffDelay(attempt),
                           [this, id = inst->invocation,
                            h = slot->self]() {
                               recoverFromCrash(id, h);
                           });
}

void
SpecController::recoverFromCrash(InvocationId id, SlotHandle h)
{
    SpecInvocation* pinv = find(id);
    if (pinv == nullptr || pinv->finished)
        return;
    SpecInvocation& inv = *pinv;
    Slot* pslot = slotArena_.get(h);
    if (pslot == nullptr)
        return; // a wider squash already covered this coordinate
    Slot& slot = *pslot;

    if (slot.flowNode != kFlowNone) {
        // Explicit flow node: squash from the crash coordinate and
        // re-walk, exactly like a misprediction rewind (Figure 6).
        Frontier f;
        f.flowIdx = slot.flowNode;
        f.carry = slot.input;
        f.source = slot.inputValidated ? InputSource::Actual
                                       : slot.inputSource;
        f.carryProducer =
            slot.inputValidated ? OrderKey{} : slot.carryProducer;
        f.order = slot.order;
        f.pathHash = slot.pathHash;
        OrderKey from = slot.order;
        adjustRewindToForkBase(inv, from, f);
        if (inv.openBranches.anyBefore(from))
            f.afterUnresolvedBranch = true;
        squashRange(inv, from, SquashReason::Fault);
        rewindExplicit(inv, std::move(f));
    } else if (!slot.isImplicitCallee) {
        // Implicit root: everything hangs off it, so everything dies
        // with it; relaunch the root exactly as invoke() did.
        Value input = slot.input;
        const Application* app = inv.app;
        squashRange(inv, OrderKey{0}, SquashReason::Fault);

        const SlotHandle rh = slotArena_.create();
        Slot& root = slotArena_.at(rh);
        root.inv = &inv;
        root.self = rh;
        root.function = Symbol(app->rootFunction);
        root.order = OrderKey{0};
        root.input = input;
        root.pathHash = pathhash::kEmpty;
        root.nonSpeculative = true;

        LaunchSpec spec;
        spec.function = root.function;
        spec.input = std::move(input);
        spec.invocation = id;
        spec.order = root.order;
        spec.preOverhead = cluster_.config().platformOverhead;
        spec.controllerService = cluster_.config().specLaunchService;
        root.inst = launcher_.launch(std::move(spec));
        root.inst->pathHash = root.pathHash;
        root.inst->slotHandle = rh;

        inv.buffer->addColumn(root.inst->id, root.order);
        auto [rit, ok] = inv.slots.emplace(root.order, rh);
        (void)rit;
        SPECFAAS_ASSERT(ok, "root slot collision on retry");
        speculateCallees(inv, root);
    } else {
        // Implicit callee: the range squash itself relaunches it (and
        // any adopted descendants) under its surviving caller.
        const OrderKey from = slot.order;
        squashRange(inv, from, SquashReason::Fault);
    }
    resumeParkedReads(inv);
    tryCommit(inv);
}

void
SpecController::failInvocation(SpecInvocation& inv, Symbol function)
{
    // Retries exhausted at a non-speculative coordinate: the request
    // fails. Committed work stays committed (as on a real platform);
    // everything still in the pipeline is squashed unconditionally.
    squashRange(inv, OrderKey{}, SquashReason::Fault);
    inv.blocked.clear();
    inv.depthBlocked.clear();
    inv.joins.clear();
    inv.forks.clear();
    inv.pendingCallees.clear();
    inv.parkedReads.clear();
    inv.responseValue = FaultInjector::errorResponse(function.str());
    inv.responseSeen = true;
    finish(inv);
}

void
SpecController::onNodeFailure(NodeId node)
{
    std::vector<InvocationId> ids;
    ids.reserve(live_.size());
    for (const auto& [id, inv] : live_) {
        (void)inv;
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (const InvocationId id : ids) {
        while (true) {
            SpecInvocation* inv = find(id);
            if (inv == nullptr || inv->finished)
                break;
            // Lowest live coordinate on the node first; each crash
            // marks its victim Dead, so the rescan terminates.
            InstancePtr victim;
            for (const auto& [order, sh] : inv->slots) {
                (void)order;
                const Slot& s = slotAt(sh);
                if (!s.inst ||
                    s.inst->state == InstanceState::Dead ||
                    s.inst->state == InstanceState::Committed ||
                    s.inst->container == nullptr ||
                    s.inst->node != node)
                    continue;
                victim = s.inst;
                break;
            }
            if (!victim)
                break;
            crashed(victim, FaultKind::NodeFailure);
        }
    }
}

// ---------------------------------------------------------------------
// Completion handling
// ---------------------------------------------------------------------

void
SpecController::completed(const InstancePtr& inst, Value output)
{
    OBS_ZONE(profiler_, "spec/completed");
    SpecInvocation& inv = invocationOf(inst);

    if (inst->container != nullptr) {
        cluster_.containers().release(*inst->container);
        inst->container = nullptr;
    }

    Slot* slot = slotOf(inst);
    SPECFAAS_ASSERT(slot != nullptr, "completion of unslotted %s",
                    inst->label().c_str());
    slot->completed = true;
    slot->output = std::move(output);
    if (slot->launchedSpeculatively) {
        SPECFAAS_ASSERT(inv.specLive > 0, "specLive underflow");
        --inv.specLive;
    }
    if (slot->isBranch)
        inv.openBranches.erase(slot->order);

    // Speculative callees spawned for call sites this function never
    // reached are garbage: the call prediction was wrong. Entries are
    // keyed (caller id, call site), so one caller's entries are a
    // contiguous run — no full-map scan.
    std::vector<OrderKey> garbage;
    for (auto pit = inv.pendingCallees.lower_bound({inst->id, 0});
         pit != inv.pendingCallees.end() && pit->first.first == inst->id;
         ++pit) {
        garbage.push_back(pit->second);
    }
    for (const auto& order : garbage) {
        auto git = inv.slots.find(order);
        if (git == inv.slots.end())
            continue;
        const Slot& g = slotAt(git->second);
        if (g.callPredictionMade)
            bp_.notePrediction(false);
        ++ctrControlMispredicts_;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kSpec, "validate", sim_.now(),
                       obs::kControlPlanePid, inv.result.id,
                       {{"kind", "call"},
                        {"function", g.function.str()},
                        {"correct", "0", true}});
        }
        // Readers that consumed the garbage callee's buffered writes
        // consumed phantom data: squash from the earliest such
        // reader as well.
        OrderKey squash_from = order;
        if (g.inst) {
            for (InstanceId rd : inv.buffer->readersForwardedFrom(
                     g.inst->id)) {
                const OrderKey* ro = inv.buffer->columnOrder(rd);
                if (ro != nullptr &&
                    orderKeyLess(*ro, squash_from)) {
                    squash_from = *ro;
                }
            }
        }
        squashRange(inv, squash_from, SquashReason::ControlMispredict);
    }

    if (slot->flowNode != kFlowNone)
        onExplicitComplete(inv, *slot);
    else
        onImplicitComplete(inv, *slot);
}

void
SpecController::onExplicitComplete(SpecInvocation& inv, Slot& slot)
{
    const FlowNode& node = inv.program->node(slot.flowNode);
    const std::uint64_t next_path =
        pathhash::extend(slot.pathHash, slot.function);
    // Record input-qualified replay hints: they only ever apply to a
    // re-execution of the same function with the same input.
    if (!slot.isBranch) {
        inv.outputHints[slot.order] =
            SpecInvocation::OutputHint{slot.function, slot.input,
                                       slot.output};
    }

    if (slot.isBranch) {
        slot.actualTarget =
            inv.program->resolveBranch(slot.flowNode, slot.output);
        inv.branchHints[slot.order] = SpecInvocation::BranchHint{
            slot.function, slot.input, slot.actualTarget};
        slot.actualOutcome = 0;
        for (std::size_t i = 0; i < node.targets.size(); ++i) {
            if (node.targets[i] == slot.actualTarget) {
                slot.actualOutcome = i;
                break;
            }
        }
        if (slot.predictionMade) {
            slot.predictionCorrect =
                slot.actualTarget == slot.predictedTarget;
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.instant(obs::cat::kSpec, "validate", sim_.now(),
                           obs::kControlPlanePid, inv.result.id,
                           {{"kind", "control"},
                            {"function", slot.function.str()},
                            {"correct",
                             slot.predictionCorrect ? "1" : "0",
                             true}});
            }
            if (!slot.predictionCorrect) {
                ++ctrControlMispredicts_;
                Frontier f;
                f.flowIdx = slot.actualTarget;
                f.carry = slot.input;
                f.source = slot.inputValidated ? InputSource::Actual
                                               : slot.inputSource;
                f.carryProducer = slot.inputValidated
                                      ? OrderKey{}
                                      : slot.carryProducer;
                f.order = increment(slot.order);
                f.pathHash = next_path;
                OrderKey from = increment(slot.order);
                adjustRewindToForkBase(inv, from, f);
                if (inv.openBranches.anyBefore(from))
                    f.afterUnresolvedBranch = true;
                squashRange(inv, from,
                            SquashReason::ControlMispredict);
                rewindExplicit(inv, std::move(f));
            }
        } else {
            resumeBlockedOn(inv, slot);
        }
    } else {
        if (slot.outputFedForward) {
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.instant(
                    obs::cat::kSpec, "validate", sim_.now(),
                    obs::kControlPlanePid, inv.result.id,
                    {{"kind", "data"},
                     {"function", slot.function.str()},
                     {"correct",
                      slot.output == slot.memoPredictedOutput ? "1"
                                                              : "0",
                      true}});
            }
            if (slot.output != slot.memoPredictedOutput) {
                // Data misprediction (§V-B): successors consumed a
                // stale memoized output. Any frontier parked on this
                // producer (e.g. a join arm) is superseded by the
                // rewind below.
                inv.blocked.erase(slot.order);
                ++ctrDataMispredicts_;
                Frontier f;
                f.flowIdx = node.next;
                f.carry = slot.output;
                f.source = InputSource::Actual;
                f.order = increment(slot.order);
                f.pathHash = next_path;
                OrderKey from = increment(slot.order);
                adjustRewindToForkBase(inv, from, f);
                if (inv.openBranches.anyBefore(from))
                    f.afterUnresolvedBranch = true;
                squashRange(inv, from, SquashReason::DataMispredict);
                rewindExplicit(inv, std::move(f));
            } else {
                // Prediction validated: consumers of this carry are
                // now running on confirmed inputs. A carry only ever
                // flows forward, so consumers sit strictly after the
                // producer — start the sweep there.
                for (auto it = inv.slots.lower_bound(slot.order);
                     it != inv.slots.end(); ++it) {
                    Slot& s = slotAt(it->second);
                    if (!s.inputValidated &&
                        s.carryProducer == slot.order) {
                        s.inputValidated = true;
                    }
                }
                for (auto& f : inv.depthBlocked) {
                    if (f.carryProducer == slot.order) {
                        f.source = InputSource::Actual;
                        f.carryProducer.clear();
                    }
                }
                // A join arm may be parked on this producer even
                // though the prediction validated.
                resumeBlockedOn(inv, slot);
            }
        } else {
            resumeBlockedOn(inv, slot);
        }
    }

    resumeParkedReads(inv);
    tryCommit(inv);
}

void
SpecController::onImplicitComplete(SpecInvocation& inv, Slot& slot)
{
    if (!slot.isImplicitCallee) {
        // Root function of an implicit application.
        inv.responseValue = slot.output;
        inv.responseSeen = true;
        resumeParkedReads(inv);
        tryCommit(inv);
        return;
    }

    if (slot.adopted && slot.returnTo) {
        deliverCallee(inv, slot);
        // `slot` is dangling after deliverCallee; don't touch it.
    }
    resumeParkedReads(inv);
    tryCommit(inv);
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
SpecController::updateTablesAtCommit(SpecInvocation& inv, Slot& slot)
{
    (void)inv;
    if (slot.skippedPure)
        return;

    // Memoization tables are only updated with committed, validated
    // data (§V-E).
    if (config_.memoization) {
        MemoRow row;
        row.output = slot.output;
        if (slot.inst)
            row.calleeArgs = slot.inst->observedCallArgs;
        memo_.table(slot.function).update(slot.input, std::move(row));
    }

    if (slot.isBranch) {
        bp_.update(branchKey(slot.function, slot.flowNode),
                   config_.bpPathHistory ? slot.pathHash
                                         : pathhash::kEmpty,
                   slot.actualOutcome);
        if (slot.predictionMade) {
            bp_.notePrediction(slot.predictionCorrect);
            ++inv.result.branchPredictions;
            if (slot.predictionCorrect)
                ++inv.result.branchHits;
        }
    }

    if (slot.inst) {
        // Learned sequence-table entries and call predictors for
        // implicit workflows (§V-D).
        for (const auto& [cs, callee] : slot.inst->observedCallees)
            noteCallSite(slot.function, cs, callee);
        for (const auto& [cs, taken] : slot.inst->callSiteOutcomes) {
            bp_.update(callKey(slot.function, cs),
                       config_.bpPathHistory ? slot.pathHash
                                             : pathhash::kEmpty,
                       taken ? 1 : 0);
        }
    }
}

void
SpecController::accountCommitted(SpecInvocation& inv, Slot& slot)
{
    ++inv.result.functionsExecuted;
    inv.sequence.emplace_back(slot.order, slot.function);
    if (slot.inst) {
        inv.result.containerCreation += slot.inst->containerCreationTime;
        inv.result.runtimeSetup += slot.inst->runtimeSetupTime;
        inv.result.platformOverhead += slot.inst->platformOverheadTime;
        inv.result.execution += slot.inst->execTime;
    }
}

void
SpecController::noteCallSite(Symbol function, std::size_t call_site,
                             Symbol callee)
{
    CallSiteInfo& info = callGraph_[{function, call_site}];
    if (info.def != nullptr && info.callee == callee)
        return; // unchanged shape: keep the memoized derivation
    info.callee = callee;
    info.def = registry_.find(callee);
    info.nonSpec =
        info.def != nullptr && info.def->nonSpeculativeAnnotation;
    info.pure = info.def != nullptr && info.def->pureAnnotation;
}

void
SpecController::flushPendingCommit(SpecInvocation& inv,
                                   const PendingCommit& p)
{
    if (config_.memoization) {
        MemoRow row;
        row.output = p.output;
        if (p.inst)
            row.calleeArgs = p.inst->observedCallArgs;
        memo_.table(p.function).update(p.input, std::move(row));
    }
    if (p.inst) {
        for (const auto& [cs, callee] : p.inst->observedCallees)
            noteCallSite(p.function, cs, callee);
        for (const auto& [cs, taken] : p.inst->callSiteOutcomes) {
            bp_.update(callKey(p.function, cs),
                       config_.bpPathHistory ? p.pathHash
                                             : pathhash::kEmpty,
                       taken ? 1 : 0);
        }
    }

    ++inv.result.functionsExecuted;
    inv.sequence.emplace_back(p.order, p.function);
    if (p.inst) {
        inv.result.containerCreation += p.inst->containerCreationTime;
        inv.result.runtimeSetup += p.inst->runtimeSetupTime;
        inv.result.platformOverhead += p.inst->platformOverheadTime;
        inv.result.execution += p.inst->execTime;
    }
    ++ctrCommits_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kSpec, "commit", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"function", p.function.str()},
                    {"order", orderKeyToString(p.order)},
                    {"merged", "1", true}});
    }
}

void
SpecController::commitSlot(SpecInvocation& inv, Slot& slot)
{
    OBS_ZONE(profiler_, "spec/commit-slot");
    if (slot.inst && inv.buffer->hasColumn(slot.inst->id))
        inv.buffer->commitColumn(slot.inst->id);
    // Callees merged into this slot commit with it, in recorded
    // (program) order.
    for (const auto& p : slot.pending)
        flushPendingCommit(inv, p);
    slot.pending.clear();
    updateTablesAtCommit(inv, slot);
    accountCommitted(inv, slot);
    if (slot.flowNode != kFlowNone) {
        SpecInvocation::CommittedNode cn;
        cn.function = slot.function;
        cn.input = slot.input;
        cn.output = slot.output;
        cn.actualTarget = slot.actualTarget;
        const bool fresh =
            inv.committed.emplace(slot.order, std::move(cn)).second;
        SPECFAAS_ASSERT(fresh, "double commit at %s",
                        orderKeyToString(slot.order).c_str());
    }
    ++ctrCommits_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kSpec, "commit", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"function", slot.function.str()},
                    {"order", orderKeyToString(slot.order)}});
    }
    if (slot.inst)
        slot.inst->state = InstanceState::Committed;
    const SlotHandle self = slot.self;
    // Commit is strictly in-order: the committed slot is the pipeline
    // head, so retiring it advances the commit frontier — no erase,
    // no element shifting.
    SPECFAAS_ASSERT(!inv.slots.empty() &&
                        inv.slots.front().second == self,
                    "commit not at the pipeline head");
    inv.slots.popFront();
    slotArena_.destroy(self);
}

void
SpecController::tryCommit(SpecInvocation& inv)
{
    OBS_ZONE(profiler_, "spec/commit");
    if (inv.finished)
        return;
    while (!inv.slots.empty()) {
        Slot& head = slotAt(inv.slots.begin()->second);
        if (!head.completed || !head.inputValidated)
            break;
        if (head.isImplicitCallee && !head.adopted)
            break;
        commitSlot(inv, head);
    }

    if (!inv.slots.empty()) {
        Slot& head = slotAt(inv.slots.begin()->second);
        maybePromote(inv, head);
    }
    resumeDepthBlocked(inv);

    if (inv.slots.empty() && inv.responseSeen && inv.blocked.empty() &&
        inv.depthBlocked.empty() && !inv.finished) {
        finish(inv);
    }
}

std::vector<SlotHandle>
SpecController::liveSlotHandles() const
{
    std::vector<SlotHandle> out;
    for (const auto& [id, inv] : live_)
        for (const auto& [order, h] : inv->slots)
            out.push_back(h);
    return out;
}

std::string
SpecController::debugDump() const
{
    std::string out;
    for (const auto& [id, inv] : live_) {
        out += strFormat("invocation %llu app=%s responseSeen=%d\n",
                         static_cast<unsigned long long>(id),
                         inv->result.app.c_str(),
                         inv->responseSeen ? 1 : 0);
        for (const auto& [order, sh] : inv->slots) {
            const Slot* slot = slotArena_.get(sh);
            if (slot == nullptr)
                continue;
            out += strFormat(
                "  slot %s %s node=%d completed=%d validated=%d "
                "adopted=%d state=%d\n",
                orderKeyToString(order).c_str(),
                slot->function.str().c_str(), slot->flowNode,
                slot->completed ? 1 : 0, slot->inputValidated ? 1 : 0,
                slot->adopted ? 1 : 0,
                slot->inst ? static_cast<int>(slot->inst->state) : -1);
        }
        for (const auto& [order, f] : inv->blocked) {
            out += strFormat("  blocked-on %s -> node %d order %s\n",
                             orderKeyToString(order).c_str(), f.flowIdx,
                             orderKeyToString(f.order).c_str());
        }
        for (const auto& f : inv->depthBlocked) {
            out += strFormat("  depth-blocked node %d order %s\n",
                             f.flowIdx,
                             orderKeyToString(f.order).c_str());
        }
        for (const auto& [key, order] : inv->pendingCallees) {
            out += strFormat(
                "  pending callee caller=%llu cs=%zu order=%s\n",
                static_cast<unsigned long long>(key.first), key.second,
                orderKeyToString(order).c_str());
        }
    }
    return out;
}

void
SpecController::finish(SpecInvocation& inv)
{
    OBS_ZONE(profiler_, "spec/finish");
    inv.finished = true;
    inv.result.response = inv.responseValue;
    inv.result.completedAt = sim_.now();
    // End-to-end completion marker: invokeSync bypasses the platform
    // "response" wrapper, so the engine records it for the analyzer.
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kSpec, "complete", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"app", inv.result.app}});
    }
    std::sort(inv.sequence.begin(), inv.sequence.end(),
              [](const auto& a, const auto& b) {
                  return orderKeyLess(a.first, b.first);
              });
    for (const auto& [order, name] : inv.sequence) {
        (void)order;
        inv.result.executedSequence.push_back(name.str());
    }
    auto it = live_.find(inv.result.id);
    SPECFAAS_ASSERT(it != live_.end(), "finishing unknown invocation");
    SpecInvocation* owned = it->second;
    live_.erase(it);
    // `inv` aliases *owned, and frames up the completion stack still
    // hold references to it (e.g. onExplicitComplete's tail after a
    // resumeBlockedOn that walked into this finish). Park the record
    // and recycle it into the pool at the event-loop boundary;
    // `finished` (set above) turns every later touch from those
    // frames into a no-op. The daemon event never keeps the
    // simulation alive.
    auto done = std::move(owned->done);
    auto result = std::move(owned->result);
    graveyard_.push_back(owned);
    if (graveyard_.size() == 1) {
        sim_.events().scheduleDaemon(0, [this] {
            for (SpecInvocation* p : graveyard_)
                invPool_.destroy(p);
            graveyard_.clear();
        });
    }
    done(std::move(result));
}

// ---------------------------------------------------------------------
// Promotion and parked work
// ---------------------------------------------------------------------

void
SpecController::maybePromote(SpecInvocation& inv, Slot& slot)
{
    if (slot.nonSpeculative)
        return;
    bool promote = false;
    if (slot.isImplicitCallee) {
        if (slot.adopted) {
            const Slot* caller = slotArena_.get(slot.callerSlot);
            promote = caller != nullptr && caller->nonSpeculative;
        }
    } else {
        promote = !inv.slots.empty() &&
                  inv.slots.begin()->first == slot.order &&
                  slot.inputValidated;
    }
    if (!promote)
        return;

    slot.nonSpeculative = true;
    auto parked = std::move(slot.parkedEffects);
    slot.parkedEffects.clear();
    for (auto& cb : parked)
        sim_.events().schedule(0, std::move(cb));

    // Cascade to adopted callees of this slot. A callee's order
    // extends its caller's with the call site, so the whole call
    // subtree sits in [slot.order, increment(slot.order)) — scan
    // that range, not the full pipeline. (The range also covers
    // deeper descendants; the callerId check keeps the cascade to
    // direct children, which recurse in turn.)
    if (slot.inst) {
        const InstanceId caller_id = slot.inst->id;
        const OrderKey subtreeEnd = increment(slot.order);
        SmallVector<SlotHandle, 8> children;
        for (auto it = inv.slots.lower_bound(slot.order);
             it != inv.slots.end() &&
             orderKeyLess(it->first, subtreeEnd);
             ++it) {
            const Slot& s = slotAt(it->second);
            if (s.isImplicitCallee && s.callerId == caller_id &&
                s.adopted) {
                children.push_back(it->second);
            }
        }
        for (const SlotHandle ch : children) {
            Slot* child = slotArena_.get(ch);
            if (child != nullptr)
                maybePromote(inv, *child);
        }
    }
}

void
SpecController::resumeDepthBlocked(SpecInvocation& inv)
{
    // Bounded pass: a frontier that re-parks itself (annotation gate
    // still closed, window still full) must not spin the loop.
    std::size_t remaining = inv.depthBlocked.size();
    while (remaining-- > 0 && !inv.depthBlocked.empty()) {
        if (inv.specLive >= effectiveSpecDepth())
            break;
        Frontier f = std::move(inv.depthBlocked.front());
        inv.depthBlocked.pop_front();
        walk(inv, std::move(f));
        if (inv.finished)
            return;
    }
}

void
SpecController::resumeParkedReads(SpecInvocation& inv)
{
    if (inv.finished || inv.parkedReads.empty())
        return;
    std::vector<ParkedRead> parked = std::move(inv.parkedReads);
    inv.parkedReads.clear();
    for (auto& p : parked) {
        if (p.reader->epoch != p.epoch ||
            p.reader->state == InstanceState::Dead) {
            continue; // squashed while parked (squash closed the span)
        }
        if (p.reader->stallSpanOpen) {
            p.reader->stallSpanOpen = false;
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.end(obs::cat::kExec, "stall-read", sim_.now(),
                       obs::nodePid(p.reader->node), p.reader->id);
            }
        }
        // Re-attempt: if the stall condition still holds, the read
        // re-parks inside performRead's caller (storageGet).
        storageGet(p.reader, p.key, std::move(p.done));
    }
}

// ---------------------------------------------------------------------
// RuntimeHooks: storage, calls, side effects
// ---------------------------------------------------------------------

void
SpecController::performRead(SpecInvocation& inv, const InstancePtr& inst,
                            const std::string& key,
                            ValueCallback done)
{
    BufferReadResult r = inv.buffer->read(inst->id, key);
    if (r.forwarded) {
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kSpec, "buffer-forward", sim_.now(),
                       obs::kControlPlanePid, inv.result.id,
                       {{"function", inst->def->name}, {"key", key}});
        }
        // Served by the Data Buffer on the controller node.
        sim_.events().schedule(
            cluster_.config().controllerMsgLatency,
            [v = std::move(*r.value), done = std::move(done)]() mutable {
                done(std::move(v));
            });
        return;
    }
    sim_.events().schedule(store_.latency().readLatency,
                           [this, key,
                            done = std::move(done)]() mutable {
                               auto v = store_.get(key);
                               done(v ? std::move(*v) : Value());
                           });
}

void
SpecController::storageGet(const InstancePtr& inst, const std::string& key,
                           ValueCallback done)
{
    OBS_ZONE(profiler_, "spec/storage-get");
    SpecInvocation& inv = invocationOf(inst);
    Slot* slot = slotOf(inst);
    SPECFAAS_ASSERT(slot != nullptr, "read from unslotted instance");

    // Squash minimizer (§V-C): a read known to race with an upstream
    // producer stalls until the producer writes the record or
    // completes.
    if (config_.speculation && !slot->nonSpeculative) {
        auto producer = minimizer_.stallProducer(slot->function, key);
        if (producer) {
            for (const auto& [order, sh] : inv.slots) {
                if (!orderKeyLess(order, slot->order))
                    break;
                const Slot& s = slotAt(sh);
                if (s.function != *producer || s.completed || !s.inst ||
                    inv.buffer->hasWrite(s.inst->id, key)) {
                    continue;
                }
                // Never stall on a caller ancestor: it is (or will
                // be) blocked at a call site waiting for this very
                // subtree, so "wait until the producer writes or
                // completes" would deadlock. Its pre-call writes are
                // ordered by the Data Buffer anyway.
                bool is_ancestor = false;
                for (const FunctionInstance* c = inst->caller;
                     c != nullptr; c = c->caller) {
                    if (c->id == s.inst->id) {
                        is_ancestor = true;
                        break;
                    }
                }
                if (is_ancestor)
                    continue;
                // Park until the producer writes or completes.
                minimizer_.noteStall();
                ++ctrStalledReads_;
                if (auto& tr = sim_.context().trace(); tr.enabled()) {
                    tr.instant(obs::cat::kSpec, "stall-read",
                               sim_.now(), obs::kControlPlanePid,
                               inv.result.id,
                               {{"function", inst->def->name},
                                {"key", key}});
                    // Stall interval on the exec track, nested in the
                    // instance's exec span; ended on resume or squash.
                    tr.begin(obs::cat::kExec, "stall-read", sim_.now(),
                             obs::nodePid(inst->node), inst->id,
                             {{"key", key}});
                    inst->stallSpanOpen = true;
                }
                inst->state = InstanceState::StalledRead;
                inv.parkedReads.push_back(ParkedRead{
                    inst, inst->epoch, key, *producer,
                    std::move(done)});
                return;
            }
        }
    }

    performRead(inv, inst, key, std::move(done));
}

void
SpecController::storagePut(const InstancePtr& inst, const std::string& key,
                           Value value, DoneCallback done)
{
    OBS_ZONE(profiler_, "spec/storage-put");
    SpecInvocation& inv = invocationOf(inst);
    Slot* slot = slotOf(inst);
    SPECFAAS_ASSERT(slot != nullptr, "write from unslotted instance");

    auto violators = inv.buffer->write(inst->id, key, std::move(value));
    if (!violators.empty()) {
        // Out-of-order RAW (§V-C): squash the earliest premature
        // reader and everything after it; the squashed functions are
        // relaunched on correct Data Buffer state.
        OrderKey from;
        Symbol consumer;
        for (InstanceId v : violators) {
            const OrderKey* vo = inv.buffer->columnOrder(v);
            if (vo == nullptr)
                continue;
            if (from.empty() || orderKeyLess(*vo, from)) {
                from = *vo;
                consumer = slotAt(inv.slots.at(from)).function;
            }
        }
        if (!from.empty()) {
            ++ctrBufferViolations_;
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.instant(obs::cat::kSpec, "buffer-violation",
                           sim_.now(), obs::kControlPlanePid,
                           inv.result.id,
                           {{"writer", slot->function.str()},
                            {"reader", consumer.str()},
                            {"key", key}});
            }
            minimizer_.recordSquash(slot->function, consumer, key);

            // Remember how to relaunch the squashed explicit region.
            auto vit = inv.slots.find(from);
            Frontier f;
            bool rewind = false;
            if (vit != inv.slots.end() &&
                slotAt(vit->second).flowNode != kFlowNone) {
                const Slot& v = slotAt(vit->second);
                // Restarting inside a fork arm restarts the fork.
                if (v.order.size() > 1) {
                    OrderKey base{v.order.front()};
                    auto fit = inv.forks.find(base);
                    if (fit != inv.forks.end()) {
                        f = fit->second.restart;
                        from = base;
                        rewind = true;
                    }
                }
                if (!rewind) {
                    f.flowIdx = v.flowNode;
                    f.carry = v.input;
                    f.source = v.inputValidated ? InputSource::Actual
                                                : v.inputSource;
                    f.carryProducer = v.inputValidated
                                          ? OrderKey{}
                                          : v.carryProducer;
                    f.order = v.order;
                    f.pathHash = v.pathHash;
                    rewind = true;
                }
                if (rewind && inv.openBranches.anyBefore(from))
                    f.afterUnresolvedBranch = true;
            }

            squashRange(inv, from, SquashReason::BufferViolation);
            if (rewind)
                rewindExplicit(inv, std::move(f));
        }
    }

    // A buffered write may unblock parked reads waiting for this
    // producer/record pair.
    resumeParkedReads(inv);

    sim_.events().schedule(cluster_.config().controllerMsgLatency,
                           [done = std::move(done)]() mutable { done(); });
}

void
SpecController::httpRequest(const InstancePtr& inst,
                            DoneCallback done)
{
    SpecInvocation& inv = invocationOf(inst);
    Slot* slot = slotOf(inst);
    SPECFAAS_ASSERT(slot != nullptr, "http from unslotted instance");
    if (slot->nonSpeculative) {
        done();
        return;
    }
    // Deferred side effect (§VI): suspend until non-speculative.
    ++ctrDeferredSideEffects_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kSpec, "defer-side-effect", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"function", slot->function.str()}});
    }
    inst->state = InstanceState::StalledSideEffect;
    slot->parkedEffects.push_back(std::move(done));
}

// ---------------------------------------------------------------------
// Implicit workflows: speculative callees
// ---------------------------------------------------------------------

void
SpecController::launchCalleeSlot(SpecInvocation& inv,
                                 const InstancePtr& caller,
                                 std::size_t call_site, Symbol callee,
                                 Value args, InputSource source,
                                 bool call_predicted,
                                 ValueCallback return_to)
{
    OBS_ZONE(profiler_, "spec/launch-callee");
    Slot* caller_ptr = slotOf(caller);
    SPECFAAS_ASSERT(caller_ptr != nullptr, "call from unslotted");
    Slot& caller_slot = *caller_ptr;

    OrderKey order = caller_slot.order;
    order.push_back(static_cast<std::int32_t>(call_site));

    const SlotHandle h = slotArena_.create();
    Slot& slot = slotArena_.at(h);
    slot.inv = &inv;
    slot.self = h;
    slot.function = callee;
    slot.order = order;
    slot.flowNode = kFlowNone;
    slot.input = args;
    slot.inputSource = source;
    slot.inputValidated = source == InputSource::Actual;
    slot.launchedSpeculatively = source != InputSource::Actual;
    slot.pathHash =
        pathhash::extend(caller_slot.pathHash,
                         callSiteHash(caller_slot.function, call_site));
    slot.isImplicitCallee = true;
    slot.callerId = caller->id;
    slot.callerSlot = caller_slot.self;
    slot.callSite = call_site;
    slot.callPredictionMade = call_predicted;
    slot.adopted =
        source == InputSource::Actual && static_cast<bool>(return_to);
    slot.returnTo = std::move(return_to);

    LaunchSpec spec;
    spec.function = callee;
    spec.input = std::move(args);
    spec.invocation = inv.result.id;
    spec.order = order;
    spec.preOverhead = cluster_.config().controllerMsgLatency;
    spec.controllerService = cluster_.config().specLaunchService;
    if (inv.containerKillDebt > 0) {
        spec.preOverhead += cluster_.config().containerRespawnLatency;
        --inv.containerKillDebt;
    }
    spec.controlSpeculative = call_predicted;
    spec.dataSpeculative = source != InputSource::Actual;
    spec.inputSource = source;
    spec.caller = caller.get();
    slot.inst = launcher_.launch(std::move(spec));
    slot.inst->pathHash = slot.pathHash;
    slot.inst->slotHandle = h;

    inv.buffer->addColumn(slot.inst->id, order);
    if (slot.launchedSpeculatively) {
        ++ctrSpeculativeLaunches_;
        ++inv.result.speculativeLaunches;
        ++inv.specLive;
        inv.pendingCallees[{caller->id, call_site}] = order;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kSpec, "speculative-launch",
                       sim_.now(), obs::kControlPlanePid,
                       inv.result.id,
                       {{"function", slot.function.str()},
                        {"order", orderKeyToString(order)},
                        {"kind", "callee"}});
        }
    }

    auto [it, ok] = inv.slots.emplace(order, h);
    (void)it;
    SPECFAAS_ASSERT(ok, "callee slot collision at %s",
                    orderKeyToString(order).c_str());
    speculateCallees(inv, slot);
    maybePromote(inv, slot);
}

void
SpecController::speculateCallees(SpecInvocation& inv, Slot& slot)
{
    OBS_ZONE(profiler_, "spec/speculate-callees");
    // Implicit speculation needs both mechanisms (§VIII-B): the
    // memoization row supplies the callee arguments and the call
    // predictor decides whether the call site will execute.
    if (!config_.speculation || !config_.memoization ||
        !config_.branchPrediction) {
        return;
    }
    if (!slot.inst)
        return;

    const MemoRow* row = memo_.table(slot.function).lookup(slot.input);
    if (row == nullptr)
        return;

    for (const auto& [cs, args] : row->calleeArgs) {
        auto git = callGraph_.find({slot.function, cs});
        if (git == callGraph_.end())
            continue;
        // Eligibility was derived once at commit-time learning and
        // memoized on the call-graph entry (registry def + annotation
        // gates) — no registry probe per candidate.
        const CallSiteInfo& site = git->second;
        if (site.nonSpec)
            continue; // never launched early (§VI)
        if (config_.pureFunctionSkip && site.pure &&
            memo_.table(site.callee).lookup(args) != nullptr) {
            continue; // the call site will skip it entirely (§V-B)
        }
        auto pred = bp_.predict(callKey(slot.function, cs),
                                config_.bpPathHistory
                                    ? slot.pathHash
                                    : pathhash::kEmpty);
        if (!pred || pred->target != 1)
            continue; // predicted not-taken or unknown
        if (inv.specLive >= effectiveSpecDepth())
            break;
        launchCalleeSlot(inv, slot.inst, cs, site.callee, args,
                         InputSource::Memoized, true, nullptr);
    }
}

void
SpecController::deliverCallee(SpecInvocation& inv, Slot& slot)
{
    SPECFAAS_ASSERT(slot.completed && slot.adopted && slot.returnTo,
                    "delivering unready callee %s",
                    slot.function.str().c_str());

    Slot* caller_ptr = slotArena_.get(slot.callerSlot);
    SPECFAAS_ASSERT(caller_ptr != nullptr, "deliver without caller");
    Slot& caller = *caller_ptr;

    // Merge the callee's Data Buffer column into the caller's (§V-D).
    if (slot.inst && inv.buffer->hasColumn(slot.inst->id))
        inv.buffer->mergeColumn(slot.inst->id, slot.callerId);

    // Commit-time effects (table updates, accounting) are deferred to
    // the caller's own commit: the caller may still be squashed, and
    // tables must never absorb speculative data (§V-E).
    caller.pending.insert(caller.pending.end(),
                          std::make_move_iterator(slot.pending.begin()),
                          std::make_move_iterator(slot.pending.end()));
    slot.pending.clear();
    PendingCommit record;
    record.order = slot.order;
    record.function = slot.function;
    record.input = slot.input;
    record.output = slot.output;
    record.pathHash = slot.pathHash;
    record.inst = slot.inst;
    caller.pending.push_back(std::move(record));

    Value output = slot.output;
    auto cb = std::move(slot.returnTo);
    if (slot.inst)
        slot.inst->state = InstanceState::Committed;
    const SlotHandle self = slot.self;
    inv.slots.erase(slot.order);
    slotArena_.destroy(self);

    sim_.events().schedule(cluster_.config().controllerMsgLatency,
                           [out = std::move(output),
                            cb = std::move(cb)]() mutable {
                               cb(std::move(out));
                           });
}

void
SpecController::functionCall(const InstancePtr& inst,
                             std::size_t call_site, Symbol callee,
                             Value args, ValueCallback done)
{
    OBS_ZONE(profiler_, "spec/function-call");
    SpecInvocation& inv = invocationOf(inst);
    inst->observedCallArgs[call_site] = args;
    inst->observedCallees[call_site] = callee;

    const Tick dispatch = cluster_.config().sequenceTableDispatch;
    inv.result.transferOverhead += dispatch;

    auto key = std::make_pair(inst->id, call_site);
    auto pit = inv.pendingCallees.find(key);
    if (pit != inv.pendingCallees.end()) {
        auto sit = inv.slots.find(pit->second);
        SPECFAAS_ASSERT(sit != inv.slots.end(), "stale pending callee");
        Slot& cs_slot = slotAt(sit->second);
        if (cs_slot.input == args) {
            // Predicted arguments confirmed: adopt the speculative
            // callee (Fig. 10(e): the caller stalls only if the
            // callee has not finished yet).
            inv.pendingCallees.erase(pit);
            cs_slot.adopted = true;
            cs_slot.inputValidated = true;
            cs_slot.inputSource = InputSource::Actual;
            cs_slot.returnTo = std::move(done);
            if (cs_slot.callPredictionMade)
                bp_.notePrediction(true);
            ++inv.result.memoHits;
            maybePromote(inv, cs_slot);
            if (cs_slot.completed) {
                deliverCallee(inv, cs_slot);
            } else {
                inst->state = InstanceState::StalledCallee;
            }
            return;
        }
        // Argument misprediction: squash the speculative callee (and
        // everything after it) and perform the call for real.
        ++ctrDataMispredicts_;
        squashRange(inv, cs_slot.order, SquashReason::DataMispredict);
    }

    // Pure-function skip (§V-B): a pure callee with a memoized row
    // for these exact arguments never launches — its output comes
    // straight from the table.
    if (config_.speculation && config_.memoization &&
        config_.pureFunctionSkip) {
        const FunctionDef* cd = registry_.find(callee);
        if (cd != nullptr && cd->pureAnnotation) {
            const MemoRow* row = memo_.table(callee).lookup(args);
            if (row != nullptr) {
                ++ctrPureSkips_;
                ++inv.result.memoHits;
                Slot* caller_slot = slotOf(inst);
                SPECFAAS_ASSERT(caller_slot != nullptr,
                                "call from unslotted caller");
                // The skipped callee still commits with its caller
                // (purity: the input fully determines this output).
                PendingCommit record;
                record.order = caller_slot->order;
                record.order.push_back(
                    static_cast<std::int32_t>(call_site));
                record.function = callee;
                record.input = args;
                record.output = row->output;
                record.pathHash = pathhash::extend(
                    caller_slot->pathHash, callee);
                caller_slot->pending.push_back(std::move(record));
                sim_.events().schedule(
                    dispatch, [out = row->output,
                               done = std::move(done)]() mutable {
                        done(std::move(out));
                    });
                return;
            }
        }
    }

    inst->state = InstanceState::StalledCallee;
    sim_.events().schedule(
        dispatch, [this, id = inst->invocation, inst, call_site, callee,
                   args = std::move(args), done = std::move(done)]() mutable {
            SpecInvocation* inv2 = find(id);
            if (inv2 == nullptr || inst->state == InstanceState::Dead)
                return;
            launchCalleeSlot(*inv2, inst, call_site, callee,
                             std::move(args), InputSource::Actual, false,
                             std::move(done));
        });
}

} // namespace specfaas

