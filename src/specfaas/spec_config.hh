/**
 * @file
 * SpecFaaS tuning knobs (§VI "Configurability").
 */

#ifndef SPECFAAS_SPECFAAS_SPEC_CONFIG_HH
#define SPECFAAS_SPECFAAS_SPEC_CONFIG_HH

#include <cstdint>

#include "runtime/interpreter.hh"

namespace specfaas {

/** Feature toggles and thresholds of the speculative engine. */
struct SpecConfig
{
    /** Master switch; false degenerates to in-order execution that
     * still uses the Sequence-Table fast dispatch. */
    bool speculation = true;

    /** Control speculation through the branch predictor (§V-A). */
    bool branchPrediction = true;

    /** Data speculation through memoization tables (§V-B). */
    bool memoization = true;

    /** How mis-speculated handlers are stopped (§VI). */
    SquashPolicy squashPolicy = SquashPolicy::ProcessKill;

    /**
     * Branch dead band: no control speculation when the predicted
     * probability is within this distance of 50% (§VI).
     */
    double bpDeadBand = 0.10;

    /** Minimum observations before a branch entry predicts. */
    std::uint32_t bpMinSamples = 1;

    /**
     * Index predictor entries by the path of functions executed so
     * far (§V-A: the path typically determines the outcome). With
     * false, one aggregate entry per branch is used — the ablation
     * of Fig. 8's per-path sub-entries.
     */
    bool bpPathHistory = true;

    /**
     * Maximum speculative functions in flight per invocation — the
     * number of Data Buffer columns (§VIII-B reports 12 columns).
     */
    std::uint32_t maxSpecDepth = 12;

    /** Rows per memoization table (§VIII-B uses 50-entry tables). */
    std::uint32_t memoCapacity = 50;

    /**
     * Skip executing `pure-function`-annotated functions on a memo
     * hit (§V-B). Off by default: the paper's evaluation is
     * conservative and does not apply this optimization.
     */
    bool pureFunctionSkip = false;

    /**
     * Squash minimizer (§V-C): after this many squashes caused by
     * one producer→consumer record pattern, stall the consumer's
     * read instead of speculating through it.
     */
    std::uint32_t stallThreshold = 3;

    /**
     * Load-aware throttle: when cluster utilization exceeds
     * loadThrottleUtilization, speculation depth drops to
     * throttledSpecDepth (§VI).
     */
    double loadThrottleUtilization = 0.90;
    std::uint32_t throttledSpecDepth = 4;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_SPEC_CONFIG_HH
