/**
 * @file
 * Function memoization tables (§V-B, extended for implicit workflows
 * per §V-D Fig. 10(c)).
 *
 * Each function has a bounded table of rows keyed by the exact input
 * value. A row records the output the function produced for that
 * input and — for functions that call subroutines — the argument
 * values it passed to each call site, which is what allows callees to
 * be launched speculatively before the caller reaches the call.
 * Tables are only updated at commit time, never with speculative
 * data (§V-E).
 */

#ifndef SPECFAAS_SPECFAAS_MEMO_TABLE_HH
#define SPECFAAS_SPECFAAS_MEMO_TABLE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/symbol.hh"
#include "common/value.hh"

namespace specfaas::obs {
class Profiler;
}

namespace specfaas {

/** One memoized execution: input → output (+ callee inputs). */
struct MemoRow
{
    Value output;
    /** call-site id (op index in the body) → argument value. */
    FlatMap<std::size_t, Value> calleeArgs;
};

/** Bounded LRU memoization table for one function. */
class MemoTable
{
  public:
    explicit MemoTable(std::size_t capacity = 50) : capacity_(capacity) {}

    /** Lookup by input; refreshes LRU position. Null on miss. */
    const MemoRow* lookup(const Value& input);

    /** Insert or overwrite the row for @p input. */
    void update(const Value& input, MemoRow row);

    /** Number of rows. */
    std::size_t size() const { return map_.size(); }

    /** @{ Hit statistics. */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    double hitRate() const;
    /** @} */

    /** Approximate memory footprint in bytes (for §V-B sizing). */
    std::size_t footprintBytes() const;

    /** Profiler for "spec/memo-lookup" zones (set by MemoStore). */
    void setProfiler(obs::Profiler* profiler) { profiler_ = profiler; }

  private:
    struct Node
    {
        Value input;
        MemoRow row;
    };

    using LruList = std::list<Node>;

    std::size_t capacity_;
    obs::Profiler* profiler_ = nullptr;
    LruList lru_; // front = most recently used
    std::unordered_map<Value, LruList::iterator> map_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

/** All memoization tables of one engine, keyed by function name. */
class MemoStore
{
  public:
    explicit MemoStore(std::size_t capacity_per_function = 50)
        : capacity_(capacity_per_function)
    {}

    /** Table for @p function (created on first use). */
    MemoTable& table(Symbol function);
    MemoTable& table(const std::string& function)
    {
        return table(Symbol(function));
    }

    /** Table for @p function; nullptr when never touched. */
    const MemoTable* find(Symbol function) const;
    const MemoTable* find(const std::string& function) const
    {
        return find(Symbol(function));
    }

    /** Aggregate hit rate across all tables. */
    double overallHitRate() const;

    /** Total rows across all tables. */
    std::size_t totalRows() const;

    /** Total footprint across all tables, in bytes. */
    std::size_t totalFootprintBytes() const;

    /** Attach a profiler, propagated to every (future) table. */
    void setProfiler(obs::Profiler* profiler);

  private:
    std::size_t capacity_;
    obs::Profiler* profiler_ = nullptr;
    /** Dense symbol-id → table; null gaps for untouched functions. */
    std::vector<std::unique_ptr<MemoTable>> tables_;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_MEMO_TABLE_HH
