/**
 * @file
 * Squash-frequency minimizer (§V-C, last paragraph).
 *
 * When a producer→consumer communication over global storage keeps
 * squashing the consumer, the controller learns the pattern and, on
 * subsequent invocations, stalls the consumer's read until the
 * producer has written the record (or completed) instead of letting
 * it read prematurely and be squashed.
 *
 * Record keys are generalized to a key class (digit runs collapsed)
 * so that per-request keys like "order:4711" learn as "order:#".
 */

#ifndef SPECFAAS_SPECFAAS_SQUASH_MINIMIZER_HH
#define SPECFAAS_SPECFAAS_SQUASH_MINIMIZER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/flat_map.hh"
#include "common/symbol.hh"

namespace specfaas {

/** Collapse digit runs: "order:4711:item9" → "order:#:item#". */
std::string keyClassOf(const std::string& key);

/** Learns squash-causing producer/consumer record patterns. */
class SquashMinimizer
{
  public:
    /** @param threshold squashes before a pattern starts stalling */
    explicit SquashMinimizer(std::uint32_t threshold = 3)
        : threshold_(threshold)
    {}

    /**
     * Record that @p consumer was squashed for prematurely reading
     * @p key that @p producer later wrote.
     */
    void recordSquash(Symbol producer, Symbol consumer,
                      const std::string& key);

    void
    recordSquash(const std::string& producer,
                 const std::string& consumer, const std::string& key)
    {
        recordSquash(Symbol(producer), Symbol(consumer), key);
    }

    /**
     * Should @p consumer's read of @p key stall? Returns the learned
     * producer function to wait for, or nullopt.
     */
    std::optional<Symbol> stallProducer(Symbol consumer,
                                        const std::string& key) const;

    std::optional<Symbol>
    stallProducer(const std::string& consumer,
                  const std::string& key) const
    {
        return stallProducer(Symbol(consumer), key);
    }

    /** Number of learned (consumer, key-class) patterns. */
    std::size_t patternCount() const { return patterns_.size(); }

    /** @{ Counters. */
    std::uint64_t recordedSquashes() const { return recorded_; }
    std::uint64_t stallsServed() const { return stalls_; }
    void noteStall() { ++stalls_; }
    /** @} */

  private:
    struct Pattern
    {
        Symbol producer;
        std::uint32_t squashes = 0;
    };

    std::uint32_t threshold_;
    // (consumer, interned key class) → pattern
    FlatMap<std::pair<Symbol, Symbol>, Pattern> patterns_;
    std::uint64_t recorded_ = 0;
    std::uint64_t stalls_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_SQUASH_MINIMIZER_HH
