#include "branch_predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace specfaas {

namespace pathhash {

std::uint64_t
extend(std::uint64_t h, const std::string& function)
{
    // Delegate through the same name-hash mix the Symbol fast path
    // uses, so a string-built path equals the engine's symbol-built
    // path for the same name sequence.
    std::uint64_t nh = 1469598103934665603ull;
    for (unsigned char c : function) {
        nh ^= c;
        nh *= 1099511628211ull;
    }
    return extend(h, nh);
}

} // namespace pathhash

BranchPredictor::BranchPredictor(double dead_band,
                                 std::uint32_t min_samples)
    : deadBand_(dead_band), minSamples_(min_samples)
{
}

std::uint64_t
BranchPredictor::branchKeyOf(const std::string& branch)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : branch) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
BranchPredictor::key(std::uint64_t branch_key, std::uint64_t path)
{
    std::uint64_t h = branch_key;
    h ^= path;
    h *= 1099511628211ull;
    return h;
}

std::optional<BranchPrediction>
BranchPredictor::fromEntry(const Entry& e) const
{
    if (e.total < minSamples_)
        return std::nullopt;
    const auto best =
        std::max_element(e.counts.begin(), e.counts.end());
    const double prob = static_cast<double>(*best) /
                        static_cast<double>(e.total);
    // Dead band: a branch that is close to 50/50 is not worth the
    // squash risk (§VI).
    if (prob < 0.5 + deadBand_)
        return std::nullopt;
    BranchPrediction p;
    p.target = static_cast<std::size_t>(best - e.counts.begin());
    p.probability = prob;
    return p;
}

std::optional<BranchPrediction>
BranchPredictor::predict(std::uint64_t branch,
                         std::uint64_t path) const
{
    auto it = table_.find(key(branch, path));
    if (it != table_.end()) {
        auto p = fromEntry(it->second);
        if (p)
            return p;
        // A path entry that exists but sits in the dead band means
        // "don't speculate", even if the aggregate is confident.
        return std::nullopt;
    }
    auto agg = table_.find(key(branch, 0));
    if (agg != table_.end())
        return fromEntry(agg->second);
    return std::nullopt;
}

void
BranchPredictor::update(std::uint64_t branch, std::uint64_t path,
                        std::size_t outcome)
{
    auto bump = [&](Entry& e) {
        if (outcome >= e.counts.size())
            e.counts.resize(outcome + 1, 0);
        ++e.counts[outcome];
        ++e.total;
    };
    // Path 0 IS the aggregate entry: bumping both would double-count
    // it, crossing minSamples_ in half the real samples.
    if (path != 0)
        bump(table_[key(branch, path)]);
    bump(table_[key(branch, 0)]); // path-agnostic aggregate
}

void
BranchPredictor::notePrediction(bool correct)
{
    ++predictions_;
    if (correct)
        ++hits_;
}

double
BranchPredictor::hitRate() const
{
    // No predictions means no measurable accuracy: returning 1.0 here
    // fabricated a 100% hit rate in runs with speculation disabled.
    return predictions_ == 0
               ? std::nan("")
               : static_cast<double>(hits_) /
                     static_cast<double>(predictions_);
}

void
BranchPredictor::clear()
{
    table_.clear();
    predictions_ = 0;
    hits_ = 0;
}

} // namespace specfaas
