#include "data_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace specfaas {

void
DataBuffer::addColumn(InstanceId owner, OrderKey order)
{
    SPECFAAS_ASSERT(!columns_.count(owner), "duplicate column %llu",
                    static_cast<unsigned long long>(owner));
    columns_[owner] = std::move(order);
}

bool
DataBuffer::hasColumn(InstanceId owner) const
{
    return columns_.count(owner) > 0;
}

void
DataBuffer::invalidateColumn(InstanceId owner)
{
    columns_.erase(owner);
    for (auto it = rows_.begin(); it != rows_.end();) {
        it->second.cells.erase(owner);
        if (it->second.cells.empty())
            it = rows_.erase(it);
        else
            ++it;
    }
    forwardSources_.erase(owner);
    for (auto& [reader, writers] : forwardSources_) {
        (void)reader;
        writers.erase(owner);
    }
}

std::vector<InstanceId>
DataBuffer::ordered() const
{
    std::vector<InstanceId> out;
    out.reserve(columns_.size());
    for (const auto& [owner, order] : columns_) {
        (void)order;
        out.push_back(owner);
    }
    std::sort(out.begin(), out.end(),
              [this](InstanceId a, InstanceId b) {
                  return orderKeyLess(columns_.at(a), columns_.at(b));
              });
    return out;
}

BufferReadResult
DataBuffer::read(InstanceId reader, const std::string& key)
{
    SPECFAAS_ASSERT(columns_.count(reader), "read without column");
    BufferReadResult result;

    auto rit = rows_.find(key);
    Row& row = rit != rows_.end() ? rit->second : rows_[key];

    // The reader's own cell first: a read after the function's own
    // write is NOT exposed (§V-C) — it observes the function's own
    // value and must not set the R bit, so a predecessor's later
    // write to the record does not squash this function (its W bit
    // already shields it in the write scan).
    Cell& own = row.cells[reader];
    if (own.written) {
        result.value = own.value;
        result.forwarded = true;
        return result;
    }

    // Scan predecessor W bits in reverse program order (§V-C Read
    // Operation): forward the youngest predecessor's value.
    const auto order = ordered();
    const auto self = std::find(order.begin(), order.end(), reader);
    SPECFAAS_ASSERT(self != order.end(), "reader not in order");
    for (auto it = std::make_reverse_iterator(self); it != order.rend();
         ++it) {
        auto cit = row.cells.find(*it);
        if (cit != row.cells.end() && cit->second.written) {
            result.value = cit->second.value;
            result.forwarded = true;
            ++forwards_;
            forwardSources_[reader].insert(*it);
            break;
        }
    }

    own.read = true;
    return result;
}

std::vector<InstanceId>
DataBuffer::write(InstanceId writer, const std::string& key, Value value)
{
    SPECFAAS_ASSERT(columns_.count(writer), "write without column");
    Row& row = rows_[key];

    // Scan successor columns in program order up to and including
    // the first one that has re-defined the record (§V-C Write
    // Operation). Successors that read prematurely are violations.
    std::vector<InstanceId> violators;
    const auto order = ordered();
    auto self = std::find(order.begin(), order.end(), writer);
    SPECFAAS_ASSERT(self != order.end(), "writer not in order");
    for (auto it = std::next(self); it != order.end(); ++it) {
        auto cit = row.cells.find(*it);
        if (cit == row.cells.end())
            continue;
        if (cit->second.read) {
            violators.push_back(*it);
            ++violations_;
        }
        if (cit->second.written)
            break; // the record was re-defined downstream
    }

    Cell& own = row.cells[writer];
    own.written = true;
    own.value = std::move(value);
    return violators;
}

void
DataBuffer::commitColumn(InstanceId owner)
{
    SPECFAAS_ASSERT(columns_.count(owner), "commit without column");
    for (auto it = rows_.begin(); it != rows_.end();) {
        auto cit = it->second.cells.find(owner);
        if (cit != it->second.cells.end()) {
            if (cit->second.written)
                store_.put(it->first, std::move(cit->second.value));
            it->second.cells.erase(cit);
        }
        if (it->second.cells.empty())
            it = rows_.erase(it);
        else
            ++it;
    }
    columns_.erase(owner);
    // Committed data is architectural; forwarded copies of it are
    // no longer speculative.
    forwardSources_.erase(owner);
    for (auto& [reader, writers] : forwardSources_) {
        (void)reader;
        writers.erase(owner);
    }
}

void
DataBuffer::mergeColumn(InstanceId callee, InstanceId caller)
{
    SPECFAAS_ASSERT(columns_.count(callee), "merge without callee column");
    SPECFAAS_ASSERT(columns_.count(caller), "merge without caller column");
    for (auto it = rows_.begin(); it != rows_.end();) {
        auto cit = it->second.cells.find(callee);
        if (cit != it->second.cells.end()) {
            Cell& dst = it->second.cells[caller];
            dst.read = dst.read || cit->second.read;
            if (cit->second.written) {
                dst.written = true;
                dst.value = std::move(cit->second.value);
            }
            it->second.cells.erase(callee);
        }
        if (it->second.cells.empty())
            it = rows_.erase(it);
        else
            ++it;
    }
    columns_.erase(callee);
    // Re-attribute forwarded reads of the callee's data to the caller.
    auto fit = forwardSources_.find(callee);
    if (fit != forwardSources_.end()) {
        forwardSources_[caller].insert(fit->second.begin(),
                                       fit->second.end());
        forwardSources_.erase(callee);
    }
    for (auto& [reader, writers] : forwardSources_) {
        (void)reader;
        if (writers.erase(callee) > 0)
            writers.insert(caller);
    }
}

bool
DataBuffer::hasWrite(InstanceId owner, const std::string& key) const
{
    auto rit = rows_.find(key);
    if (rit == rows_.end())
        return false;
    auto cit = rit->second.cells.find(owner);
    return cit != rit->second.cells.end() && cit->second.written;
}

std::vector<InstanceId>
DataBuffer::readersForwardedFrom(InstanceId writer) const
{
    std::vector<InstanceId> out;
    for (const auto& [reader, writers] : forwardSources_) {
        if (reader != writer && writers.count(writer) &&
            columns_.count(reader)) {
            out.push_back(reader);
        }
    }
    return out;
}

std::size_t
DataBuffer::footprintBytes() const
{
    std::size_t bytes = 0;
    for (const auto& [key, row] : rows_) {
        bytes += key.size();
        for (const auto& [owner, cell] : row.cells) {
            (void)owner;
            bytes += 3; // V/R/W bits, byte-rounded
            if (cell.written)
                bytes += cell.value.toString().size();
        }
    }
    return bytes;
}

} // namespace specfaas
