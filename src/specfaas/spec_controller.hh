/**
 * @file
 * The SpecFaaS speculative execution engine (§IV, §V).
 *
 * Per invocation the controller maintains the Function Execution
 * Pipeline (program-ordered slots of not-yet-committed functions), a
 * Data Buffer, and walks the application's Sequence Table launching
 * functions early:
 *
 *  - control dependences are predicted with the path-indexed branch
 *    predictor (§V-A);
 *  - data dependences are satisfied speculatively from memoization
 *    tables (§V-B), including predicted callee arguments of implicit
 *    workflows (§V-D);
 *  - global writes are buffered per function and committed in program
 *    order; out-of-order RAW dependences squash the premature reader
 *    and its successors (§V-C);
 *  - mispredictions squash downstream slots and restart the walk on
 *    the corrected path (Figure 6).
 *
 * Tables (branch predictor, memoization, learned call graph) persist
 * across invocations and are only updated with committed data (§V-E).
 */

#ifndef SPECFAAS_SPECFAAS_SPEC_CONTROLLER_HH
#define SPECFAAS_SPECFAAS_SPEC_CONTROLLER_HH

#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.hh"
#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/slot_array.hh"
#include "common/symbol.hh"
#include "obs/counter_registry.hh"
#include "runtime/engine.hh"
#include "runtime/hooks.hh"
#include "runtime/interpreter.hh"
#include "runtime/launcher.hh"
#include "sim/simulation.hh"
#include "specfaas/branch_predictor.hh"
#include "specfaas/data_buffer.hh"
#include "specfaas/memo_table.hh"
#include "specfaas/spec_config.hh"
#include "specfaas/squash_minimizer.hh"
#include "storage/kv_store.hh"
#include "workflow/flow_program.hh"
#include "workflow/registry.hh"

namespace specfaas {

/**
 * Aggregate engine statistics across all invocations — a snapshot of
 * the controller's CounterRegistry, kept as a struct so callers read
 * plain fields.
 */
struct SpecStats
{
    std::uint64_t speculativeLaunches = 0;
    std::uint64_t squashes = 0;
    std::uint64_t controlMispredicts = 0;
    std::uint64_t dataMispredicts = 0;
    std::uint64_t bufferViolations = 0;
    std::uint64_t stalledReads = 0;
    std::uint64_t deferredSideEffects = 0;
    std::uint64_t commits = 0;
    std::uint64_t pureSkips = 0;
};

/** The SpecFaaS engine. */
class SpecController : public WorkflowEngine, public RuntimeHooks
{
  public:
    SpecController(Simulation& sim, Cluster& cluster, KvStore& store,
                   const FunctionRegistry& registry,
                   SpecConfig config = {});

    ~SpecController() override;

    void invoke(const Application& app, Value input,
                ResultCallback done) override;

    std::string name() const override { return "specfaas"; }

    /** @{ RuntimeHooks. */
    void storageGet(const InstancePtr& inst, const std::string& key,
                    ValueCallback done) override;
    void storagePut(const InstancePtr& inst, const std::string& key,
                    Value value, DoneCallback done) override;
    void functionCall(const InstancePtr& inst, std::size_t call_site,
                      Symbol callee, Value args,
                      ValueCallback done) override;
    void httpRequest(const InstancePtr& inst,
                     DoneCallback done) override;
    void completed(const InstancePtr& inst, Value output) override;
    void crashed(const InstancePtr& inst, FaultKind kind) override;
    /** @} */

    void onNodeFailure(NodeId node) override;

    /** @{ Introspection for tests and ablation benches. */
    const SpecConfig& config() const { return config_; }
    BranchPredictor& branchPredictor() { return bp_; }
    MemoStore& memoStore() { return memo_; }
    SquashMinimizer& squashMinimizer() { return minimizer_; }
    /** Snapshot of the engine counters. */
    SpecStats stats() const;
    /** The underlying named-counter registry. */
    const obs::CounterRegistry& counters() const { return counters_; }
    std::size_t liveInvocations() const override { return live_.size(); }
    /** Speculatively-launched, not-yet-completed instances in flight. */
    std::size_t speculativeInFlight() const;

    /** Dump every live invocation's pipeline state (diagnostics). */
    std::string debugDump() const;

    /**
     * Generation-tagged handles of every live pipeline slot, across
     * all in-flight invocations. Tests capture this mid-run (from a
     * handler body) and assert the handles miss once their slots are
     * squashed, committed, or torn down — the no-ABA property.
     */
    std::vector<SlotHandle> liveSlotHandles() const;

    /** Whether @p h still resolves to a live pipeline slot. */
    bool
    slotHandleResolves(SlotHandle h) const
    {
        return slotArena_.get(h) != nullptr;
    }
    /** @} */

  private:
    /**
     * Commit-time effects of a merged callee, deferred until its
     * caller truly commits: a callee merged into a still-speculative
     * caller must not update tables or accounting yet (§V-E), and
     * must be forgotten wholesale if the caller is squashed.
     */
    struct PendingCommit
    {
        OrderKey order;
        Symbol function;
        Value input;
        Value output;
        std::uint64_t pathHash = 0;
        InstancePtr inst;
    };

    struct SpecInvocation;

    /** One pipeline entry: a not-yet-committed dynamic function. */
    struct Slot
    {
        Symbol function;
        OrderKey order;
        FlowIndex flowNode = kFlowNone;
        InstancePtr inst;

        /** Owning invocation (slots only resolve while it is live). */
        SpecInvocation* inv = nullptr;
        /** This slot's own handle in the controller's slot arena. */
        SlotHandle self;
        /** Caller's slot (implicit callees); stale once the caller is
         * squashed or committed. */
        SlotHandle callerSlot;

        Value input;
        InputSource inputSource = InputSource::Actual;
        /** Order of the slot whose committed output validates this
         * slot's input; empty when the input is Actual. */
        OrderKey carryProducer;
        bool inputValidated = true;
        bool launchedSpeculatively = false;

        bool completed = false;
        bool skippedPure = false;
        Value output;
        std::uint64_t pathHash = pathhash::kEmpty;

        /** The walk fed this slot's memoized output to successors;
         * validate against the actual output at completion. */
        bool outputFedForward = false;
        Value memoPredictedOutput;

        /** @{ Branch metadata (explicit workflows). */
        bool isBranch = false;
        bool predictionMade = false;
        bool predictionCorrect = false;
        FlowIndex predictedTarget = kFlowNone;
        FlowIndex actualTarget = kFlowNone;
        std::size_t actualOutcome = 0;
        /** @} */

        /** @{ Implicit-callee metadata. */
        bool isImplicitCallee = false;
        InstanceId callerId = 0;
        std::size_t callSite = 0;
        bool adopted = false;
        bool callPredictionMade = false;
        ValueCallback returnTo;
        /** @} */

        /** Parked side-effect continuations (§VI). */
        std::vector<DoneCallback> parkedEffects;
        bool nonSpeculative = false;

        /** Merged callees awaiting this slot's commit. */
        std::vector<PendingCommit> pending;
    };

    /** A cursor of the predicted-path walk (explicit workflows). */
    struct Frontier
    {
        FlowIndex flowIdx = kFlowNone;
        Value carry;
        InputSource source = InputSource::Actual;
        OrderKey carryProducer;
        OrderKey order;
        std::uint64_t pathHash = pathhash::kEmpty;
        bool afterUnresolvedBranch = false;
    };

    struct JoinState
    {
        std::size_t pending = 0;
        ValueArray outputs;
        bool anyPredicted = false;
        OrderKey worstProducer;
    };

    struct ForkMeta
    {
        Frontier restart; // re-walk the whole fork on rewind
    };

    struct OrderLess
    {
        bool
        operator()(const OrderKey& a, const OrderKey& b) const
        {
            return orderKeyLess(a, b);
        }
    };

    struct ParkedRead
    {
        InstancePtr reader;
        std::uint64_t epoch;
        std::string key;
        Symbol producer;
        ValueCallback done;
    };

    struct SpecInvocation
    {
        InvocationResult result;
        const Application* app = nullptr;
        const FlowProgram* program = nullptr;
        ResultCallback done;

        /** Pipeline: program order → slot handle, order-indexed so
         * commit advances a head frontier (popFront) and squash
         * truncates a suffix. The Slot objects themselves live in
         * the controller's slab-stable slot arena; handles go stale
         * the moment a slot is squashed or committed, which is
         * exactly the old byInstance-absence semantics. */
        PipelineMap<OrderKey, SlotHandle, OrderLess> slots;
        std::unique_ptr<DataBuffer> buffer;

        /** Count of live slots with launchedSpeculatively set and
         * completed unset — the depth throttle's input, maintained
         * incrementally instead of recounted by pipeline scan. */
        std::size_t specLive = 0;

        /** Orders of launched, not-yet-completed branch slots. The
         * "is anything before X control-speculative?" questions the
         * walk and rewind paths ask become a front() compare. */
        OrderedKeySet<OrderKey, OrderLess> openBranches;

        /** Frontiers blocked on a producer slot's completion. */
        PipelineMap<OrderKey, Frontier, OrderLess> blocked;
        /** Frontiers parked by the speculation-depth throttle. */
        std::list<Frontier> depthBlocked;
        FlatMap<FlowIndex, JoinState> joins;
        PipelineMap<OrderKey, ForkMeta, OrderLess> forks;

        /** Pending speculative callees: caller id + call site → slot
         * order. */
        FlatMap<std::pair<InstanceId, std::size_t>, OrderKey>
            pendingCallees;

        std::vector<ParkedRead> parkedReads;

        /** (program order, function) pairs; sorted into
         * result.executedSequence when the invocation finishes. */
        std::vector<std::pair<OrderKey, Symbol>> sequence;

        /**
         * Bump arena for transient hot-path arrays (squash victim
         * lists). Monotonic over the invocation's lifetime — squash
         * cascades re-enter squashRange, so resetting mid-invocation
         * would stomp live arrays; the memory is recycled when the
         * record returns to the pool. Only trivially-destructible
         * payloads (handles, ids) may live here.
         */
        BumpArena scratch{4096};

        /**
         * Results already observed at a pipeline position during
         * this invocation, qualified by function AND input: a hint
         * applies only to a re-execution of the same function with
         * the same input, so wrong-path or wrong-input executions
         * can never poison a re-walk, and no erasure is needed on
         * squash. Re-walks prefer hints over the predictor / memo
         * tables (which update only at commit), breaking the replay
         * loops a restarted fork would otherwise enter.
         */
        struct BranchHint
        {
            Symbol function;
            Value input;
            FlowIndex target = kFlowNone;
        };
        FlatMap<OrderKey, BranchHint, OrderLess> branchHints;

        struct OutputHint
        {
            Symbol function;
            Value input;
            Value output;
        };
        FlatMap<OrderKey, OutputHint, OrderLess> outputHints;

        /**
         * Flow coordinates irrevocably committed in this invocation.
         * A rewind that restarts a fork region can walk back over
         * them (the fork restart frontier predates the commits); the
         * walk replays the recorded outcome instead of re-launching.
         * Re-execution would double-apply storage effects and
         * diverge from the baseline's crash-retry semantics, which
         * never re-runs completed work.
         */
        struct CommittedNode
        {
            Symbol function;
            Value input;
            Value output;
            FlowIndex actualTarget = kFlowNone; // branches only
        };
        PipelineMap<OrderKey, CommittedNode, OrderLess> committed;

        /**
         * Outstanding container-kill squash debt: number of upcoming
         * launches that must wait for a replacement container
         * because their warm container was destroyed (§VI, second
         * squash approach).
         */
        std::uint32_t containerKillDebt = 0;

        /** Fault-retry attempts per pipeline coordinate; survives the
         * squash/relaunch cycle so give-up thresholds are honest. */
        PipelineMap<OrderKey, std::uint32_t, OrderLess> faultAttempts;

        /** Response payload observed when the walk reaches the end
         * of the program. */
        Value responseValue;
        bool responseSeen = false;
        bool finished = false;
    };

    /** Values are owned by invPool_, not the map. */
    using InvMap = std::unordered_map<InvocationId, SpecInvocation*>;

    /**
     * Learned implicit call graph (part of the Sequence Table), with
     * the speculate-callee launch-set derivation memoized per
     * (function, site): the resolved registry definition and its
     * annotation gates are cached at commit-time learning, so
     * repeated invocations of the same workflow shape skip the
     * registry probe and annotation re-derivation per candidate.
     * Refreshed whenever the learned callee changes. Relies on the
     * registry being immutable for the controller's lifetime.
     */
    struct CallSiteInfo
    {
        Symbol callee;
        const FunctionDef* def = nullptr;
        bool nonSpec = false;
        bool pure = false;
    };

    const FlowProgram& compiled(const Application& app);
    SpecInvocation* find(InvocationId id);
    SpecInvocation& invocationOf(const InstancePtr& inst);
    Slot* slotOf(const InstancePtr& inst);
    /** Resolve a pipeline map entry (handle must be live). */
    Slot&
    slotAt(SlotHandle h)
    {
        return slotArena_.at(h);
    }

    /** @{ Explicit-workflow machinery. */
    void walk(SpecInvocation& inv, Frontier f);
    Slot& launchSlot(SpecInvocation& inv, Frontier& f,
                     const FlowNode& node);
    void onExplicitComplete(SpecInvocation& inv, Slot& slot);
    void resumeBlockedOn(SpecInvocation& inv, const Slot& slot);
    void tryCommit(SpecInvocation& inv);
    void commitSlot(SpecInvocation& inv, Slot& slot);
    /** @} */

    /** @{ Implicit-workflow machinery. */
    void speculateCallees(SpecInvocation& inv, Slot& slot);
    void onImplicitComplete(SpecInvocation& inv, Slot& slot);
    void deliverCallee(SpecInvocation& inv, Slot& slot);
    void launchCalleeSlot(SpecInvocation& inv,
                          const InstancePtr& caller,
                          std::size_t call_site, Symbol callee,
                          Value args, InputSource source,
                          bool call_predicted,
                          ValueCallback return_to);
    /** @} */

    /**
     * Squash every live slot with order >= @p from. Adopted callees
     * whose callers survive are relaunched with their validated
     * arguments. Returns the number of squashed slots.
     */
    std::size_t squashRange(SpecInvocation& inv,
                            const OrderKey& from_ref,
                            SquashReason reason);

    /** Restart the explicit walk at a squash point. */
    void rewindExplicit(SpecInvocation& inv, Frontier f);

    /**
     * If @p from lies inside a fork region, widen the squash range
     * to the fork base and replace @p f with the fork's restart
     * frontier (the whole fork re-executes).
     * @return true when adjusted
     */
    bool adjustRewindToForkBase(SpecInvocation& inv, OrderKey& from,
                                Frontier& f);

    /** @{ Fault recovery. */
    /** Delayed (post-backoff) squash + relaunch of a crashed slot. */
    void recoverFromCrash(InvocationId id, SlotHandle slot);
    /** Retries exhausted: squash everything, answer the error. */
    void failInvocation(SpecInvocation& inv, Symbol function);
    /** @} */

    void maybePromote(SpecInvocation& inv, Slot& slot);
    /** Learn (or confirm) a call-graph edge at commit time. */
    void noteCallSite(Symbol function, std::size_t call_site,
                      Symbol callee);
    void flushPendingCommit(SpecInvocation& inv,
                            const PendingCommit& p);
    void resumeParkedReads(SpecInvocation& inv);
    void resumeDepthBlocked(SpecInvocation& inv);
    void performRead(SpecInvocation& inv, const InstancePtr& inst,
                     const std::string& key,
                     ValueCallback done);
    void updateTablesAtCommit(SpecInvocation& inv, Slot& slot);
    void accountCommitted(SpecInvocation& inv, Slot& slot);
    void finish(SpecInvocation& inv);

    /** Current allowed number of speculative in-flight slots. */
    std::uint32_t effectiveSpecDepth() const;
    std::size_t liveSpeculativeSlots(const SpecInvocation& inv) const;

    Simulation& sim_;
    Cluster& cluster_;
    KvStore& store_;
    const FunctionRegistry& registry_;
    SpecConfig config_;
    Interpreter interp_;
    Launcher launcher_;
    /** Hoisted profiler reference (see Interpreter::profiler_). */
    obs::Profiler& profiler_;

    BranchPredictor bp_;
    MemoStore memo_;
    SquashMinimizer minimizer_;

    /**
     * Engine counters, merged into obs::counters() on destruction.
     * Hot paths increment through the cached references below, which
     * stay valid for the registry's lifetime (node-based storage).
     */
    obs::CounterRegistry counters_;
    std::uint64_t& ctrSpeculativeLaunches_ =
        counters_.counter("spec.speculative_launches");
    std::uint64_t& ctrSquashes_ = counters_.counter("spec.squashes");
    std::uint64_t& ctrControlMispredicts_ =
        counters_.counter("spec.control_mispredicts");
    std::uint64_t& ctrDataMispredicts_ =
        counters_.counter("spec.data_mispredicts");
    std::uint64_t& ctrBufferViolations_ =
        counters_.counter("spec.buffer_violations");
    std::uint64_t& ctrStalledReads_ =
        counters_.counter("spec.stalled_reads");
    std::uint64_t& ctrDeferredSideEffects_ =
        counters_.counter("spec.deferred_side_effects");
    std::uint64_t& ctrCommits_ = counters_.counter("spec.commits");
    std::uint64_t& ctrPureSkips_ = counters_.counter("spec.pure_skips");

    /**
     * Squash-cascade linkage for tracing: every squashRange gets a
     * fresh id; a squash triggered while another is being processed
     * records that one as its parent.
     */
    std::uint64_t nextSquashId_ = 1;
    std::uint64_t activeSquashId_ = 0;

    /** Learned call graph: (function, call site) → callee. */
    FlatMap<std::pair<Symbol, std::size_t>, CallSiteInfo> callGraph_;

    /**
     * Slab-stable storage for every live pipeline slot across all
     * invocations. Instances carry their slot's generation-tagged
     * handle, so hook dispatch resolves instance → slot with one
     * array access instead of a per-invocation hash probe; squash,
     * commit, and give-up teardown bump the generation, making every
     * outstanding handle miss (no ABA on index reuse).
     */
    SlotArray<Slot> slotArena_;

    /**
     * Arena for invocation records. Invocations churn at request
     * rate; pooling them recycles their (large) footprint through a
     * freelist instead of the heap, and anything still live when the
     * controller dies is destroyed with the pool.
     */
    SlabPool<SpecInvocation, 16> invPool_;

    InvMap live_;

    /**
     * Invocations removed from live_ whose storage must outlive the
     * current event: frames up the completion stack (completed() →
     * resumeBlockedOn() → walk() → tryCommit() → finish()) still hold
     * references into the invocation when finish() runs, so freeing
     * it immediately is a use-after-free. finish() parks the record
     * here and a daemon event recycles it into invPool_ at the
     * event-loop boundary, where no such frame can exist.
     */
    std::vector<SpecInvocation*> graveyard_;

    std::unordered_map<const Application*, FlowProgram> programs_;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_SPEC_CONTROLLER_HH
