/**
 * @file
 * The Data Buffer (§V-C).
 *
 * One Data Buffer exists per application invocation, on the node
 * running the invocation's controller. It buffers the global-storage
 * updates of in-progress (uncommitted) functions and detects data
 * dependences between concurrently executing functions:
 *
 *  - in-order RAW: the read is served from the predecessor's column
 *    (forwarding);
 *  - out-of-order RAW: the premature reader (and, transitively, its
 *    successors — handled by the controller) is squashed;
 *  - WAR / WAW: handled without squashes by column ordering.
 *
 * Columns are ordered by program order (OrderKey). The paper's
 * fixed-geometry circular buffer is modelled as a bounded ordered
 * map: the maximum number of in-flight columns is enforced by the
 * controller's speculation-depth throttle.
 */

#ifndef SPECFAAS_SPECFAAS_DATA_BUFFER_HH
#define SPECFAAS_SPECFAAS_DATA_BUFFER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/value.hh"
#include "runtime/instance.hh"
#include "storage/kv_store.hh"

namespace specfaas {

/** Outcome of a buffered read. */
struct BufferReadResult
{
    /** Value forwarded from a predecessor column, if any. */
    std::optional<Value> value;
    /** True when forwarded from the buffer (in-order RAW). */
    bool forwarded = false;
};

/** Per-invocation speculative write buffer and dependence detector. */
class DataBuffer
{
  public:
    /** @param store authoritative global storage (commit target). */
    explicit DataBuffer(KvStore& store) : store_(store) {}

    /** Open a column for an in-progress function. */
    void addColumn(InstanceId owner, OrderKey order);

    /** True when @p owner currently has a column. */
    bool hasColumn(InstanceId owner) const;

    /**
     * Invalidate a squashed function's column: all its R/W bits and
     * buffered values disappear.
     */
    void invalidateColumn(InstanceId owner);

    /**
     * Record a read by @p reader. Scans the W bits of predecessor
     * columns in reverse program order; forwards the youngest
     * predecessor value when one exists (the caller otherwise fetches
     * from global storage). Sets the reader's R bit either way.
     */
    BufferReadResult read(InstanceId reader, const std::string& key);

    /**
     * Record a write by @p writer. Scans successor columns in
     * program order up to (and including) the first column with the
     * W bit set; every successor in that range that has prematurely
     * read the record (R bit) is an out-of-order RAW violation.
     * @return violating successor owners, in program order
     */
    std::vector<InstanceId> write(InstanceId writer,
                                  const std::string& key, Value value);

    /**
     * Commit: flush @p owner's buffered writes to global storage and
     * drop the column. Only the controller calls this, for the
     * non-speculative head function.
     */
    void commitColumn(InstanceId owner);

    /**
     * Merge a returning callee's column into its caller's (§V-D):
     * buffered writes overwrite the caller's, R bits accumulate.
     */
    void mergeColumn(InstanceId callee, InstanceId caller);

    /** True when @p owner has a buffered write for @p key. */
    bool hasWrite(InstanceId owner, const std::string& key) const;

    /**
     * Instances that consumed forwarded values produced by @p writer
     * and are still live. Used when a column is invalidated for a
     * reason other than a write scan (e.g. a never-called speculative
     * callee): its forwarded readers consumed phantom data and must
     * be squashed as well.
     */
    std::vector<InstanceId> readersForwardedFrom(InstanceId writer) const;

    /**
     * Program-order coordinate of @p owner's live column; nullptr
     * when the column was never opened or already closed. Lets the
     * controller translate buffer-reported instance ids straight to
     * pipeline coordinates without its own reverse map.
     */
    const OrderKey*
    columnOrder(InstanceId owner) const
    {
        auto it = columns_.find(owner);
        return it == columns_.end() ? nullptr : &it->second;
    }

    /** Live column count (in-progress functions). */
    std::size_t columnCount() const { return columns_.size(); }

    /** Number of record rows currently tracked. */
    std::size_t rowCount() const { return rows_.size(); }

    /**
     * Approximate footprint in bytes (rows × live cells), reported
     * by the ablation bench against the paper's §VIII-B "3 KB".
     */
    std::size_t footprintBytes() const;

    /** @{ Event counters. */
    std::uint64_t forwards() const { return forwards_; }
    std::uint64_t violations() const { return violations_; }
    /** @} */

  private:
    struct Cell
    {
        bool read = false;
        bool written = false;
        Value value;
    };

    struct Row
    {
        // owner → cell; program order comes from columns_.
        std::map<InstanceId, Cell> cells;
    };

    /** Program-order position of each live column. */
    std::map<InstanceId, OrderKey> columns_;
    std::map<std::string, Row> rows_;
    /** reader → writers whose buffered values it consumed. */
    std::map<InstanceId, std::set<InstanceId>> forwardSources_;
    KvStore& store_;
    std::uint64_t forwards_ = 0;
    std::uint64_t violations_ = 0;

    /** Owners ordered by program order. */
    std::vector<InstanceId> ordered() const;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_DATA_BUFFER_HH
