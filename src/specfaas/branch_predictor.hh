/**
 * @file
 * The software branch predictor (§V-A).
 *
 * One predictor entry exists per branch point — the branch at the end
 * of an explicit `when`, or a conditional call site of an implicit
 * workflow. Each entry holds per-path sub-entries: the paper observes
 * that the path of functions executed from the start of the
 * application to the branch typically determines the outcome, so
 * outcome counts are keyed by (branch, path-history hash) with a
 * path-agnostic aggregate as fallback.
 */

#ifndef SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH
#define SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/symbol.hh"

namespace specfaas {

/** Rolling path-history hash helpers. */
namespace pathhash {

/** Initial (empty-path) hash. */
inline constexpr std::uint64_t kEmpty = 0x811c9dc5u;

/**
 * Extend a path hash with one executed function, identified by its
 * precomputed name hash. This is the engine's hot form: one xor and
 * two multiplies instead of re-hashing the name byte by byte. The
 * resulting path hash is a pure function of the executed name
 * sequence, so it is deterministic across runs and across worker
 * threads regardless of symbol intern order.
 */
inline std::uint64_t
extend(std::uint64_t h, std::uint64_t name_hash)
{
    h ^= name_hash;
    h *= 1099511628211ull;
    h ^= '/';
    h *= 1099511628211ull;
    return h == 0 ? kEmpty : h; // reserve 0 for the aggregate entry
}

/** Extend a path hash with one executed function. */
inline std::uint64_t
extend(std::uint64_t h, Symbol function)
{
    return extend(h, function.nameHash());
}

/** Extend a path hash with one executed function name. */
std::uint64_t extend(std::uint64_t h, const std::string& function);

} // namespace pathhash

/** A prediction: which target, with what confidence. */
struct BranchPrediction
{
    std::size_t target = 0;
    double probability = 0.0;
};

/** Path-indexed outcome-frequency branch predictor. */
class BranchPredictor
{
  public:
    /**
     * @param dead_band no prediction when best-probability is within
     *        this distance of 50% (§VI configurability)
     * @param min_samples observations needed before predicting
     */
    explicit BranchPredictor(double dead_band = 0.10,
                             std::uint32_t min_samples = 1);

    /**
     * Stable 64-bit identity of a branch point, built from the
     * owning function's name hash and a site discriminator (flow
     * node index or call-site op index). Deterministic across runs
     * and worker threads because Symbol::nameHash is a pure function
     * of the name.
     */
    static std::uint64_t
    branchKeyOf(std::uint64_t name_hash, std::uint64_t site)
    {
        std::uint64_t h = name_hash;
        h ^= site + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
        return h;
    }

    /** Branch identity of a raw name (tests, string call sites). */
    static std::uint64_t branchKeyOf(const std::string& branch);

    /**
     * Predict the outcome of branch @p branch_key reached over
     * @p path. Falls back to the path-agnostic aggregate when the
     * specific path has no history. Returns nullopt when there is no
     * usable history or the confidence falls inside the dead band.
     */
    std::optional<BranchPrediction>
    predict(std::uint64_t branch_key, std::uint64_t path) const;

    std::optional<BranchPrediction>
    predict(const std::string& branch, std::uint64_t path) const
    {
        return predict(branchKeyOf(branch), path);
    }

    /** Record a resolved (non-speculative) outcome. */
    void update(std::uint64_t branch_key, std::uint64_t path,
                std::size_t outcome);

    void update(const std::string& branch, std::uint64_t path,
                std::size_t outcome)
    {
        update(branchKeyOf(branch), path, outcome);
    }

    /** @{ Accuracy accounting (filled by the controller). */
    void notePrediction(bool correct);
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t hits() const { return hits_; }
    /** hits/predictions; NaN when no prediction was ever made. */
    double hitRate() const;
    /** @} */

    /** Number of (branch, path) sub-entries. */
    std::size_t entryCount() const { return table_.size(); }

    /** Forget all history. */
    void clear();

  private:
    struct Entry
    {
        std::vector<std::uint64_t> counts;
        std::uint64_t total = 0;
    };

    static std::uint64_t key(std::uint64_t branch_key,
                             std::uint64_t path);

    std::optional<BranchPrediction> fromEntry(const Entry& e) const;

    double deadBand_;
    std::uint32_t minSamples_;
    // (branch, path) → outcome counts; path 0 is the aggregate.
    std::unordered_map<std::uint64_t, Entry> table_;
    std::uint64_t predictions_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH
