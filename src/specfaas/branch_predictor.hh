/**
 * @file
 * The software branch predictor (§V-A).
 *
 * One predictor entry exists per branch point — the branch at the end
 * of an explicit `when`, or a conditional call site of an implicit
 * workflow. Each entry holds per-path sub-entries: the paper observes
 * that the path of functions executed from the start of the
 * application to the branch typically determines the outcome, so
 * outcome counts are keyed by (branch, path-history hash) with a
 * path-agnostic aggregate as fallback.
 */

#ifndef SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH
#define SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace specfaas {

/** Rolling path-history hash helpers. */
namespace pathhash {

/** Initial (empty-path) hash. */
inline constexpr std::uint64_t kEmpty = 0x811c9dc5u;

/** Extend a path hash with one executed function name. */
std::uint64_t extend(std::uint64_t h, const std::string& function);

} // namespace pathhash

/** A prediction: which target, with what confidence. */
struct BranchPrediction
{
    std::size_t target = 0;
    double probability = 0.0;
};

/** Path-indexed outcome-frequency branch predictor. */
class BranchPredictor
{
  public:
    /**
     * @param dead_band no prediction when best-probability is within
     *        this distance of 50% (§VI configurability)
     * @param min_samples observations needed before predicting
     */
    explicit BranchPredictor(double dead_band = 0.10,
                             std::uint32_t min_samples = 1);

    /**
     * Predict the outcome of @p branch reached over @p path.
     * Falls back to the path-agnostic aggregate when the specific
     * path has no history. Returns nullopt when there is no usable
     * history or the confidence falls inside the dead band.
     */
    std::optional<BranchPrediction>
    predict(const std::string& branch, std::uint64_t path) const;

    /** Record a resolved (non-speculative) outcome. */
    void update(const std::string& branch, std::uint64_t path,
                std::size_t outcome);

    /** @{ Accuracy accounting (filled by the controller). */
    void notePrediction(bool correct);
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t hits() const { return hits_; }
    /** hits/predictions; NaN when no prediction was ever made. */
    double hitRate() const;
    /** @} */

    /** Number of (branch, path) sub-entries. */
    std::size_t entryCount() const { return table_.size(); }

    /** Forget all history. */
    void clear();

  private:
    struct Entry
    {
        std::vector<std::uint64_t> counts;
        std::uint64_t total = 0;
    };

    static std::uint64_t
    key(const std::string& branch, std::uint64_t path);

    std::optional<BranchPrediction> fromEntry(const Entry& e) const;

    double deadBand_;
    std::uint32_t minSamples_;
    // (branch, path) → outcome counts; path 0 is the aggregate.
    std::unordered_map<std::uint64_t, Entry> table_;
    std::uint64_t predictions_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_SPECFAAS_BRANCH_PREDICTOR_HH
