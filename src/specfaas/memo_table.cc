#include "memo_table.hh"

#include "obs/profiler.hh"

namespace specfaas {

const MemoRow*
MemoTable::lookup(const Value& input)
{
    OBS_ZONE(profiler_, "spec/memo-lookup");
    ++lookups_;
    auto it = map_.find(input);
    if (it == map_.end())
        return nullptr;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->row;
}

void
MemoTable::update(const Value& input, MemoRow row)
{
    auto it = map_.find(input);
    if (it != map_.end()) {
        it->second->row = std::move(row);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Node{input, std::move(row)});
    map_[input] = lru_.begin();
    if (map_.size() > capacity_) {
        map_.erase(lru_.back().input);
        lru_.pop_back();
    }
}

double
MemoTable::hitRate() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
}

std::size_t
MemoTable::footprintBytes() const
{
    std::size_t bytes = 0;
    for (const auto& node : lru_) {
        bytes += node.input.toString().size();
        bytes += node.row.output.toString().size();
        for (const auto& [site, args] : node.row.calleeArgs) {
            (void)site;
            bytes += sizeof(std::size_t) + args.toString().size();
        }
    }
    return bytes;
}

MemoTable&
MemoStore::table(const std::string& function)
{
    auto it = tables_.find(function);
    if (it == tables_.end()) {
        it = tables_.emplace(function, MemoTable(capacity_)).first;
        it->second.setProfiler(profiler_);
    }
    return it->second;
}

void
MemoStore::setProfiler(obs::Profiler* profiler)
{
    profiler_ = profiler;
    for (auto& [name, t] : tables_) {
        (void)name;
        t.setProfiler(profiler);
    }
}

const MemoTable*
MemoStore::find(const std::string& function) const
{
    auto it = tables_.find(function);
    return it == tables_.end() ? nullptr : &it->second;
}

double
MemoStore::overallHitRate() const
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (const auto& [name, t] : tables_) {
        (void)name;
        lookups += t.lookups();
        hits += t.hits();
    }
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
}

std::size_t
MemoStore::totalRows() const
{
    std::size_t rows = 0;
    for (const auto& [name, t] : tables_) {
        (void)name;
        rows += t.size();
    }
    return rows;
}

std::size_t
MemoStore::totalFootprintBytes() const
{
    std::size_t bytes = 0;
    for (const auto& [name, t] : tables_) {
        (void)name;
        bytes += t.footprintBytes();
    }
    return bytes;
}

} // namespace specfaas
