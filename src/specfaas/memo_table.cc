#include "memo_table.hh"

#include "obs/profiler.hh"

namespace specfaas {

const MemoRow*
MemoTable::lookup(const Value& input)
{
    OBS_ZONE(profiler_, "spec/memo-lookup");
    ++lookups_;
    auto it = map_.find(input);
    if (it == map_.end())
        return nullptr;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->row;
}

void
MemoTable::update(const Value& input, MemoRow row)
{
    auto it = map_.find(input);
    if (it != map_.end()) {
        it->second->row = std::move(row);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Node{input, std::move(row)});
    map_[input] = lru_.begin();
    if (map_.size() > capacity_) {
        map_.erase(lru_.back().input);
        lru_.pop_back();
    }
}

double
MemoTable::hitRate() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
}

std::size_t
MemoTable::footprintBytes() const
{
    std::size_t bytes = 0;
    for (const auto& node : lru_) {
        bytes += node.input.toString().size();
        bytes += node.row.output.toString().size();
        for (const auto& [site, args] : node.row.calleeArgs) {
            (void)site;
            bytes += sizeof(std::size_t) + args.toString().size();
        }
    }
    return bytes;
}

MemoTable&
MemoStore::table(Symbol function)
{
    const std::size_t id = function.id();
    if (id >= tables_.size())
        tables_.resize(id + 1);
    if (!tables_[id]) {
        tables_[id] = std::make_unique<MemoTable>(capacity_);
        tables_[id]->setProfiler(profiler_);
    }
    return *tables_[id];
}

void
MemoStore::setProfiler(obs::Profiler* profiler)
{
    profiler_ = profiler;
    for (auto& t : tables_)
        if (t)
            t->setProfiler(profiler);
}

const MemoTable*
MemoStore::find(Symbol function) const
{
    const std::size_t id = function.id();
    return id < tables_.size() ? tables_[id].get() : nullptr;
}

double
MemoStore::overallHitRate() const
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (const auto& t : tables_) {
        if (!t)
            continue;
        lookups += t->lookups();
        hits += t->hits();
    }
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
}

std::size_t
MemoStore::totalRows() const
{
    std::size_t rows = 0;
    for (const auto& t : tables_)
        if (t)
            rows += t->size();
    return rows;
}

std::size_t
MemoStore::totalFootprintBytes() const
{
    std::size_t bytes = 0;
    for (const auto& t : tables_)
        if (t)
            bytes += t->footprintBytes();
    return bytes;
}

} // namespace specfaas
