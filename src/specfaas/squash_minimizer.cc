#include "squash_minimizer.hh"

#include <cctype>

namespace specfaas {

std::string
keyClassOf(const std::string& key)
{
    std::string out;
    out.reserve(key.size());
    bool inDigits = false;
    for (char c : key) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (!inDigits)
                out += '#';
            inDigits = true;
        } else {
            out += c;
            inDigits = false;
        }
    }
    return out;
}

void
SquashMinimizer::recordSquash(const std::string& producer,
                              const std::string& consumer,
                              const std::string& key)
{
    ++recorded_;
    auto& p = patterns_[consumer + '\n' + keyClassOf(key)];
    p.producer = producer;
    ++p.squashes;
}

std::optional<std::string>
SquashMinimizer::stallProducer(const std::string& consumer,
                               const std::string& key) const
{
    auto it = patterns_.find(consumer + '\n' + keyClassOf(key));
    if (it == patterns_.end() || it->second.squashes < threshold_)
        return std::nullopt;
    return it->second.producer;
}

} // namespace specfaas
