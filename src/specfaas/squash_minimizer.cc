#include "squash_minimizer.hh"

#include <cctype>

namespace specfaas {

std::string
keyClassOf(const std::string& key)
{
    std::string out;
    out.reserve(key.size());
    bool inDigits = false;
    for (char c : key) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (!inDigits)
                out += '#';
            inDigits = true;
        } else {
            out += c;
            inDigits = false;
        }
    }
    return out;
}

void
SquashMinimizer::recordSquash(Symbol producer, Symbol consumer,
                              const std::string& key)
{
    ++recorded_;
    auto& p = patterns_[{consumer, Symbol(keyClassOf(key))}];
    p.producer = producer;
    ++p.squashes;
}

std::optional<Symbol>
SquashMinimizer::stallProducer(Symbol consumer,
                               const std::string& key) const
{
    // Lookup only: key classes never seen by recordSquash must not be
    // interned here, or a read-heavy run would grow the symbol table
    // with one entry per distinct record key class.
    Symbol cls = Symbol::lookup(keyClassOf(key));
    if (cls.empty() && !key.empty())
        return std::nullopt; // class string never interned → no pattern
    auto it = patterns_.find({consumer, cls});
    if (it == patterns_.end() || it->second.squashes < threshold_)
        return std::nullopt;
    return it->second.producer;
}

} // namespace specfaas
