/**
 * @file
 * Azure blob-access trace synthesis and analysis (Observation 4).
 *
 * The paper analyzes blob accesses from Microsoft's Azure Functions
 * traces and reports: ~23% of 40M accesses are writes; two thirds of
 * blobs are read-only; 99.9% of writable blobs are written fewer
 * than 10 times; the gap between a write and the next read of the
 * same blob exceeds 1 s in 96% of cases and 10 s in 27%.
 *
 * The real traces are not available here, so a generator synthesizes
 * an access stream with those marginals and the analyzer recomputes
 * the paper's statistics from the raw stream — the analysis code is
 * what a user would run on the real traces.
 */

#ifndef SPECFAAS_TRACES_AZURE_BLOB_HH
#define SPECFAAS_TRACES_AZURE_BLOB_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace specfaas {

/** One blob access. */
struct BlobAccess
{
    Tick time;
    std::uint32_t blob;
    bool isWrite;
};

/** Generator parameters (defaults match the published statistics). */
struct BlobTraceConfig
{
    std::uint64_t seed = 7;
    std::uint64_t accesses = 400000; // scaled-down 40M
    std::uint32_t blobs = 60000;
    /** Fraction of accesses that are writes. */
    double writeFraction = 0.23;
    /** Fraction of blobs that are read-only. */
    double readOnlyBlobs = 2.0 / 3.0;
    /** Zipf skew of blob popularity. */
    double zipfS = 1.08;
    /** Mean spacing between consecutive accesses. */
    Tick meanGap = 5 * kMillisecond;
};

/** Synthesize an access stream with the configured marginals. */
std::vector<BlobAccess> generateBlobTrace(const BlobTraceConfig& config);

/** Statistics the paper reports in Observation 4. */
struct BlobTraceStats
{
    std::uint64_t accesses = 0;
    double writeFraction = 0.0;
    double readOnlyBlobFraction = 0.0;
    /** Of writable blobs: fraction written fewer than 10 times. */
    double writableUnder10Writes = 0.0;
    /** Fraction of write→next-read gaps exceeding 1 s. */
    double writeReadGapOver1s = 0.0;
    /** Fraction of write→next-read gaps exceeding 10 s. */
    double writeReadGapOver10s = 0.0;
};

/** Recompute Observation 4's statistics from a raw stream. */
BlobTraceStats analyzeBlobTrace(const std::vector<BlobAccess>& trace);

} // namespace specfaas

#endif // SPECFAAS_TRACES_AZURE_BLOB_HH
