#include "azure_blob.hh"

#include <cmath>
#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace specfaas {

std::vector<BlobAccess>
generateBlobTrace(const BlobTraceConfig& config)
{
    Rng rng(config.seed);
    const Tick horizon =
        static_cast<Tick>(config.accesses) * config.meanGap;

    // Zipf popularity weights over blobs.
    std::vector<double> weight(config.blobs);
    double total = 0.0;
    for (std::uint32_t b = 0; b < config.blobs; ++b) {
        weight[b] = 1.0 / std::pow(static_cast<double>(b + 1),
                                   config.zipfS);
        total += weight[b];
    }

    std::vector<BlobAccess> trace;
    trace.reserve(config.accesses);

    const auto write_budget = static_cast<std::uint64_t>(
        config.writeFraction * static_cast<double>(config.accesses));
    const std::uint64_t read_budget = config.accesses - write_budget;

    // Reads: placed uniformly over the horizon, blobs by popularity.
    std::vector<std::vector<Tick>> reads_of(config.blobs);
    for (std::uint64_t i = 0; i < read_budget; ++i) {
        const auto b = static_cast<std::uint32_t>(
            rng.zipf(config.blobs, config.zipfS));
        const Tick t = static_cast<Tick>(
            rng.uniform(0.0, static_cast<double>(horizon)));
        reads_of[b].push_back(t);
        trace.push_back(BlobAccess{t, b, false});
    }

    // Writes: only to the writable third of blobs; per-blob write
    // counts geometric so that ~99.9% of writable blobs see fewer
    // than 10 writes. Each write is placed a target gap before one of
    // the blob's reads so the write→next-read gap distribution has
    // ~96% of gaps over 1 s and ~27% over 10 s.
    auto draw_gap = [&rng]() -> Tick {
        const double u = rng.uniform();
        if (u < 0.04)
            return static_cast<Tick>(rng.uniform(0.0, 1.0) * kSecond);
        if (u < 0.73) {
            return static_cast<Tick>(rng.uniform(1.0, 10.0) *
                                     static_cast<double>(kSecond));
        }
        return 10 * kSecond +
               static_cast<Tick>(rng.exponential(20.0) *
                                 static_cast<double>(kSecond));
    };

    // Writable blobs are a (1 - readOnlyBlobs) fraction of the blobs
    // that actually see traffic. Each writable blob receives a small
    // write count (always < 10); each write is anchored a
    // target-distributed gap before a distinct read of the blob so
    // the analyzer recovers the gap marginals.
    std::vector<std::uint32_t> read_blobs;
    std::vector<std::uint32_t> unread_blobs;
    for (std::uint32_t b = 0; b < config.blobs; ++b) {
        if (!reads_of[b].empty())
            read_blobs.push_back(b);
        else
            unread_blobs.push_back(b);
    }
    // Shuffle so the writable subset isn't popularity-biased.
    for (std::size_t i = read_blobs.size(); i > 1; --i)
        std::swap(read_blobs[i - 1], read_blobs[rng.uniformInt(i)]);

    // Sizing: every writable blob gets ~8 writes (always < 10,
    // Observation 4). The write budget then needs n_w writable blobs;
    // when the read blobs alone cannot provide n_w while keeping the
    // read-only fraction, never-read write-only blobs make up the
    // rest (they also exist in the real traces).
    const double ro = config.readOnlyBlobs;
    const double n_w_target =
        static_cast<double>(write_budget) / 8.0 + 1.0;
    const double r = static_cast<double>(read_blobs.size());
    // Solve n_w = (1-ro)(r + pw) with n_w = from_read + pw and
    // 0 <= pw <= r(1-ro)/ro (beyond which every writable blob would
    // be write-only and the read-only fraction could not hold).
    const double pw_raw =
        n_w_target / std::max(1.0 - ro, 1e-9) - r;
    const double pw_max = r * (1.0 - ro) / std::max(ro, 1e-9);
    const double pw = std::clamp(pw_raw, 0.0, pw_max);
    const double n_w_d = std::min(n_w_target, (1.0 - ro) * (r + pw));
    const auto pure_write = static_cast<std::size_t>(pw);
    const auto n_w = static_cast<std::size_t>(n_w_d);
    const std::size_t from_read =
        n_w > pure_write ? n_w - pure_write : 0;

    std::vector<std::uint32_t> writable(
        read_blobs.begin(),
        read_blobs.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(from_read, read_blobs.size())));
    for (std::size_t i = 0;
         i < std::min(pure_write, unread_blobs.size()); ++i) {
        writable.push_back(unread_blobs[i]);
    }

    std::uint64_t writes_emitted = 0;
    for (const std::uint32_t b : writable) {
        if (writes_emitted >= write_budget)
            break;
        const auto count = static_cast<std::uint32_t>(
            rng.uniformInt(std::int64_t{7}, std::int64_t{9}));
        auto& reads = reads_of[b];
        std::sort(reads.begin(), reads.end());
        const auto anchored = std::min<std::uint32_t>(
            count, static_cast<std::uint32_t>(reads.size()));
        for (std::uint32_t w = 0;
             w < anchored && writes_emitted < write_budget; ++w) {
            // Distinct anchors spread over the blob's reads, so the
            // write→next-read gap equals the drawn gap.
            const std::size_t idx = w * reads.size() / anchored;
            const Tick t = std::max<Tick>(0, reads[idx] - draw_gap());
            trace.push_back(BlobAccess{t, b, true});
            ++writes_emitted;
        }
        for (std::uint32_t w = anchored;
             w < count && writes_emitted < write_budget; ++w) {
            const Tick t = static_cast<Tick>(
                rng.uniform(0.0, static_cast<double>(horizon)));
            trace.push_back(BlobAccess{t, b, true});
            ++writes_emitted;
        }
    }

    std::sort(trace.begin(), trace.end(),
              [](const BlobAccess& a, const BlobAccess& b) {
                  return a.time < b.time;
              });
    return trace;
}

BlobTraceStats
analyzeBlobTrace(const std::vector<BlobAccess>& trace)
{
    BlobTraceStats stats;
    stats.accesses = trace.size();
    if (trace.empty())
        return stats;

    std::uint64_t writes = 0;
    std::map<std::uint32_t, std::uint64_t> write_count;
    std::map<std::uint32_t, bool> seen;
    // Pending write time per blob, for write→next-read gaps.
    std::map<std::uint32_t, Tick> last_write;
    std::uint64_t gaps = 0;
    std::uint64_t gaps_over_1s = 0;
    std::uint64_t gaps_over_10s = 0;

    for (const auto& a : trace) {
        seen[a.blob] = true;
        if (a.isWrite) {
            ++writes;
            ++write_count[a.blob];
            last_write[a.blob] = a.time;
        } else {
            auto it = last_write.find(a.blob);
            if (it != last_write.end()) {
                const Tick gap = a.time - it->second;
                ++gaps;
                if (gap > kSecond)
                    ++gaps_over_1s;
                if (gap > 10 * kSecond)
                    ++gaps_over_10s;
                last_write.erase(it);
            }
        }
    }

    stats.writeFraction =
        static_cast<double>(writes) / static_cast<double>(trace.size());

    std::uint64_t writable = 0;
    std::uint64_t writable_under_10 = 0;
    for (const auto& [blob, flag] : seen) {
        (void)flag;
        auto it = write_count.find(blob);
        if (it == write_count.end() || it->second == 0)
            continue;
        ++writable;
        if (it->second < 10)
            ++writable_under_10;
    }
    stats.readOnlyBlobFraction =
        1.0 - static_cast<double>(writable) /
                  static_cast<double>(seen.size());
    stats.writableUnder10Writes =
        writable == 0 ? 1.0
                      : static_cast<double>(writable_under_10) /
                            static_cast<double>(writable);
    stats.writeReadGapOver1s =
        gaps == 0 ? 0.0
                  : static_cast<double>(gaps_over_1s) /
                        static_cast<double>(gaps);
    stats.writeReadGapOver10s =
        gaps == 0 ? 0.0
                  : static_cast<double>(gaps_over_10s) /
                        static_cast<double>(gaps);
    return stats;
}

} // namespace specfaas
