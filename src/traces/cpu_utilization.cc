#include "cpu_utilization.hh"

#include <algorithm>
#include <cmath>

namespace specfaas {

std::vector<NodeUtilization>
generateCpuTrace(const CpuTraceConfig& config)
{
    Rng rng(config.seed);
    std::vector<NodeUtilization> nodes;
    nodes.reserve(config.nodes);
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
        const double baseline =
            rng.normal(config.baselineMean, config.baselineStddev);
        const double phase = rng.uniform(0.0, 2.0 * M_PI);
        const double amp =
            config.diurnalAmplitude * rng.uniform(0.6, 1.4);
        NodeUtilization series;
        series.reserve(config.samplesPerNode);
        for (std::uint32_t s = 0; s < config.samplesPerNode; ++s) {
            const double t = 2.0 * M_PI * static_cast<double>(s) /
                             static_cast<double>(config.samplesPerNode);
            double u = baseline + amp * std::sin(t + phase) +
                       rng.normal(0.0, config.noiseStddev);
            series.push_back(std::clamp(u, 0.0, 1.0));
        }
        nodes.push_back(std::move(series));
    }
    return nodes;
}

std::vector<std::vector<CdfPoint>>
utilizationCdfs(const std::vector<NodeUtilization>& nodes,
                const std::vector<double>& percentiles,
                std::size_t cdf_points)
{
    std::vector<std::vector<CdfPoint>> out;
    out.reserve(percentiles.size());
    for (double p : percentiles) {
        std::vector<double> per_node;
        per_node.reserve(nodes.size());
        for (const auto& series : nodes)
            per_node.push_back(percentile(series, p));
        out.push_back(empiricalCdf(std::move(per_node), cdf_points));
    }
    return out;
}

} // namespace specfaas
