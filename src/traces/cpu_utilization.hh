/**
 * @file
 * Alibaba bare-metal CPU-utilization trace synthesis and analysis
 * (Observation 6 / Fig. 4).
 *
 * The paper extracts per-node CPU utilization from the Alibaba
 * cluster traces, computes each node's P50..P90 utilization, and
 * plots the cluster-wide CDF of those percentiles, observing that
 * "most of the time, the CPU usage is 60-80%" — headroom that can
 * absorb mis-speculated work. The proprietary traces are replaced by
 * a generator producing per-node utilization time series with the
 * same character (diurnal swing + noise around a node-specific
 * baseline); the analyzer computes exactly the paper's CDFs.
 */

#ifndef SPECFAAS_TRACES_CPU_UTILIZATION_HH
#define SPECFAAS_TRACES_CPU_UTILIZATION_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats_util.hh"

namespace specfaas {

/** Generator parameters. */
struct CpuTraceConfig
{
    std::uint64_t seed = 13;
    std::uint32_t nodes = 1000;
    std::uint32_t samplesPerNode = 288; // 5-minute samples over a day
    /** Mean of node baseline utilization. */
    double baselineMean = 0.58;
    /** Spread of node baselines. */
    double baselineStddev = 0.10;
    /** Amplitude of the diurnal swing. */
    double diurnalAmplitude = 0.12;
    /** Sample noise. */
    double noiseStddev = 0.06;
};

/** Per-node utilization samples in [0,1]. */
using NodeUtilization = std::vector<double>;

/** Synthesize per-node utilization time series. */
std::vector<NodeUtilization>
generateCpuTrace(const CpuTraceConfig& config);

/**
 * For each percentile level (e.g. 50, 60, 70, 80, 90), compute each
 * node's Pk utilization, then the cluster-wide CDF of those values —
 * the curves of Fig. 4.
 */
std::vector<std::vector<CdfPoint>>
utilizationCdfs(const std::vector<NodeUtilization>& nodes,
                const std::vector<double>& percentiles,
                std::size_t cdf_points = 20);

} // namespace specfaas

#endif // SPECFAAS_TRACES_CPU_UTILIZATION_HH
