/**
 * @file
 * Function-sequence determinism analysis (Observation 2).
 *
 * Counts how often each distinct function sequence occurs across the
 * invocations of one application and reports the share of the most
 * popular sequence (90% Alibaba, 98% TrainTicket in the paper).
 */

#ifndef SPECFAAS_TRACES_DETERMINISM_HH
#define SPECFAAS_TRACES_DETERMINISM_HH

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/engine.hh"

namespace specfaas {

/** Result of a sequence-popularity analysis. */
struct SequenceStats
{
    std::size_t invocations = 0;
    std::size_t distinctSequences = 0;
    /** Share of the most popular sequence, in [0,1]. */
    double dominantShare = 0.0;
    /** The most popular sequence itself. */
    std::vector<std::string> dominantSequence;
};

/** Analyze the executed sequences of a set of invocations. */
SequenceStats
analyzeSequences(const std::vector<InvocationResult>& results);

} // namespace specfaas

#endif // SPECFAAS_TRACES_DETERMINISM_HH
