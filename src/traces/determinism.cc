#include "determinism.hh"

#include <map>

namespace specfaas {

SequenceStats
analyzeSequences(const std::vector<InvocationResult>& results)
{
    SequenceStats stats;
    stats.invocations = results.size();
    if (results.empty())
        return stats;

    std::map<std::vector<std::string>, std::size_t> counts;
    for (const auto& r : results)
        ++counts[r.executedSequence];

    stats.distinctSequences = counts.size();
    std::size_t best = 0;
    for (const auto& [seq, count] : counts) {
        if (count > best) {
            best = count;
            stats.dominantSequence = seq;
        }
    }
    stats.dominantShare = static_cast<double>(best) /
                          static_cast<double>(results.size());
    return stats;
}

} // namespace specfaas
