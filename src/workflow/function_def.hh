/**
 * @file
 * The function model: a FaaS function is a deterministic program of
 * abstract operations (compute bursts, global storage reads/writes,
 * calls to other functions, HTTP requests, local temp-file I/O).
 *
 * The platform treats functions as black boxes (§II-A): controllers
 * only observe the operations a running handler issues. Because op
 * programs compute their values deterministically from the function
 * input plus whatever the function has read, memoization, validation
 * and squash are exercised for real — a speculative run fed a wrong
 * input genuinely produces wrong downstream values that the commit
 * validation must catch.
 */

#ifndef SPECFAAS_WORKFLOW_FUNCTION_DEF_HH
#define SPECFAAS_WORKFLOW_FUNCTION_DEF_HH

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/symbol.hh"
#include "common/types.hh"
#include "common/value.hh"

namespace specfaas {

/**
 * Execution environment of one handler: the request input plus named
 * results of reads/calls/local computations.
 *
 * Variables are stored flat, sorted by interned symbol id: lookups
 * binary-search over integers and writes shift a small contiguous
 * vector instead of allocating a tree node per variable.
 */
class Env
{
  public:
    Value input;

    /** Variable lookup; returns null when unset. */
    const Value& var(Symbol name) const;

    /** String-keyed lookup (interns the name). */
    const Value&
    var(std::string_view name) const
    {
        return var(Symbol(name));
    }

    /** Set (insert or overwrite) a variable. */
    void set(Symbol name, Value v);

    std::size_t varCount() const { return vars_.size(); }

  private:
    std::vector<std::pair<Symbol, Value>> vars_;
};

/** Computes a Value from the environment (pure). */
using ValueFn = std::function<Value(const Env&)>;

/** Computes a bool from the environment (pure). */
using BoolFn = std::function<bool(const Env&)>;

/** Computes a storage key / file name from the environment (pure). */
using KeyFn = std::function<std::string(const Env&)>;

/** One abstract operation inside a function body. */
struct Op
{
    enum class Kind {
        /** Burn CPU for `duration` ticks (plus jitter). */
        Compute,
        /** Read global record key() into var. */
        StorageRead,
        /** Write value() to global record key(). */
        StorageWrite,
        /** Invoke `callee` with args value(); result into var. */
        Call,
        /** External HTTP request (side effect; deferred while spec). */
        Http,
        /** Write to a local temporary file key() (copy-on-write). */
        FileWrite,
        /** Read a local temporary file key(). */
        FileRead,
        /** Pure local computation: var = value(). */
        SetVar,
    };

    Kind kind;

    /** Compute: mean CPU burst length. */
    Tick duration = 0;

    /** StorageRead/Write, File ops: record key / file name. */
    KeyFn key;

    /** StorageWrite/Call/SetVar: value, call args, var value. */
    ValueFn value;

    /** StorageRead/Call/SetVar/FileRead: destination variable. */
    Symbol var;

    /** Call: callee function name. */
    Symbol callee;

    /**
     * Optional guard: op executes only when guard(env) is true.
     * Guarded Call ops are the control-dependent subroutine calls of
     * implicit workflows (§II-C).
     */
    BoolFn guard;

    /** @{ Builders. */
    static Op compute(Tick duration);
    static Op storageRead(KeyFn key, std::string var);
    static Op storageWrite(KeyFn key, ValueFn value);
    static Op call(std::string callee, ValueFn args, std::string var);
    static Op callIf(BoolFn guard, std::string callee, ValueFn args,
                     std::string var);
    static Op http();
    static Op fileWrite(KeyFn name);
    static Op fileRead(KeyFn name, std::string var);
    static Op setVar(std::string var, ValueFn value);
    /** @} */
};

/** Definition of one FaaS function. */
struct FunctionDef
{
    std::string name;

    /** Interned name; filled by FunctionRegistry::add. */
    Symbol sym;

    /** Op program executed by each handler. */
    std::vector<Op> body;

    /**
     * Output computed from the final environment when the body
     * finishes. Defaults to echoing the input.
     */
    ValueFn output;

    /**
     * Relative jitter (coefficient of variation) applied to each
     * Compute burst.
     */
    double computeCv = 0.08;

    /** `pure-function` annotation (§VI): skippable on memo hit. */
    bool pureAnnotation = false;

    /** `non-speculative` annotation (§VI): never launched early. */
    bool nonSpeculativeAnnotation = false;

    /** @{ Static structure queries used by the characterization. */
    bool readsGlobalState() const;
    bool writesGlobalState() const;
    bool hasCalls() const;
    std::size_t callCount() const;
    bool hasSideEffects() const; // storage writes, file writes, HTTP
    bool isEffectivelyPure() const; // no global reads/writes/side eff.
    Tick totalComputeTime() const;
    /** @} */
};

} // namespace specfaas

#endif // SPECFAAS_WORKFLOW_FUNCTION_DEF_HH
