/**
 * @file
 * Flat compiled form of an explicit workflow.
 *
 * The composer tree is linearized at application "compile time" into
 * a graph of flow nodes — exactly the information the paper's
 * Sequence Table records (§V-A): for each function, the next function
 * to execute, with branch entries carrying one pointer per target.
 * Both the baseline conductor and the SpecFaaS sequence table consume
 * this program.
 */

#ifndef SPECFAAS_WORKFLOW_FLOW_PROGRAM_HH
#define SPECFAAS_WORKFLOW_FLOW_PROGRAM_HH

#include <string>
#include <vector>

#include "common/symbol.hh"
#include "common/value.hh"
#include "workflow/workflow.hh"

namespace specfaas {

/** Index of a node inside a FlowProgram; -1 = none. */
using FlowIndex = int;

inline constexpr FlowIndex kFlowNone = -1;

/** One node of the compiled workflow graph. */
struct FlowNode
{
    enum class Kind {
        /** Run a function, then go to `next`. */
        Func,
        /**
         * Run the branch-condition function; its output selects one
         * of `targets` (§II-A `when`).
         */
        Branch,
        /** Fork: start every node in `targets` concurrently. */
        Fork,
        /** Join: waits for its fork's branches, then go to `next`. */
        Join,
    };

    Kind kind = Kind::Func;

    /** Func/Branch: function name (interned). */
    Symbol function;

    /** Func/Join: fall-through successor; kFlowNone terminates. */
    FlowIndex next = kFlowNone;

    /** Branch: target per outcome. Fork: parallel branch heads. */
    std::vector<FlowIndex> targets;

    /** Fork: the matching Join node. */
    FlowIndex join = kFlowNone;

    /** Join: the matching Fork node. */
    FlowIndex fork = kFlowNone;
};

/** Compiled workflow. */
struct FlowProgram
{
    std::vector<FlowNode> nodes;
    FlowIndex entry = kFlowNone;

    const FlowNode& node(FlowIndex i) const { return nodes[i]; }

    /**
     * Resolve a branch outcome from the condition function's output:
     * an Int output indexes `targets` directly; any other output
     * selects targets[0] when truthy, targets[1] (or termination for
     * a one-armed branch) otherwise.
     * @return the chosen target, or kFlowNone for fall-off
     */
    FlowIndex resolveBranch(FlowIndex branch, const Value& output) const;

    /** Human-readable dump for tracing and tests. */
    std::string dump() const;
};

/**
 * Compile an explicit composer tree into a FlowProgram.
 *
 * Branch arms converge on the `when`'s continuation; parallel
 * children fork from one Fork node and meet at its Join node.
 */
FlowProgram compileWorkflow(const WorkflowNode& root);

/** Compile a whole application (explicit type only). */
FlowProgram compileWorkflow(const Application& app);

} // namespace specfaas

#endif // SPECFAAS_WORKFLOW_FLOW_PROGRAM_HH
