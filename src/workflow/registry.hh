/**
 * @file
 * Registries for function definitions and applications.
 *
 * The platform looks functions up by name at launch time (functions
 * are deployed independently of workflows); applications are looked
 * up by suite/name by the experiment drivers.
 */

#ifndef SPECFAAS_WORKFLOW_REGISTRY_HH
#define SPECFAAS_WORKFLOW_REGISTRY_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "workflow/workflow.hh"

namespace specfaas {

/** Name → FunctionDef lookup for deployed functions. */
class FunctionRegistry
{
  public:
    /** Register one function; overwrites an existing definition. */
    void add(FunctionDef def);

    /** Register every function of an application. */
    void addApplication(const Application& app);

    /** Lookup; aborts when the function is unknown. */
    const FunctionDef& get(const std::string& name) const;

    /** Lookup; nullptr when unknown. */
    const FunctionDef* find(const std::string& name) const;

    /** @{ Symbol-keyed lookup: one array index, no hashing. */
    const FunctionDef& get(Symbol name) const;
    const FunctionDef* find(Symbol name) const;
    /** @} */

    /** Number of registered functions. */
    std::size_t size() const { return functions_.size(); }

  private:
    std::unordered_map<std::string, FunctionDef> functions_;
    /** Dense symbol-id → definition (nullptr gaps for non-function
     * symbols); pointers into functions_ stay stable (node-based). */
    std::vector<const FunctionDef*> bySymbol_;
};

/** Collection of applications, grouped by suite. */
class ApplicationRegistry
{
  public:
    /** Register one application. */
    void add(Application app);

    /** Lookup by name; aborts when unknown. */
    const Application& get(const std::string& name) const;

    /** All applications of one suite, in registration order. */
    std::vector<const Application*> suite(const std::string& suite) const;

    /** All applications, in registration order. */
    std::vector<const Application*> all() const;

    /** All distinct suite names, in first-seen order. */
    std::vector<std::string> suiteNames() const;

  private:
    std::vector<std::unique_ptr<Application>> apps_;
};

} // namespace specfaas

#endif // SPECFAAS_WORKFLOW_REGISTRY_HH
