/**
 * @file
 * Workflow intermediate representation.
 *
 * Explicit workflows are composer trees (sequence / when / parallel,
 * §II-A) over named functions. Implicit workflows are a single root
 * function whose body issues Call ops (§II-C). An Application bundles
 * either kind with its function definitions, request generator, and
 * initial global-store seeding.
 */

#ifndef SPECFAAS_WORKFLOW_WORKFLOW_HH
#define SPECFAAS_WORKFLOW_WORKFLOW_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/value.hh"
#include "storage/kv_store.hh"
#include "workflow/function_def.hh"

namespace specfaas {

/** Node of a composer workflow tree. */
struct WorkflowNode
{
    enum class Kind { Task, Sequence, When, Parallel, While, DoWhile };

    Kind kind = Kind::Task;

    /** Task: the function. When/While/DoWhile: the branch-condition
     * function. */
    std::string function;

    /**
     * Sequence/Parallel: ordered children.
     * When: children[0] = true target, children[1] = false target
     * (children[1] may be absent for a one-armed branch).
     * While/DoWhile: children[0] = loop body.
     */
    std::vector<WorkflowNode> children;
};

/** @{ Composer-style builders (mirroring OpenWhisk Composer). */
WorkflowNode task(std::string function);
WorkflowNode sequence(std::vector<WorkflowNode> children);
WorkflowNode when(std::string cond_function, WorkflowNode true_target);
WorkflowNode when(std::string cond_function, WorkflowNode true_target,
                  WorkflowNode false_target);
WorkflowNode parallel(std::vector<WorkflowNode> children);
/**
 * Loop: run cond_function; while its output is truthy, run the body
 * and re-evaluate (§II-A: loops compile to the same code as `when`,
 * with a backward edge). The body's final output feeds the next
 * condition evaluation; the loop's overall output is the condition's
 * last input.
 */
WorkflowNode whileLoop(std::string cond_function, WorkflowNode body);
/** Like whileLoop, but the body runs once before the first test. */
WorkflowNode doWhileLoop(std::string cond_function, WorkflowNode body);
/** @} */

/** How the workflow of an application is expressed. */
enum class WorkflowType { Explicit, Implicit };

/** A complete serverless application. */
struct Application
{
    std::string name;
    std::string suite;
    WorkflowType type = WorkflowType::Explicit;

    /** Explicit: the composer tree. */
    WorkflowNode workflow;

    /** Implicit: entry function (its body drives everything). */
    std::string rootFunction;

    /** Every function of the application, including branch-condition
     * functions. */
    std::vector<FunctionDef> functions;

    /** Draws one request payload (dataset-driven). */
    std::function<Value(Rng&)> inputGen;

    /** Seeds the global store before a run (optional). */
    std::function<void(KvStore&, Rng&)> seedStore;

    /** Find a function definition by name; null when absent. */
    const FunctionDef* findFunction(const std::string& fname) const;
    const FunctionDef* findFunction(Symbol fname) const;

    /** Names of all functions, in definition order. */
    std::vector<std::string> functionNames() const;

    /** @{ Structure statistics for the Table I characterization. */
    std::size_t functionCount() const { return functions.size(); }
    std::size_t branchCount() const;
    std::size_t dataDependenceCount() const;
    double avgCalleesPerCallingFunction() const;
    std::size_t maxDagDepth() const;
    /** @} */
};

} // namespace specfaas

#endif // SPECFAAS_WORKFLOW_WORKFLOW_HH
