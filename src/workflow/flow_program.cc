#include "flow_program.hh"

#include "common/logging.hh"

namespace specfaas {

namespace {

/**
 * Compile @p n so that execution continues at @p cont afterwards.
 * @return entry index of the compiled fragment
 */
FlowIndex
compileNode(const WorkflowNode& n, FlowIndex cont,
            std::vector<FlowNode>& out)
{
    switch (n.kind) {
      case WorkflowNode::Kind::Task: {
        FlowNode fn;
        fn.kind = FlowNode::Kind::Func;
        fn.function = Symbol(n.function);
        fn.next = cont;
        out.push_back(std::move(fn));
        return static_cast<FlowIndex>(out.size() - 1);
      }
      case WorkflowNode::Kind::Sequence: {
        FlowIndex entry = cont;
        for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
            entry = compileNode(*it, entry, out);
        return entry;
      }
      case WorkflowNode::Kind::When: {
        SPECFAAS_ASSERT(!n.children.empty(), "when with no targets");
        const FlowIndex true_entry = compileNode(n.children[0], cont, out);
        const FlowIndex false_entry =
            n.children.size() > 1 ? compileNode(n.children[1], cont, out)
                                  : cont;
        FlowNode br;
        br.kind = FlowNode::Kind::Branch;
        br.function = Symbol(n.function);
        br.targets = {true_entry, false_entry};
        out.push_back(std::move(br));
        return static_cast<FlowIndex>(out.size() - 1);
      }
      case WorkflowNode::Kind::While:
      case WorkflowNode::Kind::DoWhile: {
        SPECFAAS_ASSERT(n.children.size() == 1, "loop needs one body");
        // The condition is a Branch with a backward edge: the body's
        // continuation is the branch itself. Allocate the branch
        // first so the body can point back at it.
        FlowNode br;
        br.kind = FlowNode::Kind::Branch;
        br.function = Symbol(n.function);
        out.push_back(std::move(br));
        const auto branch_idx = static_cast<FlowIndex>(out.size() - 1);
        const FlowIndex body_entry =
            compileNode(n.children[0], branch_idx, out);
        out[branch_idx].targets = {body_entry, cont};
        return n.kind == WorkflowNode::Kind::While ? branch_idx
                                                   : body_entry;
      }
      case WorkflowNode::Kind::Parallel: {
        SPECFAAS_ASSERT(!n.children.empty(), "parallel with no children");
        FlowNode join;
        join.kind = FlowNode::Kind::Join;
        join.next = cont;
        out.push_back(std::move(join));
        const auto join_idx = static_cast<FlowIndex>(out.size() - 1);

        FlowNode fork;
        fork.kind = FlowNode::Kind::Fork;
        fork.join = join_idx;
        for (const auto& child : n.children)
            fork.targets.push_back(compileNode(child, join_idx, out));
        out.push_back(std::move(fork));
        const auto fork_idx = static_cast<FlowIndex>(out.size() - 1);
        out[join_idx].fork = fork_idx;
        return fork_idx;
      }
    }
    panic("unreachable workflow node kind");
}

} // namespace

FlowIndex
FlowProgram::resolveBranch(FlowIndex branch, const Value& output) const
{
    const FlowNode& n = nodes[branch];
    SPECFAAS_ASSERT(n.kind == FlowNode::Kind::Branch,
                    "resolveBranch on non-branch node %d", branch);
    if (output.isInt()) {
        const auto idx = static_cast<std::size_t>(output.asInt());
        SPECFAAS_ASSERT(idx < n.targets.size(),
                        "branch outcome %zu out of range", idx);
        return n.targets[idx];
    }
    return output.truthy() ? n.targets[0]
                           : (n.targets.size() > 1 ? n.targets[1]
                                                   : kFlowNone);
}

std::string
FlowProgram::dump() const
{
    std::string out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const FlowNode& n = nodes[i];
        out += strFormat("[%zu] ", i);
        switch (n.kind) {
          case FlowNode::Kind::Func:
            out += strFormat("func %s -> %d", n.function.str().c_str(),
                             n.next);
            break;
          case FlowNode::Kind::Branch: {
            out += strFormat("branch %s ->", n.function.str().c_str());
            for (FlowIndex t : n.targets)
                out += strFormat(" %d", t);
            break;
          }
          case FlowNode::Kind::Fork: {
            out += "fork ->";
            for (FlowIndex t : n.targets)
                out += strFormat(" %d", t);
            out += strFormat(" (join %d)", n.join);
            break;
          }
          case FlowNode::Kind::Join:
            out += strFormat("join (fork %d) -> %d", n.fork, n.next);
            break;
        }
        if (static_cast<FlowIndex>(i) == entry)
            out += "  <entry>";
        out += '\n';
    }
    return out;
}

FlowProgram
compileWorkflow(const WorkflowNode& root)
{
    FlowProgram program;
    program.entry = compileNode(root, kFlowNone, program.nodes);
    return program;
}

FlowProgram
compileWorkflow(const Application& app)
{
    SPECFAAS_ASSERT(app.type == WorkflowType::Explicit,
                    "compiling implicit application %s", app.name.c_str());
    return compileWorkflow(app.workflow);
}

} // namespace specfaas
