#include "workflow.hh"

#include <algorithm>
#include <map>
#include <set>

namespace specfaas {

WorkflowNode
task(std::string function)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::Task;
    n.function = std::move(function);
    return n;
}

WorkflowNode
sequence(std::vector<WorkflowNode> children)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::Sequence;
    n.children = std::move(children);
    return n;
}

WorkflowNode
when(std::string cond_function, WorkflowNode true_target)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::When;
    n.function = std::move(cond_function);
    n.children.push_back(std::move(true_target));
    return n;
}

WorkflowNode
when(std::string cond_function, WorkflowNode true_target,
     WorkflowNode false_target)
{
    WorkflowNode n = when(std::move(cond_function), std::move(true_target));
    n.children.push_back(std::move(false_target));
    return n;
}

WorkflowNode
parallel(std::vector<WorkflowNode> children)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::Parallel;
    n.children = std::move(children);
    return n;
}

WorkflowNode
whileLoop(std::string cond_function, WorkflowNode body)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::While;
    n.function = std::move(cond_function);
    n.children.push_back(std::move(body));
    return n;
}

WorkflowNode
doWhileLoop(std::string cond_function, WorkflowNode body)
{
    WorkflowNode n;
    n.kind = WorkflowNode::Kind::DoWhile;
    n.function = std::move(cond_function);
    n.children.push_back(std::move(body));
    return n;
}

const FunctionDef*
Application::findFunction(const std::string& fname) const
{
    for (const auto& f : functions)
        if (f.name == fname)
            return &f;
    return nullptr;
}

const FunctionDef*
Application::findFunction(Symbol fname) const
{
    // By name, not by sym: definitions acquire their sym only when a
    // FunctionRegistry adopts them; app-held copies may predate that.
    return findFunction(fname.str());
}

std::vector<std::string>
Application::functionNames() const
{
    std::vector<std::string> names;
    names.reserve(functions.size());
    for (const auto& f : functions)
        names.push_back(f.name);
    return names;
}

namespace {

std::size_t
countWhens(const WorkflowNode& n)
{
    std::size_t count = n.kind == WorkflowNode::Kind::When ||
                                n.kind == WorkflowNode::Kind::While ||
                                n.kind == WorkflowNode::Kind::DoWhile
                            ? 1
                            : 0;
    for (const auto& c : n.children)
        count += countWhens(c);
    return count;
}

/** Depth of the longest function chain in an explicit tree. */
std::size_t
treeDepth(const WorkflowNode& n)
{
    switch (n.kind) {
      case WorkflowNode::Kind::Task:
        return 1;
      case WorkflowNode::Kind::Sequence: {
        std::size_t total = 0;
        for (const auto& c : n.children)
            total += treeDepth(c);
        return total;
      }
      case WorkflowNode::Kind::When: {
        std::size_t deepest = 0;
        for (const auto& c : n.children)
            deepest = std::max(deepest, treeDepth(c));
        return 1 + deepest; // the condition function + deepest arm
      }
      case WorkflowNode::Kind::Parallel: {
        std::size_t deepest = 0;
        for (const auto& c : n.children)
            deepest = std::max(deepest, treeDepth(c));
        return deepest;
      }
      case WorkflowNode::Kind::While:
      case WorkflowNode::Kind::DoWhile:
        // Statically: the condition plus one body iteration.
        return 1 + treeDepth(n.children[0]);
    }
    return 0;
}

} // namespace

std::size_t
Application::branchCount() const
{
    std::size_t count = 0;
    if (type == WorkflowType::Explicit)
        count += countWhens(workflow);
    // Guarded calls are the cross-function branches of implicit
    // workflows: whether the callee runs is control-dependent.
    for (const auto& f : functions)
        for (const auto& op : f.body)
            if (op.kind == Op::Kind::Call && op.guard)
                ++count;
    return count;
}

namespace {

/** Sequence edges: output-of-one feeds input-of-the-next (§II-A). */
std::size_t
countSequenceEdges(const WorkflowNode& n)
{
    std::size_t edges = 0;
    if (n.kind == WorkflowNode::Kind::Sequence &&
        n.children.size() > 1) {
        edges += n.children.size() - 1;
    }
    for (const auto& c : n.children)
        edges += countSequenceEdges(c);
    return edges;
}

} // namespace

std::size_t
Application::dataDependenceCount() const
{
    // Cross-function data dependences: sequence edges of explicit
    // workflows (a producer's output is the consumer's input), plus
    // producer→consumer pairs communicating through global storage
    // (a function writes records another function of the application
    // reads). Call-return edges of implicit workflows are not
    // counted here, matching the paper's separate "callees per
    // function" metric.
    std::size_t count = 0;
    if (type == WorkflowType::Explicit)
        count += countSequenceEdges(workflow);

    std::size_t writers = 0;
    std::size_t readers = 0;
    for (const auto& f : functions) {
        if (f.writesGlobalState())
            ++writers;
        if (f.readsGlobalState())
            ++readers;
    }
    count += std::min(writers, readers);
    return count;
}

double
Application::avgCalleesPerCallingFunction() const
{
    std::size_t calls = 0;
    std::size_t callers = 0;
    for (const auto& f : functions) {
        const std::size_t n = f.callCount();
        if (n > 0) {
            ++callers;
            calls += n;
        }
    }
    return callers == 0
               ? 0.0
               : static_cast<double>(calls) / static_cast<double>(callers);
}

namespace {

std::size_t
callDepth(const Application& app, const std::string& fname,
          std::set<std::string>& visiting)
{
    const FunctionDef* f = app.findFunction(fname);
    if (f == nullptr || visiting.count(fname))
        return 1;
    visiting.insert(fname);
    std::size_t deepest = 0;
    for (const auto& op : f->body)
        if (op.kind == Op::Kind::Call)
            deepest =
                std::max(deepest, callDepth(app, op.callee.str(), visiting));
    visiting.erase(fname);
    return 1 + deepest;
}

} // namespace

std::size_t
Application::maxDagDepth() const
{
    if (type == WorkflowType::Explicit)
        return treeDepth(workflow);
    std::set<std::string> visiting;
    // Subtract 1: depth counts tiers below the root in the paper's
    // multi-tier terminology, but we report the full chain depth to
    // match Table I's "Max DAG depth" for explicit suites; for
    // implicit suites the call-tree height is the comparable figure.
    return callDepth(*this, rootFunction, visiting);
}

} // namespace specfaas
