#include "registry.hh"

#include "common/logging.hh"

namespace specfaas {

void
FunctionRegistry::add(FunctionDef def)
{
    def.sym = Symbol(def.name);
    const Symbol sym = def.sym;
    FunctionDef& stored = functions_[def.name];
    stored = std::move(def);
    if (sym.id() >= bySymbol_.size())
        bySymbol_.resize(sym.id() + 1, nullptr);
    bySymbol_[sym.id()] = &stored;
}

void
FunctionRegistry::addApplication(const Application& app)
{
    for (const auto& f : app.functions)
        add(f);
}

const FunctionDef&
FunctionRegistry::get(const std::string& name) const
{
    const FunctionDef* f = find(name);
    SPECFAAS_ASSERT(f != nullptr, "unknown function %s", name.c_str());
    return *f;
}

const FunctionDef*
FunctionRegistry::find(const std::string& name) const
{
    auto it = functions_.find(name);
    return it == functions_.end() ? nullptr : &it->second;
}

const FunctionDef&
FunctionRegistry::get(Symbol name) const
{
    const FunctionDef* f = find(name);
    SPECFAAS_ASSERT(f != nullptr, "unknown function %s",
                    name.str().c_str());
    return *f;
}

const FunctionDef*
FunctionRegistry::find(Symbol name) const
{
    return name.id() < bySymbol_.size() ? bySymbol_[name.id()]
                                        : nullptr;
}

void
ApplicationRegistry::add(Application app)
{
    apps_.push_back(std::make_unique<Application>(std::move(app)));
}

const Application&
ApplicationRegistry::get(const std::string& name) const
{
    for (const auto& app : apps_)
        if (app->name == name)
            return *app;
    fatal("unknown application %s", name.c_str());
}

std::vector<const Application*>
ApplicationRegistry::suite(const std::string& suite) const
{
    std::vector<const Application*> out;
    for (const auto& app : apps_)
        if (app->suite == suite)
            out.push_back(app.get());
    return out;
}

std::vector<const Application*>
ApplicationRegistry::all() const
{
    std::vector<const Application*> out;
    for (const auto& app : apps_)
        out.push_back(app.get());
    return out;
}

std::vector<std::string>
ApplicationRegistry::suiteNames() const
{
    std::vector<std::string> out;
    for (const auto& app : apps_) {
        bool seen = false;
        for (const auto& s : out)
            if (s == app->suite)
                seen = true;
        if (!seen)
            out.push_back(app->suite);
    }
    return out;
}

} // namespace specfaas
