#include "function_def.hh"

#include <algorithm>

namespace specfaas {

namespace {

const Value kNull{};

/** First position whose symbol id is >= name's. */
inline std::vector<std::pair<Symbol, Value>>::const_iterator
varLowerBound(const std::vector<std::pair<Symbol, Value>>& vars,
              Symbol name)
{
    return std::lower_bound(vars.begin(), vars.end(), name,
                            [](const std::pair<Symbol, Value>& entry,
                               Symbol key) {
                                return entry.first < key;
                            });
}

} // namespace

const Value&
Env::var(Symbol name) const
{
    auto it = varLowerBound(vars_, name);
    return it == vars_.end() || it->first != name ? kNull : it->second;
}

void
Env::set(Symbol name, Value v)
{
    auto it = varLowerBound(vars_, name);
    if (it != vars_.end() && it->first == name) {
        vars_[it - vars_.begin()].second = std::move(v);
        return;
    }
    vars_.emplace(vars_.begin() + (it - vars_.begin()), name,
                  std::move(v));
}

Op
Op::compute(Tick duration)
{
    Op op;
    op.kind = Kind::Compute;
    op.duration = duration;
    return op;
}

Op
Op::storageRead(KeyFn key, std::string var)
{
    Op op;
    op.kind = Kind::StorageRead;
    op.key = std::move(key);
    op.var = Symbol(var);
    return op;
}

Op
Op::storageWrite(KeyFn key, ValueFn value)
{
    Op op;
    op.kind = Kind::StorageWrite;
    op.key = std::move(key);
    op.value = std::move(value);
    return op;
}

Op
Op::call(std::string callee, ValueFn args, std::string var)
{
    Op op;
    op.kind = Kind::Call;
    op.callee = Symbol(callee);
    op.value = std::move(args);
    op.var = Symbol(var);
    return op;
}

Op
Op::callIf(BoolFn guard, std::string callee, ValueFn args, std::string var)
{
    Op op = call(std::move(callee), std::move(args), std::move(var));
    op.guard = std::move(guard);
    return op;
}

Op
Op::http()
{
    Op op;
    op.kind = Kind::Http;
    return op;
}

Op
Op::fileWrite(KeyFn name)
{
    Op op;
    op.kind = Kind::FileWrite;
    op.key = std::move(name);
    return op;
}

Op
Op::fileRead(KeyFn name, std::string var)
{
    Op op;
    op.kind = Kind::FileRead;
    op.key = std::move(name);
    op.var = Symbol(var);
    return op;
}

Op
Op::setVar(std::string var, ValueFn value)
{
    Op op;
    op.kind = Kind::SetVar;
    op.var = Symbol(var);
    op.value = std::move(value);
    return op;
}

bool
FunctionDef::readsGlobalState() const
{
    for (const auto& op : body)
        if (op.kind == Op::Kind::StorageRead)
            return true;
    return false;
}

bool
FunctionDef::writesGlobalState() const
{
    for (const auto& op : body)
        if (op.kind == Op::Kind::StorageWrite)
            return true;
    return false;
}

bool
FunctionDef::hasCalls() const
{
    return callCount() > 0;
}

std::size_t
FunctionDef::callCount() const
{
    std::size_t n = 0;
    for (const auto& op : body)
        if (op.kind == Op::Kind::Call)
            ++n;
    return n;
}

bool
FunctionDef::hasSideEffects() const
{
    for (const auto& op : body) {
        switch (op.kind) {
          case Op::Kind::StorageWrite:
          case Op::Kind::FileWrite:
          case Op::Kind::Http:
            return true;
          default:
            break;
        }
    }
    return false;
}

bool
FunctionDef::isEffectivelyPure() const
{
    return !readsGlobalState() && !hasSideEffects();
}

Tick
FunctionDef::totalComputeTime() const
{
    Tick total = 0;
    for (const auto& op : body)
        if (op.kind == Op::Kind::Compute)
            total += op.duration;
    return total;
}

} // namespace specfaas
