#include "function_def.hh"

namespace specfaas {

namespace {

const Value kNull{};

} // namespace

const Value&
Env::var(const std::string& name) const
{
    auto it = vars.find(name);
    return it == vars.end() ? kNull : it->second;
}

Op
Op::compute(Tick duration)
{
    Op op;
    op.kind = Kind::Compute;
    op.duration = duration;
    return op;
}

Op
Op::storageRead(KeyFn key, std::string var)
{
    Op op;
    op.kind = Kind::StorageRead;
    op.key = std::move(key);
    op.var = std::move(var);
    return op;
}

Op
Op::storageWrite(KeyFn key, ValueFn value)
{
    Op op;
    op.kind = Kind::StorageWrite;
    op.key = std::move(key);
    op.value = std::move(value);
    return op;
}

Op
Op::call(std::string callee, ValueFn args, std::string var)
{
    Op op;
    op.kind = Kind::Call;
    op.callee = std::move(callee);
    op.value = std::move(args);
    op.var = std::move(var);
    return op;
}

Op
Op::callIf(BoolFn guard, std::string callee, ValueFn args, std::string var)
{
    Op op = call(std::move(callee), std::move(args), std::move(var));
    op.guard = std::move(guard);
    return op;
}

Op
Op::http()
{
    Op op;
    op.kind = Kind::Http;
    return op;
}

Op
Op::fileWrite(KeyFn name)
{
    Op op;
    op.kind = Kind::FileWrite;
    op.key = std::move(name);
    return op;
}

Op
Op::fileRead(KeyFn name, std::string var)
{
    Op op;
    op.kind = Kind::FileRead;
    op.key = std::move(name);
    op.var = std::move(var);
    return op;
}

Op
Op::setVar(std::string var, ValueFn value)
{
    Op op;
    op.kind = Kind::SetVar;
    op.var = std::move(var);
    op.value = std::move(value);
    return op;
}

bool
FunctionDef::readsGlobalState() const
{
    for (const auto& op : body)
        if (op.kind == Op::Kind::StorageRead)
            return true;
    return false;
}

bool
FunctionDef::writesGlobalState() const
{
    for (const auto& op : body)
        if (op.kind == Op::Kind::StorageWrite)
            return true;
    return false;
}

bool
FunctionDef::hasCalls() const
{
    return callCount() > 0;
}

std::size_t
FunctionDef::callCount() const
{
    std::size_t n = 0;
    for (const auto& op : body)
        if (op.kind == Op::Kind::Call)
            ++n;
    return n;
}

bool
FunctionDef::hasSideEffects() const
{
    for (const auto& op : body) {
        switch (op.kind) {
          case Op::Kind::StorageWrite:
          case Op::Kind::FileWrite:
          case Op::Kind::Http:
            return true;
          default:
            break;
        }
    }
    return false;
}

bool
FunctionDef::isEffectivelyPure() const
{
    return !readsGlobalState() && !hasSideEffects();
}

Tick
FunctionDef::totalComputeTime() const
{
    Tick total = 0;
    for (const auto& op : body)
        if (op.kind == Op::Kind::Compute)
            total += op.duration;
    return total;
}

} // namespace specfaas
