/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the simulator (arrival processes,
 * service-time jitter, branch outcomes, dataset synthesis) draws from
 * Rng instances seeded from a single experiment seed, so every run is
 * exactly reproducible. The generator is xoshiro256**, which is fast
 * and has well-understood statistical quality.
 */

#ifndef SPECFAAS_COMMON_RNG_HH
#define SPECFAAS_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace specfaas {

/** Seedable pseudo-random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds → equal streams. */
    explicit Rng(std::uint64_t seed = 0x5afef00dull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal variate (Box–Muller). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal variate with the given *arithmetic* mean and
     * coefficient of variation. Used for service-time jitter.
     */
    double lognormal(double mean, double cv);

    /**
     * Zipf-distributed integer in [0, n) with exponent s. Used to
     * synthesize skewed key popularity in datasets and traces.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /**
     * Pick an index from a discrete distribution given by weights
     * (need not be normalised; must contain at least one positive).
     */
    std::size_t weightedPick(const std::vector<double>& weights);

    /** Derive an independent child generator (for sub-streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_RNG_HH
