/**
 * @file
 * Statistics helpers shared by metrics collectors and benchmarks:
 * mean, percentiles, CDF extraction, and a streaming accumulator.
 */

#ifndef SPECFAAS_COMMON_STATS_UTIL_HH
#define SPECFAAS_COMMON_STATS_UTIL_HH

#include <cstddef>
#include <vector>

namespace specfaas {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double>& xs);

/**
 * Percentile by linear interpolation between closest ranks.
 * @param xs sample (need not be sorted; copied internally)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/** Percentile of a pre-sorted sample (no copy). */
double percentileSorted(const std::vector<double>& sorted, double p);

/** Sample standard deviation; 0 for n < 2. */
double stddev(const std::vector<double>& xs);

/**
 * Geometric mean; requires strictly positive samples. NaN for an
 * empty sample (undefined, rendered as a dash in report tables).
 */
double geomean(const std::vector<double>& xs);

/** One (x, F(x)) point of an empirical CDF. */
struct CdfPoint
{
    double x;
    double cum; // in [0, 1]
};

/**
 * Empirical CDF of a sample, downsampled to at most maxPoints evenly
 * spaced quantiles (for printing CDFs like the paper's Fig. 4).
 */
std::vector<CdfPoint> empiricalCdf(std::vector<double> xs,
                                   std::size_t maxPoints = 50);

/**
 * Streaming accumulator for count/mean/min/max. Keeps the raw sample
 * only when percentiles are requested at construction.
 */
class Accumulator
{
  public:
    /** @param keep_samples retain raw samples for percentile queries */
    explicit Accumulator(bool keep_samples = true)
        : keepSamples_(keep_samples)
    {}

    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }
    /** Mean of observations; 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Sum of observations. */
    double sum() const { return sum_; }
    /** Minimum observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Maximum observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Percentile of the retained sample. Requires keep_samples=true;
     * NaN when no observation has been added yet.
     */
    double percentile(double p) const;

    /** Retained raw sample (empty when keep_samples=false). */
    const std::vector<double>& samples() const { return samples_; }

  private:
    bool keepSamples_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_STATS_UTIL_HH
