/**
 * @file
 * A JSON-like dynamic value type.
 *
 * Serverless functions exchange JSON payloads; SpecFaaS treats those
 * payloads as opaque values that must support equality comparison
 * (memoization-table lookup and output validation), hashing
 * (memoization keys), and printing (tracing). Value provides exactly
 * that: null, boolean, integer, double, string, array and object.
 *
 * Storage is a hand-rolled tagged union sized for the hot path:
 * Null/Bool/Int/Double live entirely inline, String is an inline
 * std::string (so short strings ride the small-string optimization
 * with no heap), and only Array/Object are boxed. That keeps
 * sizeof(Value) at one tag byte plus one std::string — well under
 * the std::variant layout it replaces, which paid for the largest
 * alternative (a std::map) in every scalar payload field.
 *
 * Array/Object boxes are copy-on-write: copying a Value shares the
 * box, and the mutating accessors (asArray()/asObject() non-const,
 * operator[]) clone a shared box before returning. The speculation
 * engine copies payloads constantly (slot inputs/outputs, memo rows,
 * hints, committed nodes) and almost never mutates a copy, so CoW
 * turns the dominant allocation source into a refcount bump. The
 * one sharp edge: a reference obtained from a mutating accessor is
 * invalidated by copying the Value it came from and then writing
 * through the reference — don't hold such references across copies
 * (the usual build-then-copy pattern is unaffected).
 */

#ifndef SPECFAAS_COMMON_VALUE_HH
#define SPECFAAS_COMMON_VALUE_HH

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace specfaas {

class Value;

/**
 * Ordered key/value mapping used for JSON-object payloads.
 *
 * A sorted flat vector with a std::map-shaped interface (the subset
 * the simulator uses). Payload objects are a handful of fields, so
 * one contiguous buffer replaces a red-black tree node per field —
 * the tree nodes were a top allocation source in the engine hot path
 * — while keeping the sorted iteration order the deterministic hash
 * and printer depend on.
 */
class ValueObject
{
  public:
    using value_type = std::pair<std::string, Value>;
    // Contiguous storage, so plain pointers serve as iterators (the
    // element type is incomplete here; vector iterators would force
    // instantiation before Value is defined).
    using iterator = value_type*;
    using const_iterator = const value_type*;

    ValueObject() = default;
    ValueObject(std::initializer_list<value_type> init);

    // Bodies follow Value's definition: touching the vector member
    // instantiates std::pair<std::string, Value>, which needs the
    // complete type.
    iterator begin();
    iterator end();
    const_iterator begin() const;
    const_iterator end() const;

    bool empty() const;
    std::size_t size() const;
    void clear();

    iterator find(const std::string& key);
    const_iterator find(const std::string& key) const;
    std::size_t count(const std::string& key) const;

    /** Field access; default-constructs a null value when missing. */
    Value& operator[](const std::string& key);

    /** Insert @p key unless present (std::map::emplace semantics). */
    std::pair<iterator, bool> emplace(std::string key, Value v);

    iterator erase(const_iterator pos);

    bool operator==(const ValueObject& other) const;
    bool operator!=(const ValueObject& other) const
    {
        return !(*this == other);
    }

  private:
    /** First position whose key is >= @p key (binary search). */
    const_iterator lowerBound(const std::string& key) const;

    std::vector<value_type> items_;
};

/** Sequence of values used for JSON-array payloads. */
using ValueArray = std::vector<Value>;

/**
 * Immutable-ish JSON-like value.
 *
 * Copying is deep; values are small in practice (function payloads in
 * the modelled applications are tens of fields at most), so no
 * copy-on-write machinery is required.
 */
class Value
{
  public:
    /**
     * Discriminator for the stored alternative. The numeric order is
     * part of the hash: hashInto() mixes the kind as the tag byte, so
     * reordering entries would silently change every memoization key
     * and committed-report hash.
     */
    enum class Kind : std::uint8_t
    { Null, Bool, Int, Double, String, Array, Object };

    /** Construct a null value. */
    Value() noexcept {}
    /** Construct a boolean value. */
    Value(bool b) : kind_(Kind::Bool) { data_.b = b; }
    /** Construct an integer value. */
    Value(std::int64_t i) : kind_(Kind::Int) { data_.i = i; }
    /** Construct an integer value from int (convenience). */
    Value(int i) : kind_(Kind::Int) { data_.i = i; }
    /** Construct a floating point value. */
    Value(double d) : kind_(Kind::Double) { data_.d = d; }
    /** Construct a string value. */
    Value(std::string s) : kind_(Kind::String)
    {
        ::new (&data_.s) std::string(std::move(s));
    }
    /** Construct a string value from a C literal. */
    Value(const char* s) : kind_(Kind::String)
    {
        ::new (&data_.s) std::string(s);
    }
    /** Construct an array value. */
    Value(ValueArray a) : kind_(Kind::Array)
    {
        ::new (&data_.arr) std::shared_ptr<ValueArray>(
            std::make_shared<ValueArray>(std::move(a)));
    }
    /** Construct an object value. */
    Value(ValueObject o) : kind_(Kind::Object)
    {
        ::new (&data_.obj) std::shared_ptr<ValueObject>(
            std::make_shared<ValueObject>(std::move(o)));
    }

    Value(const Value& other) { copyFrom(other); }
    Value(Value&& other) noexcept { moveFrom(std::move(other)); }

    Value&
    operator=(const Value& other)
    {
        if (this != &other) {
            destroyData();
            copyFrom(other);
        }
        return *this;
    }

    Value&
    operator=(Value&& other) noexcept
    {
        if (this != &other) {
            destroyData();
            moveFrom(std::move(other));
        }
        return *this;
    }

    ~Value() { destroyData(); }

    /** Kind of the stored alternative. */
    Kind kind() const { return kind_; }

    /** @{ Type predicates. */
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }
    /** @} */

    /**
     * JavaScript-style truthiness, used to resolve `when` branch
     * conditions: null, false, 0, 0.0 and "" are falsy; everything
     * else (including empty arrays/objects) is truthy.
     */
    bool truthy() const;

    /** @{ Checked accessors; abort on kind mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string& asString() const;
    const ValueArray& asArray() const;
    const ValueObject& asObject() const;
    ValueArray& asArray();
    ValueObject& asObject();
    /** @} */

    /**
     * Numeric view: returns the int or double alternative as double.
     * Aborts for non-numeric kinds.
     */
    double asNumber() const;

    /**
     * Object field lookup. Returns a null value when the field is
     * missing or when this value is not an object.
     */
    const Value& at(const std::string& field) const;

    /** Mutable object field access; converts a null value to object. */
    Value& operator[](const std::string& field);

    /** Deep structural equality. */
    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const { return !(*this == other); }

    /**
     * Deterministic 64-bit hash of the whole value tree (FNV-1a over
     * a canonical serialization). Stable across runs and platforms.
     */
    std::uint64_t hash() const;

    /** Canonical compact JSON-ish rendering (sorted object keys). */
    std::string toString() const;

    /** Number of direct children (array/object), 0 otherwise. */
    std::size_t size() const;

    /** Convenience builder for an object value. */
    static Value object(std::initializer_list<ValueObject::value_type> init);

    /** Convenience builder for an array value. */
    static Value array(std::initializer_list<Value> init);

  private:
    union Data
    {
        bool b;
        std::int64_t i;
        double d;
        std::string s;
        std::shared_ptr<ValueArray> arr;
        std::shared_ptr<ValueObject> obj;

        Data() noexcept {}
        ~Data() {}
    };

    void destroyData() noexcept;
    void copyFrom(const Value& other);
    void moveFrom(Value&& other) noexcept;

    /** Clone a shared array box before mutation (CoW). */
    ValueArray& mutableArray();
    /** Clone a shared object box before mutation (CoW). */
    ValueObject& mutableObject();

    void hashInto(std::uint64_t& h) const;
    void printInto(std::string& out) const;

    Kind kind_ = Kind::Null;
    Data data_;
};

inline ValueObject::ValueObject(std::initializer_list<value_type> init)
{
    items_.reserve(init.size());
    for (const value_type& kv : init)
        emplace(kv.first, kv.second);
}

inline ValueObject::iterator
ValueObject::begin()
{
    return items_.data();
}

inline ValueObject::iterator
ValueObject::end()
{
    return items_.data() + items_.size();
}

inline ValueObject::const_iterator
ValueObject::begin() const
{
    return items_.data();
}

inline ValueObject::const_iterator
ValueObject::end() const
{
    return items_.data() + items_.size();
}

inline bool
ValueObject::empty() const
{
    return items_.empty();
}

inline std::size_t
ValueObject::size() const
{
    return items_.size();
}

inline void
ValueObject::clear()
{
    items_.clear();
}

inline std::size_t
ValueObject::count(const std::string& key) const
{
    return find(key) == end() ? 0 : 1;
}

inline ValueObject::const_iterator
ValueObject::lowerBound(const std::string& key) const
{
    return std::lower_bound(begin(), end(), key,
                            [](const value_type& kv,
                               const std::string& k) {
                                return kv.first < k;
                            });
}

inline ValueObject::iterator
ValueObject::find(const std::string& key)
{
    const_iterator it = lowerBound(key);
    if (it == end() || it->first != key)
        return end();
    return begin() + (it - begin());
}

inline ValueObject::const_iterator
ValueObject::find(const std::string& key) const
{
    const_iterator it = lowerBound(key);
    return it == end() || it->first != key ? end() : it;
}

inline Value&
ValueObject::operator[](const std::string& key)
{
    const_iterator it = lowerBound(key);
    const std::ptrdiff_t idx = it - begin();
    if (it == end() || it->first != key)
        items_.insert(items_.begin() + idx, value_type(key, Value()));
    return items_[static_cast<std::size_t>(idx)].second;
}

inline std::pair<ValueObject::iterator, bool>
ValueObject::emplace(std::string key, Value v)
{
    const_iterator it = lowerBound(key);
    const std::ptrdiff_t idx = it - begin();
    if (it != end() && it->first == key)
        return {begin() + idx, false};
    items_.insert(items_.begin() + idx,
                  value_type(std::move(key), std::move(v)));
    return {begin() + idx, true};
}

inline ValueObject::iterator
ValueObject::erase(const_iterator pos)
{
    const std::ptrdiff_t idx = pos - begin();
    items_.erase(items_.begin() + idx);
    return begin() + idx;
}

inline bool
ValueObject::operator==(const ValueObject& other) const
{
    return items_.size() == other.items_.size() &&
           std::equal(begin(), end(), other.begin());
}

/** Stream-style printing helper for logs and test failure messages. */
std::string toDisplayString(const Value& v);

/**
 * Null-tolerant integer view: @p def when @p v is not an Int.
 * Function bodies use this for values derived from global reads,
 * which may be missing during speculative execution.
 */
inline std::int64_t
intOr(const Value& v, std::int64_t def)
{
    return v.isInt() ? v.asInt() : def;
}

} // namespace specfaas

/** std::hash specialization so Value can key unordered containers. */
template <>
struct std::hash<specfaas::Value>
{
    std::size_t operator()(const specfaas::Value& v) const
    {
        return static_cast<std::size_t>(v.hash());
    }
};

#endif // SPECFAAS_COMMON_VALUE_HH
