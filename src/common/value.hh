/**
 * @file
 * A JSON-like dynamic value type.
 *
 * Serverless functions exchange JSON payloads; SpecFaaS treats those
 * payloads as opaque values that must support equality comparison
 * (memoization-table lookup and output validation), hashing
 * (memoization keys), and printing (tracing). Value provides exactly
 * that: null, boolean, integer, double, string, array and object.
 */

#ifndef SPECFAAS_COMMON_VALUE_HH
#define SPECFAAS_COMMON_VALUE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace specfaas {

class Value;

/** Ordered key/value mapping used for JSON-object payloads. */
using ValueObject = std::map<std::string, Value>;

/** Sequence of values used for JSON-array payloads. */
using ValueArray = std::vector<Value>;

/**
 * Immutable-ish JSON-like value.
 *
 * Copying is deep; values are small in practice (function payloads in
 * the modelled applications are tens of fields at most), so no
 * copy-on-write machinery is required.
 */
class Value
{
  public:
    /** Discriminator for the stored alternative. */
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    /** Construct a null value. */
    Value() : data_(std::monostate{}) {}
    /** Construct a boolean value. */
    Value(bool b) : data_(b) {}
    /** Construct an integer value. */
    Value(std::int64_t i) : data_(i) {}
    /** Construct an integer value from int (convenience). */
    Value(int i) : data_(static_cast<std::int64_t>(i)) {}
    /** Construct a floating point value. */
    Value(double d) : data_(d) {}
    /** Construct a string value. */
    Value(std::string s) : data_(std::move(s)) {}
    /** Construct a string value from a C literal. */
    Value(const char* s) : data_(std::string(s)) {}
    /** Construct an array value. */
    Value(ValueArray a) : data_(std::move(a)) {}
    /** Construct an object value. */
    Value(ValueObject o) : data_(std::move(o)) {}

    /** Kind of the stored alternative. */
    Kind kind() const;

    /** @{ Type predicates. */
    bool isNull() const { return kind() == Kind::Null; }
    bool isBool() const { return kind() == Kind::Bool; }
    bool isInt() const { return kind() == Kind::Int; }
    bool isDouble() const { return kind() == Kind::Double; }
    bool isString() const { return kind() == Kind::String; }
    bool isArray() const { return kind() == Kind::Array; }
    bool isObject() const { return kind() == Kind::Object; }
    /** @} */

    /**
     * JavaScript-style truthiness, used to resolve `when` branch
     * conditions: null, false, 0, 0.0 and "" are falsy; everything
     * else (including empty arrays/objects) is truthy.
     */
    bool truthy() const;

    /** @{ Checked accessors; abort on kind mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string& asString() const;
    const ValueArray& asArray() const;
    const ValueObject& asObject() const;
    ValueArray& asArray();
    ValueObject& asObject();
    /** @} */

    /**
     * Numeric view: returns the int or double alternative as double.
     * Aborts for non-numeric kinds.
     */
    double asNumber() const;

    /**
     * Object field lookup. Returns a null value when the field is
     * missing or when this value is not an object.
     */
    const Value& at(const std::string& field) const;

    /** Mutable object field access; converts a null value to object. */
    Value& operator[](const std::string& field);

    /** Deep structural equality. */
    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const { return !(*this == other); }

    /**
     * Deterministic 64-bit hash of the whole value tree (FNV-1a over
     * a canonical serialization). Stable across runs and platforms.
     */
    std::uint64_t hash() const;

    /** Canonical compact JSON-ish rendering (sorted object keys). */
    std::string toString() const;

    /** Number of direct children (array/object), 0 otherwise. */
    std::size_t size() const;

    /** Convenience builder for an object value. */
    static Value object(std::initializer_list<ValueObject::value_type> init);

    /** Convenience builder for an array value. */
    static Value array(std::initializer_list<Value> init);

  private:
    using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                                 std::string, ValueArray, ValueObject>;

    void hashInto(std::uint64_t& h) const;
    void printInto(std::string& out) const;

    Storage data_;
};

/** Stream-style printing helper for logs and test failure messages. */
std::string toDisplayString(const Value& v);

/**
 * Null-tolerant integer view: @p def when @p v is not an Int.
 * Function bodies use this for values derived from global reads,
 * which may be missing during speculative execution.
 */
inline std::int64_t
intOr(const Value& v, std::int64_t def)
{
    return v.isInt() ? v.asInt() : def;
}

} // namespace specfaas

/** std::hash specialization so Value can key unordered containers. */
template <>
struct std::hash<specfaas::Value>
{
    std::size_t operator()(const specfaas::Value& v) const
    {
        return static_cast<std::size_t>(v.hash());
    }
};

#endif // SPECFAAS_COMMON_VALUE_HH
