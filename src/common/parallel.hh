/**
 * @file
 * Small fixed-size thread pool for batches of independent tasks.
 *
 * runParallel() executes a batch of closures on a bounded number of
 * worker threads and blocks until the batch drains. Workers claim
 * tasks in submission order through one atomic cursor, so there is no
 * per-task queueing structure and no dynamic growth; with jobs <= 1
 * (or a single task) everything runs inline on the calling thread and
 * no thread is ever created.
 *
 * Error handling matches serial semantics as closely as concurrency
 * allows: once any task throws, no *new* tasks are claimed, in-flight
 * tasks finish, and the exception of the lowest-indexed failing task
 * is rethrown to the caller after every worker has stopped.
 *
 * mapParallel() is the typed wrapper: results come back indexed by
 * submission order regardless of completion order, which is what the
 * deterministic sweep/fuzz harnesses build their merged output from.
 */

#ifndef SPECFAAS_COMMON_PARALLEL_HH
#define SPECFAAS_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace specfaas {

/** Hardware thread count, at least 1 (for --jobs=0 = "all cores"). */
std::size_t defaultJobs();

/**
 * Strict parse of a `--jobs=<n>` value. The whole text must be a
 * plain decimal number: empty values and trailing garbage
 * ("--jobs=4abc") are rejected instead of being silently truncated
 * or treated as "all hardware threads". An explicit 0 is valid and
 * means "all hardware threads"; callers resolve it via defaultJobs().
 * @return true and set @p jobs on success
 */
inline bool
parseJobsValue(const char* text, std::size_t& jobs)
{
    if (*text == '\0')
        return false;
    std::size_t n = 0;
    for (const char* p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        n = n * 10 + static_cast<std::size_t>(*p - '0');
    }
    jobs = n;
    return true;
}

/**
 * Run every closure in @p tasks, using up to @p jobs worker threads
 * (clamped to [1, tasks.size()]; 0 counts as 1). Returns when all
 * claimed tasks have finished. An empty batch is a no-op. If tasks
 * throw, the exception of the lowest-indexed failing task is rethrown
 * and tasks not yet claimed at that point are skipped.
 */
void runParallel(std::size_t jobs,
                 std::vector<std::function<void()>> tasks);

/**
 * Run every closure in @p fns via runParallel() and return their
 * results in submission order. Results are buffered per task (never
 * in adjacent bits, so R = bool is safe too).
 */
template <typename R>
std::vector<R>
mapParallel(std::size_t jobs, std::vector<std::function<R()>> fns)
{
    std::vector<std::optional<R>> slots(fns.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i) {
        tasks.push_back(
            [&slots, &fns, i]() { slots[i].emplace(fns[i]()); });
    }
    runParallel(jobs, std::move(tasks));
    std::vector<R> results;
    results.reserve(slots.size());
    for (auto& slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

} // namespace specfaas

#endif // SPECFAAS_COMMON_PARALLEL_HH
