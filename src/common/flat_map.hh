/**
 * @file
 * Sorted-vector map for small keyed collections.
 *
 * The invocation records keep many small keyed collections (call-site
 * observations, branch hints, fault attempts) whose population is a
 * handful of entries. As std::map each entry is a separately
 * allocated red-black node; a FlatMap keeps the entries sorted in one
 * contiguous vector, so lookups binary-search hot cache lines and
 * insertion shifts a few elements instead of rebalancing.
 *
 * The std::map surface the simulator uses is provided: operator[],
 * at, find, lower_bound, count, erase (by key and iterator),
 * emplace, iteration in key order, size/empty/clear. References are
 * invalidated by insertion and erasure (it is a vector) — callers
 * that held references across mutations under std::map must not use
 * this type.
 */

#ifndef SPECFAAS_COMMON_FLAT_MAP_HH
#define SPECFAAS_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace specfaas {

template <typename K, typename V, typename Compare = std::less<K>>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator =
        typename std::vector<value_type>::const_iterator;

    FlatMap() = default;
    explicit FlatMap(Compare cmp) : cmp_(std::move(cmp)) {}

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    iterator
    lower_bound(const K& key)
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    const_iterator
    lower_bound(const K& key) const
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    iterator
    find(const K& key)
    {
        auto it = lower_bound(key);
        return it != entries_.end() && !cmp_(key, it->first)
                   ? it
                   : entries_.end();
    }

    const_iterator
    find(const K& key) const
    {
        auto it = lower_bound(key);
        return it != entries_.end() && !cmp_(key, it->first)
                   ? it
                   : entries_.end();
    }

    std::size_t count(const K& key) const
    {
        return find(key) != end() ? 1 : 0;
    }

    V&
    operator[](const K& key)
    {
        auto it = lower_bound(key);
        if (it != entries_.end() && !cmp_(key, it->first))
            return it->second;
        it = entries_.emplace(it, key, V());
        return it->second;
    }

    V&
    at(const K& key)
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "FlatMap::at missing key");
        return it->second;
    }

    const V&
    at(const K& key) const
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "FlatMap::at missing key");
        return it->second;
    }

    /** Insert-or-ignore, like std::map::emplace. */
    template <typename KK, typename VV>
    std::pair<iterator, bool>
    emplace(KK&& key, VV&& value)
    {
        auto it = lower_bound(key);
        if (it != entries_.end() && !cmp_(key, it->first))
            return {it, false};
        it = entries_.emplace(it, std::forward<KK>(key),
                              std::forward<VV>(value));
        return {it, true};
    }

    std::size_t
    erase(const K& key)
    {
        auto it = find(key);
        if (it == end())
            return 0;
        entries_.erase(it);
        return 1;
    }

    iterator erase(iterator it) { return entries_.erase(it); }

    /**
     * Erase every entry with key >= @p key (a suffix of the sorted
     * vector) in one shot: one binary search plus one range erase,
     * instead of an O(suffix x size) erase-per-element loop.
     * @return number of entries erased
     */
    std::size_t
    eraseFrom(const K& key)
    {
        auto it = lower_bound(key);
        const auto n = static_cast<std::size_t>(entries_.end() - it);
        entries_.erase(it, entries_.end());
        return n;
    }

    /**
     * Erase every entry for which @p pred (called on the value_type)
     * returns true, in a single compacting pass. Each surviving entry
     * is moved at most once and the predicate runs exactly size()
     * times — the single-pass purge the squash path relies on.
     * @return number of entries erased
     */
    template <typename Pred>
    std::size_t
    eraseIf(Pred pred)
    {
        auto keep = std::remove_if(entries_.begin(), entries_.end(),
                                   std::move(pred));
        const auto n = static_cast<std::size_t>(entries_.end() - keep);
        entries_.erase(keep, entries_.end());
        return n;
    }

  private:
    std::vector<value_type> entries_;
    Compare cmp_;
};

/**
 * Order-indexed pipeline map: a sorted flat map specialised for the
 * controllers' pipeline access pattern, where the key space is the
 * invocation's program-order coordinates and mutation happens almost
 * exclusively at the two ends —
 *
 *  - commit consumes entries strictly from the *front* (the commit
 *    frontier): popFront() advances a head index instead of erasing,
 *    so an N-deep pipeline commits in O(N) total rather than the
 *    O(N^2) element shifting of erase-at-begin on a plain vector;
 *  - squash destroys a *suffix* (every coordinate >= the squash
 *    point): popBackExpect() pops the tail with an O(1) identity
 *    assert and eraseFrom() truncates a whole suffix with one range
 *    erase.
 *
 * Reclaimed front entries are reset to a default-constructed state
 * immediately (so held resources — instance pointers, callbacks —
 * release at the same point a map erase would have released them)
 * and the dead prefix is compacted away once it outgrows the live
 * region, keeping popFront amortised O(1).
 *
 * Iteration, find, lower_bound, emplace and the rest mirror FlatMap
 * over the live region; like FlatMap, references and iterators are
 * invalidated by any mutation.
 */
template <typename K, typename V, typename Compare = std::less<K>>
class PipelineMap
{
  public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator =
        typename std::vector<value_type>::const_iterator;

    PipelineMap() = default;
    explicit PipelineMap(Compare cmp) : cmp_(std::move(cmp)) {}

    iterator begin() { return entries_.begin() + head_; }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin() + head_; }
    const_iterator end() const { return entries_.end(); }

    bool empty() const { return head_ == entries_.size(); }
    std::size_t size() const { return entries_.size() - head_; }

    void
    clear()
    {
        entries_.clear();
        head_ = 0;
    }

    void reserve(std::size_t n) { entries_.reserve(n); }

    value_type& front() { return entries_[head_]; }
    const value_type& front() const { return entries_[head_]; }
    value_type& back() { return entries_.back(); }
    const value_type& back() const { return entries_.back(); }

    iterator
    lower_bound(const K& key)
    {
        return std::lower_bound(begin(), end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    const_iterator
    lower_bound(const K& key) const
    {
        return std::lower_bound(begin(), end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    iterator
    find(const K& key)
    {
        auto it = lower_bound(key);
        return it != end() && !cmp_(key, it->first) ? it : end();
    }

    const_iterator
    find(const K& key) const
    {
        auto it = lower_bound(key);
        return it != end() && !cmp_(key, it->first) ? it : end();
    }

    std::size_t count(const K& key) const
    {
        return find(key) != end() ? 1 : 0;
    }

    V&
    operator[](const K& key)
    {
        auto it = lower_bound(key);
        if (it != end() && !cmp_(key, it->first))
            return it->second;
        it = entries_.emplace(it, key, V());
        return it->second;
    }

    V&
    at(const K& key)
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "PipelineMap::at missing key");
        return it->second;
    }

    const V&
    at(const K& key) const
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "PipelineMap::at missing key");
        return it->second;
    }

    /** Insert-or-ignore, like std::map::emplace. Appends in O(1)
     * (plus the binary search) when the key extends the tail — the
     * common case for program-order walks and monotonic ids. */
    template <typename KK, typename VV>
    std::pair<iterator, bool>
    emplace(KK&& key, VV&& value)
    {
        auto it = lower_bound(key);
        if (it != end() && !cmp_(key, it->first))
            return {it, false};
        it = entries_.emplace(it, std::forward<KK>(key),
                              std::forward<VV>(value));
        return {it, true};
    }

    /**
     * Advance the commit frontier past the front entry. The entry is
     * reset (releasing its payload now) and physically reclaimed by
     * a geometric compaction once dead entries outnumber live ones.
     */
    void
    popFront()
    {
        SPECFAAS_ASSERT(!empty(), "popFront on empty pipeline");
        entries_[head_] = value_type();
        ++head_;
        if (head_ >= kCompactMin && head_ * 2 >= entries_.size()) {
            entries_.erase(entries_.begin(),
                           entries_.begin() +
                               static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    /**
     * Pop the tail entry, asserting it carries exactly @p key — the
     * squash loop's suffix-pop invariant (victims leave in reverse
     * program order, so every departure must be the current tail).
     */
    void
    popBackExpect(const K& key)
    {
        SPECFAAS_ASSERT(!empty(), "popBackExpect on empty pipeline");
        const K& tail = entries_.back().first;
        SPECFAAS_ASSERT(!cmp_(tail, key) && !cmp_(key, tail),
                        "suffix-pop invariant violated: tail is not "
                        "the expected key");
        entries_.pop_back();
        if (head_ == entries_.size())
            clear();
    }

    /**
     * Erase by key. O(1) at either end (the overwhelmingly common
     * cases: commit eats the front, squash eats the back); a middle
     * erase (an adopted callee delivered out of order) shifts.
     */
    std::size_t
    erase(const K& key)
    {
        if (empty())
            return 0;
        if (!cmp_(front().first, key) && !cmp_(key, front().first)) {
            popFront();
            return 1;
        }
        auto it = find(key);
        if (it == end())
            return 0;
        if (it + 1 == end())
            entries_.pop_back();
        else
            entries_.erase(it);
        return 1;
    }

    /** Erase at @p it; same end fast paths as erase(key). Returns
     * the iterator past the erased entry (recomputed when a front
     * pop compacts the dead prefix). */
    iterator
    erase(iterator it)
    {
        if (it == begin()) {
            popFront();
            return begin();
        }
        if (it + 1 == end()) {
            entries_.pop_back();
            return end();
        }
        return entries_.erase(it);
    }

    /** Erase every entry with key >= @p key: one binary search, one
     * range erase. @return number of entries erased */
    std::size_t
    eraseFrom(const K& key)
    {
        auto it = lower_bound(key);
        const auto n = static_cast<std::size_t>(end() - it);
        entries_.erase(it, entries_.end());
        if (head_ == entries_.size())
            clear();
        return n;
    }

    /** Single compacting pass over the live region; see
     * FlatMap::eraseIf. @return number of entries erased */
    template <typename Pred>
    std::size_t
    eraseIf(Pred pred)
    {
        auto keep = std::remove_if(begin(), end(), std::move(pred));
        const auto n = static_cast<std::size_t>(end() - keep);
        entries_.erase(keep, entries_.end());
        if (head_ == entries_.size())
            clear();
        return n;
    }

    /** Dead (already-popped, not yet compacted) front entries —
     * introspection for tests pinning the compaction policy. */
    std::size_t deadPrefix() const { return head_; }

  private:
    /** Compaction threshold: never compact tiny pipelines (the erase
     * would cost more than it frees), afterwards compact whenever
     * dead entries reach half the vector, bounding slack at one live
     * region's worth — the classic amortised-O(1) split. */
    static constexpr std::size_t kCompactMin = 64;

    std::vector<value_type> entries_;
    std::size_t head_ = 0;
    Compare cmp_;
};

/**
 * Sorted unique-key index over a pipeline's order coordinates, for
 * membership-style questions the controllers used to answer with a
 * full pipeline scan — "is any branch before coordinate X still
 * unresolved?" becomes a front() compare. Keys are maintained in
 * sorted order; the population is small (open branches, not all
 * slots), so insertion shifts a handful of elements at worst.
 */
template <typename K, typename Compare = std::less<K>>
class OrderedKeySet
{
  public:
    OrderedKeySet() = default;
    explicit OrderedKeySet(Compare cmp) : cmp_(std::move(cmp)) {}

    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }
    void clear() { keys_.clear(); }

    /** Insert @p key; no-op when already present. */
    void
    insert(const K& key)
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), key, cmp_);
        if (it != keys_.end() && !cmp_(key, *it))
            return;
        keys_.insert(it, key);
    }

    /** Remove @p key; no-op when absent. */
    void
    erase(const K& key)
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), key, cmp_);
        if (it != keys_.end() && !cmp_(key, *it))
            keys_.erase(it);
    }

    /** Remove every key >= @p key (suffix truncation). */
    void
    eraseFrom(const K& key)
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), key, cmp_);
        keys_.erase(it, keys_.end());
    }

    bool
    contains(const K& key) const
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), key, cmp_);
        return it != keys_.end() && !cmp_(key, *it);
    }

    /** Whether any member sorts strictly before @p key — O(1): the
     * vector is sorted, so only the front can qualify. */
    bool
    anyBefore(const K& key) const
    {
        return !keys_.empty() && cmp_(keys_.front(), key);
    }

  private:
    std::vector<K> keys_;
    Compare cmp_;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_FLAT_MAP_HH
