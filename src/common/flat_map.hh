/**
 * @file
 * Sorted-vector map for small keyed collections.
 *
 * The invocation records keep many small keyed collections (call-site
 * observations, branch hints, fault attempts) whose population is a
 * handful of entries. As std::map each entry is a separately
 * allocated red-black node; a FlatMap keeps the entries sorted in one
 * contiguous vector, so lookups binary-search hot cache lines and
 * insertion shifts a few elements instead of rebalancing.
 *
 * The std::map surface the simulator uses is provided: operator[],
 * at, find, lower_bound, count, erase (by key and iterator),
 * emplace, iteration in key order, size/empty/clear. References are
 * invalidated by insertion and erasure (it is a vector) — callers
 * that held references across mutations under std::map must not use
 * this type.
 */

#ifndef SPECFAAS_COMMON_FLAT_MAP_HH
#define SPECFAAS_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace specfaas {

template <typename K, typename V, typename Compare = std::less<K>>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator =
        typename std::vector<value_type>::const_iterator;

    FlatMap() = default;
    explicit FlatMap(Compare cmp) : cmp_(std::move(cmp)) {}

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    iterator
    lower_bound(const K& key)
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    const_iterator
    lower_bound(const K& key) const
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [this](const value_type& e, const K& k) {
                                    return cmp_(e.first, k);
                                });
    }

    iterator
    find(const K& key)
    {
        auto it = lower_bound(key);
        return it != entries_.end() && !cmp_(key, it->first)
                   ? it
                   : entries_.end();
    }

    const_iterator
    find(const K& key) const
    {
        auto it = lower_bound(key);
        return it != entries_.end() && !cmp_(key, it->first)
                   ? it
                   : entries_.end();
    }

    std::size_t count(const K& key) const
    {
        return find(key) != end() ? 1 : 0;
    }

    V&
    operator[](const K& key)
    {
        auto it = lower_bound(key);
        if (it != entries_.end() && !cmp_(key, it->first))
            return it->second;
        it = entries_.emplace(it, key, V());
        return it->second;
    }

    V&
    at(const K& key)
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "FlatMap::at missing key");
        return it->second;
    }

    const V&
    at(const K& key) const
    {
        auto it = find(key);
        SPECFAAS_ASSERT(it != end(), "FlatMap::at missing key");
        return it->second;
    }

    /** Insert-or-ignore, like std::map::emplace. */
    template <typename KK, typename VV>
    std::pair<iterator, bool>
    emplace(KK&& key, VV&& value)
    {
        auto it = lower_bound(key);
        if (it != entries_.end() && !cmp_(key, it->first))
            return {it, false};
        it = entries_.emplace(it, std::forward<KK>(key),
                              std::forward<VV>(value));
        return {it, true};
    }

    std::size_t
    erase(const K& key)
    {
        auto it = find(key);
        if (it == end())
            return 0;
        entries_.erase(it);
        return 1;
    }

    iterator erase(iterator it) { return entries_.erase(it); }

  private:
    std::vector<value_type> entries_;
    Compare cmp_;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_FLAT_MAP_HH
