/**
 * @file
 * Move-only callable wrapper with inline (small-buffer) storage.
 *
 * `std::function` on libstdc++ only inlines captures up to two
 * pointers; nearly every event callback in the simulator captures
 * more (an instance pointer, an epoch, a Value, a continuation), so
 * each scheduled event used to cost a heap allocation. InlineFunction
 * stores callables up to InlineSize bytes in place and only falls
 * back to the heap beyond that, which removes the per-event
 * allocation from the kernel hot path entirely.
 *
 * Differences from std::function, deliberate and relied upon:
 *  - move-only (no copy), so captures can hold move-only state;
 *  - no target()/target_type() RTTI surface;
 *  - invoking an empty InlineFunction is undefined (asserted in
 *    debug) instead of throwing std::bad_function_call.
 */

#ifndef SPECFAAS_COMMON_INLINE_FUNCTION_HH
#define SPECFAAS_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace specfaas {

template <typename Sig, std::size_t InlineSize = 72>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineSize>
class InlineFunction<R(Args...), InlineSize>
{
  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    InlineFunction(F&& f)
    {
        if constexpr (sizeof(D) <= InlineSize &&
                      alignof(D) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            invoke_ = [](void* p, Args&&... args) -> R {
                return (*std::launder(reinterpret_cast<D*>(p)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](void* dst, void* src) noexcept {
                if (src != nullptr) {
                    D* from = std::launder(reinterpret_cast<D*>(src));
                    ::new (dst) D(std::move(*from));
                    from->~D();
                } else {
                    std::launder(reinterpret_cast<D*>(dst))->~D();
                }
            };
        } else {
            // Oversized callable: box it and keep only the pointer
            // inline. Moves then just relocate the pointer.
            using Ptr = D*;
            ::new (static_cast<void*>(buf_))
                Ptr(new D(std::forward<F>(f)));
            invoke_ = [](void* p, Args&&... args) -> R {
                Ptr d = *std::launder(reinterpret_cast<Ptr*>(p));
                return (*d)(std::forward<Args>(args)...);
            };
            manage_ = [](void* dst, void* src) noexcept {
                if (src != nullptr) {
                    Ptr* from = std::launder(
                        reinterpret_cast<Ptr*>(src));
                    ::new (dst) Ptr(*from);
                    *from = nullptr;
                } else {
                    delete *std::launder(
                        reinterpret_cast<Ptr*>(dst));
                }
            };
        }
    }

    InlineFunction(InlineFunction&& other) noexcept
        : invoke_(other.invoke_), manage_(other.manage_)
    {
        if (manage_ != nullptr)
            manage_(buf_, other.buf_);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this == &other)
            return *this;
        reset();
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (manage_ != nullptr)
            manage_(buf_, other.buf_);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    InlineFunction&
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    void
    reset() noexcept
    {
        if (manage_ != nullptr) {
            manage_(buf_, nullptr);
            manage_ = nullptr;
            invoke_ = nullptr;
        }
    }

    explicit operator bool() const noexcept
    {
        return invoke_ != nullptr;
    }

    R
    operator()(Args... args)
    {
        SPECFAAS_ASSERT(invoke_ != nullptr,
                        "invoking empty InlineFunction");
        return invoke_(buf_, std::forward<Args>(args)...);
    }

  private:
    using Invoke = R (*)(void*, Args&&...);
    using Manage = void (*)(void* dst, void* src) noexcept;

    alignas(std::max_align_t) unsigned char buf_[InlineSize];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_INLINE_FUNCTION_HH
