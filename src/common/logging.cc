#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace specfaas {

namespace {

LogLevel gLevel = LogLevel::Quiet;

void
emit(const char* tag, const char* fmt, std::va_list args)
{
    std::fprintf(stderr, "[%s] ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logInfo(const char* fmt, ...)
{
    if (gLevel < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
logDebug(const char* fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

void
logTrace(const char* fmt, ...)
{
    if (gLevel < LogLevel::Trace)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("trace", fmt, args);
    va_end(args);
}

void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panicAssert(const char* file, int line, const char* cond,
            const std::string& msg)
{
    std::fprintf(stderr, "[panic] assertion failed at %s:%d: %s — %s\n",
                 file, line, cond, msg.c_str());
    std::abort();
}

std::string
strFormatV(const char* fmt, std::va_list args)
{
    // Single-pass fast path: nearly every formatted string in the
    // simulator (ids, counters, field values) fits a stack buffer, so
    // the measure-allocate-format dance is reserved for the rare long
    // result.
    char local[192];
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(local, sizeof local, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return {};
    if (static_cast<std::size_t>(needed) < sizeof local)
        return std::string(local, static_cast<std::size_t>(needed));
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
strFormat(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = strFormatV(fmt, args);
    va_end(args);
    return out;
}

} // namespace specfaas
