/**
 * @file
 * Plain-text table rendering for benchmark reports.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * as rows of text; TextTable keeps the formatting consistent and
 * aligned so EXPERIMENTS.md can quote the output directly.
 */

#ifndef SPECFAAS_COMMON_TABLE_HH
#define SPECFAAS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace specfaas {

/** Column-aligned text table builder. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render with column alignment and separators. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    struct Line
    {
        bool isSeparator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<Line> lines_;
};

/** Format a double with the given precision (printf %.*f). */
std::string fmtDouble(double v, int precision = 2);

/** Format a speedup/ratio like "4.6x". */
std::string fmtRatio(double v, int precision = 1);

/**
 * Like fmtRatio, but renders NaN as an en-dash "–" — used for ratios
 * over an empty sample (geomean convention).
 */
std::string fmtRatioOrDash(double v, int precision = 1);

/** Format a fraction as a percentage like "58.7%". */
std::string fmtPercent(double frac, int precision = 1);

/**
 * Like fmtPercent, but renders NaN as an en-dash "–" — used for
 * rates that are undefined rather than zero (e.g. branch hit rate
 * when no prediction was made).
 */
std::string fmtPercentOrDash(double frac, int precision = 1);

/** Format a millisecond quantity like "387.2 ms". */
std::string fmtMs(double ms, int precision = 1);

} // namespace specfaas

#endif // SPECFAAS_COMMON_TABLE_HH
