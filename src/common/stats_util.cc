#include "stats_util.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hh"

namespace specfaas {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
percentileSorted(const std::vector<double>& sorted, double p)
{
    SPECFAAS_ASSERT(!sorted.empty(), "percentile of empty sample");
    SPECFAAS_ASSERT(p >= 0.0 && p <= 100.0, "percentile p=%f", p);
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
percentile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, p);
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double>& xs)
{
    // The geometric mean of zero samples is undefined — returning 0.0
    // here used to masquerade as "no speedup at all" in aggregate
    // tables. NaN follows the branchHitRate convention; render with
    // fmtRatioOrDash / fmtPercentOrDash.
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double logsum = 0.0;
    for (double x : xs) {
        SPECFAAS_ASSERT(x > 0.0, "geomean of non-positive sample %f", x);
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

std::vector<CdfPoint>
empiricalCdf(std::vector<double> xs, std::size_t maxPoints)
{
    std::vector<CdfPoint> out;
    if (xs.empty())
        return out;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    const std::size_t points = std::min(maxPoints, n);
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        // Sample quantiles evenly in cumulative-probability space.
        const double q = static_cast<double>(i + 1) /
                         static_cast<double>(points);
        const auto idx = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n))) - 1;
        out.push_back({xs[std::min(idx, n - 1)], q});
    }
    return out;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    if (keepSamples_)
        samples_.push_back(x);
}

double
Accumulator::percentile(double p) const
{
    SPECFAAS_ASSERT(keepSamples_, "percentile on sampling-free Accumulator");
    // Surface the empty-sample case here rather than via the generic
    // "percentile of empty sample" assert deep inside stats_util: an
    // empty accumulator has no percentiles, which callers render as
    // a dash (NaN convention shared with branchHitRate / geomean).
    if (samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return specfaas::percentile(samples_, p);
}

} // namespace specfaas
