/**
 * @file
 * Index-addressed object pool with generation-tagged handles.
 *
 * Controller bookkeeping used to resolve "which pipeline slot /
 * invocation record does this event belong to" through hash maps
 * keyed by instance or invocation ids — a probe per hook call. A
 * SlotArray assigns every object a dense index into slab-stable
 * storage; a SlotHandle is that index plus a generation tag, so
 * resolution is one array access and a 32-bit compare.
 *
 * Generations are the ABA guard: destroying an object bumps its
 * index's generation, so any handle captured before a squash,
 * rewalk, commit, or give-up teardown misses afterwards — even when
 * the index has been recycled for a new object. A default handle
 * (generation 0) never resolves; generations start at 1 and only
 * grow.
 *
 * Object addresses are stable for the object's lifetime (storage is
 * carved from slabs that never move), so references held across
 * reentrant calls stay valid while the object lives.
 */

#ifndef SPECFAAS_COMMON_SLOT_ARRAY_HH
#define SPECFAAS_COMMON_SLOT_ARRAY_HH

#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace specfaas {

/** Typed-by-convention handle into one SlotArray. */
struct SlotHandle
{
    std::uint32_t index = 0;
    std::uint32_t gen = 0; // 0 = never valid

    explicit operator bool() const { return gen != 0; }

    friend bool
    operator==(SlotHandle a, SlotHandle b)
    {
        return a.index == b.index && a.gen == b.gen;
    }
    friend bool operator!=(SlotHandle a, SlotHandle b) { return !(a == b); }
};

template <typename T, std::size_t SlabObjects = 64>
class SlotArray
{
    static_assert(SlabObjects > 0, "slab must hold at least one object");

  public:
    SlotArray() = default;
    SlotArray(const SlotArray&) = delete;
    SlotArray& operator=(const SlotArray&) = delete;

    ~SlotArray()
    {
        for (Meta& m : meta_) {
            if (m.live)
                m.obj->~T();
        }
    }

    /** Construct a T; returns its handle (object via get()). */
    template <typename... A>
    SlotHandle
    create(A&&... args)
    {
        std::uint32_t index;
        if (!freelist_.empty()) {
            index = freelist_.back();
            freelist_.pop_back();
        } else {
            index = static_cast<std::uint32_t>(meta_.size());
            if (slabs_.empty() || slabUsed_ == SlabObjects) {
                slabs_.push_back(std::make_unique<Storage[]>(SlabObjects));
                slabUsed_ = 0;
            }
            Meta m;
            m.obj = reinterpret_cast<T*>(
                slabs_.back()[slabUsed_++].bytes);
            m.gen = 1;
            meta_.push_back(m);
        }
        Meta& m = meta_[index];
        ::new (static_cast<void*>(m.obj)) T(std::forward<A>(args)...);
        m.live = true;
        ++liveCount_;
        return SlotHandle{index, m.gen};
    }

    /** Resolve a handle; nullptr when stale or never valid. */
    T*
    get(SlotHandle h)
    {
        if (h.index >= meta_.size())
            return nullptr;
        Meta& m = meta_[h.index];
        if (m.gen != h.gen || !m.live)
            return nullptr;
        return std::launder(m.obj);
    }

    const T*
    get(SlotHandle h) const
    {
        return const_cast<SlotArray*>(this)->get(h);
    }

    /** Resolve a handle that must be live (asserts otherwise). */
    T&
    at(SlotHandle h)
    {
        T* obj = get(h);
        SPECFAAS_ASSERT(obj != nullptr, "stale slot handle %u@%u",
                        h.index, h.gen);
        return *obj;
    }

    /**
     * Destroy the object behind @p h and bump the index's
     * generation, invalidating every outstanding copy of the handle.
     */
    void
    destroy(SlotHandle h)
    {
        SPECFAAS_ASSERT(h.index < meta_.size(), "bad slot index");
        Meta& m = meta_[h.index];
        SPECFAAS_ASSERT(m.live && m.gen == h.gen,
                        "destroying stale slot handle");
        std::launder(m.obj)->~T();
        m.live = false;
        ++m.gen;
        --liveCount_;
        freelist_.push_back(h.index);
    }

    std::size_t liveCount() const { return liveCount_; }

    /** Indexes ever carved (capacity high-water mark). */
    std::size_t indexCount() const { return meta_.size(); }

    /**
     * Reserve bookkeeping capacity for at least @p n indexes, so a
     * burst of create() calls (a pipeline fan-out) never reallocates
     * the metadata or freelist vectors mid-burst. Object storage is
     * already amortised by the slab size and is not pre-carved.
     */
    void
    reserve(std::size_t n)
    {
        meta_.reserve(n);
        freelist_.reserve(n);
        slabs_.reserve((n + SlabObjects - 1) / SlabObjects);
    }

  private:
    struct Storage
    {
        alignas(T) unsigned char bytes[sizeof(T)];
    };

    struct Meta
    {
        T* obj = nullptr;
        std::uint32_t gen = 0;
        bool live = false;
    };

    std::vector<std::unique_ptr<Storage[]>> slabs_;
    std::vector<Meta> meta_;
    std::vector<std::uint32_t> freelist_;
    std::size_t slabUsed_ = 0;
    std::size_t liveCount_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_SLOT_ARRAY_HH
