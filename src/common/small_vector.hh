/**
 * @file
 * Small-buffer vector for trivially copyable elements.
 *
 * OrderKey — the program-order coordinate attached to every function
 * instance — is a short sequence of small integers that gets copied
 * on every launch, squash scan and Data-Buffer column insert. As a
 * std::vector those copies were the single largest allocation source
 * in the engine hot path, so this container keeps up to @p N elements
 * inline and only touches the heap for deeper nesting.
 *
 * Only the std::vector subset the simulator uses is provided:
 * construction (default / fill-free initializer-list / iterator
 * range), push_back/pop_back, element access, iteration (including
 * reverse), and lexicographic comparison.
 */

#ifndef SPECFAAS_COMMON_SMALL_VECTOR_HH
#define SPECFAAS_COMMON_SMALL_VECTOR_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <type_traits>

#include "common/logging.hh"

namespace specfaas {

template <typename T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector requires trivially copyable elements");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;
    using reverse_iterator = std::reverse_iterator<iterator>;
    using const_reverse_iterator = std::reverse_iterator<const_iterator>;

    SmallVector() noexcept : data_(inline_) {}

    SmallVector(std::initializer_list<T> init) : data_(inline_)
    {
        reserve(init.size());
        for (const T& v : init)
            data_[size_++] = v;
    }

    template <typename It>
    SmallVector(It first, It last) : data_(inline_)
    {
        for (; first != last; ++first)
            push_back(*first);
    }

    SmallVector(const SmallVector& other) : data_(inline_)
    {
        assignFrom(other);
    }

    SmallVector(SmallVector&& other) noexcept : data_(inline_)
    {
        stealFrom(other);
    }

    SmallVector&
    operator=(const SmallVector& other)
    {
        if (this != &other) {
            size_ = 0;
            assignFrom(other);
        }
        return *this;
    }

    SmallVector&
    operator=(SmallVector&& other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            stealFrom(other);
        }
        return *this;
    }

    ~SmallVector() { releaseHeap(); }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }

    T* begin() noexcept { return data_; }
    T* end() noexcept { return data_ + size_; }
    const T* begin() const noexcept { return data_; }
    const T* end() const noexcept { return data_ + size_; }
    reverse_iterator rbegin() noexcept
    {
        return reverse_iterator(end());
    }
    reverse_iterator rend() noexcept
    {
        return reverse_iterator(begin());
    }
    const_reverse_iterator rbegin() const noexcept
    {
        return const_reverse_iterator(end());
    }
    const_reverse_iterator rend() const noexcept
    {
        return const_reverse_iterator(begin());
    }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }
    T& front() { return data_[0]; }
    const T& front() const { return data_[0]; }
    T& back() { return data_[size_ - 1]; }
    const T& back() const { return data_[size_ - 1]; }

    void
    push_back(const T& v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        data_[size_++] = v;
    }

    void pop_back() { --size_; }
    void clear() noexcept { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    bool
    operator==(const SmallVector& other) const
    {
        return size_ == other.size_ &&
               std::equal(begin(), end(), other.begin());
    }

    bool
    operator!=(const SmallVector& other) const
    {
        return !(*this == other);
    }

    /** Lexicographic order, matching std::vector::operator<. */
    bool
    operator<(const SmallVector& other) const
    {
        return std::lexicographical_compare(begin(), end(),
                                            other.begin(), other.end());
    }

  private:
    void
    assignFrom(const SmallVector& other)
    {
        reserve(other.size_);
        std::memcpy(data_, other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
    }

    void
    stealFrom(SmallVector& other) noexcept
    {
        if (other.data_ != other.inline_) {
            // Steal the heap block; the source reverts to its empty
            // inline state.
            data_ = other.data_;
            cap_ = other.cap_;
            size_ = other.size_;
            other.data_ = other.inline_;
            other.cap_ = static_cast<std::uint32_t>(N);
        } else {
            data_ = inline_;
            cap_ = static_cast<std::uint32_t>(N);
            std::memcpy(inline_, other.inline_,
                        other.size_ * sizeof(T));
            size_ = other.size_;
        }
        other.size_ = 0;
    }

    void
    grow(std::size_t newCap)
    {
        newCap = std::max<std::size_t>(newCap, N * 2);
        T* heap = new T[newCap];
        std::memcpy(heap, data_, size_ * sizeof(T));
        releaseHeap();
        data_ = heap;
        cap_ = static_cast<std::uint32_t>(newCap);
    }

    void
    releaseHeap() noexcept
    {
        if (data_ != inline_) {
            delete[] data_;
            data_ = inline_;
            cap_ = static_cast<std::uint32_t>(N);
        }
    }

    T* data_;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = static_cast<std::uint32_t>(N);
    T inline_[N];
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_SMALL_VECTOR_HH
