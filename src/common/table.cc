#include "table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace specfaas {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    lines_.push_back({false, std::move(cells)});
}

void
TextTable::separator()
{
    lines_.push_back({true, {}});
}

std::string
TextTable::render() const
{
    // Compute per-column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto account = [&](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto& line : lines_)
        if (!line.isSeparator)
            account(line.cells);

    auto renderCells = [&](const std::vector<std::string>& cells) {
        std::string out;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i]
                                                       : std::string();
            out += cell;
            if (i + 1 < widths.size())
                out += std::string(widths[i] - cell.size() + 2, ' ');
        }
        // Trim trailing spaces.
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
        return out;
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    total = total >= 2 ? total - 2 : total;
    const std::string sep(total, '-');

    std::string out;
    if (!header_.empty()) {
        out += renderCells(header_);
        out += sep + '\n';
    }
    for (const auto& line : lines_) {
        if (line.isSeparator)
            out += sep + '\n';
        else
            out += renderCells(line.cells);
    }
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double v, int precision)
{
    return strFormat("%.*f", precision, v);
}

std::string
fmtRatio(double v, int precision)
{
    return strFormat("%.*fx", precision, v);
}

std::string
fmtRatioOrDash(double v, int precision)
{
    if (std::isnan(v))
        return "–";
    return fmtRatio(v, precision);
}

std::string
fmtPercent(double frac, int precision)
{
    return strFormat("%.*f%%", precision, frac * 100.0);
}

std::string
fmtPercentOrDash(double frac, int precision)
{
    if (std::isnan(frac))
        return "–";
    return fmtPercent(frac, precision);
}

std::string
fmtMs(double ms, int precision)
{
    return strFormat("%.*f ms", precision, ms);
}

} // namespace specfaas
