#include "parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace specfaas {

std::size_t
defaultJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
runParallel(std::size_t jobs, std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (jobs == 0)
        jobs = 1;
    if (jobs > tasks.size())
        jobs = tasks.size();
    if (jobs == 1) {
        for (auto& task : tasks)
            task();
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::size_t firstErrorIndex = tasks.size();
    std::exception_ptr firstError;

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            try {
                tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (i < firstErrorIndex) {
                    firstErrorIndex = i;
                    firstError = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs - 1);
    for (std::size_t t = 0; t + 1 < jobs; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto& thread : threads)
        thread.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace specfaas
