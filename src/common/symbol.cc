#include "symbol.hh"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace specfaas {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = kFnvOffset;
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

/**
 * The intern table. Entry storage is chunked (chunks never move, the
 * chunk directory is a fixed array of atomics), so id → entry
 * resolution takes no lock. The name → id index is an open-addressed
 * table published through an atomic pointer: readers probe the
 * current index lock-free; writers (first-time interns only) take
 * the mutex, append the entry, insert into the index, and republish
 * a grown index when the load factor demands it. Replaced indexes
 * are retired, not freed, so a reader holding a stale pointer only
 * risks a miss — which sends it through the locked slow path.
 */
class Table
{
    static constexpr std::size_t kChunkBits = 10;
    static constexpr std::size_t kChunkSize = 1u << kChunkBits;
    static constexpr std::size_t kMaxChunks = 1u << 14; // 16M symbols

    struct Entry
    {
        std::string name;
        std::uint64_t hash = 0;
    };

    struct Index
    {
        explicit Index(std::size_t cap)
            : mask(cap - 1), slots(new Slot[cap])
        {}
        // id + 1 per slot; 0 = empty.
        struct Slot
        {
            std::atomic<std::uint32_t> idPlus1{0};
        };
        std::size_t mask;
        std::unique_ptr<Slot[]> slots;
    };

  public:
    static Table&
    instance()
    {
        static Table table;
        return table;
    }

    std::uint32_t
    intern(std::string_view name)
    {
        const std::uint64_t hash = fnv1a(name);
        if (std::uint32_t id;
            probe(index_.load(std::memory_order_acquire), name, hash,
                  id))
            return id;

        std::lock_guard<std::mutex> lock(mutex_);
        Index* index = index_.load(std::memory_order_relaxed);
        if (std::uint32_t id; probe(index, name, hash, id))
            return id; // raced with another interning thread
        const std::uint32_t count = count_.load(std::memory_order_relaxed);
        SPECFAAS_ASSERT(count < kChunkSize * kMaxChunks,
                        "symbol table full");
        if ((count >> kChunkBits) >= chunkCount_) {
            chunks_[chunkCount_].store(new Entry[kChunkSize],
                                       std::memory_order_release);
            ++chunkCount_;
        }
        Entry& e = *entryAt(count);
        e.name.assign(name.data(), name.size());
        e.hash = hash;
        // Publish the entry before it becomes findable.
        count_.store(count + 1, std::memory_order_release);
        if ((count + 1) * 10 > (index->mask + 1) * 7)
            index = grow(index);
        insert(*index, hash, count);
        return count;
    }

    bool
    find(std::string_view name, std::uint32_t& id) const
    {
        return probe(index_.load(std::memory_order_acquire), name,
                     fnv1a(name), id);
    }

    const Entry&
    entry(std::uint32_t id) const
    {
        SPECFAAS_ASSERT(id < count_.load(std::memory_order_acquire),
                        "symbol id %u out of range", id);
        return *entryAt(id);
    }

    std::size_t
    size() const
    {
        return count_.load(std::memory_order_acquire);
    }

  private:
    Table()
    {
        chunks_[0].store(new Entry[kChunkSize],
                         std::memory_order_relaxed);
        chunkCount_ = 1;
        Index* index = new Index(256);
        index_.store(index, std::memory_order_relaxed);
        // Reserve id 0 for the empty symbol.
        Entry& e = *entryAt(0);
        e.hash = fnv1a("");
        count_.store(1, std::memory_order_release);
        insert(*index, e.hash, 0);
    }

    Entry*
    entryAt(std::uint32_t id) const
    {
        Entry* chunk =
            chunks_[id >> kChunkBits].load(std::memory_order_acquire);
        return &chunk[id & (kChunkSize - 1)];
    }

    bool
    probe(const Index* index, std::string_view name, std::uint64_t hash,
          std::uint32_t& id) const
    {
        for (std::size_t i = hash & index->mask;;
             i = (i + 1) & index->mask) {
            const std::uint32_t idPlus1 =
                index->slots[i].idPlus1.load(std::memory_order_acquire);
            if (idPlus1 == 0)
                return false;
            const Entry& e = *entryAt(idPlus1 - 1);
            if (e.hash == hash && e.name == name) {
                id = idPlus1 - 1;
                return true;
            }
        }
    }

    static void
    insert(Index& index, std::uint64_t hash, std::uint32_t id)
    {
        for (std::size_t i = hash & index.mask;;
             i = (i + 1) & index.mask) {
            if (index.slots[i].idPlus1.load(std::memory_order_relaxed) ==
                0) {
                index.slots[i].idPlus1.store(id + 1,
                                             std::memory_order_release);
                return;
            }
        }
    }

    Index*
    grow(Index* old)
    {
        auto* bigger = new Index((old->mask + 1) * 2);
        const std::uint32_t count =
            count_.load(std::memory_order_relaxed);
        for (std::uint32_t id = 0; id < count; ++id)
            insert(*bigger, entryAt(id)->hash, id);
        retired_.emplace_back(old);
        index_.store(bigger, std::memory_order_release);
        return bigger;
    }

    mutable std::atomic<Entry*> chunks_[kMaxChunks] = {};
    std::size_t chunkCount_ = 0;
    std::atomic<std::uint32_t> count_{0};
    std::atomic<Index*> index_{nullptr};
    std::vector<std::unique_ptr<Index>> retired_;
    std::mutex mutex_;
};

} // namespace

std::uint32_t
Symbol::internId(std::string_view name)
{
    if (name.empty())
        return 0;
    return Table::instance().intern(name);
}

Symbol
Symbol::fromId(std::uint32_t id)
{
    SPECFAAS_ASSERT(id < Table::instance().size(),
                    "unknown symbol id %u", id);
    Symbol s;
    s.id_ = id;
    return s;
}

const std::string&
Symbol::str() const
{
    return Table::instance().entry(id_).name;
}

std::uint64_t
Symbol::nameHash() const
{
    return Table::instance().entry(id_).hash;
}

Symbol
Symbol::lookup(std::string_view name)
{
    Symbol s;
    if (name.empty())
        return s;
    std::uint32_t id;
    if (Table::instance().find(name, id))
        s.id_ = id;
    return s;
}

std::size_t
Symbol::tableSize()
{
    return Table::instance().size();
}

} // namespace specfaas
