#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace specfaas {

namespace {

/** splitmix64, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits → double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    SPECFAAS_ASSERT(n > 0, "uniformInt(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SPECFAAS_ASSERT(lo <= hi, "uniformInt: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    SPECFAAS_ASSERT(mean > 0.0, "exponential: mean <= 0");
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 == 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    SPECFAAS_ASSERT(mean > 0.0, "lognormal: mean <= 0");
    if (cv <= 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    SPECFAAS_ASSERT(n > 0, "zipf(0)");
    // Inverse-CDF via rejection (Devroye). Good enough for dataset
    // synthesis; not on any hot path.
    const double b = std::pow(2.0, s - 1.0);
    while (true) {
        const double u = uniform();
        const double v = uniform();
        const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
        const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
        if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
            auto r = static_cast<std::uint64_t>(x) - 1;
            if (r < n)
                return r;
        }
    }
}

std::size_t
Rng::weightedPick(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w > 0.0 ? w : 0.0;
    SPECFAAS_ASSERT(total > 0.0, "weightedPick: no positive weight");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (x < w)
            return i;
        x -= w;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ull);
}

} // namespace specfaas
