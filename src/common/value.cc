#include "value.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace specfaas {

namespace {

const Value kNullValue{};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t& h, const void* data, std::size_t len)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvMixByte(std::uint64_t& h, unsigned char b)
{
    h ^= b;
    h *= kFnvPrime;
}

} // namespace

Value::Kind
Value::kind() const
{
    return static_cast<Kind>(data_.index());
}

bool
Value::truthy() const
{
    switch (kind()) {
      case Kind::Null:
        return false;
      case Kind::Bool:
        return std::get<bool>(data_);
      case Kind::Int:
        return std::get<std::int64_t>(data_) != 0;
      case Kind::Double:
        return std::get<double>(data_) != 0.0;
      case Kind::String:
        return !std::get<std::string>(data_).empty();
      case Kind::Array:
      case Kind::Object:
        return true;
    }
    return false;
}

bool
Value::asBool() const
{
    SPECFAAS_ASSERT(isBool(), "Value::asBool on non-bool: %s",
                    toString().c_str());
    return std::get<bool>(data_);
}

std::int64_t
Value::asInt() const
{
    SPECFAAS_ASSERT(isInt(), "Value::asInt on non-int: %s",
                    toString().c_str());
    return std::get<std::int64_t>(data_);
}

double
Value::asDouble() const
{
    SPECFAAS_ASSERT(isDouble(), "Value::asDouble on non-double: %s",
                    toString().c_str());
    return std::get<double>(data_);
}

double
Value::asNumber() const
{
    if (isInt())
        return static_cast<double>(std::get<std::int64_t>(data_));
    SPECFAAS_ASSERT(isDouble(), "Value::asNumber on non-numeric: %s",
                    toString().c_str());
    return std::get<double>(data_);
}

const std::string&
Value::asString() const
{
    SPECFAAS_ASSERT(isString(), "Value::asString on non-string: %s",
                    toString().c_str());
    return std::get<std::string>(data_);
}

const ValueArray&
Value::asArray() const
{
    SPECFAAS_ASSERT(isArray(), "Value::asArray on non-array: %s",
                    toString().c_str());
    return std::get<ValueArray>(data_);
}

const ValueObject&
Value::asObject() const
{
    SPECFAAS_ASSERT(isObject(), "Value::asObject on non-object: %s",
                    toString().c_str());
    return std::get<ValueObject>(data_);
}

ValueArray&
Value::asArray()
{
    SPECFAAS_ASSERT(isArray(), "Value::asArray on non-array");
    return std::get<ValueArray>(data_);
}

ValueObject&
Value::asObject()
{
    SPECFAAS_ASSERT(isObject(), "Value::asObject on non-object");
    return std::get<ValueObject>(data_);
}

const Value&
Value::at(const std::string& field) const
{
    if (!isObject())
        return kNullValue;
    const auto& obj = std::get<ValueObject>(data_);
    auto it = obj.find(field);
    return it == obj.end() ? kNullValue : it->second;
}

Value&
Value::operator[](const std::string& field)
{
    if (isNull())
        data_ = ValueObject{};
    SPECFAAS_ASSERT(isObject(), "Value::operator[] on non-object");
    return std::get<ValueObject>(data_)[field];
}

bool
Value::operator==(const Value& other) const
{
    return data_ == other.data_;
}

void
Value::hashInto(std::uint64_t& h) const
{
    fnvMixByte(h, static_cast<unsigned char>(data_.index()));
    switch (kind()) {
      case Kind::Null:
        break;
      case Kind::Bool: {
        unsigned char b = std::get<bool>(data_) ? 1 : 0;
        fnvMixByte(h, b);
        break;
      }
      case Kind::Int: {
        auto i = std::get<std::int64_t>(data_);
        fnvMix(h, &i, sizeof(i));
        break;
      }
      case Kind::Double: {
        auto d = std::get<double>(data_);
        fnvMix(h, &d, sizeof(d));
        break;
      }
      case Kind::String: {
        const auto& s = std::get<std::string>(data_);
        fnvMix(h, s.data(), s.size());
        break;
      }
      case Kind::Array: {
        for (const auto& v : std::get<ValueArray>(data_))
            v.hashInto(h);
        break;
      }
      case Kind::Object: {
        for (const auto& [k, v] : std::get<ValueObject>(data_)) {
            fnvMix(h, k.data(), k.size());
            fnvMixByte(h, ':');
            v.hashInto(h);
        }
        break;
      }
    }
}

std::uint64_t
Value::hash() const
{
    std::uint64_t h = kFnvOffset;
    hashInto(h);
    return h;
}

void
Value::printInto(std::string& out) const
{
    char buf[64];
    switch (kind()) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += std::get<bool>(data_) ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      std::get<std::int64_t>(data_));
        out += buf;
        break;
      case Kind::Double:
        std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(data_));
        out += buf;
        break;
      case Kind::String:
        out += '"';
        out += std::get<std::string>(data_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto& v : std::get<ValueArray>(data_)) {
            if (!first)
                out += ',';
            first = false;
            v.printInto(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : std::get<ValueObject>(data_)) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += k;
            out += "\":";
            v.printInto(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::toString() const
{
    std::string out;
    printInto(out);
    return out;
}

std::size_t
Value::size() const
{
    if (isArray())
        return std::get<ValueArray>(data_).size();
    if (isObject())
        return std::get<ValueObject>(data_).size();
    return 0;
}

Value
Value::object(std::initializer_list<ValueObject::value_type> init)
{
    return Value(ValueObject(init));
}

Value
Value::array(std::initializer_list<Value> init)
{
    return Value(ValueArray(init));
}

std::string
toDisplayString(const Value& v)
{
    return v.toString();
}

} // namespace specfaas
