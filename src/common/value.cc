#include "value.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace specfaas {

namespace {

const Value kNullValue{};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t& h, const void* data, std::size_t len)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvMixByte(std::uint64_t& h, unsigned char b)
{
    h ^= b;
    h *= kFnvPrime;
}

} // namespace

void
Value::destroyData() noexcept
{
    switch (kind_) {
      case Kind::String:
        data_.s.~basic_string();
        break;
      case Kind::Array:
        data_.arr.~shared_ptr();
        break;
      case Kind::Object:
        data_.obj.~shared_ptr();
        break;
      default:
        break;
    }
    kind_ = Kind::Null;
}

void
Value::copyFrom(const Value& other)
{
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::Null:
        break;
      case Kind::Bool:
        data_.b = other.data_.b;
        break;
      case Kind::Int:
        data_.i = other.data_.i;
        break;
      case Kind::Double:
        data_.d = other.data_.d;
        break;
      case Kind::String:
        ::new (&data_.s) std::string(other.data_.s);
        break;
      case Kind::Array:
        ::new (&data_.arr)
            std::shared_ptr<ValueArray>(other.data_.arr);
        break;
      case Kind::Object:
        ::new (&data_.obj)
            std::shared_ptr<ValueObject>(other.data_.obj);
        break;
    }
}

void
Value::moveFrom(Value&& other) noexcept
{
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::Null:
        break;
      case Kind::Bool:
        data_.b = other.data_.b;
        break;
      case Kind::Int:
        data_.i = other.data_.i;
        break;
      case Kind::Double:
        data_.d = other.data_.d;
        break;
      case Kind::String:
        ::new (&data_.s) std::string(std::move(other.data_.s));
        other.data_.s.~basic_string();
        break;
      case Kind::Array:
        ::new (&data_.arr) std::shared_ptr<ValueArray>(
            std::move(other.data_.arr));
        other.data_.arr.~shared_ptr();
        break;
      case Kind::Object:
        ::new (&data_.obj) std::shared_ptr<ValueObject>(
            std::move(other.data_.obj));
        other.data_.obj.~shared_ptr();
        break;
    }
    // The source relinquishes ownership and reverts to null.
    other.kind_ = Kind::Null;
}

bool
Value::truthy() const
{
    switch (kind_) {
      case Kind::Null:
        return false;
      case Kind::Bool:
        return data_.b;
      case Kind::Int:
        return data_.i != 0;
      case Kind::Double:
        return data_.d != 0.0;
      case Kind::String:
        return !data_.s.empty();
      case Kind::Array:
      case Kind::Object:
        return true;
    }
    return false;
}

bool
Value::asBool() const
{
    SPECFAAS_ASSERT(isBool(), "Value::asBool on non-bool: %s",
                    toString().c_str());
    return data_.b;
}

std::int64_t
Value::asInt() const
{
    SPECFAAS_ASSERT(isInt(), "Value::asInt on non-int: %s",
                    toString().c_str());
    return data_.i;
}

double
Value::asDouble() const
{
    SPECFAAS_ASSERT(isDouble(), "Value::asDouble on non-double: %s",
                    toString().c_str());
    return data_.d;
}

double
Value::asNumber() const
{
    if (isInt())
        return static_cast<double>(data_.i);
    SPECFAAS_ASSERT(isDouble(), "Value::asNumber on non-numeric: %s",
                    toString().c_str());
    return data_.d;
}

const std::string&
Value::asString() const
{
    SPECFAAS_ASSERT(isString(), "Value::asString on non-string: %s",
                    toString().c_str());
    return data_.s;
}

const ValueArray&
Value::asArray() const
{
    SPECFAAS_ASSERT(isArray(), "Value::asArray on non-array: %s",
                    toString().c_str());
    return *data_.arr;
}

const ValueObject&
Value::asObject() const
{
    SPECFAAS_ASSERT(isObject(), "Value::asObject on non-object: %s",
                    toString().c_str());
    return *data_.obj;
}

ValueArray&
Value::mutableArray()
{
    if (data_.arr.use_count() > 1)
        data_.arr = std::make_shared<ValueArray>(*data_.arr);
    return *data_.arr;
}

ValueObject&
Value::mutableObject()
{
    if (data_.obj.use_count() > 1)
        data_.obj = std::make_shared<ValueObject>(*data_.obj);
    return *data_.obj;
}

ValueArray&
Value::asArray()
{
    SPECFAAS_ASSERT(isArray(), "Value::asArray on non-array");
    return mutableArray();
}

ValueObject&
Value::asObject()
{
    SPECFAAS_ASSERT(isObject(), "Value::asObject on non-object");
    return mutableObject();
}

const Value&
Value::at(const std::string& field) const
{
    if (!isObject())
        return kNullValue;
    const ValueObject& obj = *data_.obj;
    auto it = obj.find(field);
    return it == obj.end() ? kNullValue : it->second;
}

Value&
Value::operator[](const std::string& field)
{
    if (isNull()) {
        ::new (&data_.obj) std::shared_ptr<ValueObject>(
            std::make_shared<ValueObject>());
        kind_ = Kind::Object;
    }
    SPECFAAS_ASSERT(isObject(), "Value::operator[] on non-object");
    return mutableObject()[field];
}

bool
Value::operator==(const Value& other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return data_.b == other.data_.b;
      case Kind::Int:
        return data_.i == other.data_.i;
      case Kind::Double:
        return data_.d == other.data_.d;
      case Kind::String:
        return data_.s == other.data_.s;
      case Kind::Array:
        return data_.arr == other.data_.arr ||
               *data_.arr == *other.data_.arr;
      case Kind::Object:
        return data_.obj == other.data_.obj ||
               *data_.obj == *other.data_.obj;
    }
    return false;
}

void
Value::hashInto(std::uint64_t& h) const
{
    fnvMixByte(h, static_cast<unsigned char>(kind_));
    switch (kind_) {
      case Kind::Null:
        break;
      case Kind::Bool: {
        unsigned char b = data_.b ? 1 : 0;
        fnvMixByte(h, b);
        break;
      }
      case Kind::Int: {
        auto i = data_.i;
        fnvMix(h, &i, sizeof(i));
        break;
      }
      case Kind::Double: {
        auto d = data_.d;
        fnvMix(h, &d, sizeof(d));
        break;
      }
      case Kind::String:
        fnvMix(h, data_.s.data(), data_.s.size());
        break;
      case Kind::Array: {
        for (const auto& v : *data_.arr)
            v.hashInto(h);
        break;
      }
      case Kind::Object: {
        for (const auto& [k, v] : *data_.obj) {
            fnvMix(h, k.data(), k.size());
            fnvMixByte(h, ':');
            v.hashInto(h);
        }
        break;
      }
    }
}

std::uint64_t
Value::hash() const
{
    std::uint64_t h = kFnvOffset;
    hashInto(h);
    return h;
}

void
Value::printInto(std::string& out) const
{
    char buf[64];
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += data_.b ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%" PRId64, data_.i);
        out += buf;
        break;
      case Kind::Double:
        std::snprintf(buf, sizeof(buf), "%.6g", data_.d);
        out += buf;
        break;
      case Kind::String:
        out += '"';
        out += data_.s;
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto& v : *data_.arr) {
            if (!first)
                out += ',';
            first = false;
            v.printInto(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : *data_.obj) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += k;
            out += "\":";
            v.printInto(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::toString() const
{
    std::string out;
    printInto(out);
    return out;
}

std::size_t
Value::size() const
{
    if (isArray())
        return data_.arr->size();
    if (isObject())
        return data_.obj->size();
    return 0;
}

Value
Value::object(std::initializer_list<ValueObject::value_type> init)
{
    return Value(ValueObject(init));
}

Value
Value::array(std::initializer_list<Value> init)
{
    return Value(ValueArray(init));
}

std::string
toDisplayString(const Value& v)
{
    return v.toString();
}

} // namespace specfaas
