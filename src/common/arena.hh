/**
 * @file
 * Slab-backed object pool for hot-path allocations.
 *
 * The simulator creates and destroys a handful of object types at
 * event rates (event callbacks, speculative invocation records).
 * Routing those through the general-purpose heap costs a malloc/free
 * pair per object and scatters them across the address space. A
 * SlabPool carves fixed-size slots out of contiguous slabs and
 * recycles destroyed slots through a freelist, so steady-state
 * create/destroy touches no allocator at all and live objects stay
 * densely packed.
 *
 * Pointers returned by create() are stable for the object's lifetime
 * (slabs never move or shrink); destroy() runs the destructor and
 * recycles the slot. Any objects still live when the pool is
 * destroyed are destroyed with it, which is what lets owners treat
 * the pool as an arena freed wholesale at end of scope.
 */

#ifndef SPECFAAS_COMMON_ARENA_HH
#define SPECFAAS_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace specfaas {

template <typename T, std::size_t SlabObjects = 64>
class SlabPool
{
    static_assert(SlabObjects > 0, "slab must hold at least one object");

  public:
    SlabPool() = default;
    SlabPool(const SlabPool&) = delete;
    SlabPool& operator=(const SlabPool&) = delete;

    ~SlabPool()
    {
        for (auto& slab : slabs_) {
            for (std::size_t i = 0; i < SlabObjects; ++i) {
                if (slab[i].live)
                    objectAt(slab[i])->~T();
            }
        }
    }

    /** Construct a T in a recycled or freshly carved slot. */
    template <typename... A>
    T*
    create(A&&... args)
    {
        Slot* slot;
        if (!freelist_.empty()) {
            slot = freelist_.back();
            freelist_.pop_back();
        } else {
            if (slabs_.empty() || slabUsed_ == SlabObjects) {
                slabs_.push_back(
                    std::make_unique<Slot[]>(SlabObjects));
                slabUsed_ = 0;
            }
            slot = &slabs_.back()[slabUsed_++];
        }
        T* obj = ::new (static_cast<void*>(slot->storage))
            T(std::forward<A>(args)...);
        slot->live = true;
        ++liveCount_;
        return obj;
    }

    /** Destroy a pool-owned object and recycle its slot. */
    void
    destroy(T* obj)
    {
        // storage is the first member, so the object address is the
        // slot address.
        Slot* slot = reinterpret_cast<Slot*>(obj);
        SPECFAAS_ASSERT(slot->live, "double destroy in SlabPool");
        obj->~T();
        slot->live = false;
        --liveCount_;
        freelist_.push_back(slot);
    }

    /** Objects currently live in the pool. */
    std::size_t liveCount() const { return liveCount_; }

    /** Slabs allocated so far (capacity = slabCount * SlabObjects). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        bool live = false;
    };

    static T*
    objectAt(Slot& slot)
    {
        return std::launder(reinterpret_cast<T*>(slot.storage));
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<Slot*> freelist_;
    std::size_t slabUsed_ = 0;
    std::size_t liveCount_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_ARENA_HH
