/**
 * @file
 * Slab-backed object pool for hot-path allocations.
 *
 * The simulator creates and destroys a handful of object types at
 * event rates (event callbacks, speculative invocation records).
 * Routing those through the general-purpose heap costs a malloc/free
 * pair per object and scatters them across the address space. A
 * SlabPool carves fixed-size slots out of contiguous slabs and
 * recycles destroyed slots through a freelist, so steady-state
 * create/destroy touches no allocator at all and live objects stay
 * densely packed.
 *
 * Pointers returned by create() are stable for the object's lifetime
 * (slabs never move or shrink); destroy() runs the destructor and
 * recycles the slot. Any objects still live when the pool is
 * destroyed are destroyed with it, which is what lets owners treat
 * the pool as an arena freed wholesale at end of scope.
 */

#ifndef SPECFAAS_COMMON_ARENA_HH
#define SPECFAAS_COMMON_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

#if defined(__SANITIZE_ADDRESS__)
#define SPECFAAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPECFAAS_ASAN 1
#endif
#endif
#ifdef SPECFAAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace specfaas {

template <typename T, std::size_t SlabObjects = 64>
class SlabPool
{
    static_assert(SlabObjects > 0, "slab must hold at least one object");

  public:
    SlabPool() = default;
    SlabPool(const SlabPool&) = delete;
    SlabPool& operator=(const SlabPool&) = delete;

    ~SlabPool()
    {
        for (auto& slab : slabs_) {
            for (std::size_t i = 0; i < SlabObjects; ++i) {
                if (slab[i].live)
                    objectAt(slab[i])->~T();
            }
        }
    }

    /** Construct a T in a recycled or freshly carved slot. */
    template <typename... A>
    T*
    create(A&&... args)
    {
        Slot* slot;
        if (!freelist_.empty()) {
            slot = freelist_.back();
            freelist_.pop_back();
        } else {
            if (slabs_.empty() || slabUsed_ == SlabObjects) {
                slabs_.push_back(
                    std::make_unique<Slot[]>(SlabObjects));
                slabUsed_ = 0;
            }
            slot = &slabs_.back()[slabUsed_++];
        }
        T* obj = ::new (static_cast<void*>(slot->storage))
            T(std::forward<A>(args)...);
        slot->live = true;
        ++liveCount_;
        return obj;
    }

    /** Destroy a pool-owned object and recycle its slot. */
    void
    destroy(T* obj)
    {
        // storage is the first member, so the object address is the
        // slot address.
        Slot* slot = reinterpret_cast<Slot*>(obj);
        SPECFAAS_ASSERT(slot->live, "double destroy in SlabPool");
        obj->~T();
        slot->live = false;
        --liveCount_;
        freelist_.push_back(slot);
    }

    /** Objects currently live in the pool. */
    std::size_t liveCount() const { return liveCount_; }

    /** Slabs allocated so far (capacity = slabCount * SlabObjects). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        bool live = false;
    };

    static T*
    objectAt(Slot& slot)
    {
        return std::launder(reinterpret_cast<T*>(slot.storage));
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<Slot*> freelist_;
    std::size_t slabUsed_ = 0;
    std::size_t liveCount_ = 0;
};

/**
 * Bump allocator for short-lived, trivially destructible scratch.
 *
 * Controllers build per-operation work lists — squash victim
 * handles, relaunch coordinates, teardown scans — whose lifetimes
 * all end inside the invocation that spawned them. A BumpArena
 * hands out storage by advancing a pointer through chained blocks
 * and reclaims everything at once with reset(), so the steady state
 * touches the general-purpose heap only while a block chain is
 * still growing toward its high-water mark.
 *
 * Under AddressSanitizer every reset() poisons the reclaimed bytes
 * and every alloc() unpoisons exactly the handed-out range, so a
 * pointer that escapes its invocation turns into an ASan
 * use-after-poison report instead of silent reuse.
 *
 * Only trivially destructible payloads belong here: reset() runs no
 * destructors.
 */
class BumpArena
{
  public:
    explicit BumpArena(std::size_t blockBytes = 4096)
        : blockBytes_(blockBytes)
    {}

    BumpArena(const BumpArena&) = delete;
    BumpArena& operator=(const BumpArena&) = delete;

    ~BumpArena()
    {
#ifdef SPECFAAS_ASAN
        // Blocks are about to be freed; hand them back unpoisoned so
        // the allocator may reuse them.
        for (const Block& b : blocks_)
            __asan_unpoison_memory_region(b.data.get(), b.size);
#endif
    }

    /** Allocate @p bytes with @p align alignment. */
    void*
    alloc(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        SPECFAAS_ASSERT((align & (align - 1)) == 0,
                        "alignment must be a power of two");
        // Align the address, not the block offset: block bases come
        // from operator new[] and only promise fundamental alignment,
        // so an offset-aligned pointer could still be misaligned for
        // over-aligned requests.
        std::size_t offset = alignedOffset(align);
        if (block_ >= blocks_.size() ||
            offset + bytes > blocks_[block_].size) {
            nextBlock(bytes + align);
            offset = alignedOffset(align);
        }
        unsigned char* p = blocks_[block_].data.get() + offset;
        used_ = offset + bytes;
#ifdef SPECFAAS_ASAN
        __asan_unpoison_memory_region(p, bytes);
#endif
        return p;
    }

    /** Typed array allocation (uninitialized storage). */
    template <typename T>
    T*
    allocArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "BumpArena never runs destructors");
        return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
    }

    /**
     * Reclaim every allocation at once. Blocks stay owned (no heap
     * traffic); under ASan their bytes are poisoned until alloc()
     * hands them out again.
     */
    void
    reset()
    {
#ifdef SPECFAAS_ASAN
        for (const Block& b : blocks_)
            __asan_poison_memory_region(b.data.get(), b.size);
#endif
        block_ = 0;
        used_ = 0;
    }

    /** Bytes handed out since the last reset (padding included). */
    std::size_t
    usedBytes() const
    {
        std::size_t total = 0;
        for (std::size_t i = 0; i < block_ && i < blocks_.size(); ++i)
            total += blocks_[i].size;
        return total + used_;
    }

    /** Total bytes owned across all blocks. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block& b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    /** First @p align-aligned offset at or after used_ in block_. */
    std::size_t
    alignedOffset(std::size_t align) const
    {
        if (block_ >= blocks_.size())
            return used_; // no block yet; nextBlock() runs first
        const auto addr = reinterpret_cast<std::uintptr_t>(
                              blocks_[block_].data.get()) +
                          used_;
        return used_ +
               static_cast<std::size_t>((~addr + 1) & (align - 1));
    }

    void
    nextBlock(std::size_t atLeast)
    {
        if (block_ < blocks_.size())
            ++block_;
        while (block_ >= blocks_.size() ||
               blocks_[block_].size < atLeast) {
            if (block_ < blocks_.size() &&
                blocks_[block_].size < atLeast) {
                // Too small for this request; skip it (it stays in
                // the chain for smaller future allocations).
                ++block_;
                continue;
            }
            Block b;
            b.size = std::max(blockBytes_, atLeast);
            b.data = std::make_unique<unsigned char[]>(b.size);
#ifdef SPECFAAS_ASAN
            __asan_poison_memory_region(b.data.get(), b.size);
#endif
            blocks_.push_back(std::move(b));
        }
        used_ = 0;
    }

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t block_ = 0;
    std::size_t used_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_ARENA_HH
