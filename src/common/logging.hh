/**
 * @file
 * Minimal logging and assertion facility.
 *
 * Follows the gem5 split between conditions that indicate a bug in the
 * simulator itself (panic / SPECFAAS_ASSERT) and conditions caused by
 * bad user input (fatal). Trace output is gated by a global level so
 * benchmark binaries stay quiet by default.
 */

#ifndef SPECFAAS_COMMON_LOGGING_HH
#define SPECFAAS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace specfaas {

/** Verbosity levels, in increasing order of detail. */
enum class LogLevel { Quiet = 0, Info = 1, Debug = 2, Trace = 3 };

/** Set the process-wide log verbosity. */
void setLogLevel(LogLevel level);

/** Current process-wide log verbosity. */
LogLevel logLevel();

/** printf-style message at Info level. */
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style message at Debug level. */
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style message at Trace level. */
void logTrace(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort. Never returns.
 * Use for simulator bugs, not user mistakes.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Backend for SPECFAAS_ASSERT; reports and aborts. */
[[noreturn]] void panicAssert(const char* file, int line,
                              const char* cond, const std::string& msg);

/** printf into a std::string. */
std::string strFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf into a std::string. */
std::string strFormatV(const char* fmt, std::va_list args);

} // namespace specfaas

/**
 * Assert an internal invariant with a formatted diagnostic. Always
 * enabled (simulation correctness depends on these invariants and the
 * cost is negligible next to the event-queue work).
 */
#define SPECFAAS_ASSERT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::specfaas::panicAssert(__FILE__, __LINE__, #cond,            \
                                    ::specfaas::strFormat(__VA_ARGS__));  \
        }                                                                 \
    } while (0)

#endif // SPECFAAS_COMMON_LOGGING_HH
