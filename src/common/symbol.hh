/**
 * @file
 * Process-wide interned name table.
 *
 * The model layer names things — functions, environment variables,
 * flow nodes — and used to pass those names around as std::string,
 * paying a hash or a character-by-character compare at every lookup
 * on the engine hot path. A Symbol is a dense 32-bit id into a
 * process-global intern table: comparisons are integer compares,
 * registry/memo lookups become array indexing, and the string itself
 * is only resolved again at trace/report render time.
 *
 * Determinism: ids are assigned in interning order, so a fixed
 * program interning a fixed sequence of names gets identical ids on
 * every run. Nothing observable (reports, traces, predictor tables)
 * depends on raw id values — only on resolved strings and on each
 * symbol's name hash, which is a pure function of the name — so
 * concurrently forked SimContexts may intern in any order without
 * perturbing output (they share this one table and agree on every
 * id they can ever exchange).
 *
 * Concurrency: resolving (id → name, id → hash) and looking up an
 * already-interned name are lock-free; only first-time interning
 * takes a mutex. Entry storage is chunked and never moves, so
 * resolved references stay valid for the process lifetime.
 */

#ifndef SPECFAAS_COMMON_SYMBOL_HH
#define SPECFAAS_COMMON_SYMBOL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace specfaas {

class Symbol
{
  public:
    /** The empty symbol: id 0, renders as "". */
    constexpr Symbol() = default;

    /** Intern @p name (or find its existing entry). */
    explicit Symbol(std::string_view name) : id_(internId(name)) {}

    static Symbol intern(std::string_view name) { return Symbol(name); }

    /** Rebuild a symbol from a known-valid id (asserts in debug). */
    static Symbol fromId(std::uint32_t id);

    /** The interned name; valid for the process lifetime. */
    const std::string& str() const;

    /** FNV-1a hash of the name — intern-order independent. */
    std::uint64_t nameHash() const;

    std::uint32_t id() const { return id_; }
    bool empty() const { return id_ == 0; }
    explicit operator bool() const { return id_ != 0; }

    friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
    friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
    /** Intern order, NOT lexicographic — fine for flat-map keys. */
    friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

    /** @{ String comparison resolves the symbol; never interns. */
    friend bool
    operator==(Symbol a, std::string_view b)
    {
        return a.str() == b;
    }
    friend bool
    operator==(std::string_view a, Symbol b)
    {
        return b.str() == a;
    }
    friend bool
    operator!=(Symbol a, std::string_view b)
    {
        return !(a == b);
    }
    friend bool
    operator!=(std::string_view a, Symbol b)
    {
        return !(a == b);
    }
    /** @} */

    /** Streams the resolved name (diagnostics, test failures). */
    friend std::ostream&
    operator<<(std::ostream& os, Symbol s)
    {
        return os << s.str();
    }

    /** Lookup without interning; empty Symbol when never interned.
     * (The empty string always resolves, to id 0.) */
    static Symbol lookup(std::string_view name);

    /** Number of interned symbols (including the empty symbol). */
    static std::size_t tableSize();

  private:
    static std::uint32_t internId(std::string_view name);

    std::uint32_t id_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_COMMON_SYMBOL_HH
