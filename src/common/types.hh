/**
 * @file
 * Fundamental type aliases shared across the SpecFaaS codebase.
 */

#ifndef SPECFAAS_COMMON_TYPES_HH
#define SPECFAAS_COMMON_TYPES_HH

#include <cstdint>

namespace specfaas {

/**
 * Simulated time, in microseconds.
 *
 * All simulation components express delays and timestamps in Ticks.
 * Microsecond resolution is sufficient: the shortest latencies the
 * model cares about (handler-process kill, local cache hits) are on
 * the order of tens of microseconds, while the longest (container
 * creation) are seconds.
 */
using Tick = std::int64_t;

/** One millisecond expressed in Ticks. */
inline constexpr Tick kMillisecond = 1000;

/** One second expressed in Ticks. */
inline constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert a floating point number of milliseconds to Ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kMillisecond));
}

/** Convert Ticks to floating point milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Identifier of a scheduled event inside the EventQueue. */
using EventId = std::uint64_t;

/** Identifier of one application invocation (end-to-end request). */
using InvocationId = std::uint64_t;

/** Identifier of one dynamic function execution inside an invocation. */
using InstanceId = std::uint64_t;

/** Identifier of a cluster node. */
using NodeId = std::uint32_t;

} // namespace specfaas

#endif // SPECFAAS_COMMON_TYPES_HH
