#include "cluster.hh"

#include "common/logging.hh"

namespace specfaas {

Cluster::Cluster(Simulation& sim, const ClusterConfig& config)
    : sim_(sim), config_(config)
{
    SPECFAAS_ASSERT(config.numNodes > 0, "cluster with no nodes");
    std::vector<Node*> raw;
    for (std::uint32_t i = 0; i < config.numNodes; ++i) {
        nodes_.push_back(
            std::make_unique<Node>(sim_, i, config.coresPerNode));
        raw.push_back(nodes_.back().get());
    }
    controller_ = std::make_unique<Node>(sim_, config.numNodes,
                                         config.controllerThreads);
    containers_ = std::make_unique<ContainerPool>(sim_, raw, config_);
}

Node&
Cluster::node(NodeId id)
{
    SPECFAAS_ASSERT(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

std::uint32_t
Cluster::totalCores() const
{
    return config_.numNodes * config_.coresPerNode;
}

void
Cluster::failNode(NodeId id)
{
    node(id).setDown(true);
    containers_->dropNode(id);
}

void
Cluster::restoreNode(NodeId id)
{
    node(id).setDown(false);
}

void
Cluster::resetUtilization()
{
    for (auto& n : nodes_)
        n->resetUtilization();
}

double
Cluster::utilization() const
{
    double sum = 0.0;
    for (const auto& n : nodes_)
        sum += n->utilization();
    return nodes_.empty() ? 0.0 : sum / static_cast<double>(nodes_.size());
}

} // namespace specfaas
