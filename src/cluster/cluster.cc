#include "cluster.hh"

namespace specfaas {

Cluster::Cluster(Simulation& sim, const ClusterConfig& config,
                 const FleetConfig& fleet)
    : fleet_(sim, config, fleet)
{
}

} // namespace specfaas
