/**
 * @file
 * Function containers and the warm pool.
 *
 * Each container hosts one function's runtime: an initializer process
 * that stays alive across requests, and a per-request handler process
 * forked from it (§VI). A container serves one request at a time;
 * concurrent invocations of the same function need multiple
 * containers. Cold acquisition pays container creation plus runtime
 * setup (Fig. 3); warm acquisition pays only the handler fork.
 */

#ifndef SPECFAAS_CLUSTER_CONTAINER_HH
#define SPECFAAS_CLUSTER_CONTAINER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/inline_function.hh"
#include "common/symbol.hh"

#include "cluster/cluster_config.hh"
#include "cluster/node.hh"
#include "common/types.hh"
#include "sim/simulation.hh"

namespace specfaas {

class Fleet;
struct ContainerFunctionPool;

/** One container instance bound to a function and a node. */
struct Container
{
    std::uint64_t id;
    ContainerFunctionPool* owner;
    NodeId node;
    Tick idleSince = 0; ///< last release time (keep-alive eviction)
    bool busy = false;
    bool dead = false; ///< destroyed slot, parked on the free list

    const std::string& function() const;
};

/**
 * Per-function warm pool: the function's interned name, slab storage
 * for every container slot ever created for it, and the free-warm
 * subset. Containers point back at their pool, so the per-request
 * release path touches no string hashing at all. Slots live in a
 * deque (stable addresses, ~one heap block per dozen containers
 * instead of one per container); destroyed slots go on a free list
 * and are recycled by the next creation, so `live` — not a container
 * scan — answers containerCount().
 */
struct ContainerFunctionPool
{
    Symbol sym;
    std::string name; ///< resolved once, for trace rendering
    // Slot storage; entries may be dead (awaiting reuse via free_).
    std::deque<Container> slots;
    // Free warm containers (live subset of slots).
    std::deque<Container*> warm;
    // Destroyed slots ready for reuse.
    std::vector<Container*> free_;
    // Live (warm + busy) containers.
    std::size_t live = 0;
};

inline const std::string&
Container::function() const
{
    return owner->name;
}

/** Timing split of one container acquisition, for Fig. 3. */
struct AcquireTiming
{
    Tick containerCreation = 0;
    Tick runtimeSetup = 0;
    Tick handlerFork = 0;

    Tick total() const
    {
        return containerCreation + runtimeSetup + handlerFork;
    }
};

/**
 * Cluster-wide container manager with per-function warm pools.
 *
 * Placement is least-loaded-node (ties broken by node id) at cold
 * creation time; warm containers are reused wherever they live.
 */
class ContainerPool
{
  public:
    using AcquireCallback =
        InlineFunction<void(Container&, const AcquireTiming&), 48>;

    /**
     * @param sim simulation context
     * @param fleet the owning fleet (placement consults its node
     *        lifecycle states; acquisitions feed its keep-alive
     *        tracker when dynamics are on)
     * @param config platform cost constants
     */
    ContainerPool(Simulation& sim, Fleet& fleet,
                  const ClusterConfig& config);

    /** Folds cold/warm start totals into the global counters. */
    ~ContainerPool();

    /**
     * Acquire a container for @p function. Completes asynchronously:
     * immediately (plus handler fork time) when a warm container is
     * free, after a cold start otherwise.
     */
    void acquire(Symbol function, AcquireCallback done);

    /** Convenience: interns @p function (tests, setup code). */
    void
    acquire(std::string_view function, AcquireCallback done)
    {
        acquire(Symbol(function), std::move(done));
    }

    /** Return a container to the warm pool after a request. */
    void release(Container& c);

    /**
     * Destroy a container (container-kill squash policy). The slot
     * does not return to the warm pool; the next acquisition of this
     * function may cold-start.
     */
    void destroy(Container& c);

    /**
     * Pre-provision @p count warm containers for @p function without
     * charging cold-start time (models a warmed-up environment where
     * prior optimizations removed start-up overheads, §IV).
     */
    void prewarm(Symbol function, std::uint32_t count);

    /** Convenience: interns @p function (tests, setup code). */
    void
    prewarm(std::string_view function, std::uint32_t count)
    {
        prewarm(Symbol(function), count);
    }

    /**
     * Node @p node failed: drop its free warm containers (the warm
     * pool is node-local state and dies with the node). Busy
     * containers are destroyed by the engines when they crash the
     * handlers running in them.
     * @return number of warm containers lost
     */
    std::size_t dropNode(NodeId node);

    /**
     * Drain node @p node's warm pool (fleet scale-down). Same
     * mechanics as dropNode but traced as a fleet lifecycle action,
     * not a fault.
     * @return number of warm containers released
     */
    std::size_t evictWarmOnNode(NodeId node);

    /**
     * Evict warm containers idle past their function's keep-alive TTL
     * (fleet eviction daemon). Warm deques are ordered by idleSince,
     * so each scan stops at the first unexpired container.
     * @return number of containers evicted
     */
    std::size_t evictIdle(Tick now);

    /** Live (warm + busy) containers placed on @p node. */
    std::size_t liveOnNode(NodeId node) const;

    /** Total containers (warm + busy) for @p function. */
    std::size_t containerCount(Symbol function) const;

    /** Convenience: non-interning lookup by name (tests). */
    std::size_t
    containerCount(std::string_view function) const
    {
        return containerCount(Symbol::lookup(function));
    }

    /** Free warm containers across all functions (sampler gauge). */
    std::size_t warmCount() const;

    /** @{ Counters. */
    std::uint64_t coldStarts() const { return coldStarts_; }
    std::uint64_t warmStarts() const { return warmStarts_; }
    /** @} */

  private:
    Node& pickNode();
    Node* nodeById(NodeId id) const;
    /** Shared dropNode/evictWarmOnNode loop. */
    std::size_t reclaimWarmOnNode(NodeId node);

    Simulation& sim_;
    Fleet& fleet_;
    const ClusterConfig& config_;
    std::uint64_t nextContainer_ = 1;

    ContainerFunctionPool& poolFor(Symbol function);

    /** Create (or recycle) a live slot in @p pool placed on @p node. */
    Container* createContainer(ContainerFunctionPool& pool, NodeId node);

    /**
     * Indexed by Symbol id — a per-function lookup is one array
     * access, no string hashing. Entries are heap-allocated so
     * Container::owner back-pointers survive table growth; unused
     * ids (symbols interned by other subsystems) stay null.
     */
    std::vector<std::unique_ptr<ContainerFunctionPool>> pools_;
    std::uint64_t coldStarts_ = 0;
    std::uint64_t warmStarts_ = 0;
    std::uint32_t rrNext_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_CLUSTER_CONTAINER_HH
