/**
 * @file
 * Cluster-wide configuration constants.
 *
 * Default magnitudes are calibrated to the paper's Fig. 3 breakdown
 * and §VI measurements: container creation ≈1500 ms, runtime setup
 * ≈350 ms, container kill ≈10 s, handler-process kill ≈1 ms, and warm
 * per-function platform/transfer overheads sized so that function
 * execution is 33–42% of the warm response time (Observation 1).
 */

#ifndef SPECFAAS_CLUSTER_CLUSTER_CONFIG_HH
#define SPECFAAS_CLUSTER_CLUSTER_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace specfaas {

/** Static description of the simulated cluster and platform costs. */
struct ClusterConfig
{
    /** Number of worker nodes (paper: five EPYC servers). */
    std::uint32_t numNodes = 5;

    /** Cores per node (paper: 24 cores, 2-way SMT → 48 hw threads). */
    std::uint32_t coresPerNode = 48;

    /** Cold start: container + network namespace creation. */
    Tick containerCreation = msToTicks(1500.0);

    /** Cold start: code injection + docker proxy start. */
    Tick runtimeSetup = msToTicks(350.0);

    /**
     * Warm start: initializer forks a fresh handler process for the
     * request (§VI runtime split).
     */
    Tick handlerForkOverhead = msToTicks(0.5);

    /** Killing a handler process on squash (§VI, ≈1 ms). */
    Tick processKillOverhead = msToTicks(1.0);

    /** Killing a whole container on squash (§VI, ≈10 s). */
    Tick containerKillOverhead = msToTicks(10000.0);

    /**
     * Under the container-kill squash policy, the destroyed
     * container cannot be reused (§VI): relaunched work must wait
     * for the platform to provision a replacement execution
     * environment. This is that provisioning latency in a warm
     * environment (a full cold start applies when no pre-warmed
     * capacity remains).
     */
    Tick containerRespawnLatency = msToTicks(45.0);

    /**
     * Front-end → controller → worker communication when a new
     * request arrives (Fig. 3 "Platform Overhead"), charged once per
     * function launch. Sized so that warm per-function response is
     * ~20 ms with execution at 33–42% of it (Observation 1 and the
     * per-application totals of Table I).
     */
    Tick platformOverhead = msToTicks(7.0);

    /**
     * Explicit workflows: worker → controller completion message plus
     * the conductor helper-function execution plus controller →
     * worker next-launch message (Fig. 3 "Transfer Function
     * Overhead").
     */
    Tick conductorOverhead = msToTicks(7.0);

    /**
     * Implicit workflows: one HTTP/RPC hop between caller and callee
     * (charged each way).
     */
    Tick rpcLatency = msToTicks(3.5);

    /**
     * SpecFaaS sequence-table dispatch: the controller picks the next
     * function locally instead of round-tripping through the
     * conductor (§IV), leaving only a small scheduling cost.
     */
    Tick sequenceTableDispatch = msToTicks(0.8);

    /** Message latency worker ↔ controller (Data Buffer requests). */
    Tick controllerMsgLatency = msToTicks(0.25);

    /**
     * @{ Control-plane capacity. Every function launch occupies one
     * of the platform's controller threads for a service time; this
     * is the throughput bottleneck of real FaaS control planes (an
     * OpenWhisk-style platform throttles activations long before the
     * worker CPUs saturate). Conventional dispatch does front-end /
     * controller / conductor work per launch; SpecFaaS's
     * Sequence-Table dispatch (§IV) is much cheaper. The service
     * time is the in-series part of the corresponding overhead.
     */
    std::uint32_t controllerThreads = 8;
    Tick baselineLaunchService = msToTicks(2.6);
    Tick specLaunchService = msToTicks(0.6);
    /**
     * Admission control: new requests are rejected (OpenWhisk's
     * 429 TooManyRequests) when this many launches are already
     * queued at the controller.
     */
    std::uint32_t admissionQueueLimit = 24;
    /** @} */
};

} // namespace specfaas

#endif // SPECFAAS_CLUSTER_CLUSTER_CONFIG_HH
