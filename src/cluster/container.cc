#include "container.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/sim_context.hh"

namespace specfaas {

ContainerPool::ContainerPool(Simulation& sim, std::vector<Node*> nodes,
                             const ClusterConfig& config)
    : sim_(sim), nodes_(std::move(nodes)), config_(config)
{
    SPECFAAS_ASSERT(!nodes_.empty(), "container pool with no nodes");
}

ContainerPool::~ContainerPool()
{
    sim_.context().counters().add("cluster.cold_starts", coldStarts_);
    sim_.context().counters().add("cluster.warm_starts", warmStarts_);
}

Node&
ContainerPool::pickNode()
{
    // Least-loaded placement with round-robin tie-breaking, so cold
    // starts spread across the cluster deterministically. Down nodes
    // receive no placements unless the whole cluster is down.
    Node* best = nullptr;
    std::uint32_t bestLoad = ~0u;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node* n = nodes_[(rrNext_ + i) % nodes_.size()];
        if (n->isDown())
            continue;
        const auto load = n->busyCores() +
                          static_cast<std::uint32_t>(n->queueLength());
        if (load < bestLoad) {
            bestLoad = load;
            best = n;
        }
    }
    rrNext_ = (rrNext_ + 1) % static_cast<std::uint32_t>(nodes_.size());
    if (best == nullptr)
        best = nodes_[rrNext_ % nodes_.size()];
    return *best;
}

Node*
ContainerPool::nodeById(NodeId id) const
{
    for (Node* n : nodes_)
        if (n->id() == id)
            return n;
    return nullptr;
}

ContainerFunctionPool&
ContainerPool::poolFor(Symbol function)
{
    const std::size_t i = function.id();
    if (i >= pools_.size())
        pools_.resize(i + 1);
    if (pools_[i] == nullptr) {
        pools_[i] = std::make_unique<ContainerFunctionPool>();
        pools_[i]->sym = function;
        pools_[i]->name = function.str();
    }
    return *pools_[i];
}

Container*
ContainerPool::createContainer(ContainerFunctionPool& pool, NodeId node)
{
    Container* c;
    if (!pool.free_.empty()) {
        c = pool.free_.back();
        pool.free_.pop_back();
    } else {
        c = &pool.slots.emplace_back();
    }
    c->id = nextContainer_++;
    c->owner = &pool;
    c->node = node;
    c->busy = false;
    c->dead = false;
    ++pool.live;
    return c;
}

void
ContainerPool::acquire(Symbol function, AcquireCallback done)
{
    OBS_ZONE(sim_.context().profiler(), "cluster/acquire");
    ContainerFunctionPool& pool = poolFor(function);
    if (!pool.warm.empty()) {
        Container* c = pool.warm.front();
        pool.warm.pop_front();
        c->busy = true;
        ++warmStarts_;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kContainer, "warm-start", sim_.now(),
                       obs::nodePid(c->node),
                       obs::kContainerTidBase + c->id,
                       {{"function", pool.name}});
        }
        AcquireTiming timing;
        timing.handlerFork = config_.handlerForkOverhead;
        sim_.events().schedule(timing.handlerFork,
                               [c, timing,
                                cb = std::move(done)]() mutable {
                                   cb(*c, timing);
                               });
        return;
    }

    // Cold start: create a container on the least-loaded node.
    ++coldStarts_;
    Node& node = pickNode();
    Container* c = createContainer(pool, node.id());
    c->busy = true;

    AcquireTiming timing;
    timing.containerCreation = config_.containerCreation;
    timing.runtimeSetup = config_.runtimeSetup;
    timing.handlerFork = config_.handlerForkOverhead;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.begin(obs::cat::kContainer, "cold-start", sim_.now(),
                 obs::nodePid(c->node), obs::kContainerTidBase + c->id,
                 {{"function", pool.name},
                  {"container_creation_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.containerCreation)),
                   true},
                  {"runtime_setup_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.runtimeSetup)),
                   true},
                  {"handler_fork_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.handlerFork)),
                   true}});
    }
    sim_.events().schedule(
        timing.total(),
        [this, c, timing, cb = std::move(done)]() mutable {
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.end(obs::cat::kContainer, "cold-start", sim_.now(),
                       obs::nodePid(c->node),
                       obs::kContainerTidBase + c->id);
            }
            // The node died while this container was being created:
            // the creation is lost; place the request again.
            if (Node* n = nodeById(c->node);
                n != nullptr && n->isDown()) {
                ContainerFunctionPool& p = *c->owner;
                destroy(*c);
                acquire(p.sym, std::move(cb));
                return;
            }
            cb(*c, timing);
        });
}

void
ContainerPool::release(Container& c)
{
    OBS_ZONE(sim_.context().profiler(), "cluster/release");
    SPECFAAS_ASSERT(c.busy, "releasing idle container %llu",
                    static_cast<unsigned long long>(c.id));
    // A container on a failed node cannot rejoin the warm pool; its
    // state died with the node.
    if (Node* n = nodeById(c.node); n != nullptr && n->isDown()) {
        destroy(c);
        return;
    }
    c.busy = false;
    c.owner->warm.push_back(&c);
}

void
ContainerPool::destroy(Container& c)
{
    SPECFAAS_ASSERT(!c.dead, "destroying container %llu twice",
                    static_cast<unsigned long long>(c.id));
    ContainerFunctionPool& pool = *c.owner;
    auto wit = std::find(pool.warm.begin(), pool.warm.end(), &c);
    if (wit != pool.warm.end())
        pool.warm.erase(wit);
    c.dead = true;
    --pool.live;
    pool.free_.push_back(&c);
}

void
ContainerPool::prewarm(Symbol function, std::uint32_t count)
{
    ContainerFunctionPool& pool = poolFor(function);
    for (std::uint32_t i = 0; i < count; ++i) {
        Node& node = pickNode();
        pool.warm.push_back(createContainer(pool, node.id()));
    }
}

std::size_t
ContainerPool::dropNode(NodeId node)
{
    std::size_t dropped = 0;
    for (auto& entry : pools_) {
        if (entry == nullptr)
            continue;
        ContainerFunctionPool& pool = *entry;
        for (std::size_t i = pool.warm.size(); i-- > 0;) {
            Container* c = pool.warm[i];
            if (c->node != node)
                continue;
            pool.warm.erase(pool.warm.begin() +
                            static_cast<std::ptrdiff_t>(i));
            c->dead = true;
            --pool.live;
            pool.free_.push_back(c);
            ++dropped;
        }
    }
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "warm-pool-lost", sim_.now(),
                   obs::nodePid(node), 0,
                   {{"dropped", strFormat("%zu", dropped), true}});
    }
    return dropped;
}

std::size_t
ContainerPool::containerCount(Symbol function) const
{
    const std::size_t i = function.id();
    return i < pools_.size() && pools_[i] != nullptr ? pools_[i]->live
                                                     : 0;
}

std::size_t
ContainerPool::warmCount() const
{
    std::size_t n = 0;
    for (const auto& entry : pools_)
        if (entry != nullptr)
            n += entry->warm.size();
    return n;
}

} // namespace specfaas
