#include "container.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "sim/sim_context.hh"

namespace specfaas {

ContainerPool::ContainerPool(Simulation& sim, Fleet& fleet,
                             const ClusterConfig& config)
    : sim_(sim), fleet_(fleet), config_(config)
{
    SPECFAAS_ASSERT(!fleet_.workers().empty(),
                    "container pool with no nodes");
}

ContainerPool::~ContainerPool()
{
    sim_.context().counters().add("cluster.cold_starts", coldStarts_);
    sim_.context().counters().add("cluster.warm_starts", warmStarts_);
}

Node&
ContainerPool::pickNode()
{
    // Least-loaded placement with round-robin tie-breaking, so cold
    // starts spread across the cluster deterministically. Only
    // placeable (Ready, up) nodes receive placements unless the whole
    // fleet is unplaceable.
    const auto& workers = fleet_.workers();
    Node* best = nullptr;
    std::uint32_t bestLoad = ~0u;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        Node* n = workers[(rrNext_ + i) % workers.size()].get();
        if (!fleet_.placeable(n->id()))
            continue;
        const auto load = n->busyCores() +
                          static_cast<std::uint32_t>(n->queueLength());
        if (load < bestLoad) {
            bestLoad = load;
            best = n;
        }
    }
    rrNext_ = (rrNext_ + 1) % static_cast<std::uint32_t>(workers.size());
    if (best == nullptr)
        best = workers[rrNext_ % workers.size()].get();
    return *best;
}

Node*
ContainerPool::nodeById(NodeId id) const
{
    // Worker ids equal their index in the fleet's worker table.
    const auto& workers = fleet_.workers();
    return id < workers.size() ? workers[id].get() : nullptr;
}

ContainerFunctionPool&
ContainerPool::poolFor(Symbol function)
{
    const std::size_t i = function.id();
    if (i >= pools_.size())
        pools_.resize(i + 1);
    if (pools_[i] == nullptr) {
        pools_[i] = std::make_unique<ContainerFunctionPool>();
        pools_[i]->sym = function;
        pools_[i]->name = function.str();
    }
    return *pools_[i];
}

Container*
ContainerPool::createContainer(ContainerFunctionPool& pool, NodeId node)
{
    Container* c;
    if (!pool.free_.empty()) {
        c = pool.free_.back();
        pool.free_.pop_back();
    } else {
        c = &pool.slots.emplace_back();
    }
    c->id = nextContainer_++;
    c->owner = &pool;
    c->node = node;
    c->busy = false;
    c->dead = false;
    ++pool.live;
    return c;
}

void
ContainerPool::acquire(Symbol function, AcquireCallback done)
{
    OBS_ZONE(sim_.context().profiler(), "cluster/acquire");
    if (fleet_.dynamic())
        fleet_.noteAcquire(function);
    ContainerFunctionPool& pool = poolFor(function);
    if (!pool.warm.empty()) {
        Container* c = pool.warm.front();
        pool.warm.pop_front();
        c->busy = true;
        ++warmStarts_;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kContainer, "warm-start", sim_.now(),
                       obs::nodePid(c->node),
                       obs::kContainerTidBase + c->id,
                       {{"function", pool.name}});
        }
        AcquireTiming timing;
        timing.handlerFork = config_.handlerForkOverhead;
        sim_.events().schedule(timing.handlerFork,
                               [c, timing,
                                cb = std::move(done)]() mutable {
                                   cb(*c, timing);
                               });
        return;
    }

    // Cold start: create a container on the least-loaded node.
    ++coldStarts_;
    Node& node = pickNode();
    Container* c = createContainer(pool, node.id());
    c->busy = true;

    AcquireTiming timing;
    timing.containerCreation = config_.containerCreation;
    timing.runtimeSetup = config_.runtimeSetup;
    timing.handlerFork = config_.handlerForkOverhead;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.begin(obs::cat::kContainer, "cold-start", sim_.now(),
                 obs::nodePid(c->node), obs::kContainerTidBase + c->id,
                 {{"function", pool.name},
                  {"container_creation_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.containerCreation)),
                   true},
                  {"runtime_setup_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.runtimeSetup)),
                   true},
                  {"handler_fork_us",
                   strFormat("%lld", static_cast<long long>(
                                         timing.handlerFork)),
                   true}});
    }
    sim_.events().schedule(
        timing.total(),
        [this, c, timing, cb = std::move(done)]() mutable {
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.end(obs::cat::kContainer, "cold-start", sim_.now(),
                       obs::nodePid(c->node),
                       obs::kContainerTidBase + c->id);
            }
            // The node died (or left service) while this container
            // was being created: the creation is lost; place the
            // request again.
            if (!fleet_.placeable(c->node)) {
                ContainerFunctionPool& p = *c->owner;
                destroy(*c);
                acquire(p.sym, std::move(cb));
                return;
            }
            cb(*c, timing);
        });
}

void
ContainerPool::release(Container& c)
{
    OBS_ZONE(sim_.context().profiler(), "cluster/release");
    SPECFAAS_ASSERT(c.busy, "releasing idle container %llu",
                    static_cast<unsigned long long>(c.id));
    // A container on a failed or draining node cannot rejoin the warm
    // pool; its state dies with the node.
    if (!fleet_.placeable(c.node)) {
        destroy(c);
        return;
    }
    c.busy = false;
    c.idleSince = sim_.now();
    c.owner->warm.push_back(&c);
}

void
ContainerPool::destroy(Container& c)
{
    SPECFAAS_ASSERT(!c.dead, "destroying container %llu twice",
                    static_cast<unsigned long long>(c.id));
    ContainerFunctionPool& pool = *c.owner;
    auto wit = std::find(pool.warm.begin(), pool.warm.end(), &c);
    if (wit != pool.warm.end())
        pool.warm.erase(wit);
    c.dead = true;
    --pool.live;
    pool.free_.push_back(&c);
}

void
ContainerPool::prewarm(Symbol function, std::uint32_t count)
{
    ContainerFunctionPool& pool = poolFor(function);
    for (std::uint32_t i = 0; i < count; ++i) {
        Node& node = pickNode();
        Container* c = createContainer(pool, node.id());
        c->idleSince = sim_.now();
        pool.warm.push_back(c);
    }
}

std::size_t
ContainerPool::reclaimWarmOnNode(NodeId node)
{
    std::size_t dropped = 0;
    for (auto& entry : pools_) {
        if (entry == nullptr)
            continue;
        ContainerFunctionPool& pool = *entry;
        for (std::size_t i = pool.warm.size(); i-- > 0;) {
            Container* c = pool.warm[i];
            if (c->node != node)
                continue;
            pool.warm.erase(pool.warm.begin() +
                            static_cast<std::ptrdiff_t>(i));
            c->dead = true;
            --pool.live;
            pool.free_.push_back(c);
            ++dropped;
        }
    }
    return dropped;
}

std::size_t
ContainerPool::dropNode(NodeId node)
{
    const std::size_t dropped = reclaimWarmOnNode(node);
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "warm-pool-lost", sim_.now(),
                   obs::nodePid(node), 0,
                   {{"dropped", strFormat("%zu", dropped), true}});
    }
    return dropped;
}

std::size_t
ContainerPool::evictWarmOnNode(NodeId node)
{
    const std::size_t dropped = reclaimWarmOnNode(node);
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFleet, "warm-pool-drained", sim_.now(),
                   obs::nodePid(node), 0,
                   {{"dropped", strFormat("%zu", dropped), true}});
    }
    return dropped;
}

std::size_t
ContainerPool::evictIdle(Tick now)
{
    std::size_t evicted = 0;
    for (auto& entry : pools_) {
        if (entry == nullptr)
            continue;
        ContainerFunctionPool& pool = *entry;
        if (pool.warm.empty())
            continue;
        const Tick keepAlive = fleet_.keepAliveFor(pool.sym);
        // Warm deques are ordered by idleSince (releases append at
        // nondecreasing simulated times), so the expired prefix is
        // exactly the containers to evict.
        while (!pool.warm.empty()) {
            Container* c = pool.warm.front();
            if (now - c->idleSince < keepAlive)
                break;
            pool.warm.pop_front();
            c->dead = true;
            --pool.live;
            pool.free_.push_back(c);
            ++evicted;
        }
    }
    return evicted;
}

std::size_t
ContainerPool::liveOnNode(NodeId node) const
{
    std::size_t n = 0;
    for (const auto& entry : pools_) {
        if (entry == nullptr)
            continue;
        for (const Container& c : entry->slots)
            if (!c.dead && c.node == node)
                ++n;
    }
    return n;
}

std::size_t
ContainerPool::containerCount(Symbol function) const
{
    const std::size_t i = function.id();
    return i < pools_.size() && pools_[i] != nullptr ? pools_[i]->live
                                                     : 0;
}

std::size_t
ContainerPool::warmCount() const
{
    std::size_t n = 0;
    for (const auto& entry : pools_)
        if (entry != nullptr)
            n += entry->warm.size();
    return n;
}

} // namespace specfaas
