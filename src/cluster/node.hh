/**
 * @file
 * Worker node: a fixed set of cores with an FCFS run queue and
 * utilization accounting.
 *
 * Compute tasks are abortable, which is how the squash policies are
 * modelled: a process-kill squash frees the core ~1 ms after the
 * abort; LazySquash simply never aborts and lets the task finish.
 */

#ifndef SPECFAAS_CLUSTER_NODE_HH
#define SPECFAAS_CLUSTER_NODE_HH

#include <cstdint>
#include <vector>

#include "common/inline_function.hh"
#include "common/types.hh"
#include "sim/simulation.hh"

namespace specfaas {

/** Handle to a submitted compute task. */
using ComputeTaskId = std::uint64_t;

/** Completion callback for a compute burst (small-buffer, no heap). */
using ComputeCallback = InlineFunction<void(), 72>;

/** A worker node with @c cores cores and an FCFS queue. */
class Node
{
  public:
    /**
     * @param sim simulation context
     * @param id node identifier
     * @param cores number of cores
     */
    Node(Simulation& sim, NodeId id, std::uint32_t cores);

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /** Node identifier. */
    NodeId id() const { return id_; }

    /** Total cores. */
    std::uint32_t cores() const { return cores_; }

    /** Cores currently executing a task. */
    std::uint32_t busyCores() const { return busy_; }

    /** Tasks waiting for a core. */
    std::size_t queueLength() const { return waiting_.size() - waitHead_; }

    /**
     * @{ Failure state (fault injection). A down node receives no new
     * container placements; its in-flight work is crashed by the
     * engines and its warm containers dropped by the pool.
     */
    bool isDown() const { return down_; }
    void setDown(bool down) { down_ = down; }
    /** @} */

    /**
     * Submit a compute burst. When a core is free the task runs for
     * @p duration ticks, then @p done fires. Otherwise it waits FCFS.
     * @return handle usable with abort()
     */
    ComputeTaskId submit(Tick duration, ComputeCallback done);

    /**
     * Abort a pending or running task. The completion callback never
     * fires. A queued task is removed instantly; a running task holds
     * its core for @p kill_overhead more ticks (the time to kill the
     * handler process) and is then reclaimed.
     * @return true when the task existed
     */
    bool abort(ComputeTaskId task, Tick kill_overhead);

    /** True while @p task is queued or running. */
    bool isActive(ComputeTaskId task) const;

    /**
     * Busy core-ticks accumulated up to now (integral of busyCores
     * over time). utilization = busyCoreTicks / (cores × elapsed).
     */
    Tick busyCoreTicks() const;

    /** Reset the utilization integral (start of measurement window). */
    void resetUtilization();

    /** Mean utilization in [0,1] since the last reset. */
    double utilization() const;

  private:
    struct Waiting
    {
        ComputeTaskId id;
        Tick duration;
        ComputeCallback done;
    };

    struct Running
    {
        ComputeTaskId id;
        EventId completion;
        ComputeCallback done;
    };

    void accountBusy();
    void startTask(ComputeTaskId id, Tick duration,
                   ComputeCallback done);
    void coreReleased();
    Running* findRunning(ComputeTaskId id);

    Simulation& sim_;
    NodeId id_;
    std::uint32_t cores_;
    bool down_ = false;
    std::uint32_t busy_ = 0;
    ComputeTaskId nextTask_ = 1;
    // FCFS queue as a vector with a consumed-prefix head index; the
    // prefix is compacted once it dominates so memory stays bounded
    // without per-pop reallocation.
    std::vector<Waiting> waiting_;
    std::size_t waitHead_ = 0;
    // Tasks currently on a core. Bounded by the core count, so a flat
    // vector with linear lookup beats a node-per-entry hash map.
    std::vector<Running> running_;

    // Utilization accounting.
    Tick windowStart_ = 0;
    Tick lastChange_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_CLUSTER_NODE_HH
