/**
 * @file
 * Cluster facade: a thin view over the Fleet, which owns the nodes,
 * the control-plane station and the container pool.
 *
 * Engines and benches keep programming against this interface; the
 * fleet beneath it adds node lifecycle, autoscaling, eviction and
 * admission dynamics when enabled (see fleet/fleet.hh). With the
 * default FleetConfig the fleet is static and behaves exactly like
 * the old directly-owning Cluster.
 */

#ifndef SPECFAAS_CLUSTER_CLUSTER_HH
#define SPECFAAS_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "cluster/cluster_config.hh"
#include "cluster/container.hh"
#include "cluster/node.hh"
#include "fleet/fleet.hh"
#include "sim/simulation.hh"

namespace specfaas {

/** The simulated worker cluster. */
class Cluster
{
  public:
    /**
     * @param sim simulation context
     * @param config node counts and platform cost constants
     * @param fleet dynamics configuration (default: static fleet)
     */
    Cluster(Simulation& sim, const ClusterConfig& config,
            const FleetConfig& fleet = {});

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /** Cost constants in effect. */
    const ClusterConfig& config() const { return fleet_.clusterConfig(); }

    /** The fleet behind this view. */
    Fleet& fleet() { return fleet_; }
    const Fleet& fleet() const { return fleet_; }

    /** Worker nodes (retired nodes keep their slot; ids are stable). */
    const std::vector<std::unique_ptr<Node>>& nodes() const
    {
        return fleet_.workers();
    }

    /** Node by id. */
    Node& node(NodeId id) { return fleet_.worker(id); }

    /**
     * The control-plane service station: a pool of controller
     * threads every function launch must pass through. Modelled as a
     * Node whose "cores" are controller threads.
     */
    Node& controller() { return fleet_.controller(); }

    /** Container manager. */
    ContainerPool& containers() { return fleet_.containers(); }

    /** Total cores across non-retired nodes. */
    std::uint32_t totalCores() const { return fleet_.liveCores(); }

    /**
     * @{ Injected node failure: mark the node down so it receives no
     * new placements and drop its warm containers; restore brings it
     * back empty (cold). In-flight handlers on the node are crashed
     * by the engines, not here.
     */
    void failNode(NodeId id) { fleet_.failNode(id); }
    void restoreNode(NodeId id) { fleet_.restoreNode(id); }
    /** @} */

    /** Start a cluster-wide utilization measurement window. */
    void resetUtilization() { fleet_.resetUtilization(); }

    /** Mean CPU utilization in [0,1] since the last reset. */
    double utilization() const { return fleet_.utilization(); }

  private:
    Fleet fleet_;
};

} // namespace specfaas

#endif // SPECFAAS_CLUSTER_CLUSTER_HH
