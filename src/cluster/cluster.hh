/**
 * @file
 * Cluster facade: owns the nodes and the container pool and exposes
 * utilization accounting across the machine.
 */

#ifndef SPECFAAS_CLUSTER_CLUSTER_HH
#define SPECFAAS_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "cluster/cluster_config.hh"
#include "cluster/container.hh"
#include "cluster/node.hh"
#include "sim/simulation.hh"

namespace specfaas {

/** The simulated worker cluster. */
class Cluster
{
  public:
    /**
     * @param sim simulation context
     * @param config node counts and platform cost constants
     */
    Cluster(Simulation& sim, const ClusterConfig& config);

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /** Cost constants in effect. */
    const ClusterConfig& config() const { return config_; }

    /** Worker nodes. */
    const std::vector<std::unique_ptr<Node>>& nodes() const
    {
        return nodes_;
    }

    /** Node by id. */
    Node& node(NodeId id);

    /**
     * The control-plane service station: a pool of controller
     * threads every function launch must pass through. Modelled as a
     * Node whose "cores" are controller threads.
     */
    Node& controller() { return *controller_; }

    /** Container manager. */
    ContainerPool& containers() { return *containers_; }

    /** Total cores across all nodes. */
    std::uint32_t totalCores() const;

    /**
     * @{ Injected node failure: mark the node down so it receives no
     * new placements and drop its warm containers; restore brings it
     * back empty (cold). In-flight handlers on the node are crashed
     * by the engines, not here.
     */
    void failNode(NodeId id);
    void restoreNode(NodeId id);
    /** @} */

    /** Start a cluster-wide utilization measurement window. */
    void resetUtilization();

    /** Mean CPU utilization in [0,1] since the last reset. */
    double utilization() const;

  private:
    Simulation& sim_;
    ClusterConfig config_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<Node> controller_;
    std::unique_ptr<ContainerPool> containers_;
};

} // namespace specfaas

#endif // SPECFAAS_CLUSTER_CLUSTER_HH
