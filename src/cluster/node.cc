#include "node.hh"

#include <algorithm>

#include "common/logging.hh"

namespace specfaas {

Node::Node(Simulation& sim, NodeId id, std::uint32_t cores)
    : sim_(sim), id_(id), cores_(cores)
{
    SPECFAAS_ASSERT(cores > 0, "node with zero cores");
}

void
Node::accountBusy()
{
    const Tick now = sim_.now();
    busyTicks_ += static_cast<Tick>(busy_) * (now - lastChange_);
    lastChange_ = now;
}

ComputeTaskId
Node::submit(Tick duration, std::function<void()> done)
{
    SPECFAAS_ASSERT(duration >= 0, "negative compute duration");
    const ComputeTaskId id = nextTask_++;
    if (busy_ < cores_)
        startTask(id, duration, std::move(done));
    else
        waiting_.push_back(Waiting{id, duration, std::move(done)});
    return id;
}

void
Node::startTask(ComputeTaskId id, Tick duration, std::function<void()> done)
{
    accountBusy();
    ++busy_;
    const EventId completion = sim_.events().schedule(
        duration, [this, id, cb = std::move(done)]() {
            running_.erase(id);
            coreReleased();
            cb();
        });
    running_[id] = Running{completion};
}

void
Node::coreReleased()
{
    accountBusy();
    SPECFAAS_ASSERT(busy_ > 0, "releasing core on idle node");
    --busy_;
    if (!waiting_.empty() && busy_ < cores_) {
        Waiting next = std::move(waiting_.front());
        waiting_.pop_front();
        startTask(next.id, next.duration, std::move(next.done));
    }
}

bool
Node::abort(ComputeTaskId task, Tick kill_overhead)
{
    // Queued task: drop it outright.
    auto it = std::find_if(waiting_.begin(), waiting_.end(),
                           [task](const Waiting& w) {
                               return w.id == task;
                           });
    if (it != waiting_.end()) {
        waiting_.erase(it);
        return true;
    }

    // Running task: cancel its completion and occupy the core for the
    // kill overhead before reclaiming it.
    auto rit = running_.find(task);
    if (rit == running_.end())
        return false;
    sim_.events().cancel(rit->second.completion);
    running_.erase(rit);
    sim_.events().schedule(kill_overhead, [this]() { coreReleased(); });
    return true;
}

bool
Node::isActive(ComputeTaskId task) const
{
    if (running_.count(task))
        return true;
    return std::any_of(waiting_.begin(), waiting_.end(),
                       [task](const Waiting& w) { return w.id == task; });
}

Tick
Node::busyCoreTicks() const
{
    return busyTicks_ +
           static_cast<Tick>(busy_) * (sim_.now() - lastChange_);
}

void
Node::resetUtilization()
{
    windowStart_ = sim_.now();
    lastChange_ = sim_.now();
    busyTicks_ = 0;
}

double
Node::utilization() const
{
    const Tick elapsed = sim_.now() - windowStart_;
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(busyCoreTicks()) /
           (static_cast<double>(cores_) * static_cast<double>(elapsed));
}

} // namespace specfaas
