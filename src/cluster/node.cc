#include "node.hh"

#include <algorithm>

#include "common/logging.hh"

namespace specfaas {

Node::Node(Simulation& sim, NodeId id, std::uint32_t cores)
    : sim_(sim), id_(id), cores_(cores), windowStart_(sim.now()),
      lastChange_(sim.now())
{
    SPECFAAS_ASSERT(cores > 0, "node with zero cores");
}

void
Node::accountBusy()
{
    const Tick now = sim_.now();
    busyTicks_ += static_cast<Tick>(busy_) * (now - lastChange_);
    lastChange_ = now;
}

ComputeTaskId
Node::submit(Tick duration, ComputeCallback done)
{
    SPECFAAS_ASSERT(duration >= 0, "negative compute duration");
    const ComputeTaskId id = nextTask_++;
    if (busy_ < cores_)
        startTask(id, duration, std::move(done));
    else
        waiting_.push_back(Waiting{id, duration, std::move(done)});
    return id;
}

Node::Running*
Node::findRunning(ComputeTaskId id)
{
    for (Running& r : running_)
        if (r.id == id)
            return &r;
    return nullptr;
}

void
Node::startTask(ComputeTaskId id, Tick duration, ComputeCallback done)
{
    accountBusy();
    ++busy_;
    // The callback stays in the running-task table rather than being
    // captured into the event, so the scheduled closure is two words
    // and the completion path needs no extra allocation.
    const EventId completion =
        sim_.events().schedule(duration, [this, id]() {
            Running* r = findRunning(id);
            SPECFAAS_ASSERT(r != nullptr, "completion for unknown task");
            ComputeCallback cb = std::move(r->done);
            if (r != &running_.back())
                *r = std::move(running_.back());
            running_.pop_back();
            coreReleased();
            cb();
        });
    running_.push_back(Running{id, completion, std::move(done)});
}

void
Node::coreReleased()
{
    accountBusy();
    SPECFAAS_ASSERT(busy_ > 0, "releasing core on idle node");
    --busy_;
    if (waitHead_ < waiting_.size() && busy_ < cores_) {
        Waiting next = std::move(waiting_[waitHead_]);
        ++waitHead_;
        if (waitHead_ == waiting_.size()) {
            waiting_.clear();
            waitHead_ = 0;
        } else if (waitHead_ > 64 &&
                   waitHead_ * 2 > waiting_.size()) {
            waiting_.erase(waiting_.begin(),
                           waiting_.begin() +
                               static_cast<std::ptrdiff_t>(waitHead_));
            waitHead_ = 0;
        }
        startTask(next.id, next.duration, std::move(next.done));
    }
}

bool
Node::abort(ComputeTaskId task, Tick kill_overhead)
{
    // Queued task: drop it outright.
    auto it = std::find_if(waiting_.begin() +
                               static_cast<std::ptrdiff_t>(waitHead_),
                           waiting_.end(),
                           [task](const Waiting& w) {
                               return w.id == task;
                           });
    if (it != waiting_.end()) {
        waiting_.erase(it);
        return true;
    }

    // Running task: cancel its completion and occupy the core for the
    // kill overhead before reclaiming it.
    Running* r = findRunning(task);
    if (r == nullptr)
        return false;
    sim_.events().cancel(r->completion);
    if (r != &running_.back())
        *r = std::move(running_.back());
    running_.pop_back();
    sim_.events().schedule(kill_overhead, [this]() { coreReleased(); });
    return true;
}

bool
Node::isActive(ComputeTaskId task) const
{
    for (const Running& r : running_)
        if (r.id == task)
            return true;
    return std::any_of(waiting_.begin() +
                           static_cast<std::ptrdiff_t>(waitHead_),
                       waiting_.end(),
                       [task](const Waiting& w) { return w.id == task; });
}

Tick
Node::busyCoreTicks() const
{
    return busyTicks_ +
           static_cast<Tick>(busy_) * (sim_.now() - lastChange_);
}

void
Node::resetUtilization()
{
    windowStart_ = sim_.now();
    lastChange_ = sim_.now();
    busyTicks_ = 0;
}

double
Node::utilization() const
{
    const Tick elapsed = sim_.now() - windowStart_;
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(busyCoreTicks()) /
           (static_cast<double>(cores_) * static_cast<double>(elapsed));
}

} // namespace specfaas
