#include "local_cache.hh"

namespace specfaas {

std::optional<Value>
LocalCache::get(const std::string& key)
{
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
}

void
LocalCache::put(const std::string& key, Value value, InstanceId owner)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->value = std::move(value);
        it->second->owner = owner;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, std::move(value), owner});
    map_[key] = lru_.begin();
    if (map_.size() > capacity_) {
        auto& victim = lru_.back();
        map_.erase(victim.key);
        lru_.pop_back();
    }
}

bool
LocalCache::erase(const std::string& key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
}

void
LocalCache::invalidateOwner(InstanceId owner)
{
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->owner == owner) {
            map_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

void
LocalCache::clear()
{
    lru_.clear();
    map_.clear();
}

} // namespace specfaas
