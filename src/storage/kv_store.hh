/**
 * @file
 * Global key-value store (the Redis stand-in).
 *
 * FaaS functions persist state through a remote key-value service;
 * the paper's prototype intercepts Redis get/set. Here KvStore models
 * that service: a single authoritative map plus request latencies.
 * Access is mediated by the runtime, which applies the latency via the
 * event queue; the store itself is a synchronous data structure so the
 * Data Buffer can commit/flush atomically at a simulated instant.
 */

#ifndef SPECFAAS_STORAGE_KV_STORE_HH
#define SPECFAAS_STORAGE_KV_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "common/value.hh"

namespace specfaas::obs {
class Profiler;
}

namespace specfaas {

/** Latency parameters of the remote store. */
struct KvStoreLatency
{
    /** One-way request latency of a get, in Ticks. */
    Tick readLatency = msToTicks(1.0);
    /** One-way request latency of a set, in Ticks. */
    Tick writeLatency = msToTicks(1.2);
};

/** Authoritative global storage shared by the whole cluster. */
class KvStore
{
  public:
    explicit KvStore(KvStoreLatency latency = {}) : latency_(latency) {}

    /** Read a record; nullopt when absent. Counts a read access. */
    std::optional<Value> get(const std::string& key);

    /** Write a record. Counts a write access. */
    void put(const std::string& key, Value value);

    /** Delete a record; true when it existed. */
    bool erase(const std::string& key);

    /** Peek without counting an access (for tests/analysis). */
    std::optional<Value> peek(const std::string& key) const;

    /** Number of records currently stored. */
    std::size_t size() const { return data_.size(); }

    /** Remove all records and reset counters. */
    void clear();

    /** Latency parameters (applied by callers via the event queue). */
    const KvStoreLatency& latency() const { return latency_; }

    /**
     * Attach the owning simulation's profiler so get/put record
     * "storage/get"/"storage/put" zones. The store has no Simulation
     * reference of its own, so the platform wires this explicitly;
     * unattached stores (unit tests) profile nothing.
     */
    void setProfiler(obs::Profiler* profiler) { profiler_ = profiler; }

    /** @{ Access counters for utilization and trace experiments. */
    std::uint64_t readCount() const { return reads_; }
    std::uint64_t writeCount() const { return writes_; }
    /** @} */

    /** @{ Injected-fault accounting (fed by the FaultInjector). */
    void noteInjectedError(bool write)
    {
        ++(write ? injectedWriteErrors_ : injectedReadErrors_);
    }
    std::uint64_t injectedReadErrors() const
    {
        return injectedReadErrors_;
    }
    std::uint64_t injectedWriteErrors() const
    {
        return injectedWriteErrors_;
    }
    /** @} */

    /**
     * Deterministic fingerprint of the full store contents. Used by
     * the correctness oracle: a SpecFaaS run must leave the store in
     * exactly the state a baseline run leaves it in.
     */
    std::uint64_t fingerprint() const;

    /** Whole contents, for detailed test diffs. */
    const std::unordered_map<std::string, Value>& contents() const
    {
        return data_;
    }

  private:
    KvStoreLatency latency_;
    obs::Profiler* profiler_ = nullptr;
    std::unordered_map<std::string, Value> data_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t injectedReadErrors_ = 0;
    std::uint64_t injectedWriteErrors_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_STORAGE_KV_STORE_HH
