/**
 * @file
 * Per-node software cache of remote records (§V-C).
 *
 * Serverless nodes cache remote data so a function can re-access it
 * with low latency. In SpecFaaS the cache additionally must be
 * invalidatable per handler: when a speculative function is squashed,
 * records it pulled in must be dropped because they may reflect
 * speculative Data Buffer state.
 */

#ifndef SPECFAAS_STORAGE_LOCAL_CACHE_HH
#define SPECFAAS_STORAGE_LOCAL_CACHE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "common/value.hh"

namespace specfaas {

/**
 * LRU cache of (key → value) with an owner tag per entry.
 *
 * The owner tag is the dynamic function instance that inserted the
 * entry; squashing that instance invalidates its entries.
 */
class LocalCache
{
  public:
    /**
     * @param capacity maximum number of records
     * @param hit_latency lookup latency applied by callers
     */
    explicit LocalCache(std::size_t capacity = 4096,
                        Tick hit_latency = 50)
        : capacity_(capacity), hitLatency_(hit_latency)
    {}

    /** Lookup; refreshes LRU position on hit. */
    std::optional<Value> get(const std::string& key);

    /** Insert/overwrite; evicts the LRU entry beyond capacity. */
    void put(const std::string& key, Value value, InstanceId owner);

    /** Remove one record; true when present. */
    bool erase(const std::string& key);

    /** Drop every record inserted by @p owner (squash support). */
    void invalidateOwner(InstanceId owner);

    /** Drop everything. */
    void clear();

    /** Number of cached records. */
    std::size_t size() const { return map_.size(); }

    /** Lookup latency for hits, in Ticks. */
    Tick hitLatency() const { return hitLatency_; }

    /** @{ Hit/miss counters. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** @} */

  private:
    struct Entry
    {
        std::string key;
        Value value;
        InstanceId owner;
    };

    using LruList = std::list<Entry>;

    std::size_t capacity_;
    Tick hitLatency_;
    LruList lru_; // front = most recently used
    std::unordered_map<std::string, LruList::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_STORAGE_LOCAL_CACHE_HH
