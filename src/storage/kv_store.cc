#include "kv_store.hh"

#include <map>

#include "obs/profiler.hh"

namespace specfaas {

std::optional<Value>
KvStore::get(const std::string& key)
{
    OBS_ZONE(profiler_, "storage/get");
    ++reads_;
    auto it = data_.find(key);
    if (it == data_.end())
        return std::nullopt;
    return it->second;
}

void
KvStore::put(const std::string& key, Value value)
{
    OBS_ZONE(profiler_, "storage/put");
    ++writes_;
    data_[key] = std::move(value);
}

bool
KvStore::erase(const std::string& key)
{
    return data_.erase(key) > 0;
}

std::optional<Value>
KvStore::peek(const std::string& key) const
{
    auto it = data_.find(key);
    if (it == data_.end())
        return std::nullopt;
    return it->second;
}

void
KvStore::clear()
{
    data_.clear();
    reads_ = 0;
    writes_ = 0;
    injectedReadErrors_ = 0;
    injectedWriteErrors_ = 0;
}

std::uint64_t
KvStore::fingerprint() const
{
    // Order-independent: iterate keys in sorted order so the hash is
    // a function of contents only.
    std::map<std::string, const Value*> sorted;
    for (const auto& [k, v] : data_)
        sorted.emplace(k, &v);
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 1099511628211ull;
        h ^= h >> 29;
    };
    for (const auto& [k, v] : sorted) {
        mix(Value(k).hash());
        mix(v->hash());
    }
    return h;
}

} // namespace specfaas
