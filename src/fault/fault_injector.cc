#include "fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/sim_context.hh"
#include "storage/kv_store.hh"

namespace specfaas {

FaultInjector::FaultInjector(Simulation& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(plan_.seed)
{
    remaining_.reserve(plan_.rules.size());
    for (const FaultRule& r : plan_.rules)
        remaining_.push_back(r.budget);
}

FaultInjector::~FaultInjector()
{
    counters_.mergeInto(sim_.context().counters());
}

void
FaultInjector::armNodeFailures(
    std::function<void(NodeId, Tick)> onNodeFailure)
{
    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
        const FaultRule& r = plan_.rules[i];
        if (r.kind != FaultKind::NodeFailure)
            continue;
        // Daemon: a node failure scheduled past the last real event
        // must not keep the simulation alive on its own.
        sim_.events().scheduleDaemon(
            std::max<Tick>(0, r.atTick - sim_.now()),
            [this, i, cb = onNodeFailure]() {
                if (remaining_[i] == 0)
                    return;
                const FaultRule& rule = plan_.rules[i];
                if (remaining_[i] != kUnlimitedBudget)
                    --remaining_[i];
                recordInjection(FaultKind::NodeFailure,
                                strFormat("node%u", rule.node));
                cb(rule.node, rule.downtime);
            });
    }
}

std::size_t
FaultInjector::decide(FaultKind kind, const std::string& function,
                      CrashPhase phase)
{
    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
        const FaultRule& r = plan_.rules[i];
        if (r.kind != kind || remaining_[i] == 0)
            continue;
        if (r.function != "*" && r.function != function)
            continue;
        if (kind == FaultKind::ContainerCrash && r.phase != phase)
            continue;
        if (!rng_.bernoulli(r.probability))
            continue;
        if (remaining_[i] != kUnlimitedBudget)
            --remaining_[i];
        recordInjection(kind, function);
        return i;
    }
    return static_cast<std::size_t>(-1);
}

void
FaultInjector::recordInjection(FaultKind kind,
                               const std::string& function)
{
    counters_.add(strFormat("fault.injected.%s", faultKindName(kind)),
                  1);
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "fault-injected", sim_.now(),
                   obs::kControlPlanePid, 0,
                   {{"kind", faultKindName(kind)},
                    {"function", function}});
    }
}

bool
FaultInjector::shouldCrash(const std::string& function,
                           CrashPhase phase)
{
    return decide(FaultKind::ContainerCrash, function, phase) !=
           static_cast<std::size_t>(-1);
}

bool
FaultInjector::shouldFailStorage(const std::string& function,
                                 bool write)
{
    const FaultKind kind = write ? FaultKind::StorageWriteError
                                 : FaultKind::StorageReadError;
    const std::size_t hit =
        decide(kind, function, CrashPhase::MidExecution);
    if (hit == static_cast<std::size_t>(-1))
        return false;
    if (store_ != nullptr)
        store_->noteInjectedError(write);
    return true;
}

Tick
FaultInjector::storageDelay(const std::string& function)
{
    const std::size_t hit =
        decide(FaultKind::StorageDelay, function,
               CrashPhase::MidExecution);
    if (hit == static_cast<std::size_t>(-1))
        return 0;
    return std::max<Tick>(1, plan_.rules[hit].extraDelay);
}

bool
FaultInjector::shouldFailHttp(const std::string& function)
{
    return decide(FaultKind::HttpFailure, function,
                  CrashPhase::MidExecution) !=
           static_cast<std::size_t>(-1);
}

Tick
FaultInjector::stuckDuration(const std::string& function)
{
    if (decide(FaultKind::StuckFunction, function,
               CrashPhase::MidExecution) ==
        static_cast<std::size_t>(-1))
        return 0;
    return std::max<Tick>(1, plan_.stuckTimeout);
}

void
FaultInjector::noteRetry(const std::string& function,
                         std::uint32_t attempt)
{
    ++ctrRetries_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "fault-retry", sim_.now(),
                   obs::kControlPlanePid, 0,
                   {{"function", function},
                    {"attempt", strFormat("%u", attempt), true}});
    }
}

void
FaultInjector::noteGaveUp(const std::string& function)
{
    ++ctrGaveUp_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "fault-gave-up", sim_.now(),
                   obs::kControlPlanePid, 0,
                   {{"function", function}});
    }
}

Tick
FaultInjector::backoffDelay(std::uint32_t attempt) const
{
    Tick delay = plan_.retryBackoffBase;
    for (std::uint32_t i = 1; i < attempt; ++i) {
        delay *= 2;
        if (delay >= plan_.retryBackoffCap)
            break;
    }
    return std::min(delay, plan_.retryBackoffCap);
}

Value
FaultInjector::errorResponse(const std::string& function)
{
    return Value::object({{"error", Value("function_failed")},
                          {"function", Value(function)}});
}

std::uint64_t
FaultInjector::injected(FaultKind kind) const
{
    return counters_.value(
        strFormat("fault.injected.%s", faultKindName(kind)));
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto& [name, v] : counters_.snapshot()) {
        if (name.rfind("fault.injected.", 0) == 0)
            total += static_cast<std::uint64_t>(v);
    }
    return total;
}

} // namespace specfaas
