#include "fault_plan.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace specfaas {

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ContainerCrash:
        return "container-crash";
    case FaultKind::NodeFailure:
        return "node-failure";
    case FaultKind::StorageReadError:
        return "storage-read-error";
    case FaultKind::StorageWriteError:
        return "storage-write-error";
    case FaultKind::StorageDelay:
        return "storage-delay";
    case FaultKind::HttpFailure:
        return "http-failure";
    case FaultKind::StuckFunction:
        return "stuck";
    }
    return "?";
}

const char*
crashPhaseName(CrashPhase phase)
{
    switch (phase) {
    case CrashPhase::ColdStart:
        return "cold-start";
    case CrashPhase::MidExecution:
        return "mid-execution";
    case CrashPhase::AtCommit:
        return "at-commit";
    }
    return "?";
}

namespace {

std::string
budgetToString(std::uint32_t budget)
{
    if (budget == kUnlimitedBudget)
        return "inf";
    return strFormat("%u", budget);
}

bool
parseBudget(const std::string& text, std::uint32_t& out)
{
    if (text == "inf") {
        out = kUnlimitedBudget;
        return true;
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseTick(const std::string& text, Tick& out)
{
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v < 0)
        return false;
    out = static_cast<Tick>(v);
    return true;
}

bool
parseDouble(const std::string& text, double& out)
{
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

/**
 * Apply one "key=value" option token to @p rule.
 * @return false when the key is unknown or the value malformed
 */
bool
applyRuleOption(const std::string& tok, FaultRule& rule)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
        return false;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "budget")
        return parseBudget(val, rule.budget);
    if (key == "p")
        return parseDouble(val, rule.probability) &&
               rule.probability >= 0.0 && rule.probability <= 1.0;
    if (key == "phase") {
        if (val == "cold-start")
            rule.phase = CrashPhase::ColdStart;
        else if (val == "mid-execution")
            rule.phase = CrashPhase::MidExecution;
        else if (val == "at-commit")
            rule.phase = CrashPhase::AtCommit;
        else
            return false;
        return true;
    }
    if (key == "extra-us")
        return parseTick(val, rule.extraDelay);
    if (key == "node") {
        Tick node = 0;
        if (!parseTick(val, node))
            return false;
        rule.node = static_cast<NodeId>(node);
        return true;
    }
    if (key == "at-us")
        return parseTick(val, rule.atTick);
    if (key == "down-us")
        return parseTick(val, rule.downtime);
    return false;
}

} // namespace

std::string
FaultPlan::toSpec() const
{
    std::string out;
    out += strFormat("seed %llu\n",
                     static_cast<unsigned long long>(seed));
    out += strFormat("max-attempts %u\n", maxAttempts);
    out += strFormat("backoff-base-us %lld\n",
                     static_cast<long long>(retryBackoffBase));
    out += strFormat("backoff-cap-us %lld\n",
                     static_cast<long long>(retryBackoffCap));
    out += strFormat("stuck-timeout-us %lld\n",
                     static_cast<long long>(stuckTimeout));
    for (const FaultRule& r : rules) {
        if (r.kind == FaultKind::NodeFailure) {
            out += strFormat(
                "node-failure node=%u at-us=%lld down-us=%lld\n",
                r.node, static_cast<long long>(r.atTick),
                static_cast<long long>(r.downtime));
            continue;
        }
        out += strFormat("%s %s", faultKindName(r.kind),
                         r.function.c_str());
        if (r.kind == FaultKind::ContainerCrash)
            out += strFormat(" phase=%s", crashPhaseName(r.phase));
        if (r.kind == FaultKind::StorageDelay)
            out += strFormat(" extra-us=%lld",
                             static_cast<long long>(r.extraDelay));
        out += strFormat(" budget=%s p=%g\n",
                         budgetToString(r.budget).c_str(),
                         r.probability);
    }
    return out;
}

bool
FaultPlan::parse(const std::string& text, FaultPlan& out,
                 std::string* error)
{
    auto fail = [&](std::size_t lineNo, const std::string& why) {
        if (error != nullptr)
            *error = strFormat("line %zu: %s", lineNo, why.c_str());
        return false;
    };

    out = FaultPlan{};
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            continue;
        const std::string& head = toks[0];

        // Scalar directives.
        if (head == "seed" || head == "max-attempts" ||
            head == "backoff-base-us" || head == "backoff-cap-us" ||
            head == "stuck-timeout-us") {
            if (toks.size() != 2)
                return fail(lineNo, head + " needs one value");
            Tick v = 0;
            if (!parseTick(toks[1], v))
                return fail(lineNo, "bad value '" + toks[1] + "'");
            if (head == "seed")
                out.seed = static_cast<std::uint64_t>(v);
            else if (head == "max-attempts") {
                if (v < 1)
                    return fail(lineNo, "max-attempts must be >= 1");
                out.maxAttempts = static_cast<std::uint32_t>(v);
            } else if (head == "backoff-base-us")
                out.retryBackoffBase = v;
            else if (head == "backoff-cap-us")
                out.retryBackoffCap = v;
            else
                out.stuckTimeout = v;
            continue;
        }

        // Rule directives.
        FaultRule rule;
        std::size_t optStart = 0;
        if (head == "node-failure") {
            rule.kind = FaultKind::NodeFailure;
            rule.function.clear();
            optStart = 1;
        } else {
            if (head == "crash" ||
                head == faultKindName(FaultKind::ContainerCrash))
                rule.kind = FaultKind::ContainerCrash;
            else if (head == faultKindName(FaultKind::StorageReadError))
                rule.kind = FaultKind::StorageReadError;
            else if (head == faultKindName(FaultKind::StorageWriteError))
                rule.kind = FaultKind::StorageWriteError;
            else if (head == faultKindName(FaultKind::StorageDelay))
                rule.kind = FaultKind::StorageDelay;
            else if (head == faultKindName(FaultKind::HttpFailure))
                rule.kind = FaultKind::HttpFailure;
            else if (head == faultKindName(FaultKind::StuckFunction))
                rule.kind = FaultKind::StuckFunction;
            else
                return fail(lineNo, "unknown directive '" + head + "'");
            if (toks.size() < 2)
                return fail(lineNo, head + " needs a function name");
            rule.function = toks[1];
            optStart = 2;
        }
        for (std::size_t i = optStart; i < toks.size(); ++i)
            if (!applyRuleOption(toks[i], rule))
                return fail(lineNo, "bad option '" + toks[i] + "'");
        out.rules.push_back(std::move(rule));
    }
    return true;
}

FaultPlan
FaultPlan::random(Rng& rng, const std::vector<std::string>& functions,
                  std::uint32_t numNodes)
{
    FaultPlan plan;
    plan.seed = rng.next();
    plan.retryBackoffBase = msToTicks(1.0);
    plan.retryBackoffCap = msToTicks(20.0);
    plan.stuckTimeout = msToTicks(8.0);

    const std::size_t numRules = 1 + rng.uniformInt(3);
    std::uint32_t totalBudget = 0;
    for (std::size_t i = 0; i < numRules; ++i) {
        FaultRule rule;
        // NodeFailure is rarer: it perturbs every in-flight function
        // at once, so one per plan is plenty.
        const std::size_t pick = rng.uniformInt(9);
        switch (pick) {
        case 0:
        case 1:
        case 2:
            rule.kind = FaultKind::ContainerCrash;
            rule.phase = static_cast<CrashPhase>(rng.uniformInt(3));
            break;
        case 3:
            rule.kind = FaultKind::StorageReadError;
            break;
        case 4:
            rule.kind = FaultKind::StorageWriteError;
            break;
        case 5:
            rule.kind = FaultKind::StorageDelay;
            rule.extraDelay =
                static_cast<Tick>(rng.uniformInt(200, 2000));
            break;
        case 6:
            rule.kind = FaultKind::HttpFailure;
            break;
        case 7:
            rule.kind = FaultKind::StuckFunction;
            break;
        default:
            rule.kind = FaultKind::NodeFailure;
            break;
        }
        if (rule.kind == FaultKind::NodeFailure) {
            rule.function.clear();
            rule.node = static_cast<NodeId>(
                rng.uniformInt(numNodes > 0 ? numNodes : 1));
            rule.atTick = static_cast<Tick>(
                rng.uniformInt(msToTicks(5.0), msToTicks(120.0)));
            rule.downtime = static_cast<Tick>(
                rng.uniformInt(msToTicks(10.0), msToTicks(60.0)));
            rule.budget = 1;
        } else {
            // Half the rules target one specific function, the rest
            // any function.
            if (!functions.empty() && rng.bernoulli(0.5))
                rule.function =
                    functions[rng.uniformInt(functions.size())];
            else
                rule.function = "*";
            rule.budget =
                static_cast<std::uint32_t>(1 + rng.uniformInt(2));
            rule.probability = rng.uniform(0.05, 0.6);
        }
        totalBudget += rule.budget;
        plan.rules.push_back(std::move(rule));
    }
    // Transient by construction: even if every firing lands on one
    // pipeline coordinate, the retry cap is never reached, so both
    // engines always recover and outcomes stay fault-free-identical.
    plan.maxAttempts = totalBudget + 2;
    return plan;
}

} // namespace specfaas
