/**
 * @file
 * Deterministic fault plans.
 *
 * A FaultPlan is the complete, replayable description of every fault a
 * run may inject: a list of rules (what kind, which function, how
 * often, with what budget) plus the platform's recovery knobs (retry
 * cap, backoff). Plans are pure data — the same plan and injector seed
 * always produce the same injections — and round-trip through a small
 * line-based text spec so failing chaos cases can be reported and
 * replayed verbatim.
 */

#ifndef SPECFAAS_FAULT_FAULT_PLAN_HH
#define SPECFAAS_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault_types.hh"

namespace specfaas {

/** Budget value meaning "fire on every opportunity, forever". */
constexpr std::uint32_t kUnlimitedBudget = ~0u;

/** One injectable-fault rule. */
struct FaultRule
{
    FaultKind kind = FaultKind::ContainerCrash;

    /** Target function name; "*" matches every function. */
    std::string function = "*";

    /** Phase within the handler lifetime (ContainerCrash only). */
    CrashPhase phase = CrashPhase::MidExecution;

    /** Remaining firings before the rule goes quiet. */
    std::uint32_t budget = 1;

    /** Per-opportunity firing probability in [0,1]. */
    double probability = 1.0;

    /** Extra latency of a StorageDelay spike, in ticks. */
    Tick extraDelay = 0;

    /** @{ NodeFailure-only: which node, when, and for how long. */
    NodeId node = 0;
    Tick atTick = 0;
    Tick downtime = msToTicks(50.0);
    /** @} */
};

/** A replayable schedule of faults plus the recovery policy. */
struct FaultPlan
{
    /** Seed of the injector's private decision stream. */
    std::uint64_t seed = 1;

    /** Attempts per pipeline coordinate before giving up. */
    std::uint32_t maxAttempts = 4;

    /** @{ Capped exponential retry backoff. */
    Tick retryBackoffBase = msToTicks(2.0);
    Tick retryBackoffCap = msToTicks(50.0);
    /** @} */

    /** Watchdog timeout charged to a stuck handler. */
    Tick stuckTimeout = msToTicks(10.0);

    std::vector<FaultRule> rules;

    /** True when the plan injects nothing (faults disabled). */
    bool empty() const { return rules.empty(); }

    /** Render the plan as its text spec. */
    std::string toSpec() const;

    /**
     * Parse a text spec (one directive per line, '#' comments).
     * @return false with @p error set on malformed input
     */
    static bool parse(const std::string& text, FaultPlan& out,
                      std::string* error);

    /**
     * Draw a random transient plan over @p functions for chaos
     * testing. Every generated rule has a finite budget and
     * maxAttempts exceeds the total crash budget, so recovery always
     * succeeds and fault handling stays invisible in final outcomes.
     */
    static FaultPlan random(Rng& rng,
                            const std::vector<std::string>& functions,
                            std::uint32_t numNodes);
};

} // namespace specfaas

#endif // SPECFAAS_FAULT_FAULT_PLAN_HH
