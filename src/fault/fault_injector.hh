/**
 * @file
 * Seed-deterministic fault injection.
 *
 * One FaultInjector per platform consumes a FaultPlan and answers
 * point queries from the runtime layer (interpreter, launcher): should
 * this handler crash here, should this storage op fail, how much extra
 * latency does this read pay. Decisions draw from a private RNG stream
 * seeded by the plan, so a given (plan, query sequence) always injects
 * the same faults — chaos runs replay exactly. Scheduled faults (node
 * failures) are delivered through the EventQueue as daemon events.
 *
 * The injector also centralises fault observability: counters
 * `fault.injected.<kind>`, `fault.retries`, `fault.gave_up` and the
 * matching trace instants, which controllers feed via noteRetry() /
 * noteGaveUp() when they exercise recovery.
 */

#ifndef SPECFAAS_FAULT_FAULT_INJECTOR_HH
#define SPECFAAS_FAULT_FAULT_INJECTOR_HH

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/value.hh"
#include "fault/fault_plan.hh"
#include "obs/counter_registry.hh"
#include "sim/simulation.hh"

namespace specfaas {

class KvStore;

/** Answers "does a fault strike here?" queries against one plan. */
class FaultInjector
{
  public:
    FaultInjector(Simulation& sim, FaultPlan plan);

    /** Folds fault counters into the global registry. */
    ~FaultInjector();

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    const FaultPlan& plan() const { return plan_; }

    /** Record injected storage errors on the store itself too. */
    void attachStore(KvStore* store) { store_ = store; }

    /**
     * Schedule every NodeFailure rule on the event queue (as daemon
     * events, so an idle platform still terminates). @p onNodeFailure
     * receives the node id and its downtime when a failure fires.
     */
    void
    armNodeFailures(std::function<void(NodeId, Tick)> onNodeFailure);

    /** @{ Point queries; each consumes decision-stream randomness. */
    bool shouldCrash(const std::string& function, CrashPhase phase);
    bool shouldFailStorage(const std::string& function, bool write);
    Tick storageDelay(const std::string& function);
    bool shouldFailHttp(const std::string& function);
    /** 0 = not stuck; otherwise the watchdog timeout to charge. */
    Tick stuckDuration(const std::string& function);
    /** @} */

    /** @{ Recovery accounting, called by the controllers. */
    void noteRetry(const std::string& function, std::uint32_t attempt);
    void noteGaveUp(const std::string& function);
    /** @} */

    /** Capped exponential backoff before retry number @p attempt. */
    Tick backoffDelay(std::uint32_t attempt) const;

    /**
     * The deterministic client-visible response of an invocation
     * whose retries were exhausted. Identical across engines: it
     * carries no attempt counts or timing.
     */
    static Value errorResponse(const std::string& function);

    /** @{ Introspection for tests. */
    std::uint64_t injected(FaultKind kind) const;
    std::uint64_t injectedTotal() const;
    std::uint64_t retries() const { return ctrRetries_; }
    std::uint64_t gaveUp() const { return ctrGaveUp_; }
    /** @} */

  private:
    /**
     * Roll every live rule matching (kind, function, phase); the
     * first hit consumes budget and is recorded.
     * @return index into plan_.rules, or npos when nothing fired
     */
    std::size_t decide(FaultKind kind, const std::string& function,
                       CrashPhase phase);

    void recordInjection(FaultKind kind, const std::string& function);

    Simulation& sim_;
    FaultPlan plan_;
    Rng rng_;
    KvStore* store_ = nullptr;
    /** Remaining budget per plan rule. */
    std::vector<std::uint32_t> remaining_;

    obs::CounterRegistry counters_;
    std::uint64_t& ctrRetries_ = counters_.counter("fault.retries");
    std::uint64_t& ctrGaveUp_ = counters_.counter("fault.gave_up");
};

} // namespace specfaas

#endif // SPECFAAS_FAULT_FAULT_INJECTOR_HH
