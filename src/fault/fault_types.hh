/**
 * @file
 * Fault taxonomy shared between the injector and the recovery hooks.
 *
 * Kept dependency-free so the runtime layer (hooks, interpreter) can
 * name fault kinds without pulling in the full injector.
 */

#ifndef SPECFAAS_FAULT_FAULT_TYPES_HH
#define SPECFAAS_FAULT_FAULT_TYPES_HH

namespace specfaas {

/** Injectable fault categories. */
enum class FaultKind {
    /** The container hosting a handler dies. */
    ContainerCrash,
    /** A whole worker node fails (warm pool lost, tasks killed). */
    NodeFailure,
    /** Global-storage read returns an error. */
    StorageReadError,
    /** Global-storage write returns an error. */
    StorageWriteError,
    /** Global-storage operation hit by a latency spike. */
    StorageDelay,
    /** External HTTP request fails. */
    HttpFailure,
    /** Handler hangs; the watchdog timeout kills it. */
    StuckFunction,
};

/** When within a handler's lifetime a container crash strikes. */
enum class CrashPhase {
    /** During container acquisition / runtime setup. */
    ColdStart,
    /** At an op boundary while the body executes. */
    MidExecution,
    /** After the body finished, before the completion message. */
    AtCommit,
};

/** Stable string for a FaultKind (trace/spec output). */
const char* faultKindName(FaultKind kind);

/** Stable string for a CrashPhase (trace/spec output). */
const char* crashPhaseName(CrashPhase phase);

} // namespace specfaas

#endif // SPECFAAS_FAULT_FAULT_TYPES_HH
