/**
 * @file
 * Conventional OpenWhisk-style workflow execution (the baseline).
 *
 * Explicit workflows: after a function completes, the worker notifies
 * the controller, which invokes the conductor helper function to pick
 * the next function, then launches it (§II-B). Everything is strictly
 * in order: a function starts only when its control and data
 * dependences are fully resolved.
 *
 * Implicit workflows: functions call other functions as subroutines
 * over HTTP/RPC; the caller blocks until the callee returns (§II-C).
 */

#ifndef SPECFAAS_BASELINE_BASELINE_CONTROLLER_HH
#define SPECFAAS_BASELINE_BASELINE_CONTROLLER_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.hh"
#include "common/flat_map.hh"
#include "common/slot_array.hh"
#include "common/symbol.hh"
#include "fault/fault_injector.hh"
#include "obs/counter_registry.hh"
#include "runtime/engine.hh"
#include "runtime/hooks.hh"
#include "runtime/interpreter.hh"
#include "runtime/launcher.hh"
#include "sim/simulation.hh"
#include "storage/kv_store.hh"
#include "workflow/flow_program.hh"
#include "workflow/registry.hh"

namespace specfaas {

/** The conventional (non-speculative) execution engine. */
class BaselineController : public WorkflowEngine, public RuntimeHooks
{
  public:
    /**
     * @param sim simulation context
     * @param cluster worker cluster
     * @param store global key-value storage
     * @param registry deployed functions
     */
    BaselineController(Simulation& sim, Cluster& cluster, KvStore& store,
                       const FunctionRegistry& registry);

    ~BaselineController() override;

    void invoke(const Application& app, Value input,
                ResultCallback done) override;

    std::string name() const override { return "baseline"; }

    std::size_t liveInvocations() const override { return live_.size(); }

    void onNodeFailure(NodeId node) override;

    /** Engine-local tallies (merged into the global set on teardown). */
    const obs::CounterRegistry& counters() const { return counters_; }

    /** @{ Introspection for tests: generation-tag liveness. */
    /**
     * Generation-tagged handles of every live invocation record.
     * Tests capture this mid-run and assert the handles miss once
     * the invocation finishes — normally or through a fault
     * give-up — even after the index is recycled (no ABA).
     */
    std::vector<SlotHandle> liveInvocationHandles() const;

    /** Whether @p h still resolves to a live invocation record. */
    bool
    invocationHandleResolves(SlotHandle h) const
    {
        return invArena_.get(h) != nullptr;
    }
    /** @} */

    /** @{ RuntimeHooks (called by the interpreter). */
    void storageGet(const InstancePtr& inst, const std::string& key,
                    ValueCallback done) override;
    void storagePut(const InstancePtr& inst, const std::string& key,
                    Value value, DoneCallback done) override;
    void functionCall(const InstancePtr& inst, std::size_t call_site,
                      Symbol callee, Value args,
                      ValueCallback done) override;
    void httpRequest(const InstancePtr& inst,
                     DoneCallback done) override;
    void completed(const InstancePtr& inst, Value output) override;
    void crashed(const InstancePtr& inst, FaultKind kind) override;
    /** @} */

  private:
    struct JoinState
    {
        std::size_t pending = 0;
        ValueArray outputs;
    };

    /** One attempt-scoped storage write: key and the value before. */
    using UndoEntry = std::pair<std::string, std::optional<Value>>;

    struct OrderLess
    {
        bool
        operator()(const OrderKey& a, const OrderKey& b) const
        {
            return orderKeyLess(a, b);
        }
    };

    struct Invocation
    {
        InvocationResult result;
        const Application* app = nullptr;
        const FlowProgram* program = nullptr;
        ResultCallback done;
        /** This record's own generation-tagged handle in the
         * controller's invocation arena. Deferred work (conductor
         * hops, RPC legs, retry timers) captures this handle; once
         * the invocation finishes — including a fault give-up — the
         * generation bumps and every outstanding capture misses. */
        SlotHandle self;
        // Explicit-walk state: join node index → collection state.
        FlatMap<FlowIndex, JoinState> joins;
        // Live instances spawned for this invocation.
        std::size_t liveInstances = 0;
        // (program order, function) pairs; sorted into
        // result.executedSequence when the invocation finishes.
        std::vector<std::pair<OrderKey, Symbol>> sequence;
        // Live instance handles, for fault recovery (subtree kill,
        // node-failure sweep). Mirrors liveInstances. Instance ids
        // are monotonic, so insertion is an append and the oldest
        // instances retire first — pipeline-indexed so those front
        // erases advance a frontier instead of shifting the vector.
        PipelineMap<InstanceId, InstancePtr> instances;
        // Fault-retry attempts per pipeline coordinate.
        FlatMap<OrderKey, std::uint32_t, OrderLess> attempts;
        // Per-instance undo log: this attempt's storage writes, in
        // order, so a crashed attempt's effects roll back (a real
        // platform's transactional SDK / idempotency layer).
        FlatMap<InstanceId, std::vector<UndoEntry>> undo;
    };

    /** Compiled program cache, one per application. */
    const FlowProgram& compiled(const Application& app);

    /** Launch the flow node @p idx of invocation @p inv. */
    void dispatch(Invocation& inv, FlowIndex idx, Value input,
                  OrderKey order);

    /** A flow-node function finished; walk to its successor. */
    void stepFlow(Invocation& inv, const InstancePtr& inst,
                  const Value& output);

    /** Continue after node @p idx with @p carry as data payload. */
    void continueAt(Invocation& inv, FlowIndex idx, Value carry,
                    OrderKey order);

    void finish(Invocation& inv, Value response);

    Invocation& invocationOf(const InstancePtr& inst);

    /** @{ Fault recovery. */
    /** Kill one live instance: roll back writes, squash, unaccount. */
    void teardown(Invocation& inv, const InstancePtr& inst);
    /** Schedule the re-execution of a crashed instance. */
    void scheduleRetry(Invocation& inv, const InstancePtr& inst,
                       Tick delay, ValueCallback ret);
    /** Retries exhausted: kill everything, answer the error. */
    void failInvocation(Invocation& inv, const std::string& function);
    /** @} */

    Simulation& sim_;
    Cluster& cluster_;
    KvStore& store_;
    const FunctionRegistry& registry_;
    Interpreter interp_;
    Launcher launcher_;
    /** Hoisted profiler reference (see Interpreter::profiler_). */
    obs::Profiler& profiler_;

    /**
     * Slab-stable storage for invocation records. Instances carry
     * their record's generation-tagged handle, so hook dispatch
     * resolves instance → invocation with one array access instead
     * of a hash probe, and a stale handle after teardown is a miss
     * rather than an ABA hit on a reused slot.
     */
    SlotArray<Invocation> invArena_;
    /** Id → record handle. Ids are monotonic (inserts append) and
     * invocations mostly finish oldest-first, so removals cluster at
     * the front — the pipeline frontier absorbs them. */
    PipelineMap<InvocationId, SlotHandle> live_;
    std::unordered_map<const Application*, FlowProgram> programs_;
    /** Implicit-callee return continuations, keyed by callee id
     * (monotonic; consumed roughly in issue order). */
    PipelineMap<InstanceId, ValueCallback> callReturns_;

    obs::CounterRegistry counters_;
    std::uint64_t& ctrInvocations_ = counters_.counter("baseline.invocations");
    std::uint64_t& ctrRejections_ = counters_.counter("baseline.rejections");
    std::uint64_t& ctrDispatches_ = counters_.counter("baseline.dispatches");
    std::uint64_t& ctrCompletions_ = counters_.counter("baseline.completions");
};

} // namespace specfaas

#endif // SPECFAAS_BASELINE_BASELINE_CONTROLLER_HH
