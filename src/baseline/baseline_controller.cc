#include "baseline_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/sim_context.hh"

namespace specfaas {

BaselineController::BaselineController(Simulation& sim, Cluster& cluster,
                                       KvStore& store,
                                       const FunctionRegistry& registry)
    : sim_(sim),
      cluster_(cluster),
      store_(store),
      registry_(registry),
      interp_(sim, cluster, *this),
      launcher_(sim, cluster, registry, interp_),
      profiler_(sim.context().profiler())
{
}

BaselineController::~BaselineController()
{
    counters_.mergeInto(sim_.context().counters());
}

std::vector<SlotHandle>
BaselineController::liveInvocationHandles() const
{
    std::vector<SlotHandle> out;
    for (const auto& [id, h] : live_)
        out.push_back(h);
    return out;
}

const FlowProgram&
BaselineController::compiled(const Application& app)
{
    auto it = programs_.find(&app);
    if (it == programs_.end())
        it = programs_.emplace(&app, compileWorkflow(app)).first;
    return it->second;
}

void
BaselineController::invoke(const Application& app, Value input,
                           ResultCallback done)
{
    OBS_ZONE(profiler_, "base/invoke");
    const InvocationId id = sim_.context().nextInvocationId();

    // Admission control: shed load when the control plane is backed
    // up (OpenWhisk returns 429 TooManyRequests).
    if (cluster_.controller().queueLength() >
        cluster_.config().admissionQueueLimit) {
        InvocationResult rejected;
        rejected.id = id;
        rejected.app = app.name;
        rejected.submittedAt = sim_.now();
        rejected.completedAt = sim_.now();
        rejected.rejected = true;
        ++ctrRejections_;
        if (auto& tr = sim_.context().trace(); tr.enabled()) {
            tr.instant(obs::cat::kBaseline, "reject", sim_.now(),
                       obs::kControlPlanePid, id, {{"app", app.name}});
        }
        done(std::move(rejected));
        return;
    }

    ++ctrInvocations_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "invoke", sim_.now(),
                   obs::kControlPlanePid, id, {{"app", app.name}});
    }

    const SlotHandle h = invArena_.create();
    Invocation& ref = invArena_.at(h);
    ref.self = h;
    ref.app = &app;
    ref.done = std::move(done);
    ref.result.id = id;
    ref.result.app = app.name;
    ref.result.submittedAt = sim_.now();
    live_[id] = h;

    if (app.type == WorkflowType::Explicit) {
        ref.program = &compiled(app);
        continueAt(ref, ref.program->entry, std::move(input), OrderKey{0});
    } else {
        dispatch(ref, kFlowNone, std::move(input), OrderKey{0});
    }
}

BaselineController::Invocation&
BaselineController::invocationOf(const InstancePtr& inst)
{
    Invocation* inv = invArena_.get(inst->slotHandle);
    SPECFAAS_ASSERT(inv != nullptr, "instance %s of dead invocation",
                    inst->label().c_str());
    return *inv;
}

void
BaselineController::dispatch(Invocation& inv, FlowIndex idx, Value input,
                             OrderKey order)
{
    OBS_ZONE(profiler_, "base/dispatch");
    const Symbol fname =
        idx == kFlowNone
            ? (order == OrderKey{0} ? Symbol(inv.app->rootFunction)
                                    : Symbol())
            : inv.program->node(idx).function;
    SPECFAAS_ASSERT(!fname.empty(), "dispatch without function");

    LaunchSpec spec;
    spec.function = fname;
    spec.input = std::move(input);
    spec.invocation = inv.result.id;
    spec.order = std::move(order);
    spec.flowNode = idx;
    spec.preOverhead = cluster_.config().platformOverhead;
    spec.controllerService = cluster_.config().baselineLaunchService;
    ++inv.liveInstances;
    ++ctrDispatches_;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "dispatch", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"function", fname.str()}});
    }
    InstancePtr inst = launcher_.launch(std::move(spec));
    inst->slotHandle = inv.self;
    inv.instances[inst->id] = std::move(inst);
}

void
BaselineController::continueAt(Invocation& inv, FlowIndex idx, Value carry,
                               OrderKey order)
{
    OBS_ZONE(profiler_, "base/continue-at");
    if (idx == kFlowNone) {
        finish(inv, std::move(carry));
        return;
    }
    const FlowNode& node = inv.program->node(idx);
    switch (node.kind) {
      case FlowNode::Kind::Func:
      case FlowNode::Kind::Branch:
        dispatch(inv, idx, std::move(carry), std::move(order));
        return;
      case FlowNode::Kind::Fork: {
        auto& join = inv.joins[node.join];
        join.pending = node.targets.size();
        join.outputs.assign(node.targets.size(), Value());
        for (std::size_t arm = 0; arm < node.targets.size(); ++arm) {
            OrderKey arm_order = order;
            arm_order.push_back(static_cast<std::int32_t>(arm));
            arm_order.push_back(0);
            continueAt(inv, node.targets[arm], carry,
                       std::move(arm_order));
        }
        return;
      }
      case FlowNode::Kind::Join: {
        auto it = inv.joins.find(idx);
        SPECFAAS_ASSERT(it != inv.joins.end(), "join without fork");
        auto& join = it->second;
        // The arm index is the second-to-last component of the order
        // key laid down at the fork.
        SPECFAAS_ASSERT(order.size() >= 2, "join from non-arm order key");
        const auto arm = static_cast<std::size_t>(order[order.size() - 2]);
        SPECFAAS_ASSERT(arm < join.outputs.size(), "bad arm index");
        join.outputs[arm] = std::move(carry);
        SPECFAAS_ASSERT(join.pending > 0, "join underflow");
        if (--join.pending == 0) {
            Value all = Value(std::move(join.outputs));
            inv.joins.erase(it);
            OrderKey next_order(order.begin(), order.end() - 2);
            next_order.back() += 1;
            continueAt(inv, node.next, std::move(all),
                       std::move(next_order));
        }
        return;
      }
    }
    panic("unreachable flow node kind");
}

void
BaselineController::stepFlow(Invocation& inv, const InstancePtr& inst,
                             const Value& output)
{
    OBS_ZONE(profiler_, "base/step-flow");
    const FlowIndex idx = inst->flowNode;
    if (idx == kFlowNone) {
        // Implicit root function: its output is the response.
        finish(inv, output);
        return;
    }
    const FlowNode& node = inv.program->node(idx);
    FlowIndex next;
    Value carry;
    if (node.kind == FlowNode::Kind::Branch) {
        // Branch targets inherit the branch function's input (§II-A);
        // only the choice of target depends on the output.
        next = inv.program->resolveBranch(idx, output);
        carry = inst->env.input;
    } else {
        next = node.next;
        carry = output;
    }

    OrderKey next_order = inst->order;
    next_order.back() += 1;

    // Worker → controller message, conductor execution, controller →
    // worker launch: the Transfer Function Overhead of Fig. 3.
    const Tick transfer = cluster_.config().conductorOverhead;
    inv.result.transferOverhead += transfer;
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "conductor", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"after", inst->def->name}});
    }
    const SlotHandle h = inv.self;
    sim_.events().schedule(transfer, [this, h, next, carry,
                                      next_order]() mutable {
        Invocation* pinv = invArena_.get(h);
        if (pinv == nullptr)
            return;
        continueAt(*pinv, next, std::move(carry),
                   std::move(next_order));
    });
}

void
BaselineController::completed(const InstancePtr& inst, Value output)
{
    OBS_ZONE(profiler_, "base/completed");
    Invocation& inv = invocationOf(inst);

    if (inst->container != nullptr) {
        cluster_.containers().release(*inst->container);
        inst->container = nullptr;
    }

    // Accounting.
    ++ctrCompletions_;
    ++inv.result.functionsExecuted;
    inv.sequence.emplace_back(inst->order, inst->def->sym);
    inv.result.containerCreation += inst->containerCreationTime;
    inv.result.runtimeSetup += inst->runtimeSetupTime;
    inv.result.platformOverhead += inst->platformOverheadTime;
    inv.result.execution += inst->execTime;
    SPECFAAS_ASSERT(inv.liveInstances > 0, "live-instance underflow");
    --inv.liveInstances;
    inv.instances.erase(inst->id);
    // A completed callee's writes stay attached to its caller: if the
    // caller later crashes, its whole attempt — nested calls included —
    // rolls back before the retry, mirroring the spec engine where a
    // returning callee's buffer column merges into its caller's. Only
    // a root's writes become final here (the request is done).
    if (auto uit = inv.undo.find(inst->id); uit != inv.undo.end()) {
        std::vector<UndoEntry> entries = std::move(uit->second);
        inv.undo.erase(uit);
        if (inst->caller != nullptr) {
            auto& up = inv.undo[inst->caller->id];
            up.insert(up.end(),
                      std::make_move_iterator(entries.begin()),
                      std::make_move_iterator(entries.end()));
        }
    }
    inst->state = InstanceState::Committed;

    if (inst->caller != nullptr) {
        // Implicit callee: the stored continuation (set up in
        // functionCall) routes the result back over RPC.
        auto it = callReturns_.find(inst->id);
        SPECFAAS_ASSERT(it != callReturns_.end(), "callee without return");
        auto ret = std::move(it->second);
        callReturns_.erase(it);
        ret(std::move(output));
        return;
    }

    stepFlow(inv, inst, output);
}

void
BaselineController::storageGet(const InstancePtr& inst,
                               const std::string& key,
                               ValueCallback done)
{
    OBS_ZONE(profiler_, "base/storage-get");
    (void)inst;
    sim_.events().schedule(store_.latency().readLatency,
                           [this, key,
                            done = std::move(done)]() mutable {
                               auto v = store_.get(key);
                               done(v ? std::move(*v) : Value());
                           });
}

void
BaselineController::storagePut(const InstancePtr& inst,
                               const std::string& key, Value value,
                               DoneCallback done)
{
    OBS_ZONE(profiler_, "base/storage-put");
    const std::uint64_t epoch = inst->epoch;
    sim_.events().schedule(
        store_.latency().writeLatency,
        [this, inst, epoch, key, value = std::move(value),
         done = std::move(done)]() mutable {
            // A write in flight when its handler crashed never
            // reaches the store (without faults the baseline never
            // squashes, so this guard is inert).
            if (inst->epoch != epoch ||
                inst->state == InstanceState::Dead)
                return;
            if (sim_.faultInjector() != nullptr) {
                // Attempt-scoped undo log: capture the prior value so
                // a later crash of this handler rolls the write back.
                if (Invocation* pinv = invArena_.get(inst->slotHandle);
                    pinv != nullptr) {
                    pinv->undo[inst->id].emplace_back(
                        key, store_.peek(key));
                }
            }
            store_.put(key, std::move(value));
            done();
        });
}

void
BaselineController::functionCall(const InstancePtr& inst,
                                 std::size_t call_site,
                                 Symbol callee, Value args,
                                 ValueCallback done)
{
    OBS_ZONE(profiler_, "base/function-call");

    Invocation& inv = invocationOf(inst);
    const Tick rpc = cluster_.config().rpcLatency;
    inv.result.transferOverhead += 2 * rpc;
    inst->state = InstanceState::StalledCallee;

    const SlotHandle h = inv.self;
    const InstanceId callerId = inst->id;
    sim_.events().schedule(rpc, [this, h, callerId, callee, args,
                                 call_site,
                                 done = std::move(done)]() mutable {
        Invocation* pinv = invArena_.get(h);
        if (pinv == nullptr)
            return;
        Invocation& inv2 = *pinv;
        // The caller crashed while the RPC was in flight: its retried
        // incarnation re-issues the call.
        auto cit = inv2.instances.find(callerId);
        if (cit == inv2.instances.end())
            return;
        FunctionInstance* caller = cit->second.get();

        OrderKey order = caller->order;
        order.push_back(static_cast<std::int32_t>(call_site));

        LaunchSpec spec;
        spec.function = callee;
        spec.input = std::move(args);
        spec.invocation = inv2.result.id;
        spec.order = std::move(order);
        spec.flowNode = kFlowNone;
        spec.preOverhead = cluster_.config().platformOverhead;
        spec.controllerService =
            cluster_.config().baselineLaunchService;
        spec.caller = caller;
        ++inv2.liveInstances;
        InstancePtr callee_inst = launcher_.launch(std::move(spec));
        callee_inst->slotHandle = h;
        inv2.instances[callee_inst->id] = callee_inst;
        // Return path: one more RPC hop back to the caller.
        const Tick rpc2 = cluster_.config().rpcLatency;
        callReturns_[callee_inst->id] =
            [this, rpc2, done = std::move(done)](Value out) mutable {
                sim_.events().schedule(
                    rpc2, [out = std::move(out),
                           done = std::move(done)]() mutable {
                        done(std::move(out));
                    });
            };
    });
}

void
BaselineController::httpRequest(const InstancePtr& inst,
                                DoneCallback done)
{
    // Nothing speculative in the baseline: requests go out directly.
    (void)inst;
    done();
}

void
BaselineController::teardown(Invocation& inv, const InstancePtr& inst)
{
    // Roll back this attempt's storage writes, newest first, restoring
    // what each write overwrote.
    if (auto uit = inv.undo.find(inst->id); uit != inv.undo.end()) {
        for (auto rit = uit->second.rbegin(); rit != uit->second.rend();
             ++rit) {
            if (rit->second.has_value())
                store_.put(rit->first, *rit->second);
            else
                store_.erase(rit->first);
        }
        inv.undo.erase(uit);
    }
    callReturns_.erase(inst->id);
    inst->squashReason = SquashReason::Fault;
    // The container dies with the handler: a crash takes out the
    // whole sandbox, so there is no process to kill selectively.
    interp_.squash(inst, SquashPolicy::ContainerKill);
    SPECFAAS_ASSERT(inv.liveInstances > 0, "live-instance underflow");
    --inv.liveInstances;
    inv.instances.erase(inst->id);
}

void
BaselineController::crashed(const InstancePtr& inst, FaultKind kind)
{
    OBS_ZONE(profiler_, "base/crashed");
    auto* faults = sim_.faultInjector();
    SPECFAAS_ASSERT(faults != nullptr, "crash without an injector");
    Invocation* pinv = invArena_.get(inst->slotHandle);
    if (pinv == nullptr || inst->state == InstanceState::Dead)
        return;
    Invocation& inv = *pinv;

    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFault, "crash", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"kind", faultKindName(kind)},
                    {"function", inst->def->name},
                    {"order", orderKeyToString(inst->order)}});
    }

    // Save the callee-return continuation before teardown drops it;
    // a retried incarnation re-registers it under its new id.
    ValueCallback ret;
    if (inst->caller != nullptr) {
        auto rit = callReturns_.find(inst->id);
        SPECFAAS_ASSERT(rit != callReturns_.end(),
                        "crashed callee without return path");
        ret = std::move(rit->second);
    }

    // Kill the crashed handler's live callee subtree, deepest first:
    // their RPC return paths died with their callers, and the retried
    // handler re-issues every call.
    std::vector<InstancePtr> subtree;
    for (const auto& [iid, p] : inv.instances) {
        (void)iid;
        if (p.get() != inst.get() &&
            orderKeyIsPrefix(inst->order, p->order))
            subtree.push_back(p);
    }
    std::sort(subtree.begin(), subtree.end(),
              [](const InstancePtr& a, const InstancePtr& b) {
                  return orderKeyLess(b->order, a->order);
              });
    for (const InstancePtr& victim : subtree)
        teardown(inv, victim);
    teardown(inv, inst);

    const std::uint32_t attempt = ++inv.attempts[inst->order];
    if (attempt >= faults->plan().maxAttempts) {
        faults->noteGaveUp(inst->def->name);
        failInvocation(inv, inst->def->name);
        return;
    }
    faults->noteRetry(inst->def->name, attempt);
    scheduleRetry(inv, inst, faults->backoffDelay(attempt),
                  std::move(ret));
}

void
BaselineController::scheduleRetry(Invocation& inv,
                                  const InstancePtr& inst, Tick delay,
                                  ValueCallback ret)
{
    const SlotHandle h = inv.self;
    if (inst->caller == nullptr) {
        // Flow node or implicit root: re-dispatch at the same
        // pipeline coordinate with the original input.
        const FlowIndex idx = inst->flowNode;
        sim_.events().schedule(
            delay, [this, h, idx, order = inst->order,
                    input = inst->env.input]() mutable {
                Invocation* pinv = invArena_.get(h);
                if (pinv == nullptr)
                    return;
                dispatch(*pinv, idx, std::move(input),
                         std::move(order));
            });
        return;
    }
    // Implicit callee: relaunch under the same caller, wiring the
    // saved return continuation to the new incarnation. Dropped when
    // the caller itself crashed meanwhile — its retry re-issues the
    // call from scratch.
    const InstanceId callerId = inst->caller->id;
    sim_.events().schedule(
        delay,
        [this, h, callerId, fn = inst->def->sym, order = inst->order,
         input = inst->env.input, ret = std::move(ret)]() mutable {
            Invocation* pinv = invArena_.get(h);
            if (pinv == nullptr)
                return;
            Invocation& inv2 = *pinv;
            auto cit = inv2.instances.find(callerId);
            if (cit == inv2.instances.end())
                return;
            LaunchSpec spec;
            spec.function = fn;
            spec.input = std::move(input);
            spec.invocation = inv2.result.id;
            spec.order = std::move(order);
            spec.flowNode = kFlowNone;
            spec.preOverhead = cluster_.config().platformOverhead;
            spec.controllerService =
                cluster_.config().baselineLaunchService;
            spec.caller = cit->second.get();
            ++inv2.liveInstances;
            InstancePtr callee = launcher_.launch(std::move(spec));
            callee->slotHandle = h;
            inv2.instances[callee->id] = callee;
            callReturns_[callee->id] = std::move(ret);
        });
}

void
BaselineController::failInvocation(Invocation& inv,
                                   const std::string& function)
{
    // Retries exhausted: kill every remaining live handler (parallel
    // arms, the callers above a failed callee), deepest first so undo
    // logs roll back in reverse write order.
    while (!inv.instances.empty()) {
        auto vit = std::max_element(
            inv.instances.begin(), inv.instances.end(),
            [](const auto& a, const auto& b) {
                return orderKeyLess(a.second->order, b.second->order);
            });
        InstancePtr victim = vit->second;
        teardown(inv, victim);
    }
    inv.joins.clear();
    finish(inv, FaultInjector::errorResponse(function));
}

void
BaselineController::onNodeFailure(NodeId node)
{
    // live_ iterates in id order, but failing an invocation mutates
    // it, so snapshot the handles and re-check liveness per victim.
    std::vector<SlotHandle> handles;
    handles.reserve(live_.size());
    for (const auto& [id, h] : live_) {
        (void)id;
        handles.push_back(h);
    }
    for (const SlotHandle h : handles) {
        while (true) {
            Invocation* pinv = invArena_.get(h);
            if (pinv == nullptr)
                break; // the sweep itself failed the invocation
            Invocation& inv = *pinv;
            // Topmost victim first: crashing it also tears down its
            // callee subtree, so rescan until the node is clear.
            InstancePtr victim;
            for (const auto& [iid, p] : inv.instances) {
                (void)iid;
                if (p->container == nullptr || p->node != node ||
                    p->state == InstanceState::Dead)
                    continue;
                if (!victim || orderKeyLess(p->order, victim->order))
                    victim = p;
            }
            if (!victim)
                break;
            crashed(victim, FaultKind::NodeFailure);
        }
    }
}

void
BaselineController::finish(Invocation& inv, Value response)
{
    OBS_ZONE(profiler_, "base/finish");
    inv.result.response = std::move(response);
    inv.result.completedAt = sim_.now();
    // End-to-end completion marker: invokeSync bypasses the platform
    // "response" wrapper, so the engine records it for the analyzer.
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "complete", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"app", inv.result.app}});
    }
    std::sort(inv.sequence.begin(), inv.sequence.end(),
              [](const auto& a, const auto& b) {
                  return orderKeyLess(a.first, b.first);
              });
    for (auto& [order, name] : inv.sequence) {
        (void)order;
        inv.result.executedSequence.push_back(name.str());
    }
    const std::size_t erased = live_.erase(inv.result.id);
    SPECFAAS_ASSERT(erased == 1, "finishing unknown invocation");
    // Move the deliverables out, then retire the record before the
    // callback runs: done() may re-enter invoke(), and the freed slot
    // must be reusable by then. Every handle still in flight (retry
    // timers, RPC legs) now misses on the bumped generation.
    const SlotHandle h = inv.self;
    ResultCallback done = std::move(inv.done);
    InvocationResult result = std::move(inv.result);
    invArena_.destroy(h);
    done(std::move(result));
}

} // namespace specfaas
