#include "baseline_controller.hh"

#include "common/logging.hh"
#include "obs/trace_recorder.hh"
#include "runtime/ids.hh"

namespace specfaas {

BaselineController::BaselineController(Simulation& sim, Cluster& cluster,
                                       KvStore& store,
                                       const FunctionRegistry& registry)
    : sim_(sim),
      cluster_(cluster),
      store_(store),
      registry_(registry),
      interp_(sim, cluster, *this),
      launcher_(sim, cluster, registry, interp_)
{
}

BaselineController::~BaselineController()
{
    counters_.mergeInto(obs::counters());
}

const FlowProgram&
BaselineController::compiled(const Application& app)
{
    auto it = programs_.find(&app);
    if (it == programs_.end())
        it = programs_.emplace(&app, compileWorkflow(app)).first;
    return it->second;
}

void
BaselineController::invoke(const Application& app, Value input,
                           std::function<void(InvocationResult)> done)
{
    const InvocationId id = nextInvocationId();

    // Admission control: shed load when the control plane is backed
    // up (OpenWhisk returns 429 TooManyRequests).
    if (cluster_.controller().queueLength() >
        cluster_.config().admissionQueueLimit) {
        InvocationResult rejected;
        rejected.id = id;
        rejected.app = app.name;
        rejected.submittedAt = sim_.now();
        rejected.completedAt = sim_.now();
        rejected.rejected = true;
        ++ctrRejections_;
        if (auto& tr = obs::trace(); tr.enabled()) {
            tr.instant(obs::cat::kBaseline, "reject", sim_.now(),
                       obs::kControlPlanePid, id, {{"app", app.name}});
        }
        done(std::move(rejected));
        return;
    }

    ++ctrInvocations_;
    if (auto& tr = obs::trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "invoke", sim_.now(),
                   obs::kControlPlanePid, id, {{"app", app.name}});
    }

    auto inv = std::make_unique<Invocation>();
    inv->app = &app;
    inv->done = std::move(done);
    inv->result.id = id;
    inv->result.app = app.name;
    inv->result.submittedAt = sim_.now();
    Invocation& ref = *inv;
    live_[id] = std::move(inv);

    if (app.type == WorkflowType::Explicit) {
        ref.program = &compiled(app);
        continueAt(ref, ref.program->entry, std::move(input), OrderKey{0});
    } else {
        dispatch(ref, kFlowNone, std::move(input), OrderKey{0});
    }
}

BaselineController::Invocation&
BaselineController::invocationOf(const InstancePtr& inst)
{
    auto it = live_.find(inst->invocation);
    SPECFAAS_ASSERT(it != live_.end(), "instance %s of dead invocation",
                    inst->label().c_str());
    return *it->second;
}

void
BaselineController::dispatch(Invocation& inv, FlowIndex idx, Value input,
                             OrderKey order)
{
    const std::string& fname =
        idx == kFlowNone
            ? (order == OrderKey{0} ? inv.app->rootFunction
                                    : std::string())
            : inv.program->node(idx).function;
    SPECFAAS_ASSERT(!fname.empty(), "dispatch without function");

    LaunchSpec spec;
    spec.function = fname;
    spec.input = std::move(input);
    spec.invocation = inv.result.id;
    spec.order = std::move(order);
    spec.flowNode = idx;
    spec.preOverhead = cluster_.config().platformOverhead;
    spec.controllerService = cluster_.config().baselineLaunchService;
    ++inv.liveInstances;
    ++ctrDispatches_;
    if (auto& tr = obs::trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "dispatch", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"function", fname}});
    }
    launcher_.launch(std::move(spec));
}

void
BaselineController::continueAt(Invocation& inv, FlowIndex idx, Value carry,
                               OrderKey order)
{
    if (idx == kFlowNone) {
        finish(inv, std::move(carry));
        return;
    }
    const FlowNode& node = inv.program->node(idx);
    switch (node.kind) {
      case FlowNode::Kind::Func:
      case FlowNode::Kind::Branch:
        dispatch(inv, idx, std::move(carry), std::move(order));
        return;
      case FlowNode::Kind::Fork: {
        auto& join = inv.joins[node.join];
        join.pending = node.targets.size();
        join.outputs.assign(node.targets.size(), Value());
        for (std::size_t arm = 0; arm < node.targets.size(); ++arm) {
            OrderKey arm_order = order;
            arm_order.push_back(static_cast<std::int32_t>(arm));
            arm_order.push_back(0);
            continueAt(inv, node.targets[arm], carry,
                       std::move(arm_order));
        }
        return;
      }
      case FlowNode::Kind::Join: {
        auto it = inv.joins.find(idx);
        SPECFAAS_ASSERT(it != inv.joins.end(), "join without fork");
        auto& join = it->second;
        // The arm index is the second-to-last component of the order
        // key laid down at the fork.
        SPECFAAS_ASSERT(order.size() >= 2, "join from non-arm order key");
        const auto arm = static_cast<std::size_t>(order[order.size() - 2]);
        SPECFAAS_ASSERT(arm < join.outputs.size(), "bad arm index");
        join.outputs[arm] = std::move(carry);
        SPECFAAS_ASSERT(join.pending > 0, "join underflow");
        if (--join.pending == 0) {
            Value all = Value(std::move(join.outputs));
            inv.joins.erase(it);
            OrderKey next_order(order.begin(), order.end() - 2);
            next_order.back() += 1;
            continueAt(inv, node.next, std::move(all),
                       std::move(next_order));
        }
        return;
      }
    }
    panic("unreachable flow node kind");
}

void
BaselineController::stepFlow(Invocation& inv, const InstancePtr& inst,
                             const Value& output)
{
    const FlowIndex idx = inst->flowNode;
    if (idx == kFlowNone) {
        // Implicit root function: its output is the response.
        finish(inv, output);
        return;
    }
    const FlowNode& node = inv.program->node(idx);
    FlowIndex next;
    Value carry;
    if (node.kind == FlowNode::Kind::Branch) {
        // Branch targets inherit the branch function's input (§II-A);
        // only the choice of target depends on the output.
        next = inv.program->resolveBranch(idx, output);
        carry = inst->env.input;
    } else {
        next = node.next;
        carry = output;
    }

    OrderKey next_order = inst->order;
    next_order.back() += 1;

    // Worker → controller message, conductor execution, controller →
    // worker launch: the Transfer Function Overhead of Fig. 3.
    const Tick transfer = cluster_.config().conductorOverhead;
    inv.result.transferOverhead += transfer;
    if (auto& tr = obs::trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "conductor", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"after", inst->def->name}});
    }
    const InvocationId id = inv.result.id;
    sim_.events().schedule(transfer, [this, id, next, carry,
                                      next_order]() mutable {
        auto it = live_.find(id);
        if (it == live_.end())
            return;
        continueAt(*it->second, next, std::move(carry),
                   std::move(next_order));
    });
}

void
BaselineController::completed(const InstancePtr& inst, Value output)
{
    Invocation& inv = invocationOf(inst);

    if (inst->container != nullptr) {
        cluster_.containers().release(*inst->container);
        inst->container = nullptr;
    }

    // Accounting.
    ++ctrCompletions_;
    ++inv.result.functionsExecuted;
    inv.sequence.emplace_back(inst->order, inst->def->name);
    inv.result.containerCreation += inst->containerCreationTime;
    inv.result.runtimeSetup += inst->runtimeSetupTime;
    inv.result.platformOverhead += inst->platformOverheadTime;
    inv.result.execution += inst->execTime;
    SPECFAAS_ASSERT(inv.liveInstances > 0, "live-instance underflow");
    --inv.liveInstances;
    inst->state = InstanceState::Committed;

    if (inst->caller != nullptr) {
        // Implicit callee: the stored continuation (set up in
        // functionCall) routes the result back over RPC.
        auto it = callReturns_.find(inst->id);
        SPECFAAS_ASSERT(it != callReturns_.end(), "callee without return");
        auto ret = std::move(it->second);
        callReturns_.erase(it);
        ret(std::move(output));
        return;
    }

    stepFlow(inv, inst, output);
}

void
BaselineController::storageGet(const InstancePtr& inst,
                               const std::string& key,
                               std::function<void(Value)> done)
{
    (void)inst;
    sim_.events().schedule(store_.latency().readLatency,
                           [this, key, done = std::move(done)]() {
                               auto v = store_.get(key);
                               done(v ? std::move(*v) : Value());
                           });
}

void
BaselineController::storagePut(const InstancePtr& inst,
                               const std::string& key, Value value,
                               std::function<void()> done)
{
    (void)inst;
    sim_.events().schedule(store_.latency().writeLatency,
                           [this, key, value = std::move(value),
                            done = std::move(done)]() mutable {
                               store_.put(key, std::move(value));
                               done();
                           });
}

void
BaselineController::functionCall(const InstancePtr& inst,
                                 std::size_t call_site,
                                 const std::string& callee, Value args,
                                 std::function<void(Value)> done)
{

    Invocation& inv = invocationOf(inst);
    const Tick rpc = cluster_.config().rpcLatency;
    inv.result.transferOverhead += 2 * rpc;
    inst->state = InstanceState::StalledCallee;

    const InvocationId id = inv.result.id;
    sim_.events().schedule(rpc, [this, id, callee, args, call_site,
                                 caller = inst.get(),
                                 done = std::move(done)]() mutable {
        auto it = live_.find(id);
        if (it == live_.end())
            return;
        Invocation& inv2 = *it->second;

        OrderKey order = caller->order;
        order.push_back(static_cast<std::int32_t>(call_site));

        LaunchSpec spec;
        spec.function = callee;
        spec.input = std::move(args);
        spec.invocation = id;
        spec.order = std::move(order);
        spec.flowNode = kFlowNone;
        spec.preOverhead = cluster_.config().platformOverhead;
        spec.controllerService =
            cluster_.config().baselineLaunchService;
        spec.caller = caller;
        ++inv2.liveInstances;
        InstancePtr callee_inst = launcher_.launch(std::move(spec));
        // Return path: one more RPC hop back to the caller.
        const Tick rpc2 = cluster_.config().rpcLatency;
        callReturns_[callee_inst->id] =
            [this, rpc2, done = std::move(done)](Value out) mutable {
                sim_.events().schedule(
                    rpc2, [out = std::move(out),
                           done = std::move(done)]() mutable {
                        done(std::move(out));
                    });
            };
    });
}

void
BaselineController::httpRequest(const InstancePtr& inst,
                                std::function<void()> done)
{
    // Nothing speculative in the baseline: requests go out directly.
    (void)inst;
    done();
}

void
BaselineController::finish(Invocation& inv, Value response)
{
    inv.result.response = std::move(response);
    inv.result.completedAt = sim_.now();
    // End-to-end completion marker: invokeSync bypasses the platform
    // "response" wrapper, so the engine records it for the analyzer.
    if (auto& tr = obs::trace(); tr.enabled()) {
        tr.instant(obs::cat::kBaseline, "complete", sim_.now(),
                   obs::kControlPlanePid, inv.result.id,
                   {{"app", inv.result.app}});
    }
    std::sort(inv.sequence.begin(), inv.sequence.end(),
              [](const auto& a, const auto& b) {
                  return orderKeyLess(a.first, b.first);
              });
    for (auto& [order, name] : inv.sequence) {
        (void)order;
        inv.result.executedSequence.push_back(std::move(name));
    }
    auto it = live_.find(inv.result.id);
    SPECFAAS_ASSERT(it != live_.end(), "finishing unknown invocation");
    auto owned = std::move(it->second);
    live_.erase(it);
    owned->done(std::move(owned->result));
}

} // namespace specfaas
