/**
 * @file
 * Reactive autoscaler: a pure decision function over fleet signals.
 *
 * The Fleet samples signals (ready/provisioning node counts,
 * instantaneous utilization, control-plane queue depth) on every
 * evaluation tick and asks the autoscaler for a node delta. Keeping
 * the policy side-effect free makes it unit-testable and keeps all
 * state transitions inside the Fleet.
 */

#ifndef SPECFAAS_FLEET_AUTOSCALER_HH
#define SPECFAAS_FLEET_AUTOSCALER_HH

#include <cstdint>

#include "common/types.hh"
#include "fleet/fleet_config.hh"

namespace specfaas {

/** Instantaneous fleet signals sampled at one evaluation tick. */
struct ScaleSignals
{
    /** Workers currently Ready (serving). */
    std::uint32_t readyNodes = 0;
    /** Workers requested but not yet Ready. */
    std::uint32_t provisioningNodes = 0;
    /** busyCores / totalCores over Ready workers, [0,1]. */
    double utilization = 0.0;
    /** Launch queue depth at the control plane. */
    std::size_t controllerQueue = 0;
};

/** Scaling decision: nodes to add (>0) or drain (<0). */
struct ScaleDecision
{
    std::int32_t delta = 0;
};

/** Threshold + cooldown reactive scaling policy. */
class Autoscaler
{
  public:
    /**
     * @param config policy knobs
     * @param min_nodes scale-down floor (ready nodes)
     * @param max_nodes scale-up ceiling (ready + provisioning)
     */
    Autoscaler(const AutoscalerConfig& config, std::uint32_t min_nodes,
               std::uint32_t max_nodes);

    /**
     * Evaluate the policy at time @p now. Deterministic: equal
     * signal/time sequences yield equal decision sequences.
     */
    ScaleDecision evaluate(const ScaleSignals& signals, Tick now);

    /** Consecutive below-utilLow evaluations seen so far. */
    std::uint32_t lowStreak() const { return lowStreak_; }

  private:
    AutoscalerConfig config_;
    std::uint32_t minNodes_;
    std::uint32_t maxNodes_;
    Tick lastAction_ = -1;
    std::uint32_t lowStreak_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_FLEET_AUTOSCALER_HH
