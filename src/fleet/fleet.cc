#include "fleet.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "sim/sim_context.hh"

namespace specfaas {

const char*
nodeStateName(NodeState state)
{
    switch (state) {
    case NodeState::Provisioning:
        return "provisioning";
    case NodeState::Ready:
        return "ready";
    case NodeState::Draining:
        return "draining";
    case NodeState::Retired:
        return "retired";
    }
    return "?";
}

Fleet::Fleet(Simulation& sim, const ClusterConfig& cluster,
             const FleetConfig& fleet)
    : sim_(sim),
      cluster_(cluster),
      config_(fleet),
      scaler_(fleet.autoscaler, fleet.minNodes,
              fleet.maxNodes != 0 ? fleet.maxNodes : cluster.numNodes),
      keepAlive_(fleet.eviction)
{
    // Configuration errors, not simulator bugs: reject loudly with
    // the offending field instead of asserting deep inside Node.
    // (admissionQueueLimit needs no lower bound: 0 is meaningful —
    // reject whenever any launch is queued — and the unsigned type
    // rules out negatives.)
    if (cluster.numNodes == 0)
        fatal("ClusterConfig: numNodes must be > 0");
    if (cluster.coresPerNode == 0)
        fatal("ClusterConfig: coresPerNode must be > 0");
    if (cluster.controllerThreads == 0)
        fatal("ClusterConfig: controllerThreads must be > 0 "
              "(the control plane needs at least one thread; with "
              "none, no launch can ever be admitted)");
    if (cluster.baselineLaunchService < 0 ||
        cluster.specLaunchService < 0)
        fatal("ClusterConfig: negative launch service time");
    if (config_.dynamics) {
        const std::uint32_t max_nodes = config_.maxNodes != 0
                                            ? config_.maxNodes
                                            : cluster.numNodes;
        if (config_.minNodes == 0)
            fatal("FleetConfig: minNodes must be > 0");
        if (config_.minNodes > cluster.numNodes)
            fatal("FleetConfig: minNodes (%u) exceeds the initial "
                  "node count (%u)",
                  config_.minNodes, cluster.numNodes);
        if (max_nodes < cluster.numNodes)
            fatal("FleetConfig: maxNodes (%u) below the initial node "
                  "count (%u)",
                  max_nodes, cluster.numNodes);
        if (config_.provisioningDelay < 0)
            fatal("FleetConfig: negative provisioningDelay");
        if (config_.autoscaler.enabled &&
            config_.autoscaler.interval <= 0)
            fatal("FleetConfig: autoscaler interval must be > 0");
        if (config_.eviction.policy != EvictionConfig::Policy::None &&
            config_.eviction.scanInterval <= 0)
            fatal("FleetConfig: eviction scanInterval must be > 0");
    }

    workers_.reserve(cluster.numNodes);
    for (std::uint32_t i = 0; i < cluster.numNodes; ++i)
        addWorker(NodeState::Ready);
    stats_.peakReadyNodes = cluster.numNodes;
    controller_ = std::make_unique<Node>(sim_, kControllerNode,
                                         cluster.controllerThreads);
    containers_ =
        std::make_unique<ContainerPool>(sim_, *this, cluster_);

    if (config_.dynamics) {
        if (config_.autoscaler.enabled)
            scheduleAutoscale();
        if (config_.eviction.policy != EvictionConfig::Policy::None)
            scheduleEviction();
    }
}

void
Fleet::scheduleAutoscale()
{
    // Self-rescheduling daemon: daemons never keep the event loop
    // alive, so an idle run still terminates with ticks pending.
    sim_.events().scheduleDaemon(config_.autoscaler.interval,
                                 [this]() {
                                     autoscaleTick();
                                     scheduleAutoscale();
                                 });
}

void
Fleet::scheduleEviction()
{
    sim_.events().scheduleDaemon(config_.eviction.scanInterval,
                                 [this]() {
                                     evictionTick();
                                     scheduleEviction();
                                 });
}

Fleet::~Fleet()
{
    if (!config_.dynamics)
        return;
    auto& counters = sim_.context().counters();
    counters.add("fleet.scale_ups", stats_.scaleUps);
    counters.add("fleet.scale_downs", stats_.scaleDowns);
    counters.add("fleet.nodes_provisioned", stats_.provisioned);
    counters.add("fleet.nodes_retired", stats_.retired);
    counters.add("fleet.evictions", stats_.evictions);
    counters.add("fleet.fair_rejects", stats_.fairRejects);
}

Node&
Fleet::worker(NodeId id)
{
    SPECFAAS_ASSERT(id < workers_.size(), "bad node id %u", id);
    return *workers_[id];
}

NodeState
Fleet::state(NodeId id) const
{
    SPECFAAS_ASSERT(id < meta_.size(), "bad node id %u", id);
    return meta_[id].state;
}

std::uint32_t
Fleet::readyWorkers() const
{
    std::uint32_t n = 0;
    for (const NodeMeta& m : meta_)
        if (m.state == NodeState::Ready)
            ++n;
    return n;
}

std::uint32_t
Fleet::provisioningWorkers() const
{
    std::uint32_t n = 0;
    for (const NodeMeta& m : meta_)
        if (m.state == NodeState::Provisioning)
            ++n;
    return n;
}

std::uint32_t
Fleet::liveCores() const
{
    std::uint32_t cores = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i)
        if (meta_[i].state != NodeState::Retired)
            cores += workers_[i]->cores();
    return cores;
}

void
Fleet::addWorker(NodeState state)
{
    const NodeId id = static_cast<NodeId>(workers_.size());
    workers_.push_back(std::make_unique<Node>(
        sim_, id, cluster_.coresPerNode));
    meta_.push_back(NodeMeta{state});
}

void
Fleet::traceLifecycle(NodeId id, const char* what)
{
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.instant(obs::cat::kFleet, what, sim_.now(),
                   obs::nodePid(id), 0,
                   {{"state", nodeStateName(meta_[id].state)}});
    }
}

void
Fleet::provision(std::uint32_t count)
{
    OBS_ZONE(sim_.context().profiler(), "fleet/provision");
    for (std::uint32_t i = 0; i < count; ++i) {
        addWorker(NodeState::Provisioning);
        const NodeId id = static_cast<NodeId>(workers_.size() - 1);
        ++stats_.provisioned;
        traceLifecycle(id, "node-provision");
        sim_.events().scheduleDaemon(
            config_.provisioningDelay, [this, id]() {
                if (meta_[id].state != NodeState::Provisioning)
                    return;
                meta_[id].state = NodeState::Ready;
                stats_.peakReadyNodes = std::max(
                    stats_.peakReadyNodes, readyWorkers());
                traceLifecycle(id, "node-ready");
            });
    }
}

void
Fleet::drain(std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        if (readyWorkers() <= config_.minNodes)
            return;
        // Deterministic victim: the least-loaded Ready worker, newest
        // (highest id) on ties, so the original node set survives
        // longest and scale-down unwinds scale-up.
        NodeId victim = kControllerNode;
        std::uint64_t bestLoad =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t id = 0; id < workers_.size(); ++id) {
            if (meta_[id].state != NodeState::Ready)
                continue;
            const std::uint64_t load =
                workers_[id]->busyCores() +
                workers_[id]->queueLength();
            if (load < bestLoad ||
                (load == bestLoad && victim != kControllerNode &&
                 id > victim)) {
                bestLoad = load;
                victim = static_cast<NodeId>(id);
            }
        }
        if (victim == kControllerNode)
            return;
        meta_[victim].state = NodeState::Draining;
        // The warm pool is node-local state; give it up immediately
        // so the memory is released while in-flight work drains.
        stats_.evictions += containers_->evictWarmOnNode(victim);
        traceLifecycle(victim, "node-drain");
    }
}

void
Fleet::retire(NodeId id)
{
    meta_[id].state = NodeState::Retired;
    ++stats_.retired;
    traceLifecycle(id, "node-retire");
}

void
Fleet::failNode(NodeId id)
{
    worker(id).setDown(true);
    containers_->dropNode(id);
}

void
Fleet::restoreNode(NodeId id)
{
    worker(id).setDown(false);
}

void
Fleet::resetUtilization()
{
    for (auto& n : workers_)
        n->resetUtilization();
}

double
Fleet::utilization() const
{
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (meta_[i].state == NodeState::Retired)
            continue;
        sum += workers_[i]->utilization();
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

ScaleSignals
Fleet::sampleSignals() const
{
    ScaleSignals s;
    std::uint32_t busy = 0;
    std::uint32_t cores = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        switch (meta_[i].state) {
        case NodeState::Ready:
            ++s.readyNodes;
            busy += workers_[i]->busyCores();
            cores += workers_[i]->cores();
            break;
        case NodeState::Provisioning:
            ++s.provisioningNodes;
            break;
        default:
            break;
        }
    }
    s.utilization = cores == 0 ? 0.0
                               : static_cast<double>(busy) /
                                     static_cast<double>(cores);
    s.controllerQueue = controller_->queueLength();
    return s;
}

void
Fleet::autoscaleTick()
{
    OBS_ZONE(sim_.context().profiler(), "fleet/autoscale");
    // Finish draining: a node retires once nothing runs or waits on
    // it and no container (busy or warm) is placed there.
    for (std::size_t id = 0; id < workers_.size(); ++id) {
        if (meta_[id].state != NodeState::Draining)
            continue;
        Node& n = *workers_[id];
        if (n.busyCores() == 0 && n.queueLength() == 0 &&
            containers_->liveOnNode(static_cast<NodeId>(id)) == 0) {
            retire(static_cast<NodeId>(id));
        }
    }

    const ScaleDecision d =
        scaler_.evaluate(sampleSignals(), sim_.now());
    if (d.delta > 0) {
        ++stats_.scaleUps;
        provision(static_cast<std::uint32_t>(d.delta));
    } else if (d.delta < 0) {
        ++stats_.scaleDowns;
        drain(static_cast<std::uint32_t>(-d.delta));
    }
}

void
Fleet::evictionTick()
{
    OBS_ZONE(sim_.context().profiler(), "fleet/evict");
    stats_.evictions += containers_->evictIdle(sim_.now());
}

void
Fleet::noteAcquire(Symbol function)
{
    if (config_.eviction.policy == EvictionConfig::Policy::Histogram)
        keepAlive_.noteAcquire(function, sim_.now());
}

Tick
Fleet::keepAliveFor(Symbol function) const
{
    if (config_.eviction.policy == EvictionConfig::Policy::None)
        return config_.eviction.maxKeepAlive;
    return keepAlive_.keepAliveFor(function);
}

bool
Fleet::admit(Symbol tenant)
{
    if (!admissionActive())
        return true;
    OBS_ZONE(sim_.context().profiler(), "fleet/admission");
    const std::size_t i = tenant.id();
    if (i >= tenantInFlight_.size())
        tenantInFlight_.resize(i + 1, 0);
    const AdmissionConfig& cfg = config_.admission;
    if (controller_->queueLength() >
            static_cast<std::size_t>(cfg.engageQueueDepth) &&
        activeTenants_ > 0) {
        const double share = static_cast<double>(totalInFlight_) /
                             static_cast<double>(activeTenants_);
        const std::uint64_t limit = std::max<std::uint64_t>(
            cfg.minTenantInFlight,
            static_cast<std::uint64_t>(share * cfg.fairFactor));
        if (tenantInFlight_[i] >= limit) {
            ++stats_.fairRejects;
            return false;
        }
    }
    if (tenantInFlight_[i]++ == 0)
        ++activeTenants_;
    ++totalInFlight_;
    return true;
}

void
Fleet::complete(Symbol tenant)
{
    if (!admissionActive())
        return;
    const std::size_t i = tenant.id();
    SPECFAAS_ASSERT(i < tenantInFlight_.size() &&
                        tenantInFlight_[i] > 0,
                    "completion for tenant with no in-flight requests");
    if (--tenantInFlight_[i] == 0)
        --activeTenants_;
    --totalInFlight_;
}

std::uint64_t
Fleet::tenantInFlight(Symbol tenant) const
{
    const std::size_t i = tenant.id();
    return i < tenantInFlight_.size() ? tenantInFlight_[i] : 0;
}

} // namespace specfaas
