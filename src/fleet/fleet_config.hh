/**
 * @file
 * Configuration of the dynamic fleet model.
 *
 * A Fleet generalizes the paper's fixed 5-node testbed into a cluster
 * whose node set changes over time: nodes are provisioned (with a
 * delay), drained and retired by a reactive autoscaler; warm
 * containers are evicted by keep-alive policies; and overload is met
 * with admission control and per-tenant fair sharing. All dynamics
 * are off by default (`dynamics = false`), in which case the fleet is
 * exactly the static node set the original Cluster owned and every
 * pre-existing experiment is byte-identical.
 */

#ifndef SPECFAAS_FLEET_FLEET_CONFIG_HH
#define SPECFAAS_FLEET_FLEET_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace specfaas {

/** Warm-container keep-alive / eviction policy. */
struct EvictionConfig
{
    enum class Policy : std::uint8_t
    {
        /** Containers stay warm forever (the paper's testbed). */
        None,
        /** Evict a warm container idle for longer than fixedTtl. */
        FixedTtl,
        /**
         * Azure-style histogram policy: per function, keep-alive is a
         * percentile of the observed acquisition inter-arrival gaps,
         * clamped to [minKeepAlive, maxKeepAlive]. Functions with no
         * history yet use maxKeepAlive.
         */
        Histogram,
    };

    Policy policy = Policy::None;

    /** Keep-alive TTL under the FixedTtl policy. */
    Tick fixedTtl = msToTicks(60000.0);

    /** Period of the eviction scan daemon. */
    Tick scanInterval = msToTicks(500.0);

    /** @{ Histogram-policy shape. */
    double keepAlivePercentile = 99.0;
    Tick minKeepAlive = msToTicks(500.0);
    Tick maxKeepAlive = msToTicks(120000.0);
    /** @} */
};

/** Reactive autoscaler knobs. */
struct AutoscalerConfig
{
    bool enabled = false;

    /** Evaluation period. */
    Tick interval = msToTicks(250.0);

    /** Scale up when instantaneous ready-node utilization exceeds
     * this... */
    double utilHigh = 0.70;

    /** ...or when the control-plane launch queue is at least this
     * deep. */
    std::uint32_t queueDepthHigh = 64;

    /** Scale down after lowStreak consecutive evaluations below this
     * utilization with an empty control-plane queue. */
    double utilLow = 0.20;
    std::uint32_t lowStreak = 3;

    /** Nodes added / drained per scaling action. */
    std::uint32_t scaleUpStep = 16;
    std::uint32_t scaleDownStep = 8;

    /** Minimum time between two scaling actions. */
    Tick cooldown = msToTicks(500.0);
};

/** Fleet-level admission control (per-tenant fair share). */
struct AdmissionConfig
{
    /**
     * Enforce fair sharing across tenants (applications) when the
     * control plane is backed up. The engines' own queue-limit
     * admission check (ClusterConfig::admissionQueueLimit) remains
     * the hard overload backstop underneath this.
     */
    bool fairShare = false;

    /** Fairness engages once the launch queue is this deep. */
    std::uint32_t engageQueueDepth = 16;

    /**
     * A tenant is rejected while its in-flight requests exceed
     * fairFactor × the mean in-flight count across active tenants.
     */
    double fairFactor = 2.0;

    /** Tenants below this many in-flight are never rejected. */
    std::uint32_t minTenantInFlight = 32;
};

/** Dynamic-fleet configuration; defaults model the static testbed. */
struct FleetConfig
{
    /**
     * Master switch. When false the fleet is a static node set —
     * no daemons are scheduled, no lifecycle transitions happen, and
     * the cluster behaves exactly as it did before the fleet layer
     * existed.
     */
    bool dynamics = false;

    /** Autoscaler bounds on ready+provisioning worker count. */
    std::uint32_t minNodes = 1;
    /** 0 = the initial node count (no growth). */
    std::uint32_t maxNodes = 0;

    /** Provisioning → Ready latency of a newly requested node. */
    Tick provisioningDelay = msToTicks(2000.0);

    EvictionConfig eviction;
    AutoscalerConfig autoscaler;
    AdmissionConfig admission;
};

} // namespace specfaas

#endif // SPECFAAS_FLEET_FLEET_CONFIG_HH
