#include "eviction.hh"

#include <algorithm>

namespace specfaas {

namespace {

/** Bucket index for a gap: floor(log2(gap in ms)), clamped. */
std::size_t
bucketFor(Tick gap)
{
    const Tick ms = std::max<Tick>(1, gap / kMillisecond);
    std::size_t b = 0;
    Tick bound = 2;
    while (b + 1 < KeepAliveTracker::kBuckets && ms >= bound) {
        ++b;
        bound <<= 1;
    }
    return b;
}

/** Upper bound of bucket @p b, in ticks. */
Tick
bucketUpperTicks(std::size_t b)
{
    return (Tick{1} << (b + 1)) * kMillisecond;
}

} // namespace

void
KeepAliveTracker::noteAcquire(Symbol function, Tick now)
{
    const std::size_t i = function.id();
    if (i >= usage_.size())
        usage_.resize(i + 1);
    FnUsage& u = usage_[i];
    if (u.lastAcquire >= 0) {
        ++u.total;
        ++u.buckets[bucketFor(now - u.lastAcquire)];
    }
    u.lastAcquire = now;
}

Tick
KeepAliveTracker::keepAliveFor(Symbol function) const
{
    if (config_.policy == EvictionConfig::Policy::FixedTtl)
        return config_.fixedTtl;

    const std::size_t i = function.id();
    if (i >= usage_.size() || usage_[i].total == 0)
        return config_.maxKeepAlive;

    const FnUsage& u = usage_[i];
    // Smallest bucket whose cumulative count reaches the percentile.
    const double target =
        static_cast<double>(u.total) * config_.keepAlivePercentile /
        100.0;
    std::uint64_t cumulative = 0;
    Tick keep = config_.maxKeepAlive;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += u.buckets[b];
        if (static_cast<double>(cumulative) >= target) {
            keep = bucketUpperTicks(b);
            break;
        }
    }
    return std::clamp(keep, config_.minKeepAlive,
                      config_.maxKeepAlive);
}

std::uint64_t
KeepAliveTracker::observations(Symbol function) const
{
    const std::size_t i = function.id();
    return i < usage_.size() ? usage_[i].total : 0;
}

} // namespace specfaas
