/**
 * @file
 * Warm-container keep-alive policy state.
 *
 * The FixedTtl policy needs no state. The Histogram policy follows
 * Azure's serverless keep-alive design ("Serverless in the Wild"):
 * per function, record the inter-arrival gaps between container
 * acquisitions in a coarse log-scale histogram and keep warm
 * containers alive for a high percentile of the observed gaps, so
 * frequently invoked functions hold a small warm set while rarely
 * invoked ones release their memory quickly.
 */

#ifndef SPECFAAS_FLEET_EVICTION_HH
#define SPECFAAS_FLEET_EVICTION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/symbol.hh"
#include "common/types.hh"
#include "fleet/fleet_config.hh"

namespace specfaas {

/** Per-function acquisition inter-arrival tracker (Histogram policy). */
class KeepAliveTracker
{
  public:
    /** Power-of-two millisecond buckets: bucket i covers gaps in
     * [2^i, 2^(i+1)) ms; the last bucket is open-ended. */
    static constexpr std::size_t kBuckets = 32;

    explicit KeepAliveTracker(const EvictionConfig& config)
        : config_(config)
    {
    }

    /** Record one acquisition of @p function at time @p now. */
    void noteAcquire(Symbol function, Tick now);

    /**
     * Keep-alive TTL for @p function under the configured policy.
     * FixedTtl ignores the history; Histogram returns the configured
     * percentile of observed gaps (bucket upper bound), clamped to
     * [minKeepAlive, maxKeepAlive], or maxKeepAlive with no history.
     */
    Tick keepAliveFor(Symbol function) const;

    /** Observed gaps recorded for @p function. */
    std::uint64_t observations(Symbol function) const;

  private:
    struct FnUsage
    {
        Tick lastAcquire = -1;
        std::uint64_t total = 0;
        std::array<std::uint32_t, kBuckets> buckets{};
    };

    EvictionConfig config_;
    /** Indexed by Symbol id; unused ids stay empty. */
    std::vector<FnUsage> usage_;
};

} // namespace specfaas

#endif // SPECFAAS_FLEET_EVICTION_HH
