/**
 * @file
 * The dynamic fleet: nodes and warm pools as first-class objects with
 * lifecycle.
 *
 * A Fleet owns what the Cluster facade used to own directly — the
 * worker nodes, the control-plane service station and the container
 * pool — and adds platform dynamics on top:
 *
 *   - node lifecycle: Provisioning → Ready → Draining → Retired,
 *     with a configurable provisioning delay;
 *   - a reactive autoscaler driven by utilization and control-plane
 *     queue depth (see fleet/autoscaler.hh);
 *   - warm-pool keep-alive/eviction policies (fixed TTL and the
 *     Azure-style per-function histogram policy);
 *   - fleet-level admission control with per-tenant fair sharing
 *     under backpressure.
 *
 * Cluster is now a thin view over the fleet. With `dynamics = false`
 * (every pre-existing bench and test) the fleet constructs exactly
 * the static node set the old Cluster did, schedules no events, and
 * adds no counters, so all artifacts stay byte-identical.
 *
 * Determinism: scaling and eviction decisions are pure functions of
 * simulated state sampled at daemon ticks; node ids, scan orders and
 * drain victim selection are all derived from deterministic indices.
 * No RNG is consumed, so enabling dynamics never perturbs the
 * arrival/input streams of the load layer above.
 */

#ifndef SPECFAAS_FLEET_FLEET_HH
#define SPECFAAS_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster_config.hh"
#include "cluster/container.hh"
#include "cluster/node.hh"
#include "common/symbol.hh"
#include "fleet/autoscaler.hh"
#include "fleet/eviction.hh"
#include "fleet/fleet_config.hh"
#include "sim/simulation.hh"

namespace specfaas {

/** Lifecycle state of one fleet node. */
enum class NodeState : std::uint8_t
{
    Provisioning, ///< requested; becomes Ready after the delay
    Ready,        ///< serving placements
    Draining,     ///< no new placements; retires when empty
    Retired,      ///< permanently out of service
};

/** Human-readable state name (traces, tests). */
const char* nodeStateName(NodeState state);

/** Deterministic lifetime statistics of one fleet. */
struct FleetStats
{
    std::uint64_t scaleUps = 0;      ///< scale-up actions
    std::uint64_t scaleDowns = 0;    ///< scale-down actions
    std::uint64_t provisioned = 0;   ///< nodes requested beyond initial
    std::uint64_t retired = 0;       ///< nodes fully drained
    std::uint64_t evictions = 0;     ///< warm containers evicted
    std::uint64_t fairRejects = 0;   ///< fair-share admission rejects
    std::uint32_t peakReadyNodes = 0;
};

/** Dynamic node set with lifecycle, scaling, eviction and admission. */
class Fleet
{
  public:
    /** Id of the control-plane service node (never a worker id). */
    static constexpr NodeId kControllerNode = ~NodeId{0};

    /**
     * @param sim simulation context
     * @param cluster node geometry and platform cost constants
     *        (validated here: zero nodes, zero cores or zero
     *        controller threads are configuration errors)
     * @param fleet dynamics configuration
     */
    Fleet(Simulation& sim, const ClusterConfig& cluster,
          const FleetConfig& fleet);

    /** Folds fleet lifetime statistics into the global counters. */
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    /** @{ Configuration in effect. */
    const ClusterConfig& clusterConfig() const { return cluster_; }
    const FleetConfig& config() const { return config_; }
    /** True when any dynamics are active. */
    bool dynamic() const { return config_.dynamics; }
    /** @} */

    /**
     * @{ Node access (the Cluster view). Worker ids equal their index
     * in workers(); retired nodes keep their slot so ids stay stable
     * for the whole run.
     */
    const std::vector<std::unique_ptr<Node>>& workers() const
    {
        return workers_;
    }
    Node& worker(NodeId id);
    Node& controller() { return *controller_; }
    ContainerPool& containers() { return *containers_; }
    /** @} */

    /** Lifecycle state of worker @p id. */
    NodeState state(NodeId id) const;

    /** True when worker @p id may receive new placements. */
    bool placeable(NodeId id) const
    {
        return meta_[id].state == NodeState::Ready &&
               !workers_[id]->isDown();
    }

    /** Workers currently Ready. */
    std::uint32_t readyWorkers() const;

    /** Workers currently Provisioning. */
    std::uint32_t provisioningWorkers() const;

    /** Cores across non-retired workers. */
    std::uint32_t liveCores() const;

    /**
     * @{ Explicit lifecycle actions (the autoscaler calls these; tests
     * and scenario drivers may too).
     */
    void provision(std::uint32_t count);
    void drain(std::uint32_t count);
    /** @} */

    /**
     * @{ Injected node failure (the fault layer enters through the
     * Cluster view): a down node receives no placements and loses its
     * warm containers; restore brings it back empty.
     */
    void failNode(NodeId id);
    void restoreNode(NodeId id);
    /** @} */

    /** @{ Cluster-wide utilization window over non-retired workers. */
    void resetUtilization();
    double utilization() const;
    /** @} */

    /**
     * Fleet-level admission decision for one request of @p tenant.
     * Returns false — reject with backpressure — when fair sharing is
     * engaged and the tenant is over its share. Every admitted
     * request must be paired with a complete() call.
     */
    bool admit(Symbol tenant);

    /** Request of @p tenant finished (served or rejected below). */
    void complete(Symbol tenant);

    /** True when platform-level admission accounting is needed. */
    bool admissionActive() const
    {
        return config_.dynamics && config_.admission.fairShare;
    }

    /** In-flight requests of @p tenant (admission accounting). */
    std::uint64_t tenantInFlight(Symbol tenant) const;

    /**
     * Container-pool hook: one acquisition of @p function happened.
     * Feeds the histogram keep-alive policy.
     */
    void noteAcquire(Symbol function);

    /** Keep-alive TTL currently in effect for @p function. */
    Tick keepAliveFor(Symbol function) const;

    /** Deterministic lifetime statistics. */
    const FleetStats& stats() const { return stats_; }

  private:
    void addWorker(NodeState state);
    void retire(NodeId id);
    void scheduleAutoscale();
    void scheduleEviction();
    void autoscaleTick();
    void evictionTick();
    ScaleSignals sampleSignals() const;
    void traceLifecycle(NodeId id, const char* what);

    Simulation& sim_;
    ClusterConfig cluster_;
    FleetConfig config_;

    struct NodeMeta
    {
        NodeState state = NodeState::Ready;
    };

    std::vector<std::unique_ptr<Node>> workers_;
    std::vector<NodeMeta> meta_;
    std::unique_ptr<Node> controller_;
    std::unique_ptr<ContainerPool> containers_;

    Autoscaler scaler_;
    KeepAliveTracker keepAlive_;
    FleetStats stats_;

    /** @{ Fair-share admission accounting, indexed by Symbol id. */
    std::vector<std::uint64_t> tenantInFlight_;
    std::uint64_t totalInFlight_ = 0;
    std::uint32_t activeTenants_ = 0;
    /** @} */
};

} // namespace specfaas

#endif // SPECFAAS_FLEET_FLEET_HH
