#include "autoscaler.hh"

#include <algorithm>

namespace specfaas {

Autoscaler::Autoscaler(const AutoscalerConfig& config,
                       std::uint32_t min_nodes, std::uint32_t max_nodes)
    : config_(config), minNodes_(min_nodes), maxNodes_(max_nodes)
{
}

ScaleDecision
Autoscaler::evaluate(const ScaleSignals& signals, Tick now)
{
    ScaleDecision decision;
    if (!config_.enabled)
        return decision;

    const bool pressured =
        signals.utilization >= config_.utilHigh ||
        signals.controllerQueue >=
            static_cast<std::size_t>(config_.queueDepthHigh);
    const bool idle = signals.utilization <= config_.utilLow &&
                      signals.controllerQueue == 0;

    if (pressured)
        lowStreak_ = 0;
    else if (idle)
        ++lowStreak_;
    else
        lowStreak_ = 0;

    // Cooldown applies to actions, not to streak accounting: a
    // sustained idle period spanning the cooldown still triggers a
    // scale-down on the first eligible tick.
    if (lastAction_ >= 0 && now - lastAction_ < config_.cooldown)
        return decision;

    if (pressured) {
        const std::uint32_t current =
            signals.readyNodes + signals.provisioningNodes;
        if (current < maxNodes_) {
            decision.delta = static_cast<std::int32_t>(
                std::min(config_.scaleUpStep, maxNodes_ - current));
        }
    } else if (idle && lowStreak_ >= config_.lowStreak) {
        if (signals.readyNodes > minNodes_) {
            decision.delta = -static_cast<std::int32_t>(
                std::min(config_.scaleDownStep,
                         signals.readyNodes - minNodes_));
        }
        lowStreak_ = 0;
    }

    if (decision.delta != 0)
        lastAction_ = now;
    return decision;
}

} // namespace specfaas
