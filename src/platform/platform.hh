/**
 * @file
 * The serverless platform facade: one simulated deployment bundling
 * the simulation clock, the worker cluster, global storage, the
 * function registry, and one execution engine (baseline or SpecFaaS).
 *
 * Experiment drivers construct one FaasPlatform per configuration,
 * deploy applications onto it, optionally warm it up (warm containers
 * + trained speculation tables — the paper's "warmed-up environment"),
 * then submit requests through the common engine interface.
 */

#ifndef SPECFAAS_PLATFORM_PLATFORM_HH
#define SPECFAAS_PLATFORM_PLATFORM_HH

#include <memory>
#include <string>

#include "baseline/baseline_controller.hh"
#include "cluster/cluster.hh"
#include "fault/fault_injector.hh"
#include "fleet/fleet_config.hh"
#include "fault/fault_plan.hh"
#include "obs/histogram.hh"
#include "runtime/engine.hh"
#include "sim/simulation.hh"
#include "specfaas/spec_controller.hh"
#include "storage/kv_store.hh"
#include "workflow/registry.hh"

namespace specfaas {

/** Construction options of one platform deployment. */
struct PlatformOptions
{
    /** Speculative engine (SpecFaaS) or conventional baseline. */
    bool speculative = false;

    /** Speculation knobs (only used when speculative). */
    SpecConfig spec;

    /** Cluster geometry and platform cost constants. */
    ClusterConfig cluster;

    /**
     * Fleet dynamics: node lifecycle, autoscaling, warm-pool
     * eviction, fair-share admission. Defaults to a static fleet
     * (exactly the pre-dynamics platform behaviour).
     */
    FleetConfig fleet;

    /** Global storage latencies. */
    KvStoreLatency storeLatency;

    /** Root seed of the whole deployment. */
    std::uint64_t seed = 1;

    /**
     * Deterministic fault-injection plan; an empty plan (no rules)
     * means no injector is constructed and the fault hooks cost one
     * null check.
     */
    FaultPlan faultPlan;

    /**
     * Pre-provision this many warm containers per deployed function
     * (0 = cold environment, every first acquisition cold-starts).
     */
    std::uint32_t prewarmPerFunction = 320;

    /**
     * Per-simulation mutable-state context (ids, trace, counters,
     * sampler series). Null selects the process-global default
     * context; parallel sweep/fuzz harnesses pass a private context
     * per platform so concurrent runs stay isolated.
     */
    SimContext* context = nullptr;
};

/** One simulated serverless deployment. */
class FaasPlatform
{
  public:
    explicit FaasPlatform(PlatformOptions options = {});

    /** Deposits gauge-sampler series into the global archive. */
    ~FaasPlatform();

    FaasPlatform(const FaasPlatform&) = delete;
    FaasPlatform& operator=(const FaasPlatform&) = delete;

    /** @{ Component access. */
    Simulation& sim() { return sim_; }
    Cluster& cluster() { return *cluster_; }
    KvStore& store() { return store_; }
    FunctionRegistry& registry() { return registry_; }
    WorkflowEngine& engine() { return *engine_; }
    /** The speculative engine, or nullptr on a baseline platform. */
    SpecController* specController() { return spec_; }
    /** The fault injector, or nullptr when the plan is empty. */
    FaultInjector* faultInjector() { return faults_.get(); }
    const PlatformOptions& options() const { return options_; }
    /** @} */

    /**
     * Deploy an application: register its functions, seed the global
     * store, and pre-warm containers per the platform options.
     */
    void deploy(const Application& app);

    /** Submit one request asynchronously. */
    void invoke(const Application& app, Value input,
                std::function<void(InvocationResult)> done);

    /**
     * Submit one request and drain the event queue until it
     * completes. Intended for serial (unloaded) measurements and
     * tests.
     */
    InvocationResult invokeSync(const Application& app, Value input);

    /**
     * Warm up: run @p n serial invocations with dataset-drawn inputs
     * so containers are warm and (on a speculative platform) the
     * sequence, branch-predictor and memoization tables are trained.
     */
    void train(const Application& app, std::size_t n);

    /** RNG stream used to draw request inputs. */
    Rng& inputRng() { return inputRng_; }

  private:
    PlatformOptions options_;
    Simulation sim_;
    KvStore store_;
    /** Declared before the engine: hooks query it during execution. */
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<Cluster> cluster_;
    FunctionRegistry registry_;
    std::unique_ptr<WorkflowEngine> engine_;
    SpecController* spec_ = nullptr;
    Rng inputRng_;
    /** Gauge sampler; null unless the context's sampleInterval() > 0. */
    std::unique_ptr<obs::TimeSeriesSampler> sampler_;
};

} // namespace specfaas

#endif // SPECFAAS_PLATFORM_PLATFORM_HH
