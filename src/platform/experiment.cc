#include "experiment.hh"

#include <algorithm>

#include "common/logging.hh"

namespace specfaas {

std::unique_ptr<FaasPlatform>
Experiment::preparedPlatform(const Application& app,
                             const EngineSetup& setup)
{
    PlatformOptions options;
    options.speculative = setup.speculative;
    options.spec = setup.spec;
    options.cluster = setup.cluster;
    options.seed = setup.seed;
    options.prewarmPerFunction = setup.prewarmPerFunction;
    options.context = setup.context;

    auto platform = std::make_unique<FaasPlatform>(options);
    platform->deploy(app);
    if (setup.trainingInvocations > 0)
        platform->train(app, setup.trainingInvocations);
    return platform;
}

double
Experiment::unloadedResponseMs(const Application& app,
                               const EngineSetup& setup, std::size_t n)
{
    auto platform = preparedPlatform(app, setup);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        Value input = app.inputGen ? app.inputGen(platform->inputRng())
                                   : Value();
        auto r = platform->invokeSync(app, std::move(input));
        total += ticksToMs(r.responseTime());
    }
    return total / static_cast<double>(n);
}

AppLoadMeasurement
Experiment::measureAtLoad(const Application& app,
                          const EngineSetup& setup, double rps,
                          std::size_t requests)
{
    auto platform = preparedPlatform(app, setup);
    auto run = LoadGenerator::run(*platform, app, rps, requests);
    AppLoadMeasurement m;
    m.summary = summarize(run.results);
    m.cpuUtilization = run.cpuUtilization;
    m.offeredRps = rps;
    m.rejectionRate = run.rejectionRate();
    return m;
}

double
Experiment::effectiveThroughput(const Application& app,
                                const EngineSetup& setup,
                                double qos_factor, std::size_t requests,
                                double max_rps)
{
    const double unloaded = unloadedResponseMs(app, setup);
    const double limit = qos_factor * unloaded;

    auto meets_qos = [&](double rps) {
        auto m = measureAtLoad(app, setup, rps, requests);
        // A request shed at admission is a QoS violation too.
        return m.summary.meanResponseMs <= limit &&
               m.rejectionRate <= 0.005;
    };

    // Exponential probe upward, then binary search the boundary.
    double lo = 10.0;
    if (!meets_qos(lo))
        return lo;
    double hi = lo;
    while (hi < max_rps && meets_qos(std::min(hi * 2.0, max_rps)))
        hi = std::min(hi * 2.0, max_rps);
    if (hi >= max_rps)
        return max_rps;
    lo = hi;
    hi = std::min(hi * 2.0, max_rps);
    for (int iter = 0; iter < 7 && hi - lo > 5.0; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (meets_qos(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
Experiment::speedupAtLoad(const Application& app, const EngineSetup& base,
                          const EngineSetup& spec, double rps,
                          std::size_t requests)
{
    const auto b = measureAtLoad(app, base, rps, requests);
    const auto s = measureAtLoad(app, spec, rps, requests);
    SPECFAAS_ASSERT(s.summary.meanResponseMs > 0.0, "zero response time");
    return b.summary.meanResponseMs / s.summary.meanResponseMs;
}

} // namespace specfaas
