#include "platform.hh"

#include "common/logging.hh"
#include "sim/sim_context.hh"

namespace specfaas {

FaasPlatform::FaasPlatform(PlatformOptions options)
    : options_(options),
      sim_(options.seed, options.context),
      store_(options.storeLatency),
      inputRng_(options.seed ^ 0x1715517ull)
{
    store_.setProfiler(&sim_.context().profiler());
    if (!options_.faultPlan.empty()) {
        faults_ =
            std::make_unique<FaultInjector>(sim_, options_.faultPlan);
        faults_->attachStore(&store_);
        sim_.setFaultInjector(faults_.get());
    }
    cluster_ = std::make_unique<Cluster>(sim_, options_.cluster,
                                         options_.fleet);
    if (options_.speculative) {
        auto spec = std::make_unique<SpecController>(
            sim_, *cluster_, store_, registry_, options_.spec);
        spec_ = spec.get();
        engine_ = std::move(spec);
    } else {
        engine_ = std::make_unique<BaselineController>(
            sim_, *cluster_, store_, registry_);
    }
    if (faults_ != nullptr) {
        // Node failures are platform-level events: drop the node's
        // warm pool, crash its in-flight handlers through the engine,
        // and bring it back (empty) after the downtime.
        faults_->armNodeFailures([this](NodeId node, Tick downtime) {
            cluster_->failNode(node);
            engine_->onNodeFailure(node);
            if (downtime > 0) {
                sim_.events().scheduleDaemon(downtime, [this, node]() {
                    cluster_->restoreNode(node);
                });
            }
        });
    }

    if (const Tick every = sim_.context().sampleInterval();
        every > 0) {
        sampler_ = std::make_unique<obs::TimeSeriesSampler>(
            sim_.events(), every);
        sampler_->addGauge("in_flight_invocations", [this] {
            return static_cast<double>(engine_->liveInvocations());
        });
        sampler_->addGauge("warm_containers", [this] {
            return static_cast<double>(
                cluster_->containers().warmCount());
        });
        sampler_->addGauge("busy_cores", [this] {
            std::uint32_t busy = 0;
            for (const auto& n : cluster_->nodes())
                busy += n->busyCores();
            return static_cast<double>(busy);
        });
        // Per-node detail only for small clusters; per-gauge memory
        // on a many-node sweep is not worth the resolution.
        if (cluster_->nodes().size() <= 8) {
            for (std::size_t i = 0; i < cluster_->nodes().size(); ++i) {
                sampler_->addGauge(
                    strFormat("busy_cores.node%zu", i), [this, i] {
                        return static_cast<double>(
                            cluster_->nodes()[i]->busyCores());
                    });
            }
        }
        if (spec_ != nullptr) {
            sampler_->addGauge("speculative_in_flight", [this] {
                return static_cast<double>(spec_->speculativeInFlight());
            });
        }
        sampler_->start();
    }
}

FaasPlatform::~FaasPlatform()
{
    if (sampler_ != nullptr) {
        sampler_->stop();
        sim_.context().samplerArchive().deposit(
            *sampler_,
            strFormat("%s-seed%llu", engine_->name().c_str(),
                      static_cast<unsigned long long>(options_.seed)));
    }
}

void
FaasPlatform::deploy(const Application& app)
{
    registry_.addApplication(app);
    if (app.seedStore) {
        Rng seed_rng(options_.seed ^ 0x5eed5eedull);
        app.seedStore(store_, seed_rng);
    }
    if (options_.prewarmPerFunction > 0) {
        for (const auto& f : app.functions) {
            cluster_->containers().prewarm(f.name,
                                           options_.prewarmPerFunction);
        }
    }
}

void
FaasPlatform::invoke(const Application& app, Value input,
                     std::function<void(InvocationResult)> done)
{
    OBS_ZONE(sim_.context().profiler(), "platform/request");
    if (Fleet& fleet = cluster_->fleet(); fleet.admissionActive()) {
        const Symbol tenant(app.name);
        if (!fleet.admit(tenant)) {
            // Fair-share backpressure: shed this tenant's request
            // before it reaches the engine (429 TooManyRequests).
            InvocationResult rejected;
            rejected.id = sim_.context().nextInvocationId();
            rejected.app = app.name;
            rejected.submittedAt = sim_.now();
            rejected.completedAt = sim_.now();
            rejected.rejected = true;
            if (auto& tr = sim_.context().trace(); tr.enabled()) {
                tr.instant(obs::cat::kFleet, "fair-reject", sim_.now(),
                           obs::kControlPlanePid, rejected.id,
                           {{"app", app.name}});
            }
            done(std::move(rejected));
            return;
        }
        done = [this, tenant,
                done = std::move(done)](InvocationResult r) {
            cluster_->fleet().complete(tenant);
            done(std::move(r));
        };
    }
    if (sim_.context().trace().enabled()) {
        sim_.context().trace().instant(obs::cat::kPlatform, "request", sim_.now(),
                             obs::kControlPlanePid, 0,
                             {{"app", app.name},
                              {"engine", engine_->name()}});
        done = [this, done = std::move(done)](InvocationResult r) {
            sim_.context().trace().instant(
                obs::cat::kPlatform, "response", sim_.now(),
                obs::kControlPlanePid, r.id,
                {{"app", r.app},
                 {"rejected", r.rejected ? "1" : "0", true}});
            done(std::move(r));
        };
    }
    engine_->invoke(app, std::move(input), std::move(done));
}

InvocationResult
FaasPlatform::invokeSync(const Application& app, Value input)
{
    InvocationResult result;
    bool finished = false;
    engine_->invoke(app, std::move(input),
                    [&](InvocationResult r) {
                        result = std::move(r);
                        finished = true;
                    });
    // Drain everything; background work (e.g. lazy squashes) may
    // outlive the request but terminates.
    sim_.events().run();
    if (!finished && spec_ != nullptr) {
        logInfo("stuck invocation state:\n%s",
                spec_->debugDump().c_str());
        std::fprintf(stderr, "%s\n", spec_->debugDump().c_str());
    }
    SPECFAAS_ASSERT(finished, "invocation of %s did not complete",
                    app.name.c_str());
    return result;
}

void
FaasPlatform::train(const Application& app, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        Value input = app.inputGen ? app.inputGen(inputRng_) : Value();
        (void)invokeSync(app, std::move(input));
    }
}

} // namespace specfaas
