/**
 * @file
 * Open-loop Poisson load generator (§VII: request inter-arrival times
 * follow a Poisson process; Low/Medium/High = 100/250/500 rps).
 */

#ifndef SPECFAAS_PLATFORM_LOAD_GENERATOR_HH
#define SPECFAAS_PLATFORM_LOAD_GENERATOR_HH

#include <vector>

#include "platform/platform.hh"
#include "runtime/engine.hh"

namespace specfaas {

/** Outcome of one load run. */
struct LoadRunResult
{
    /** Completed (served) requests only. */
    std::vector<InvocationResult> results;
    /** Requests rejected at admission (OpenWhisk-style 429s). */
    std::size_t rejected = 0;
    double offeredRps = 0.0;
    Tick wallTime = 0;
    /** Mean cluster CPU utilization over the run window, [0,1]. */
    double cpuUtilization = 0.0;
    /** Achieved request completion rate. */
    double completedRps() const;
    /** Fraction of submitted requests rejected. */
    double rejectionRate() const;
};

/** Drives Poisson arrivals into a platform. */
class LoadGenerator
{
  public:
    /**
     * Submit @p num_requests to @p app at @p rps (exponential
     * inter-arrivals), run to completion, and collect results.
     * Inputs are drawn from the application's dataset generator.
     */
    static LoadRunResult run(FaasPlatform& platform,
                             const Application& app, double rps,
                             std::size_t num_requests);

    /**
     * Mixed-application run: requests round-robin across @p apps.
     */
    static LoadRunResult run(FaasPlatform& platform,
                             const std::vector<const Application*>& apps,
                             double rps, std::size_t num_requests);
};

} // namespace specfaas

#endif // SPECFAAS_PLATFORM_LOAD_GENERATOR_HH
