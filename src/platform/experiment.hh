/**
 * @file
 * Experiment harness shared by all benchmark binaries: builds a
 * warmed-up platform for one engine configuration, measures unloaded
 * response times, load runs, effective throughput (QoS-bounded), and
 * baseline-vs-SpecFaaS speedups.
 */

#ifndef SPECFAAS_PLATFORM_EXPERIMENT_HH
#define SPECFAAS_PLATFORM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "metrics/summary.hh"
#include "platform/load_generator.hh"
#include "platform/platform.hh"

namespace specfaas {

/** Paper load levels (§VII): Low/Medium/High rps. */
struct LoadLevels
{
    static constexpr double kLow = 100.0;
    static constexpr double kMedium = 250.0;
    static constexpr double kHigh = 500.0;
};

/** One engine configuration of an experiment. */
struct EngineSetup
{
    bool speculative = false;
    SpecConfig spec;
    /** 0 = cold environment (no prewarmed containers). */
    std::uint32_t prewarmPerFunction = 320;
    /** Serial training invocations before measurement. */
    std::size_t trainingInvocations = 30;
    std::uint64_t seed = 42;
    ClusterConfig cluster;
    /**
     * Per-simulation context for the platforms this setup builds;
     * null = process-global default. Parallel sweeps point both the
     * baseline and SpecFaaS setup of one sweep task at the task's
     * private context.
     */
    SimContext* context = nullptr;
};

/** Results of one (app, engine, load) measurement. */
struct AppLoadMeasurement
{
    RunSummary summary;
    double cpuUtilization = 0.0;
    double offeredRps = 0.0;
    /** Fraction of requests the platform rejected at admission. */
    double rejectionRate = 0.0;
};

/** Builds warmed platforms and runs measurements. */
class Experiment
{
  public:
    /**
     * Build a platform with @p app deployed and warmed up per the
     * setup (containers pre-warmed, tables trained).
     */
    static std::unique_ptr<FaasPlatform>
    preparedPlatform(const Application& app, const EngineSetup& setup);

    /** Mean unloaded (serial) response time in ms over @p n requests. */
    static double unloadedResponseMs(const Application& app,
                                     const EngineSetup& setup,
                                     std::size_t n = 20);

    /** Run @p requests at @p rps on a fresh warmed platform. */
    static AppLoadMeasurement
    measureAtLoad(const Application& app, const EngineSetup& setup,
                  double rps, std::size_t requests);

    /**
     * Effective throughput (§VIII-C): the highest request rate whose
     * mean response time stays below @p qos_factor × the unloaded
     * response time. Binary search over rps.
     */
    static double effectiveThroughput(const Application& app,
                                      const EngineSetup& setup,
                                      double qos_factor = 2.0,
                                      std::size_t requests = 300,
                                      double max_rps = 2000.0);

    /** Speedup of @p spec over @p base mean response at @p rps. */
    static double speedupAtLoad(const Application& app,
                                const EngineSetup& base,
                                const EngineSetup& spec, double rps,
                                std::size_t requests);
};

} // namespace specfaas

#endif // SPECFAAS_PLATFORM_EXPERIMENT_HH
