#include "load_generator.hh"

#include <limits>

#include "common/logging.hh"

namespace specfaas {

double
LoadRunResult::completedRps() const
{
    // A zero-length window has no defined rate. NaN (not 0.0, which
    // reads as "nothing completed") follows the metrics convention of
    // geomean/percentile on empty input; JSON reports render it null.
    if (wallTime <= 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(results.size()) /
           (static_cast<double>(wallTime) / static_cast<double>(kSecond));
}

double
LoadRunResult::rejectionRate() const
{
    const double total =
        static_cast<double>(results.size() + rejected);
    // No submissions → no defined rate (0.0 would claim "nothing was
    // rejected" about a run that never ran).
    if (total == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(rejected) / total;
}

LoadRunResult
LoadGenerator::run(FaasPlatform& platform, const Application& app,
                   double rps, std::size_t num_requests)
{
    return run(platform, std::vector<const Application*>{&app}, rps,
               num_requests);
}

LoadRunResult
LoadGenerator::run(FaasPlatform& platform,
                   const std::vector<const Application*>& apps,
                   double rps, std::size_t num_requests)
{
    SPECFAAS_ASSERT(!apps.empty(), "load run without applications");
    SPECFAAS_ASSERT(rps > 0.0, "non-positive rps");

    LoadRunResult out;
    out.offeredRps = rps;

    Simulation& sim = platform.sim();
    Rng arrivals = sim.forkRng();
    const Tick start = sim.now();
    platform.cluster().resetUtilization();

    const double mean_gap_us =
        1e6 / rps; // microseconds between arrivals

    // Schedule arrivals one after another; each arrival submits the
    // next app in round-robin order with a dataset-drawn input.
    struct GenState
    {
        std::size_t submitted = 0;
        std::size_t completed = 0;
    };
    auto state = std::make_shared<GenState>();

    // Self-scheduling arrival closure. The shared function object
    // outlives every scheduled copy; events drain before it leaves
    // scope, so the raw self-pointer capture is safe and avoids a
    // shared_ptr self-cycle.
    auto schedule_next = std::make_shared<std::function<void()>>();
    *schedule_next = [&platform, &apps, &arrivals, mean_gap_us,
                      num_requests, state, &out,
                      self = schedule_next.get()]() {
        if (state->submitted >= num_requests)
            return;
        const Application& app =
            *apps[state->submitted % apps.size()];
        ++state->submitted;
        Value input = app.inputGen ? app.inputGen(platform.inputRng())
                                   : Value();
        platform.invoke(app, std::move(input),
                        [state, &out](InvocationResult r) {
                            if (r.rejected)
                                ++out.rejected;
                            else
                                out.results.push_back(std::move(r));
                            ++state->completed;
                        });
        if (state->submitted < num_requests) {
            const Tick gap = std::max<Tick>(
                1, static_cast<Tick>(arrivals.exponential(mean_gap_us)));
            platform.sim().events().schedule(gap, *self);
        }
    };

    (*schedule_next)();
    sim.events().run();

    SPECFAAS_ASSERT(state->completed == num_requests,
                    "load run lost requests: %zu of %zu",
                    state->completed, num_requests);

    out.wallTime = sim.now() - start;
    out.cpuUtilization = platform.cluster().utilization();
    return out;
}

} // namespace specfaas
