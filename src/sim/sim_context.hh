/**
 * @file
 * Per-simulation mutable state: invocation/instance id sources, the
 * trace recorder, the counter registry, the sampler-series archive
 * and the gauge-sampling interval.
 *
 * Historically every engine layer recorded into process-global
 * singletons (obs::trace(), obs::counters(), the id sources in
 * runtime/ids.cc). That is fine for a binary that runs exactly one
 * simulation, but any harness running several simulations in one
 * process — a load sweep, the 520-case chaos suite, fuzz_chaos —
 * silently leaked ids, counters and trace state from one run into the
 * next, and could never execute independent runs concurrently.
 *
 * SimContext owns all of that state for one simulation. A Simulation
 * is constructed against one context (the process-global
 * defaultSimContext() by omission, so single-simulation binaries are
 * unchanged), and every component that already holds the Simulation
 * reaches observability through Simulation::context().
 *
 * Parallel sweeps give each task a private context created with
 * forTask(): observability configuration (trace enablement/capacity,
 * sampling interval) is mirrored from the session context, and ids
 * are drawn from a task-indexed block so traces merged from many
 * tasks keep globally unique join keys. After all tasks complete,
 * runSimTasks() merges every context into the session context in
 * submission order. Each task is single-threaded and deterministic
 * and the merge order is fixed, so the combined artifacts — trace,
 * counters, sampler series, JSON report — are byte-identical
 * regardless of worker-thread count.
 */

#ifndef SPECFAAS_SIM_SIM_CONTEXT_HH
#define SPECFAAS_SIM_SIM_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.hh"
#include "common/types.hh"
#include "obs/counter_registry.hh"
#include "obs/histogram.hh"
#include "obs/profiler.hh"
#include "obs/trace_recorder.hh"

namespace specfaas {

/** All mutable cross-component state of one simulation. */
class SimContext
{
  public:
    /** Bits reserved for ids inside one task's block. */
    static constexpr unsigned kTaskIdBits = 32;

    SimContext() = default;

    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;

    /** @{ Observability sinks of this simulation. */
    obs::TraceRecorder& trace() { return trace_; }
    const obs::TraceRecorder& trace() const { return trace_; }
    obs::CounterRegistry& counters() { return counters_; }
    const obs::CounterRegistry& counters() const { return counters_; }
    obs::SamplerArchive& samplerArchive() { return archive_; }
    const obs::SamplerArchive& samplerArchive() const
    {
        return archive_;
    }
    obs::Profiler& profiler() { return profiler_; }
    const obs::Profiler& profiler() const { return profiler_; }
    /** @} */

    /** Gauge-sampling period in ticks; 0 (default) disables it. */
    Tick sampleInterval() const { return sampleInterval_; }
    void setSampleInterval(Tick interval)
    {
        sampleInterval_ = interval;
    }

    /** Next invocation id, unique within this context's id block. */
    InvocationId nextInvocationId()
    {
        return idBase_ + ++invocationSeq_;
    }

    /** Next function-instance id within this context's id block. */
    InstanceId nextInstanceId() { return idBase_ + ++instanceSeq_; }

    /**
     * First id of this context's block minus one; ids run upward from
     * idBase()+1. The default context uses base 0; task contexts use
     * (taskIndex + 1) << kTaskIdBits so their ids never collide with
     * the session's or each other's in a merged trace.
     */
    std::uint64_t idBase() const { return idBase_; }
    void setIdBase(std::uint64_t base)
    {
        idBase_ = base;
        resetIds();
    }

    /** Restart both id sequences at idBase() + 1. */
    void resetIds()
    {
        invocationSeq_ = 0;
        instanceSeq_ = 0;
    }

    /**
     * Reset everything: ids restart, counters and sampler series are
     * dropped, the trace ring is disabled and cleared, sampling is
     * turned off. Test fixtures use this on the default context to
     * isolate determinism checks from earlier tests in the process.
     */
    void reset();

    /**
     * Fresh context for task number @p taskIndex of a parallel batch:
     * observability configuration is mirrored from @p session (trace
     * enabled with the same capacity iff the session traces, same
     * sampling interval), everything else starts empty, and ids come
     * from the task's private block.
     */
    static std::unique_ptr<SimContext>
    forTask(const SimContext& session, std::uint64_t taskIndex);

    /**
     * Merge this context's recorded state into @p dst: trace events
     * are appended in recording order (dropped counts carry over),
     * counters accumulate, sampler series append subject to @p dst's
     * archive cap. Calling this for a batch of task contexts in
     * submission order reproduces exactly the state a serial run on
     * @p dst would have produced.
     */
    void mergeInto(SimContext& dst) const;

  private:
    obs::TraceRecorder trace_;
    obs::CounterRegistry counters_;
    obs::SamplerArchive archive_;
    obs::Profiler profiler_;
    Tick sampleInterval_ = 0;
    std::uint64_t idBase_ = 0;
    std::uint64_t invocationSeq_ = 0;
    std::uint64_t instanceSeq_ = 0;
};

/**
 * The process-global default context. Simulations constructed without
 * an explicit context record here; ObsSession configures and flushes
 * it; the obs::trace()/obs::counters()/... free functions and the id
 * sources in runtime/ids.hh are thin shims over it.
 */
SimContext& defaultSimContext();

/**
 * Run independent simulation tasks on @p jobs worker threads. Each
 * task executes against a private SimContext forked from @p session
 * (defaultSimContext() when null) with forTask(); once every task has
 * finished, the contexts are merged into the session context in
 * submission order. Results are returned in submission order as well,
 * so output assembled from them — and every merged artifact — is
 * byte-identical for any job count. Exceptions propagate per
 * runParallel(); nothing is merged if a task throws.
 */
template <typename R>
std::vector<R>
runSimTasks(std::size_t jobs,
            std::vector<std::function<R(SimContext&)>> tasks,
            SimContext* session = nullptr)
{
    SimContext& root =
        session != nullptr ? *session : defaultSimContext();
    std::vector<std::unique_ptr<SimContext>> contexts;
    contexts.reserve(tasks.size());
    std::vector<std::function<R()>> fns;
    fns.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        contexts.push_back(SimContext::forTask(root, i));
        fns.push_back([&tasks, &contexts, i]() {
            return tasks[i](*contexts[i]);
        });
    }
    std::vector<R> results = mapParallel<R>(jobs, std::move(fns));
    for (const auto& context : contexts)
        context->mergeInto(root);
    return results;
}

} // namespace specfaas

#endif // SPECFAAS_SIM_SIM_CONTEXT_HH
