/**
 * @file
 * Simulation context: bundles the event queue with the experiment's
 * root random number generator and global simulation options so
 * components share one clock and one randomness stream.
 */

#ifndef SPECFAAS_SIM_SIMULATION_HH
#define SPECFAAS_SIM_SIMULATION_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace specfaas {

class FaultInjector;
class SimContext;

/** Process-global default context (sim/sim_context.cc). */
SimContext& defaultSimContext();

/**
 * Root object of one simulated experiment run.
 *
 * Non-copyable; components keep a reference to it for the lifetime of
 * the run.
 */
class Simulation
{
  public:
    /**
     * @param seed root seed; forks feed every stochastic component
     * @param context per-simulation mutable-state context (ids, trace,
     *        counters — see sim/sim_context.hh); null selects the
     *        process-global default context, which is what
     *        single-simulation binaries use
     */
    explicit Simulation(std::uint64_t seed = 1,
                        SimContext* context = nullptr)
        : seed_(seed), rng_(seed),
          context_(context != nullptr ? context : &defaultSimContext())
    {
        events_.setProfiler(&contextProfiler());
    }

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** The event queue (the simulated clock). */
    EventQueue& events() { return events_; }
    const EventQueue& events() const { return events_; }

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** Root RNG. Prefer forkRng() for per-component streams. */
    Rng& rng() { return rng_; }

    /** Derive an independent RNG stream for one component. */
    Rng forkRng() { return rng_.fork(); }

    /** Root seed this run was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /**
     * The run's fault injector, or nullptr when faults are disabled
     * (the default). Exposed here — forward-declared, never called
     * through by the sim layer — so every component that already
     * holds the Simulation can reach it without new plumbing.
     */
    FaultInjector* faultInjector() const { return faults_; }
    void setFaultInjector(FaultInjector* faults) { faults_ = faults; }

    /**
     * The per-simulation mutable-state context: id sources, trace
     * recorder, counters, sampler archive. Components reach all
     * observability through here so concurrent simulations never
     * share state. Resolved once at construction (null → the
     * process-global default) so this accessor is a plain inline
     * load — it sits in front of every tracing enabled() check on
     * the hot path.
     */
    SimContext& context() const { return *context_; }

  private:
    /**
     * The context's profiler, resolved out-of-line (sim_context.hh
     * cannot be included here without a cycle) once at construction.
     */
    obs::Profiler& contextProfiler() const;

    std::uint64_t seed_;
    Rng rng_;
    EventQueue events_;
    FaultInjector* faults_ = nullptr;
    SimContext* context_ = nullptr;
};

} // namespace specfaas

#endif // SPECFAAS_SIM_SIMULATION_HH
