#include "sim_context.hh"

#include "sim/simulation.hh"

namespace specfaas {

void
SimContext::reset()
{
    resetIds();
    trace_.disable();
    trace_.clear();
    trace_.setSample(1);
    counters_.clear();
    archive_.clear();
    profiler_.disable();
    profiler_.clear();
    sampleInterval_ = 0;
}

std::unique_ptr<SimContext>
SimContext::forTask(const SimContext& session, std::uint64_t taskIndex)
{
    auto context = std::make_unique<SimContext>();
    if (session.trace_.enabled())
        context->trace_.enable(session.trace_.capacity());
    context->trace_.setSample(session.trace_.sample());
    if (session.profiler_.enabled())
        context->profiler_.enable();
    context->sampleInterval_ = session.sampleInterval_;
    context->setIdBase((taskIndex + 1) << kTaskIdBits);
    return context;
}

void
SimContext::mergeInto(SimContext& dst) const
{
    dst.trace_.absorb(trace_);
    counters_.mergeInto(dst.counters_);
    dst.archive_.absorb(archive_);
    profiler_.mergeInto(dst.profiler_);
}

SimContext&
defaultSimContext()
{
    static SimContext context;
    return context;
}

obs::Profiler&
Simulation::contextProfiler() const
{
    return context_->profiler();
}

namespace obs {

TraceRecorder&
trace()
{
    return defaultSimContext().trace();
}

CounterRegistry&
counters()
{
    return defaultSimContext().counters();
}

SamplerArchive&
samplerArchive()
{
    return defaultSimContext().samplerArchive();
}

Profiler&
profiler()
{
    return defaultSimContext().profiler();
}

Tick
sampleInterval()
{
    return defaultSimContext().sampleInterval();
}

void
setSampleInterval(Tick interval)
{
    defaultSimContext().setSampleInterval(interval);
}

} // namespace obs

} // namespace specfaas
